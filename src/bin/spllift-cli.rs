//! `spllift-cli` — analyze a mini-Java product line from the command line.
//!
//! ```text
//! spllift-cli <FILE> [--analysis taint|types|reaching-defs|uninit]
//!                    [--model <MODEL-FILE>]
//!                    [--format table|dot|leaks]
//!
//! `--format leaks` (taint only) prints one line per possible
//! source-to-sink flow with the feature constraint it happens under.
//! ```
//!
//! Reads a product-line source file (mini-Java with `#ifdef` annotations),
//! optionally a feature model in the `spllift::features` text format,
//! runs the chosen analysis lifted with SPLLIFT, and prints either the
//! per-statement constraint table or the constraint-labeled exploded
//! supergraph in Graphviz DOT.
//!
//! Example:
//!
//! ```text
//! cargo run --bin spllift-cli -- examples_data/fig1.minijava --analysis taint
//! ```

use spllift::analyses::{PossibleTypes, ReachingDefs, TaintAnalysis, UninitVars};
use spllift::features::{
    parse_feature_model, BddConstraintContext, FeatureExpr, FeatureTable,
};
use spllift::frontend::parse_spl;
use spllift::ifds::IfdsProblem;
use spllift::ir::ProgramIcfg;
use spllift::lift::{report, LiftedIcfg, LiftedProblem, LiftedSolution, ModelMode};
use std::hash::Hash;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spllift-cli: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    file: String,
    analysis: String,
    model_file: Option<String>,
    format: String,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut file = None;
    let mut analysis = "taint".to_owned();
    let mut model_file = None;
    let mut format = "table".to_owned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--analysis" => {
                analysis = args.next().ok_or("--analysis needs a value")?;
            }
            "--model" => {
                model_file = Some(args.next().ok_or("--model needs a file")?);
            }
            "--format" => {
                format = args.next().ok_or("--format needs table|dot")?;
            }
            "--help" | "-h" => {
                return Err("usage: spllift-cli <FILE> [--analysis taint|types|reaching-defs|uninit] [--model FILE] [--format table|dot]"
                    .into());
            }
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Options {
        file: file.ok_or("missing input file (try --help)")?,
        analysis,
        model_file,
        format,
    })
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let source = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read {}: {e}", opts.file))?;
    let mut table = FeatureTable::new();
    let program = parse_spl(&source, &mut table)
        .map_err(|e| format!("{}: {e}", opts.file))?;
    if program.entry_points().is_empty() {
        return Err("no entry point: declare a method named `main`".into());
    }
    let model: Option<FeatureExpr> = match &opts.model_file {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            let m = parse_feature_model(&text, &mut table)
                .map_err(|e| format!("{path}: {e}"))?;
            Some(m.to_expr())
        }
    };
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);

    if opts.format == "leaks" {
        if opts.analysis != "taint" {
            return Err("--format leaks requires --analysis taint".into());
        }
        return emit_leaks(&icfg, &ctx, &model);
    }
    match opts.analysis.as_str() {
        "taint" => emit(&opts, &icfg, &ctx, &TaintAnalysis::secret_to_print(), &model),
        "types" => emit(&opts, &icfg, &ctx, &PossibleTypes::new(), &model),
        "reaching-defs" => emit(&opts, &icfg, &ctx, &ReachingDefs::new(), &model),
        "uninit" => emit(&opts, &icfg, &ctx, &UninitVars::new(), &model),
        other => Err(format!(
            "unknown analysis `{other}` (taint|types|reaching-defs|uninit)"
        )),
    }
}

fn emit<P, D>(
    opts: &Options,
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    problem: &P,
    model: &Option<FeatureExpr>,
) -> Result<(), String>
where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D>,
    D: Clone + Eq + Ord + Hash + std::fmt::Debug,
{
    let solution =
        LiftedSolution::solve(problem, icfg, ctx, model.as_ref(), ModelMode::OnEdges);
    match opts.format.as_str() {
        "table" => {
            print!(
                "{}",
                report::constraints_table(&solution, icfg, |c| c.to_cube_string())
            );
            Ok(())
        }
        "dot" => {
            let lifted_icfg = LiftedIcfg::new(icfg);
            let lifted = LiftedProblem::new(
                problem,
                icfg,
                ctx,
                model.as_ref(),
                ModelMode::OnEdges,
            );
            println!(
                "{}",
                report::lifted_supergraph_dot(
                    &lifted,
                    &lifted_icfg,
                    |s| solution.results_at(s).into_keys().collect(),
                    |c| c.to_cube_string(),
                )
            );
            Ok(())
        }
        other => Err(format!("unknown format `{other}` (table|dot|leaks)")),
    }
}

/// Prints each sink call whose argument may be tainted, with the exact
/// feature constraint — the headline output of the paper's Figure 1.
fn emit_leaks(
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    model: &Option<FeatureExpr>,
) -> Result<(), String> {
    use spllift::analyses::TaintFact;
    use spllift::ifds::Icfg as _;
    use spllift::ir::{Operand, StmtKind};
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(
        &analysis,
        icfg,
        ctx,
        model.as_ref(),
        ModelMode::OnEdges,
    );
    let mut found = 0;
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let StmtKind::Invoke { args, .. } = &icfg.program().stmt(s).kind else {
                continue;
            };
            for arg in args {
                let Operand::Local(l) = arg else { continue };
                let c = solution.constraint_of(s, &TaintFact::Local(*l));
                if !c.is_false() {
                    // Only report at *sink* calls; cheap name check.
                    let label = icfg.stmt_label(s);
                    if label.contains("print(") {
                        found += 1;
                        println!("LEAK at [{label}] iff {}", c.to_cube_string());
                    }
                }
            }
        }
    }
    if found == 0 {
        println!("no source-to-sink flows in any configuration");
    }
    Ok(())
}
