//! `spllift-cli` — analyze a mini-Java product line from the command line.
//!
//! ```text
//! spllift-cli <INPUT> [--analysis taint|types|reaching-defs|uninit]
//!                     [--model <MODEL-FILE>]
//!                     [--format table|dot|leaks|crosscheck|a2-bench]
//!                     [--jobs N] [--max-mismatches N]
//!
//! <INPUT> is a product-line source file (mini-Java with `#ifdef`
//! annotations), or one of the built-in generated benchmark subjects:
//!
//!   gen:MM08 | gen:GPL | gen:Lampiro | gen:BerkeleyDB
//!   gen:synthetic:<features>:<loc>:<seed>
//!
//! `--format leaks` (taint only) prints one line per possible
//! source-to-sink flow with the feature constraint it happens under.
//!
//! `--format crosscheck` runs the §6.1 bidirectional SPLLIFT ↔ A2
//! cross-check over every valid configuration, sharded across `--jobs`
//! worker threads; mismatch collection stops at `--max-mismatches`
//! (default 100).
//!
//! `--format a2-bench` times the brute-force A2 campaign (one full IFDS
//! solve per valid configuration) sequentially and sharded across
//! `--jobs` threads, and reports the wall-clock speedup.
//!
//! For both parallel formats, stdout carries only the deterministic
//! results — byte-identical for every `--jobs` value — while per-shard
//! wall-clock stats and speedups go to stderr.
//! ```
//!
//! Reads the product line, optionally a feature model in the
//! `spllift::features` text format, runs the chosen analysis lifted with
//! SPLLIFT, and prints either the per-statement constraint table or the
//! constraint-labeled exploded supergraph in Graphviz DOT.
//!
//! Example:
//!
//! ```text
//! cargo run --bin spllift-cli -- examples_data/fig1.minijava --analysis taint
//! cargo run --release --bin spllift-cli -- gen:synthetic:6:400:42 --format a2-bench
//! ```

use spllift::analyses::{PossibleTypes, ReachingDefs, TaintAnalysis, UninitVars};
use spllift::benchgen::{subject_by_name, synthetic_spec, GeneratedSpl, SubjectSpec};
use spllift::features::{
    parse_feature_model, BddConstraintContext, Configuration, FeatureExpr, FeatureTable,
};
use spllift::frontend::parse_spl;
use spllift::ifds::IfdsProblem;
use spllift::ir::{Program, ProgramIcfg};
use spllift::lift::{report, LiftedIcfg, LiftedProblem, LiftedSolution, ModelMode};
use spllift::spl::{
    a2_campaign_parallel, crosscheck_parallel, default_jobs, CrosscheckOutcome, ParallelOptions,
    ShardStats, DEFAULT_MAX_MISMATCHES,
};
use std::hash::Hash;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spllift-cli: {msg}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    file: String,
    analysis: String,
    model_file: Option<String>,
    format: String,
    jobs: usize,
    max_mismatches: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut file = None;
    let mut analysis = "taint".to_owned();
    let mut model_file = None;
    let mut format = "table".to_owned();
    let mut jobs = default_jobs();
    let mut max_mismatches = DEFAULT_MAX_MISMATCHES;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--analysis" => {
                analysis = args.next().ok_or("--analysis needs a value")?;
            }
            "--model" => {
                model_file = Some(args.next().ok_or("--model needs a file")?);
            }
            "--format" => {
                format = args.next().ok_or("--format needs a value")?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a thread count")?;
                jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&j| j >= 1)
                    .ok_or(format!("--jobs needs a positive integer, got `{v}`"))?;
            }
            "--max-mismatches" => {
                let v = args.next().ok_or("--max-mismatches needs a count")?;
                max_mismatches = v.parse::<usize>().ok().filter(|&m| m >= 1).ok_or(format!(
                    "--max-mismatches needs a positive integer, got `{v}`"
                ))?;
            }
            "--help" | "-h" => {
                return Err("usage: spllift-cli <FILE|gen:SUBJECT> [--analysis taint|types|reaching-defs|uninit] [--model FILE] [--format table|dot|leaks|crosscheck|a2-bench] [--jobs N] [--max-mismatches N]"
                    .into());
            }
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Options {
        file: file.ok_or("missing input file (try --help)")?,
        analysis,
        model_file,
        format,
        jobs,
        max_mismatches,
    })
}

/// A fully loaded product line, whichever way it came in.
struct Loaded {
    program: Program,
    table: FeatureTable,
    model: Option<FeatureExpr>,
    /// Pre-enumerated valid configurations, for `gen:` inputs.
    configs: Option<Vec<Configuration>>,
}

fn parse_gen_spec(s: &str) -> Result<SubjectSpec, String> {
    if let Some(rest) = s.strip_prefix("synthetic:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let [features, loc, seed] = parts.as_slice() else {
            return Err("gen:synthetic takes gen:synthetic:<features>:<loc>:<seed>".into());
        };
        let parse = |what: &str, v: &str| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("gen:synthetic {what} must be an integer, got `{v}`"))
        };
        Ok(synthetic_spec(
            parse("feature count", features)?,
            parse("loc", loc)?,
            parse("seed", seed)? as u64,
        ))
    } else {
        subject_by_name(s).ok_or_else(|| {
            format!(
                "unknown generated subject `{s}` (MM08|GPL|Lampiro|BerkeleyDB, or synthetic:<features>:<loc>:<seed>)"
            )
        })
    }
}

fn load(opts: &Options) -> Result<Loaded, String> {
    if let Some(spec) = opts.file.strip_prefix("gen:") {
        if opts.model_file.is_some() {
            return Err(
                "--model cannot be combined with gen: inputs (the generated feature model is used)"
                    .into(),
            );
        }
        let spl = GeneratedSpl::generate(parse_gen_spec(spec)?);
        let model = Some(spl.model_expr());
        let configs = (spl.reachable.len() <= 20).then(|| spl.valid_configurations());
        let GeneratedSpl { program, table, .. } = spl;
        return Ok(Loaded {
            program,
            table,
            model,
            configs,
        });
    }
    let source = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read {}: {e}", opts.file))?;
    let mut table = FeatureTable::new();
    let program = parse_spl(&source, &mut table).map_err(|e| format!("{}: {e}", opts.file))?;
    let model: Option<FeatureExpr> = match &opts.model_file {
        None => None,
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let m = parse_feature_model(&text, &mut table).map_err(|e| format!("{path}: {e}"))?;
            Some(m.to_expr())
        }
    };
    Ok(Loaded {
        program,
        table,
        model,
        configs: None,
    })
}

/// The valid configurations to brute-force over: pre-enumerated for
/// `gen:` inputs, every model-satisfying assignment for file inputs.
fn configurations(loaded: &Loaded) -> Result<Vec<Configuration>, String> {
    if let Some(configs) = &loaded.configs {
        return Ok(configs.clone());
    }
    let n = loaded.table.iter().count();
    if n > 16 {
        return Err(format!(
            "refusing to enumerate 2^{n} configurations; use a gen: subject instead"
        ));
    }
    let mut out = Vec::new();
    for bits in 0u64..(1u64 << n) {
        let cfg = Configuration::from_bits(bits, n);
        if loaded.model.as_ref().is_none_or(|m| cfg.satisfies(m)) {
            out.push(cfg);
        }
    }
    Ok(out)
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let loaded = load(&opts)?;
    if loaded.program.entry_points().is_empty() {
        return Err("no entry point: declare a method named `main`".into());
    }
    let icfg = ProgramIcfg::new(&loaded.program);

    match opts.format.as_str() {
        "crosscheck" => return run_crosscheck(&opts, &icfg, &loaded),
        "a2-bench" => return run_a2_bench(&opts, &icfg, &loaded),
        _ => {}
    }

    let ctx = BddConstraintContext::new(&loaded.table);
    let model = &loaded.model;
    if opts.format == "leaks" {
        if opts.analysis != "taint" {
            return Err("--format leaks requires --analysis taint".into());
        }
        return emit_leaks(&icfg, &ctx, model);
    }
    match opts.analysis.as_str() {
        "taint" => emit(&opts, &icfg, &ctx, &TaintAnalysis::secret_to_print(), model),
        "types" => emit(&opts, &icfg, &ctx, &PossibleTypes::new(), model),
        "reaching-defs" => emit(&opts, &icfg, &ctx, &ReachingDefs::new(), model),
        "uninit" => emit(&opts, &icfg, &ctx, &UninitVars::new(), model),
        other => Err(format!(
            "unknown analysis `{other}` (taint|types|reaching-defs|uninit)"
        )),
    }
}

fn print_shards(label: &str, shards: &[ShardStats]) {
    for s in shards {
        eprintln!(
            "  {label} shard {:>2}: {:>6} configs in {:>10.3?}",
            s.shard, s.configs, s.wall
        );
    }
}

/// `--format crosscheck`: the §6.1 bidirectional SPLLIFT ↔ A2 check over
/// every valid configuration, sharded across `--jobs` worker threads.
/// Results go to stdout (deterministic across `--jobs`), per-shard
/// timings to stderr.
fn run_crosscheck(opts: &Options, icfg: &ProgramIcfg<'_>, loaded: &Loaded) -> Result<(), String> {
    let configs = configurations(loaded)?;
    let popts = ParallelOptions {
        jobs: opts.jobs,
        max_mismatches: opts.max_mismatches,
    };
    let model = loaded.model.as_ref();
    let make_ctx = || BddConstraintContext::new(&loaded.table);
    let outcome: CrosscheckOutcome = match opts.analysis.as_str() {
        "taint" => crosscheck_parallel(
            icfg,
            &TaintAnalysis::secret_to_print(),
            make_ctx,
            model,
            &configs,
            &popts,
        ),
        "types" => crosscheck_parallel(
            icfg,
            &PossibleTypes::new(),
            make_ctx,
            model,
            &configs,
            &popts,
        ),
        "reaching-defs" => crosscheck_parallel(
            icfg,
            &ReachingDefs::new(),
            make_ctx,
            model,
            &configs,
            &popts,
        ),
        "uninit" => {
            crosscheck_parallel(icfg, &UninitVars::new(), make_ctx, model, &configs, &popts)
        }
        other => {
            return Err(format!(
                "unknown analysis `{other}` (taint|types|reaching-defs|uninit)"
            ))
        }
    };
    eprintln!(
        "crosscheck: {} configurations across {} worker thread(s), wall {:.3?}",
        configs.len(),
        outcome.jobs,
        outcome.wall
    );
    print_shards("crosscheck", &outcome.shards);
    println!(
        "crosscheck: {} analysis over {} valid configurations",
        opts.analysis,
        configs.len()
    );
    if outcome.mismatches.is_empty() {
        println!("OK: SPLLIFT and A2 agree on every configuration");
        Ok(())
    } else {
        for m in &outcome.mismatches {
            println!("MISMATCH: {m}");
        }
        let capped = if outcome.mismatches.len() == opts.max_mismatches {
            " (cap reached)"
        } else {
            ""
        };
        println!("{} mismatch(es){capped}", outcome.mismatches.len());
        Err(format!(
            "crosscheck found {} mismatch(es)",
            outcome.mismatches.len()
        ))
    }
}

/// `--format a2-bench`: times the brute-force A2 campaign sequentially
/// and sharded across `--jobs` threads, reporting the wall-clock
/// speedup on stderr. Stdout carries only the configuration count and
/// the order-independent fact checksum, which are `--jobs`-invariant.
fn run_a2_bench(opts: &Options, icfg: &ProgramIcfg<'_>, loaded: &Loaded) -> Result<(), String> {
    let configs = configurations(loaded)?;
    macro_rules! campaign {
        ($p:expr) => {{
            let p = $p;
            (a2_campaign_parallel(icfg, &p, &configs, 1), {
                a2_campaign_parallel(icfg, &p, &configs, opts.jobs)
            })
        }};
    }
    let (seq, par) = match opts.analysis.as_str() {
        "taint" => campaign!(TaintAnalysis::secret_to_print()),
        "types" => campaign!(PossibleTypes::new()),
        "reaching-defs" => campaign!(ReachingDefs::new()),
        "uninit" => campaign!(UninitVars::new()),
        other => {
            return Err(format!(
                "unknown analysis `{other}` (taint|types|reaching-defs|uninit)"
            ))
        }
    };
    if seq.facts != par.facts {
        return Err(format!(
            "a2-bench determinism violation: sequential checksum {} != parallel checksum {}",
            seq.facts, par.facts
        ));
    }
    eprintln!("a2-bench: jobs=1 wall {:.3?}", seq.wall);
    print_shards("jobs=1", &seq.shards);
    eprintln!("a2-bench: jobs={} wall {:.3?}", par.jobs, par.wall);
    print_shards(&format!("jobs={}", par.jobs), &par.shards);
    eprintln!(
        "a2-bench: speedup {:.2}x at {} threads",
        seq.wall.as_secs_f64() / par.wall.as_secs_f64().max(1e-9),
        par.jobs
    );
    println!(
        "a2-bench: {} analysis, {} valid configurations, facts checksum {}",
        opts.analysis,
        configs.len(),
        par.facts
    );
    Ok(())
}

fn emit<P, D>(
    opts: &Options,
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    problem: &P,
    model: &Option<FeatureExpr>,
) -> Result<(), String>
where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D>,
    D: Clone + Eq + Ord + Hash + std::fmt::Debug,
{
    let solution = LiftedSolution::solve(problem, icfg, ctx, model.as_ref(), ModelMode::OnEdges);
    match opts.format.as_str() {
        "table" => {
            print!(
                "{}",
                report::constraints_table(&solution, icfg, |c| c.to_cube_string())
            );
            Ok(())
        }
        "dot" => {
            let lifted_icfg = LiftedIcfg::new(icfg);
            let lifted = LiftedProblem::new(problem, icfg, ctx, model.as_ref(), ModelMode::OnEdges);
            println!(
                "{}",
                report::lifted_supergraph_dot(
                    &lifted,
                    &lifted_icfg,
                    |s| solution.results_at(s).into_keys().collect(),
                    |c| c.to_cube_string(),
                )
            );
            Ok(())
        }
        other => Err(format!(
            "unknown format `{other}` (table|dot|leaks|crosscheck|a2-bench)"
        )),
    }
}

/// Prints each sink call whose argument may be tainted, with the exact
/// feature constraint — the headline output of the paper's Figure 1.
fn emit_leaks(
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    model: &Option<FeatureExpr>,
) -> Result<(), String> {
    use spllift::analyses::TaintFact;
    use spllift::ifds::Icfg as _;
    use spllift::ir::{Operand, StmtKind};
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, icfg, ctx, model.as_ref(), ModelMode::OnEdges);
    let mut found = 0;
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let StmtKind::Invoke { args, .. } = &icfg.program().stmt(s).kind else {
                continue;
            };
            for arg in args {
                let Operand::Local(l) = arg else { continue };
                let c = solution.constraint_of(s, &TaintFact::Local(*l));
                if !c.is_false() {
                    // Only report at *sink* calls; cheap name check.
                    let label = icfg.stmt_label(s);
                    if label.contains("print(") {
                        found += 1;
                        println!("LEAK at [{label}] iff {}", c.to_cube_string());
                    }
                }
            }
        }
    }
    if found == 0 {
        println!("no source-to-sink flows in any configuration");
    }
    Ok(())
}
