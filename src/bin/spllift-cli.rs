//! `spllift-cli` — analyze a mini-Java product line from the command line.
//!
//! ```text
//! spllift-cli <INPUT> [--analysis taint|types|reaching-defs|uninit]
//!                     [--model <MODEL-FILE>]
//!                     [--format table|dot|leaks|crosscheck|a2-bench]
//!                     [--jobs N] [--max-mismatches N]
//!
//! spllift-cli fuzz   [--seeds A..B] [--jobs N] [--nfeatures N]
//!                    [--nmethods N] [--mutations N] [--budget-secs S]
//!                    [--corpus-dir DIR] [--inject-bug kill-call-to-return]
//!                    [--no-reduce]
//!
//! spllift-cli reduce gen:<seed>:<nfeatures>:<nmethods> [--mutations N]
//! spllift-cli reduce <FILE.repro> [--check <analysis>|interp-taint|interp-uninit]
//!                    [--inject-bug kill-call-to-return]
//!
//! spllift-cli datalog <INPUT> [--jobs N] [--model FILE]
//!                     [--dump-relations] [--crosscheck]
//!
//! <INPUT> is a product-line source file (mini-Java with `#ifdef`
//! annotations), or one of the built-in generated benchmark subjects:
//!
//!   gen:MM08 | gen:GPL | gen:Lampiro | gen:BerkeleyDB
//!   gen:synthetic:<features>:<loc>:<seed>
//!
//! `--format leaks` (taint only) prints one line per possible
//! source-to-sink flow with the feature constraint it happens under.
//!
//! `--format crosscheck` runs the §6.1 bidirectional SPLLIFT ↔ A2
//! cross-check over every valid configuration, sharded across `--jobs`
//! worker threads; mismatch collection stops at `--max-mismatches`
//! (default 100).
//!
//! `--format a2-bench` times the brute-force A2 campaign (one full IFDS
//! solve per valid configuration) sequentially and sharded across
//! `--jobs` threads, and reports the wall-clock speedup.
//!
//! For both parallel formats, stdout carries only the deterministic
//! results — byte-identical for every `--jobs` value — while per-shard
//! wall-clock stats and speedups go to stderr.
//!
//! The `fuzz` subcommand runs the differential fuzzing campaign: seeded
//! random mutated product lines, all five analyses cross-checked against
//! A2 in both directions, the Datalog-backend and variability-abstraction
//! differentials, plus the interpreter-soundness sweep, failures
//! auto-reduced by ddmin. Stdout is the deterministic campaign report
//! (byte-identical for every `--jobs` value when no `--budget-secs` is
//! set); timings go to stderr; the exit code is non-zero iff a seed
//! failed. `--corpus-dir` writes each reduced failure as a `.repro` file.
//!
//! The `reduce` subcommand either prints the repro text of a generated
//! subject (`reduce gen:<seed>:<nfeatures>:<nmethods>`, for seeding
//! `tests/corpus/`), or minimizes a failing `.repro` file against a
//! named check.
//!
//! The `datalog` subcommand runs the lifted Datalog backend's reaching
//! definitions (plus statement/method reachability) on the subject.
//! `--dump-relations` prints every relation tuple with its feature
//! constraint in the round-trippable dump format; `--crosscheck` also
//! solves with the IDE lifting and compares every fact's constraint
//! digest in both directions, exiting non-zero on any disagreement.
//! Stdout is byte-identical for every `--jobs` value.
//! ```
//!
//! Reads the product line, optionally a feature model in the
//! `spllift::features` text format, runs the chosen analysis lifted with
//! SPLLIFT, and prints either the per-statement constraint table or the
//! constraint-labeled exploded supergraph in Graphviz DOT.
//!
//! Example:
//!
//! ```text
//! cargo run --bin spllift-cli -- examples_data/fig1.minijava --analysis taint
//! cargo run --release --bin spllift-cli -- gen:synthetic:6:400:42 --format a2-bench
//! ```

use spllift::analyses::{PossibleTypes, ReachingDefs, TaintAnalysis, UninitVars};
use spllift::benchgen::{parse_subject_spec, GeneratedSpl, SubjectSpec};
use spllift::features::{
    parse_feature_model, BddConstraintContext, Configuration, FeatureExpr, FeatureTable,
};
use spllift::frontend::parse_spl;
use spllift::ide::IdeSolverOptions;
use spllift::ifds::IfdsProblem;
use spllift::ir::{Program, ProgramIcfg};
use spllift::lift::{report, LiftedIcfg, LiftedProblem, LiftedSolution, ModelMode};
use spllift::server::{Server, ServerOptions};
use spllift::spl::{
    a2_campaign_parallel, crosscheck_parallel, default_jobs, fuzz_campaign, CrosscheckOutcome,
    FaultPlan, FuzzOptions, InjectedBug, ParallelOptions, ShardStats, DEFAULT_MAX_MISMATCHES,
};
use std::hash::Hash;
use std::process::ExitCode;

/// Printed by `spllift-cli help` (and `--help`/`-h`), and to stderr on
/// an unknown subcommand.
const HELP: &str = "\
spllift-cli — SPLLIFT product-line analysis

USAGE
  spllift-cli <INPUT> [options]         analyze a product line once
  spllift-cli serve [options]           resident analysis server (JSON on stdin/stdout)
  spllift-cli fuzz [options]            differential fuzzing campaign
  spllift-cli reduce <INPUT> [options]  print or minimize a .repro subject
  spllift-cli datalog <INPUT> [options] lifted Datalog backend (second opinion)
  spllift-cli help                      this text (also --help, -h)

INPUT
  A product-line source file (mini-Java with #ifdef annotations), a
  `# spllift repro v1` file, or a generated benchmark subject:
    gen:MM08 | gen:GPL | gen:Lampiro | gen:BerkeleyDB
    gen:synthetic:<features>:<loc>:<seed>

ANALYZE OPTIONS
  --analysis taint|types|reaching-defs|uninit    client analysis (default taint)
  --model FILE            feature model in the spllift text format
  --format table|dot|leaks|crosscheck|a2-bench   output (default table)
  --jobs N                worker threads for crosscheck / a2-bench
  --threads N             phase-1 solver worker threads (default 1);
                          results are byte-identical at every N
  --max-mismatches N      stop collecting crosscheck mismatches after N

SERVE OPTIONS
  --listen ADDR           serve the protocol on a TCP socket (e.g.
                          127.0.0.1:7077; port 0 picks one) instead of
                          stdin/stdout; many concurrent connections
  --jobs N                worker threads for batched queries
  --threads N             default phase-1 solver threads per solve
                          (requests may override with \"threads\")
  --shards N              executor shards (concurrent session groups)
  --max-inflight N        per-shard in-flight request bound (default 256)
  --cache-entries N       solution-cache entry budget (default 64)
  --cache-bytes N         solution-cache byte budget (default 16777216)
  --solve-timeout-ms N    per-rung wall-clock allowance per solve
  --bdd-node-budget N     per-rung BDD node budget per solve
  --bdd-op-budget N       per-rung BDD operation budget per solve
  --max-propagations N    per-rung phase-1 propagation cap per solve
  --keep-features A,B     features every degraded solve must keep precise:
                          on budget exhaustion the governor abstracts only
                          the *other* features (confound OR groups, project
                          the rest away) before falling to no-model /
                          constraint-true; requests override with
                          \"keep_features\"
  --inject-fault K[@N]    chaos harness: sabotage the N-th analyze (default 1)
                          with K = panic-in-flow | bdd-blowup | slow-edge;
                          budget-exhaust@N instead arms a BDD op budget of
                          exactly N on the first qualifying analyze
  --inject-fault-session NAME  scope the fault trigger to NAME's own
                          analyze ordinal (deterministic under concurrency)
  Line-delimited JSON requests on stdin, one response per line on stdout
  (or per connection under --listen): load, analyze, query, edit, stats,
  evict, shutdown. When a solve exhausts its budget the server descends a
  variability-abstraction lattice (project / join / confound features,
  then no-model, then constraint-true) and flags the weaker answers with
  the exact lattice point. The wire contract lives in docs/PROTOCOL.md.

FUZZ OPTIONS
  --seeds A..B  --jobs N  --threads N  --nfeatures N  --nmethods N
  --mutations N  --budget-secs S  --corpus-dir DIR
  --inject-bug kill-call-to-return
  --no-reduce

REDUCE
  reduce gen:<seed>:<nfeatures>:<nmethods>        print the repro text
  reduce FILE.repro [--check CHECK] [--mutations N] [--inject-bug ...]

DATALOG OPTIONS
  --jobs N                rule-evaluation worker threads; stdout is
                          byte-identical at every N
  --model FILE            feature model (file inputs only)
  --dump-relations        print every relation tuple with its feature
                          constraint (round-trippable dump format)
  --crosscheck            also solve with the IDE lifting and compare
                          every fact's constraint digest, both directions
";

/// `true` for a first argument that reads as a subcommand word rather
/// than an input path (`fig1.minijava`, `dir/file`, `gen:MM08`).
fn looks_like_subcommand(arg: &str) -> bool {
    !arg.starts_with('-') && !arg.contains('.') && !arg.contains('/') && !arg.starts_with("gen:")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("help" | "--help" | "-h") => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Some("fuzz") => run_fuzz(&args[1..]),
        Some("reduce") => run_reduce(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("datalog") => run_datalog(&args[1..]),
        Some(cmd) if looks_like_subcommand(cmd) => {
            eprintln!("spllift-cli: unknown subcommand `{cmd}`\n");
            eprint!("{HELP}");
            return ExitCode::from(2);
        }
        _ => run(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spllift-cli: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run_serve(args: &[String]) -> Result<(), String> {
    let mut opts = ServerOptions::default();
    let mut listen: Option<String> = None;
    let mut args = args.iter().cloned();
    let positive = |flag: &str, v: Option<String>| -> Result<usize, String> {
        let v = v.ok_or(format!("{flag} needs a value"))?;
        v.parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or(format!("{flag} needs a positive integer, got `{v}`"))
    };
    let positive_u64 = |flag: &str, v: Option<String>| -> Result<u64, String> {
        let v = v.ok_or(format!("{flag} needs a value"))?;
        v.parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or(format!("{flag} needs a positive integer, got `{v}`"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(args.next().ok_or("--listen needs an address")?),
            "--jobs" => opts.jobs = positive("--jobs", args.next())?,
            "--threads" => opts.threads = positive("--threads", args.next())?,
            "--shards" => opts.shards = positive("--shards", args.next())?,
            "--max-inflight" => opts.max_inflight = positive("--max-inflight", args.next())?,
            "--cache-entries" => opts.cache_entries = positive("--cache-entries", args.next())?,
            "--cache-bytes" => opts.cache_bytes = positive("--cache-bytes", args.next())?,
            "--solve-timeout-ms" => {
                opts.solve_timeout_ms = Some(positive_u64("--solve-timeout-ms", args.next())?)
            }
            "--bdd-node-budget" => {
                opts.bdd_node_budget = Some(positive_u64("--bdd-node-budget", args.next())?)
            }
            "--bdd-op-budget" => {
                opts.bdd_op_budget = Some(positive_u64("--bdd-op-budget", args.next())?)
            }
            "--max-propagations" => {
                opts.max_propagations = Some(positive_u64("--max-propagations", args.next())?)
            }
            "--inject-fault" => {
                let v = args.next().ok_or("--inject-fault needs a value")?;
                opts.inject_fault =
                    Some(FaultPlan::parse(&v).map_err(|e| format!("--inject-fault: {e}"))?);
            }
            "--inject-fault-session" => {
                opts.fault_session =
                    Some(args.next().ok_or("--inject-fault-session needs a name")?);
            }
            "--keep-features" => {
                let v = args
                    .next()
                    .ok_or("--keep-features needs a comma-separated feature list")?;
                let names: Vec<String> = v
                    .split(',')
                    .map(str::trim)
                    .filter(|n| !n.is_empty())
                    .map(str::to_owned)
                    .collect();
                if names.is_empty() {
                    return Err("--keep-features needs at least one feature name".into());
                }
                opts.keep_features = Some(names);
            }
            other => {
                return Err(format!(
                    "unexpected serve argument `{other}` (try `spllift-cli help`)"
                ))
            }
        }
    }
    if let Some(addr) = listen {
        let server = spllift::server::SocketServer::spawn(opts, &addr)
            .map_err(|e| format!("serve --listen {addr}: {e}"))?;
        eprintln!("serve: listening on {}", server.addr());
        server.join();
        return Ok(());
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    Server::new(opts)
        .run(stdin.lock(), stdout.lock())
        .map_err(|e| format!("serve: {e}"))
}

struct Options {
    file: String,
    analysis: String,
    model_file: Option<String>,
    format: String,
    jobs: usize,
    threads: usize,
    max_mismatches: usize,
}

/// Parses the analyze-mode arguments; `Ok(None)` means `--help` was
/// requested (the caller prints [`HELP`] and exits successfully).
fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut args = args.iter().cloned();
    let mut file = None;
    let mut analysis = "taint".to_owned();
    let mut model_file = None;
    let mut format = "table".to_owned();
    let mut jobs = default_jobs();
    let mut threads = 1usize;
    let mut max_mismatches = DEFAULT_MAX_MISMATCHES;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--analysis" => {
                analysis = args.next().ok_or("--analysis needs a value")?;
            }
            "--model" => {
                model_file = Some(args.next().ok_or("--model needs a file")?);
            }
            "--format" => {
                format = args.next().ok_or("--format needs a value")?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a thread count")?;
                jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&j| j >= 1)
                    .ok_or(format!("--jobs needs a positive integer, got `{v}`"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a thread count")?;
                threads = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t >= 1)
                    .ok_or(format!("--threads needs a positive integer, got `{v}`"))?;
            }
            "--max-mismatches" => {
                let v = args.next().ok_or("--max-mismatches needs a count")?;
                max_mismatches = v.parse::<usize>().ok().filter(|&m| m >= 1).ok_or(format!(
                    "--max-mismatches needs a positive integer, got `{v}`"
                ))?;
            }
            "--help" | "-h" => return Ok(None),
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Some(Options {
        file: file.ok_or("missing input file (try `spllift-cli help`)")?,
        analysis,
        model_file,
        format,
        jobs,
        threads,
        max_mismatches,
    }))
}

/// A fully loaded product line, whichever way it came in.
struct Loaded {
    program: Program,
    table: FeatureTable,
    model: Option<FeatureExpr>,
    /// Pre-enumerated valid configurations, for `gen:` inputs.
    configs: Option<Vec<Configuration>>,
}

fn parse_gen_spec(s: &str) -> Result<SubjectSpec, String> {
    // One grammar for every front end (see spllift::benchgen docs):
    //   MM08|GPL|Lampiro|BerkeleyDB
    //   synthetic:<features>:<loc>:<seed>[:model=free|chain|groups][:depth=N]
    parse_subject_spec(s)
}

fn load(opts: &Options) -> Result<Loaded, String> {
    if let Some(spec) = opts.file.strip_prefix("gen:") {
        if opts.model_file.is_some() {
            return Err(
                "--model cannot be combined with gen: inputs (the generated feature model is used)"
                    .into(),
            );
        }
        let spl = GeneratedSpl::generate(parse_gen_spec(spec)?);
        let model = Some(spl.model_expr());
        let configs = (spl.reachable.len() <= 20).then(|| spl.valid_configurations());
        let GeneratedSpl { program, table, .. } = spl;
        return Ok(Loaded {
            program,
            table,
            model,
            configs,
        });
    }
    let source = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read {}: {e}", opts.file))?;
    let mut table = FeatureTable::new();
    let program = parse_spl(&source, &mut table).map_err(|e| format!("{}: {e}", opts.file))?;
    let model: Option<FeatureExpr> = match &opts.model_file {
        None => None,
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let m = parse_feature_model(&text, &mut table).map_err(|e| format!("{path}: {e}"))?;
            Some(m.to_expr())
        }
    };
    Ok(Loaded {
        program,
        table,
        model,
        configs: None,
    })
}

/// The valid configurations to brute-force over: pre-enumerated for
/// `gen:` inputs, every model-satisfying assignment for file inputs.
fn configurations(loaded: &Loaded) -> Result<Vec<Configuration>, String> {
    if let Some(configs) = &loaded.configs {
        return Ok(configs.clone());
    }
    let n = loaded.table.iter().count();
    if n > 16 {
        return Err(format!(
            "refusing to enumerate 2^{n} configurations; use a gen: subject instead"
        ));
    }
    let mut out = Vec::new();
    for bits in 0u64..(1u64 << n) {
        let cfg = Configuration::from_bits(bits, n);
        if loaded.model.as_ref().is_none_or(|m| cfg.satisfies(m)) {
            out.push(cfg);
        }
    }
    Ok(out)
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(opts) = parse_args(args)? else {
        print!("{HELP}");
        return Ok(());
    };
    let loaded = load(&opts)?;
    if loaded.program.entry_points().is_empty() {
        return Err("no entry point: declare a method named `main`".into());
    }
    let icfg = ProgramIcfg::new(&loaded.program);

    match opts.format.as_str() {
        "crosscheck" => return run_crosscheck(&opts, &icfg, &loaded),
        "a2-bench" => return run_a2_bench(&opts, &icfg, &loaded),
        _ => {}
    }

    let ctx = BddConstraintContext::new(&loaded.table);
    let model = &loaded.model;
    if opts.format == "leaks" {
        if opts.analysis != "taint" {
            return Err("--format leaks requires --analysis taint".into());
        }
        return emit_leaks(&icfg, &ctx, model);
    }
    match opts.analysis.as_str() {
        "taint" => emit(&opts, &icfg, &ctx, &TaintAnalysis::secret_to_print(), model),
        "types" => emit(&opts, &icfg, &ctx, &PossibleTypes::new(), model),
        "reaching-defs" => emit(&opts, &icfg, &ctx, &ReachingDefs::new(), model),
        "uninit" => emit(&opts, &icfg, &ctx, &UninitVars::new(), model),
        other => Err(format!(
            "unknown analysis `{other}` (taint|types|reaching-defs|uninit)"
        )),
    }
}

fn print_shards(label: &str, shards: &[ShardStats]) {
    for s in shards {
        eprintln!(
            "  {label} shard {:>2}: {:>6} items in {:>10.3?}",
            s.shard, s.items, s.wall
        );
    }
}

/// `--format crosscheck`: the §6.1 bidirectional SPLLIFT ↔ A2 check over
/// every valid configuration, sharded across `--jobs` worker threads.
/// Results go to stdout (deterministic across `--jobs`), per-shard
/// timings to stderr.
fn run_crosscheck(opts: &Options, icfg: &ProgramIcfg<'_>, loaded: &Loaded) -> Result<(), String> {
    let configs = configurations(loaded)?;
    let popts = ParallelOptions {
        jobs: opts.jobs,
        max_mismatches: opts.max_mismatches,
    };
    let model = loaded.model.as_ref();
    let make_ctx = || BddConstraintContext::new(&loaded.table);
    let outcome: CrosscheckOutcome = match opts.analysis.as_str() {
        "taint" => crosscheck_parallel(
            icfg,
            &TaintAnalysis::secret_to_print(),
            make_ctx,
            model,
            &configs,
            &popts,
        ),
        "types" => crosscheck_parallel(
            icfg,
            &PossibleTypes::new(),
            make_ctx,
            model,
            &configs,
            &popts,
        ),
        "reaching-defs" => crosscheck_parallel(
            icfg,
            &ReachingDefs::new(),
            make_ctx,
            model,
            &configs,
            &popts,
        ),
        "uninit" => {
            crosscheck_parallel(icfg, &UninitVars::new(), make_ctx, model, &configs, &popts)
        }
        other => {
            return Err(format!(
                "unknown analysis `{other}` (taint|types|reaching-defs|uninit)"
            ))
        }
    };
    eprintln!(
        "crosscheck: {} configurations across {} worker thread(s), wall {:.3?}",
        configs.len(),
        outcome.jobs,
        outcome.wall
    );
    print_shards("crosscheck", &outcome.shards);
    println!(
        "crosscheck: {} analysis over {} valid configurations",
        opts.analysis,
        configs.len()
    );
    if outcome.mismatches.is_empty() {
        println!("OK: SPLLIFT and A2 agree on every configuration");
        Ok(())
    } else {
        for m in &outcome.mismatches {
            println!("MISMATCH: {m}");
        }
        let capped = if outcome.mismatches.len() == opts.max_mismatches {
            " (cap reached)"
        } else {
            ""
        };
        println!("{} mismatch(es){capped}", outcome.mismatches.len());
        Err(format!(
            "crosscheck found {} mismatch(es)",
            outcome.mismatches.len()
        ))
    }
}

/// `--format a2-bench`: times the brute-force A2 campaign sequentially
/// and sharded across `--jobs` threads, reporting the wall-clock
/// speedup on stderr. Stdout carries only the configuration count and
/// the order-independent fact checksum, which are `--jobs`-invariant.
fn run_a2_bench(opts: &Options, icfg: &ProgramIcfg<'_>, loaded: &Loaded) -> Result<(), String> {
    let configs = configurations(loaded)?;
    macro_rules! campaign {
        ($p:expr) => {{
            let p = $p;
            (a2_campaign_parallel(icfg, &p, &configs, 1), {
                a2_campaign_parallel(icfg, &p, &configs, opts.jobs)
            })
        }};
    }
    let (seq, par) = match opts.analysis.as_str() {
        "taint" => campaign!(TaintAnalysis::secret_to_print()),
        "types" => campaign!(PossibleTypes::new()),
        "reaching-defs" => campaign!(ReachingDefs::new()),
        "uninit" => campaign!(UninitVars::new()),
        other => {
            return Err(format!(
                "unknown analysis `{other}` (taint|types|reaching-defs|uninit)"
            ))
        }
    };
    if seq.facts != par.facts {
        return Err(format!(
            "a2-bench determinism violation: sequential checksum {} != parallel checksum {}",
            seq.facts, par.facts
        ));
    }
    eprintln!("a2-bench: jobs=1 wall {:.3?}", seq.wall);
    print_shards("jobs=1", &seq.shards);
    eprintln!("a2-bench: jobs={} wall {:.3?}", par.jobs, par.wall);
    print_shards(&format!("jobs={}", par.jobs), &par.shards);
    eprintln!(
        "a2-bench: speedup {:.2}x at {} threads",
        seq.wall.as_secs_f64() / par.wall.as_secs_f64().max(1e-9),
        par.jobs
    );
    println!(
        "a2-bench: {} analysis, {} valid configurations, facts checksum {}",
        opts.analysis,
        configs.len(),
        par.facts
    );
    Ok(())
}

fn emit<P, D>(
    opts: &Options,
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    problem: &P,
    model: &Option<FeatureExpr>,
) -> Result<(), String>
where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D> + Sync,
    D: Clone + Eq + Ord + Hash + std::fmt::Debug + Send + Sync,
{
    let solver_options = IdeSolverOptions {
        threads: opts.threads,
        ..IdeSolverOptions::default()
    };
    let solution = LiftedSolution::solve_with(
        problem,
        icfg,
        ctx,
        model.as_ref(),
        ModelMode::OnEdges,
        solver_options,
    );
    match opts.format.as_str() {
        "table" => {
            print!(
                "{}",
                report::constraints_table(&solution, icfg, |c| c.to_cube_string())
            );
            Ok(())
        }
        "dot" => {
            let lifted_icfg = LiftedIcfg::new(icfg);
            let lifted = LiftedProblem::new(problem, icfg, ctx, model.as_ref(), ModelMode::OnEdges);
            println!(
                "{}",
                report::lifted_supergraph_dot(
                    &lifted,
                    &lifted_icfg,
                    |s| solution.results_at(s).into_keys().collect(),
                    |c| c.to_cube_string(),
                )
            );
            Ok(())
        }
        other => Err(format!(
            "unknown format `{other}` (table|dot|leaks|crosscheck|a2-bench)"
        )),
    }
}

/// Prints each sink call whose argument may be tainted, with the exact
/// feature constraint — the headline output of the paper's Figure 1.
fn emit_leaks(
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    model: &Option<FeatureExpr>,
) -> Result<(), String> {
    use spllift::analyses::TaintFact;
    use spllift::ifds::Icfg as _;
    use spllift::ir::{Operand, StmtKind};
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, icfg, ctx, model.as_ref(), ModelMode::OnEdges);
    let mut found = 0;
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let StmtKind::Invoke { args, .. } = &icfg.program().stmt(s).kind else {
                continue;
            };
            for arg in args {
                let Operand::Local(l) = arg else { continue };
                let c = solution.constraint_of(s, &TaintFact::Local(*l));
                if !c.is_false() {
                    // Only report at *sink* calls; cheap name check.
                    let label = icfg.stmt_label(s);
                    if label.contains("print(") {
                        found += 1;
                        println!("LEAK at [{label}] iff {}", c.to_cube_string());
                    }
                }
            }
        }
    }
    if found == 0 {
        println!("no source-to-sink flows in any configuration");
    }
    Ok(())
}

/// Parses `A..B` into a half-open seed range.
fn parse_seed_range(s: &str) -> Result<(u64, u64), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("--seeds takes A..B (half-open), got `{s}`"))?;
    let parse = |v: &str| {
        v.parse::<u64>()
            .map_err(|_| format!("--seeds bound must be an integer, got `{v}`"))
    };
    let (start, end) = (parse(a)?, parse(b)?);
    if start >= end {
        return Err(format!("--seeds range `{s}` is empty"));
    }
    Ok((start, end))
}

fn parse_injected_bug(v: &str) -> Result<InjectedBug, String> {
    match v {
        "kill-call-to-return" => Ok(InjectedBug::KillAtCallToReturn),
        other => Err(format!(
            "unknown --inject-bug `{other}` (kill-call-to-return)"
        )),
    }
}

/// `spllift-cli fuzz`: the differential fuzzing campaign. Stdout is the
/// deterministic report; per-shard timings go to stderr; exit code 2 if
/// any seed failed.
fn run_fuzz(args: &[String]) -> Result<(), String> {
    let mut opts = FuzzOptions::default();
    let mut corpus_dir: Option<String> = None;
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        let mut int_flag = |what: &str| -> Result<usize, String> {
            let v = args.next().ok_or(format!("{what} needs a value"))?;
            v.parse::<usize>()
                .map_err(|_| format!("{what} needs an integer, got `{v}`"))
        };
        match arg.as_str() {
            "--seeds" => {
                let v = args.next().ok_or("--seeds needs a range A..B")?;
                (opts.seed_start, opts.seed_end) = parse_seed_range(&v)?;
            }
            "--jobs" => opts.jobs = int_flag("--jobs")?.max(1),
            "--threads" => opts.threads = int_flag("--threads")?.max(1),
            "--nfeatures" => opts.nfeatures = int_flag("--nfeatures")?,
            "--nmethods" => opts.nmethods = int_flag("--nmethods")?,
            "--mutations" => opts.mutations = int_flag("--mutations")?,
            "--max-mismatches" => opts.max_mismatches = int_flag("--max-mismatches")?.max(1),
            "--budget-secs" => {
                opts.budget = Some(std::time::Duration::from_secs(
                    int_flag("--budget-secs")? as u64
                ));
            }
            "--inject-bug" => {
                let v = args.next().ok_or("--inject-bug needs a value")?;
                opts.bug = parse_injected_bug(&v)?;
            }
            "--no-reduce" => opts.reduce_failures = false,
            "--corpus-dir" => {
                corpus_dir = Some(args.next().ok_or("--corpus-dir needs a directory")?);
            }
            other => return Err(format!("unexpected fuzz argument `{other}` (try --help)")),
        }
    }

    let report = fuzz_campaign(&opts);
    eprintln!(
        "fuzz: {} seeds across {} worker thread(s), wall {:.3?}",
        report.verdicts.len() + report.skipped.len(),
        report.jobs,
        report.wall
    );
    print_shards("fuzz", &report.shards);
    print!("{}", report.render());

    if let Some(dir) = corpus_dir {
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        for f in &report.failures {
            let path = format!("{dir}/fuzz-seed{}-{}.repro", f.seed, f.analysis);
            std::fs::write(&path, &f.reduced.repro)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("fuzz: wrote reduced repro to {path}");
        }
    }

    if report.ok() {
        Ok(())
    } else {
        let failed = report.verdicts.iter().filter(|v| !v.ok()).count();
        Err(format!("fuzz campaign found {failed} failing seed(s)"))
    }
}

/// `spllift-cli datalog`: the lifted Datalog backend. Runs the
/// declarative reaching-definitions + reachability program, prints a
/// deterministic summary (and optionally the full relation dump), and
/// with `--crosscheck` compares every fact's constraint against the
/// IDE lifting in both directions. Stdout is byte-identical for every
/// `--jobs` value.
fn run_datalog(args: &[String]) -> Result<(), String> {
    use spllift::datalog::{solve_reaching_defs, DumpDoc, EvalOptions, RelId};
    use spllift::ifds::Icfg as _;

    let mut file: Option<String> = None;
    let mut model_file: Option<String> = None;
    let mut jobs = default_jobs();
    let mut dump_relations = false;
    let mut crosscheck = false;
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a thread count")?;
                jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&j| j >= 1)
                    .ok_or(format!("--jobs needs a positive integer, got `{v}`"))?;
            }
            "--model" => model_file = Some(args.next().ok_or("--model needs a file")?),
            "--dump-relations" => dump_relations = true,
            "--crosscheck" => crosscheck = true,
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_owned()),
            other => {
                return Err(format!(
                    "unexpected datalog argument `{other}` (try --help)"
                ))
            }
        }
    }
    let opts = Options {
        file: file.ok_or("datalog needs an input (try `spllift-cli help`)")?,
        analysis: "reaching-defs".to_owned(),
        model_file,
        format: "table".to_owned(),
        jobs,
        threads: 1,
        max_mismatches: DEFAULT_MAX_MISMATCHES,
    };
    let loaded = load(&opts)?;
    if loaded.program.entry_points().is_empty() {
        return Err("no entry point: declare a method named `main`".into());
    }
    let icfg = ProgramIcfg::new(&loaded.program);
    let ctx = BddConstraintContext::new(&loaded.table);
    let model = loaded.model.as_ref();
    let sol = solve_reaching_defs(&icfg, &ctx, model, &EvalOptions { jobs })
        .map_err(|e| format!("datalog: {e}"))?;

    if dump_relations {
        print!(
            "{}",
            DumpDoc::from_solution(&sol, &ctx, &loaded.table).render()
        );
    }
    let stats = sol.stats();
    println!(
        "datalog: {} strata, {} rounds, {} derivations, {} tuples",
        stats.strata, stats.rounds, stats.derivations, stats.tuples
    );
    let program = sol.program();
    for r in 0..program.relation_count() {
        let rel = RelId(r);
        println!(
            "  {}/{}: {} tuples",
            program.relation_name(rel),
            program.arity(rel),
            sol.database().len(rel)
        );
    }
    let reachable = sol.reachable_methods();
    println!(
        "datalog: {} of {} methods reachable",
        reachable.len(),
        icfg.methods().len()
    );

    if !crosscheck {
        return Ok(());
    }
    let mode = if model.is_some() {
        ModelMode::OnEdges
    } else {
        ModelMode::Ignore
    };
    let ide = LiftedSolution::solve(&ReachingDefs::new(), &icfg, &ctx, model, mode);
    let mut facts = 0usize;
    let mut mismatches = 0usize;
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let want = ide.results_at(s);
            let got = sol.reaching_at(s);
            let mut keys: Vec<_> = want
                .keys()
                .copied()
                .chain(got.iter().map(|(f, _)| *f))
                .collect();
            keys.sort();
            keys.dedup();
            for fact in keys {
                facts += 1;
                let ide_digest = want.get(&fact).map(|c| c.semantic_digest());
                let dl_digest = sol
                    .reaching_constraint(s, &fact)
                    .map(|c| c.semantic_digest());
                if ide_digest != dl_digest {
                    mismatches += 1;
                    println!(
                        "MISMATCH at [{}] fact {:?}: ide={:?} datalog={:?}",
                        icfg.stmt_label(s),
                        fact,
                        ide_digest,
                        dl_digest
                    );
                }
            }
            let ide_reach = ide.reachability_of(s);
            let dl_reach_digest = sol.reachability_of(s).map(|c| c.semantic_digest());
            let ide_reach_digest = (!ide_reach.is_false()).then(|| ide_reach.semantic_digest());
            if dl_reach_digest != ide_reach_digest {
                mismatches += 1;
                println!(
                    "MISMATCH at [{}] reachability: ide={:?} datalog={:?}",
                    icfg.stmt_label(s),
                    ide_reach_digest,
                    dl_reach_digest
                );
            }
        }
    }
    if mismatches == 0 {
        println!("crosscheck: SPLLIFT and Datalog agree on all {facts} fact constraints");
        Ok(())
    } else {
        println!("crosscheck: {mismatches} mismatch(es) over {facts} fact constraints");
        Err(format!(
            "datalog crosscheck found {mismatches} mismatch(es)"
        ))
    }
}

/// `spllift-cli reduce`: print the repro text of a generated subject
/// (`gen:` input), or ddmin-minimize a failing `.repro` file.
fn run_reduce(args: &[String]) -> Result<(), String> {
    use spllift::benchgen::{reduce, ReduceOptions};
    use spllift::ir::text::{parse_repro, to_repro_string};
    use spllift::spl::{check_program, failure_persists, subject_for_seed};

    let mut input: Option<String> = None;
    let mut check: Option<String> = None;
    let mut mutations = 0usize;
    let mut bug = InjectedBug::None;
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = Some(args.next().ok_or("--check needs a value")?),
            "--mutations" => {
                let v = args.next().ok_or("--mutations needs a value")?;
                mutations = v
                    .parse()
                    .map_err(|_| format!("--mutations needs an integer, got `{v}`"))?;
            }
            "--inject-bug" => {
                let v = args.next().ok_or("--inject-bug needs a value")?;
                bug = parse_injected_bug(&v)?;
            }
            other if !other.starts_with('-') && input.is_none() => input = Some(other.to_owned()),
            other => return Err(format!("unexpected reduce argument `{other}` (try --help)")),
        }
    }
    let input = input.ok_or("reduce needs an input: gen:SEED:NF:NM or FILE.repro (try --help)")?;

    // gen: mode — emit the repro text of a (possibly mutated) generated
    // subject. This is the corpus-seeding tool.
    if let Some(spec) = input.strip_prefix("gen:") {
        let parts: Vec<&str> = spec.split(':').collect();
        let [seed, nf, nm] = parts.as_slice() else {
            return Err("reduce gen: takes gen:<seed>:<nfeatures>:<nmethods>".into());
        };
        let parse = |what: &str, v: &str| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("gen: {what} must be an integer, got `{v}`"))
        };
        let fopts = FuzzOptions {
            seed_start: 0,
            seed_end: 1,
            nfeatures: parse("nfeatures", nf)?,
            nmethods: parse("nmethods", nm)?,
            mutations,
            ..FuzzOptions::default()
        };
        let spl = subject_for_seed(parse("seed", seed)? as u64, &fopts);
        let repro = to_repro_string(&spl.program, &spl.table)
            .map_err(|e| format!("generated subject outside the repro subset: {e}"))?;
        print!("{repro}");
        return Ok(());
    }

    // File mode — parse, find (or take) the failing check, minimize.
    let text = std::fs::read_to_string(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let (program, table) = parse_repro(&text).map_err(|e| format!("{input}: {e}"))?;
    let features: Vec<_> = table.iter().map(|(f, _)| f).collect();
    let (analysis, dynamic) = match check.as_deref() {
        Some("interp-taint") => ("taint".to_owned(), true),
        Some("interp-uninit") => ("uninit".to_owned(), true),
        Some(name) => (name.to_owned(), false),
        None => {
            // No check named: pick the first failing one. Stand-alone
            // repro files carry no campaign seed, so the abstraction
            // differential's lattice-point stream is seeded with 0.
            let (verdicts, unpredicted) = check_program(&program, &table, &features, 0, bug, 1, 1);
            if let Some(v) = verdicts.iter().find(|v| !v.mismatches.is_empty()) {
                (v.analysis.to_owned(), false)
            } else if let Some(u) = unpredicted.first() {
                (u.analysis.to_owned(), true)
            } else {
                return Err(format!(
                    "{input} passes every check; nothing to reduce (name one with --check, or use --inject-bug)"
                ));
            }
        }
    };
    if !failure_persists(&program, &table, &features, 0, bug, &analysis, dynamic) {
        return Err(format!(
            "{input} does not fail the `{analysis}` check; nothing to reduce"
        ));
    }
    let mut oracle = |p: &spllift::ir::Program, feats: &[spllift::features::FeatureId]| {
        failure_persists(p, &table, feats, 0, bug, &analysis, dynamic)
    };
    let out = reduce(
        &program,
        &table,
        &features,
        &mut oracle,
        ReduceOptions::default(),
    );
    eprintln!(
        "reduce: {} check, {} -> {} payload stmts in {} oracle runs",
        analysis,
        spllift::benchgen::payload_stmt_count(&program),
        out.payload_stmts,
        out.oracle_runs
    );
    print!("{}", out.repro);
    Ok(())
}
