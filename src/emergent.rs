//! Emergent interfaces (Ribeiro et al., SPLASH 2010) — the paper's §7
//! motivating application: "interfaces \[that\] emerge on demand to give
//! support for specific SPL maintenance tasks and thus help developers
//! understand and manage dependencies between features."
//!
//! Given the lifted reaching-definitions solution, the emergent interface
//! of a *maintenance point* (a set of statements the developer is about
//! to change) is:
//!
//! * **provides**: definitions made *inside* the maintenance point that
//!   reach uses *outside* it — with the feature constraint under which
//!   each dependency exists,
//! * **requires**: definitions made *outside* that reach uses *inside*.
//!
//! The paper argues SPLLIFT's speed is what makes these interfaces
//! practical ("the performance improvements we obtain are very important
//! to make emergent interfaces useful in practice").

use spllift_analyses::{DefFact, ReachingDefs};
use spllift_core::{LiftedSolution, ModelMode};
use spllift_features::{BddConstraint, BddConstraintContext, FeatureExpr};
use spllift_ifds::Icfg;
use spllift_ir::{ProgramIcfg, StmtRef};
use std::collections::BTreeSet;

/// One data-flow dependency of a maintenance point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependency {
    /// The defining statement.
    pub def_site: StmtRef,
    /// The using statement.
    pub use_site: StmtRef,
    /// The feature constraint under which the definition reaches the use.
    pub constraint: BddConstraint,
}

/// The emergent interface of a maintenance point.
#[derive(Debug, Clone, Default)]
pub struct EmergentInterface {
    /// Definitions inside the point that escape to outside uses.
    pub provides: Vec<Dependency>,
    /// Outside definitions the point depends on.
    pub requires: Vec<Dependency>,
}

impl EmergentInterface {
    /// Computes the emergent interface of `maintenance_point` by running
    /// the lifted reaching-definitions analysis over the product line.
    ///
    /// `model` restricts reported dependencies to valid configurations.
    pub fn compute(
        icfg: &ProgramIcfg<'_>,
        ctx: &BddConstraintContext,
        model: Option<&FeatureExpr>,
        maintenance_point: &BTreeSet<StmtRef>,
    ) -> Self {
        let solution =
            LiftedSolution::solve(&ReachingDefs::new(), icfg, ctx, model, ModelMode::OnEdges);
        let mut out = EmergentInterface::default();
        let program = icfg.program();
        for m in icfg.methods() {
            for use_site in icfg.stmts_of(m) {
                let uses = program.stmt(use_site).kind.uses();
                if uses.is_empty() {
                    continue;
                }
                for (fact, constraint) in solution.results_at(use_site) {
                    let DefFact::Def {
                        site: def_site,
                        var,
                    } = fact
                    else {
                        continue;
                    };
                    if !uses.contains(&var) || constraint.is_false() {
                        continue;
                    }
                    let def_inside = maintenance_point.contains(&def_site);
                    let use_inside = maintenance_point.contains(&use_site);
                    let dep = Dependency {
                        def_site,
                        use_site,
                        constraint: constraint.clone(),
                    };
                    if def_inside && !use_inside {
                        out.provides.push(dep);
                    } else if !def_inside && use_inside {
                        out.requires.push(dep);
                    }
                }
            }
        }
        out.provides.sort_by_key(|d| (d.def_site, d.use_site));
        out.requires.sort_by_key(|d| (d.def_site, d.use_site));
        out
    }

    /// `true` iff the maintenance point exchanges no data flow with the
    /// rest of the program (safe to change in isolation).
    pub fn is_closed(&self) -> bool {
        self.provides.is_empty() && self.requires.is_empty()
    }

    /// Renders the interface with statement labels and cube-form
    /// constraints.
    pub fn display(&self, icfg: &ProgramIcfg<'_>) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "provides ({}):", self.provides.len());
        for d in &self.provides {
            let _ = writeln!(
                s,
                "  [{}] -> [{}]  iff {}",
                icfg.stmt_label(d.def_site),
                icfg.stmt_label(d.use_site),
                d.constraint.to_cube_string()
            );
        }
        let _ = writeln!(s, "requires ({}):", self.requires.len());
        for d in &self.requires {
            let _ = writeln!(
                s,
                "  [{}] <- [{}]  iff {}",
                icfg.stmt_label(d.use_site),
                icfg.stmt_label(d.def_site),
                d.constraint.to_cube_string()
            );
        }
        s
    }
}
