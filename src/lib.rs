//! # SPLLIFT — feature-sensitive inter-procedural static analysis
//!
//! A Rust reproduction of *“SPL^LIFT: Statically Analyzing Software Product
//! Lines in Minutes Instead of Years”* (Bodden et al., PLDI 2013).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`bdd`] — reduced ordered BDDs (the JavaBDD/BuDDy substitute),
//! * [`features`] — feature models, constraints, configurations,
//! * [`ir`] — a Jimple-like three-address IR with CFG and call graph,
//! * [`frontend`] — a mini-Java + `#ifdef` parser (the CIDE substitute),
//! * [`ifds`] — the IFDS framework and tabulation solver,
//! * [`ide`] — the IDE framework and two-phase solver,
//! * [`lift`] — the paper's contribution: automatic IFDS→IDE lifting,
//! * [`analyses`] — four off-the-shelf IFDS client analyses,
//! * [`spl`] — product derivation and the A1/A2 baselines,
//! * [`datalog`] — a lifted Datalog engine, the second analysis backend
//!   (cross-checked against the IDE lifting fact-for-fact),
//! * [`benchgen`] — deterministic benchmark product-line generators,
//! * [`json`] — the dependency-free JSON value/parser/emitter,
//! * [`server`] — the resident analysis server (`spllift-cli serve`).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for the paper's running example (Figure 1):
//! a taint analysis lifted over a three-feature product line, computing that
//! the secret leaks exactly under the constraint `¬F ∧ G ∧ ¬H`.

#![warn(missing_docs)]
pub mod emergent;

pub use spllift_analyses as analyses;
pub use spllift_bdd as bdd;
pub use spllift_benchgen as benchgen;
pub use spllift_core as lift;
pub use spllift_datalog as datalog;
pub use spllift_features as features;
pub use spllift_frontend as frontend;
pub use spllift_ide as ide;
pub use spllift_ifds as ifds;
pub use spllift_ir as ir;
pub use spllift_json as json;
pub use spllift_server as server;
pub use spllift_spl as spl;
