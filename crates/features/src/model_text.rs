//! A small line-based text format for feature models, so models can live
//! next to the product-line sources (CIDE kept them in the IDE; we keep
//! them in a file).
//!
//! ```text
//! # comment
//! root Root
//! mandatory Root Core
//! optional Root Logging
//! or Root Json Xml
//! xor Root Mysql Sqlite Postgres
//! constraint Logging implies Core
//! constraint !(Json && Xml)
//! ```
//!
//! Directives:
//!
//! * `root NAME` — exactly once, first non-comment line,
//! * `mandatory PARENT CHILD` / `optional PARENT CHILD`,
//! * `or PARENT M1 M2 …` / `xor PARENT M1 M2 …` (≥ 2 members),
//! * `constraint EXPR` — a cross-tree constraint in `#ifdef` expression
//!   syntax, plus the sugar `A implies B` and `A iff B`.

use crate::{FeatureExpr, FeatureModel, FeatureTable, GroupKind};
use std::fmt;

/// Error from [`parse_feature_model`], with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelTextError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ModelTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ModelTextError {}

/// Parses the text format described in the module docs, interning feature
/// names into `table`.
///
/// # Errors
///
/// Returns the first malformed directive with its line number.
///
/// # Example
///
/// ```
/// use spllift_features::{parse_feature_model, Configuration, FeatureTable};
/// let mut t = FeatureTable::new();
/// let m = parse_feature_model(
///     "root R\noptional R F\nconstraint F implies G\n",
///     &mut t,
/// )?;
/// let r = t.get("R").unwrap();
/// let f = t.get("F").unwrap();
/// let g = t.get("G").unwrap();
/// assert!(Configuration::from_enabled([r, f, g]).satisfies(&m.to_expr()));
/// assert!(!Configuration::from_enabled([r, f]).satisfies(&m.to_expr()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_feature_model(
    text: &str,
    table: &mut FeatureTable,
) -> Result<FeatureModel, ModelTextError> {
    let mut model: Option<FeatureModel> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |message: String| ModelTextError {
            message,
            line: lineno,
        };
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let directive = words.next().expect("non-empty line");
        if directive == "root" {
            if model.is_some() {
                return Err(err("duplicate `root` directive".into()));
            }
            let name = words
                .next()
                .ok_or_else(|| err("`root` needs a feature name".into()))?;
            if words.next().is_some() {
                return Err(err("`root` takes exactly one name".into()));
            }
            model = Some(FeatureModel::new(table.intern(name)));
            continue;
        }
        let model_ref = model
            .as_mut()
            .ok_or_else(|| err("the first directive must be `root NAME`".into()))?;
        match directive {
            "mandatory" | "optional" => {
                let parent = words
                    .next()
                    .ok_or_else(|| err(format!("`{directive}` needs PARENT CHILD")))?;
                let child = words
                    .next()
                    .ok_or_else(|| err(format!("`{directive}` needs PARENT CHILD")))?;
                if words.next().is_some() {
                    return Err(err(format!("`{directive}` takes exactly two names")));
                }
                let (p, c) = (table.intern(parent), table.intern(child));
                let result = if directive == "mandatory" {
                    model_ref.add_mandatory(p, c)
                } else {
                    model_ref.add_optional(p, c)
                };
                result.map_err(|e| err(e.to_string()))?;
            }
            "or" | "xor" => {
                let parent = words
                    .next()
                    .ok_or_else(|| err(format!("`{directive}` needs a parent")))?;
                let p = table.intern(parent);
                let members: Vec<_> = words.map(|w| table.intern(w)).collect();
                let kind = if directive == "or" {
                    GroupKind::Or
                } else {
                    GroupKind::Xor
                };
                model_ref
                    .add_group(p, kind, &members)
                    .map_err(|e| err(e.to_string()))?;
            }
            "constraint" => {
                let rest = line["constraint".len()..].trim();
                let expr = parse_constraint(rest, table)
                    .map_err(|e| err(format!("bad constraint: {e}")))?;
                model_ref.add_constraint(expr);
            }
            other => {
                return Err(err(format!(
                    "unknown directive `{other}` (expected root/mandatory/optional/or/xor/constraint)"
                )));
            }
        }
    }
    model.ok_or(ModelTextError {
        message: "empty model: missing `root NAME`".into(),
        line: 1,
    })
}

/// Constraint syntax: full `#ifdef` expressions plus the infix sugar
/// `A implies B` and `A iff B` (operands are themselves expressions).
fn parse_constraint(
    s: &str,
    table: &mut FeatureTable,
) -> Result<FeatureExpr, crate::ParseExprError> {
    if let Some((lhs, rhs)) = split_infix(s, " implies ") {
        let l = FeatureExpr::parse(lhs, table)?;
        let r = FeatureExpr::parse(rhs, table)?;
        return Ok(l.implies(r));
    }
    if let Some((lhs, rhs)) = split_infix(s, " iff ") {
        let l = FeatureExpr::parse(lhs, table)?;
        let r = FeatureExpr::parse(rhs, table)?;
        return Ok(l.iff(r));
    }
    FeatureExpr::parse(s, table)
}

fn split_infix<'a>(s: &'a str, op: &str) -> Option<(&'a str, &'a str)> {
    let pos = s.find(op)?;
    Some((&s[..pos], &s[pos + op.len()..]))
}
