use crate::config::all_configurations;
use crate::*;

fn table_abc() -> (FeatureTable, FeatureId, FeatureId, FeatureId) {
    let mut t = FeatureTable::new();
    let a = t.intern("A");
    let b = t.intern("B");
    let c = t.intern("C");
    (t, a, b, c)
}

mod expr {
    use super::*;

    #[test]
    fn parse_precedence() {
        let (mut t, a, b, c) = table_abc();
        let e = FeatureExpr::parse("A || B && C", &mut t).unwrap();
        // && binds tighter: A || (B && C)
        assert!(e.eval(|f| f == a));
        assert!(!e.eval(|f| f == b));
        assert!(e.eval(|f| f == b || f == c));
    }

    #[test]
    fn parse_single_char_synonyms() {
        let (mut t, a, b, _) = table_abc();
        let e = FeatureExpr::parse("A & !B | B & !A", &mut t).unwrap();
        assert!(e.eval(|f| f == a));
        assert!(e.eval(|f| f == b));
        assert!(!e.eval(|_| false));
        assert!(!e.eval(|_| true));
    }

    #[test]
    fn parse_constants_and_parens() {
        let mut t = FeatureTable::new();
        let e = FeatureExpr::parse("true && (false || true)", &mut t).unwrap();
        assert!(e.eval(|_| false));
        assert_eq!(e, FeatureExpr::True);
    }

    #[test]
    fn parse_errors() {
        let mut t = FeatureTable::new();
        assert!(FeatureExpr::parse("", &mut t).is_err());
        assert!(FeatureExpr::parse("A &&", &mut t).is_err());
        assert!(FeatureExpr::parse("(A", &mut t).is_err());
        assert!(FeatureExpr::parse("A B", &mut t).is_err());
        assert!(FeatureExpr::parse("1A", &mut t).is_err());
        let err = FeatureExpr::parse("A && ?", &mut t).unwrap_err();
        assert!(err.to_string().contains("byte 5"));
    }

    #[test]
    fn smart_constructors_fold_constants() {
        let (_, a, _, _) = table_abc();
        let v = FeatureExpr::var(a);
        assert_eq!(v.clone().and(FeatureExpr::True), v);
        assert_eq!(v.clone().and(FeatureExpr::False), FeatureExpr::False);
        assert_eq!(v.clone().or(FeatureExpr::False), v);
        assert_eq!(v.clone().or(FeatureExpr::True), FeatureExpr::True);
        assert_eq!(v.clone().not().not(), v);
    }

    #[test]
    fn display_round_trips_semantics() {
        let (mut t, ..) = table_abc();
        let e = FeatureExpr::parse("A && (B || !C)", &mut t).unwrap();
        let shown = e.display(&t).to_string();
        let e2 = FeatureExpr::parse(&shown, &mut t).unwrap();
        for bits in 0u64..8 {
            let cfg = Configuration::from_bits(bits, 3);
            assert_eq!(cfg.satisfies(&e), cfg.satisfies(&e2), "{shown} at {bits:b}");
        }
    }

    #[test]
    fn collect_features() {
        let (mut t, a, _, c) = table_abc();
        let e = FeatureExpr::parse("A && !C", &mut t).unwrap();
        let mut out = std::collections::BTreeSet::new();
        e.collect_features(&mut out);
        assert_eq!(out.into_iter().collect::<Vec<_>>(), vec![a, c]);
    }
}

mod config {
    use super::*;

    #[test]
    fn enable_disable() {
        let mut c = Configuration::empty();
        let f = FeatureId(70); // beyond one word
        assert!(!c.is_enabled(f));
        c.enable(f);
        assert!(c.is_enabled(f));
        assert_eq!(c.count_enabled(), 1);
        c.disable(f);
        assert!(!c.is_enabled(f));
        assert_eq!(c, Configuration::empty());
    }

    #[test]
    fn from_bits_matches_enabled_iter() {
        let c = Configuration::from_bits(0b1011, 4);
        let got: Vec<u32> = c.enabled().map(|f| f.0).collect();
        assert_eq!(got, vec![0, 1, 3]);
    }

    #[test]
    fn all_configurations_counts() {
        let universe = [FeatureId(0), FeatureId(1), FeatureId(2)];
        let configs: Vec<_> = all_configurations(&universe).collect();
        assert_eq!(configs.len(), 8);
        let unique: std::collections::HashSet<_> = configs.into_iter().collect();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn display_config() {
        let (t, a, _, c) = table_abc();
        let cfg = Configuration::from_enabled([a, c]);
        assert_eq!(cfg.display(&t).to_string(), "{A, C}");
    }
}

mod model {
    use super::*;

    /// Builds the model used throughout: root with optional F, G, H.
    fn fig1_model() -> (FeatureTable, FeatureModel, [FeatureId; 4]) {
        let mut t = FeatureTable::new();
        let root = t.intern("Root");
        let f = t.intern("F");
        let g = t.intern("G");
        let h = t.intern("H");
        let mut m = FeatureModel::new(root);
        m.add_optional(root, f).unwrap();
        m.add_optional(root, g).unwrap();
        m.add_optional(root, h).unwrap();
        (t, m, [root, f, g, h])
    }

    #[test]
    fn optional_features_unconstrained() {
        let (_, m, [root, f, g, h]) = fig1_model();
        let expr = m.to_expr();
        // All 8 combinations with root enabled are valid.
        let mut valid = 0;
        for bits in 0u64..16 {
            let cfg = Configuration::from_bits(bits, 4);
            if cfg.satisfies(&expr) {
                valid += 1;
                assert!(cfg.is_enabled(root));
            }
        }
        assert_eq!(valid, 8);
        let _ = (f, g, h);
    }

    #[test]
    fn paper_intro_feature_model() {
        // §1: under the model F ≡ G, the leak constraint ¬F∧G∧¬H is vacuous.
        let (mut t, mut m, [_, f, g, h]) = fig1_model();
        m.add_constraint_str("(F && G) || (!F && !G)", &mut t)
            .unwrap();
        let expr = m.to_expr();
        let leak = FeatureExpr::var(f)
            .not()
            .and(FeatureExpr::var(g))
            .and(FeatureExpr::var(h).not());
        for bits in 0u64..16 {
            let cfg = Configuration::from_bits(bits, 4);
            assert!(!(cfg.satisfies(&expr) && cfg.satisfies(&leak)));
        }
    }

    #[test]
    fn mandatory_biimplication() {
        let mut t = FeatureTable::new();
        let root = t.intern("Root");
        let core = t.intern("Core");
        let mut m = FeatureModel::new(root);
        m.add_mandatory(root, core).unwrap();
        let expr = m.to_expr();
        assert!(Configuration::from_enabled([root, core]).satisfies(&expr));
        assert!(!Configuration::from_enabled([root]).satisfies(&expr));
        assert!(!Configuration::from_enabled([core]).satisfies(&expr));
    }

    #[test]
    fn or_group_semantics() {
        let mut t = FeatureTable::new();
        let root = t.intern("Root");
        let x = t.intern("X");
        let y = t.intern("Y");
        let mut m = FeatureModel::new(root);
        m.add_group(root, GroupKind::Or, &[x, y]).unwrap();
        let expr = m.to_expr();
        assert!(!Configuration::from_enabled([root]).satisfies(&expr));
        assert!(Configuration::from_enabled([root, x]).satisfies(&expr));
        assert!(Configuration::from_enabled([root, y]).satisfies(&expr));
        assert!(Configuration::from_enabled([root, x, y]).satisfies(&expr));
    }

    #[test]
    fn xor_group_semantics() {
        let mut t = FeatureTable::new();
        let root = t.intern("Root");
        let x = t.intern("X");
        let y = t.intern("Y");
        let z = t.intern("Z");
        let mut m = FeatureModel::new(root);
        m.add_group(root, GroupKind::Xor, &[x, y, z]).unwrap();
        let expr = m.to_expr();
        assert!(!Configuration::from_enabled([root]).satisfies(&expr));
        assert!(Configuration::from_enabled([root, x]).satisfies(&expr));
        assert!(Configuration::from_enabled([root, z]).satisfies(&expr));
        assert!(!Configuration::from_enabled([root, x, y]).satisfies(&expr));
        assert!(!Configuration::from_enabled([root, x, y, z]).satisfies(&expr));
    }

    #[test]
    fn duplicate_parent_rejected() {
        let mut t = FeatureTable::new();
        let root = t.intern("Root");
        let a = t.intern("A");
        let b = t.intern("B");
        let mut m = FeatureModel::new(root);
        m.add_optional(root, a).unwrap();
        assert_eq!(m.add_optional(root, a), Err(ModelError::DuplicateParent(a)));
        assert_eq!(
            m.add_group(root, GroupKind::Or, &[b]),
            Err(ModelError::GroupTooSmall)
        );
    }

    #[test]
    fn features_collects_everything() {
        let (_, m, [root, f, g, h]) = fig1_model();
        let feats = m.features();
        for id in [root, f, g, h] {
            assert!(feats.contains(&id));
        }
    }
}

mod constraints {
    use super::*;

    /// Checks a context against brute-force expression evaluation.
    fn check_ctx<Ctx: ConstraintContext>(ctx: &Ctx, t: &FeatureTable, exprs: &[&str]) {
        let mut t2 = t.clone();
        for s in exprs {
            let e = FeatureExpr::parse(s, &mut t2).unwrap();
            let c = ctx.of_expr(&e);
            for bits in 0u64..(1 << t.len().min(6)) {
                let cfg = Configuration::from_bits(bits, t.len());
                assert_eq!(
                    ctx.satisfied_by(&c, &cfg),
                    cfg.satisfies(&e),
                    "expr {s} under bits {bits:b}"
                );
            }
        }
    }

    const EXPRS: &[&str] = &[
        "A",
        "!A",
        "A && B",
        "A || B",
        "!(A && B) || C",
        "A && !A",
        "A || !A",
        "(A || B) && (!A || C) && (!B || !C)",
        "true",
        "false",
    ];

    #[test]
    fn bdd_context_matches_eval() {
        let (t, ..) = table_abc();
        let ctx = BddConstraintContext::new(&t);
        check_ctx(&ctx, &t, EXPRS);
    }

    #[test]
    fn dnf_context_matches_eval() {
        let (t, ..) = table_abc();
        let ctx = DnfConstraintContext::new(&t);
        check_ctx(&ctx, &t, EXPRS);
    }

    #[test]
    fn dnf_detects_contradiction() {
        let (t, a, b, _) = table_abc();
        let ctx = DnfConstraintContext::new(&t);
        let c = ctx
            .lit(a, true)
            .and(&ctx.lit(b, true))
            .and(&ctx.lit(a, false));
        assert!(c.is_false());
        // DNF is not canonical: `a | !a` is NOT syntactically reduced to
        // true (unlike a BDD). `is_true` may under-approximate — that is
        // safe (it is only an optimization hint) and is one reason the
        // paper abandoned DNF.
        let tautology = ctx.lit(a, true).or(&ctx.lit(a, false));
        assert!(!tautology.is_false());
        assert!(!tautology.is_true());
        let bctx = BddConstraintContext::new(&t);
        assert!(bctx.lit(a, true).or(&bctx.lit(a, false)).is_true());
    }

    #[test]
    fn dnf_absorption() {
        let (t, a, b, _) = table_abc();
        let ctx = DnfConstraintContext::new(&t);
        // a | (a & b) reduces to a.
        let c = ctx
            .lit(a, true)
            .or(&ctx.lit(a, true).and(&ctx.lit(b, true)));
        assert_eq!(c, ctx.lit(a, true));
        assert_eq!(c.cube_count(), 1);
    }

    #[test]
    fn bdd_sat_count_of_model() {
        // GPL-like shape: the valid-config count comes from BDD sat_count.
        let mut t = FeatureTable::new();
        let root = t.intern("Root");
        let feats: Vec<_> = (0..5).map(|i| t.intern(&format!("F{i}"))).collect();
        let mut m = FeatureModel::new(root);
        for &f in &feats {
            m.add_optional(root, f).unwrap();
        }
        m.add_constraint(FeatureExpr::var(feats[0]).implies(FeatureExpr::var(feats[1])));
        let ctx = BddConstraintContext::new(&t);
        let c = ctx.of_expr(&m.to_expr());
        // root fixed true; F0→F1 kills 1/4 of 32: 24 valid.
        assert_eq!(ctx.sat_count(&c), 24);
    }

    #[test]
    fn of_expr_handles_negated_compounds() {
        let (t, a, b, _) = table_abc();
        let bctx = BddConstraintContext::new(&t);
        let dctx = DnfConstraintContext::new(&t);
        let e = FeatureExpr::var(a).and(FeatureExpr::var(b)).not();
        for bits in 0u64..4 {
            let cfg = Configuration::from_bits(bits, 2);
            let expected = !(cfg.is_enabled(a) && cfg.is_enabled(b));
            assert_eq!(bctx.satisfied_by(&bctx.of_expr(&e), &cfg), expected);
            assert_eq!(dctx.satisfied_by(&dctx.of_expr(&e), &cfg), expected);
        }
    }
}

mod properties {
    use super::*;
    use spllift_rng::SplitMix64;

    /// Seeded random feature expressions, depth-bounded like the old
    /// proptest strategy (`prop_recursive(4, ..)`).
    fn random_expr(rng: &mut SplitMix64, nfeatures: u32, depth: usize) -> FeatureExpr {
        if depth == 0 || rng.gen_bool(0.3) {
            return match rng.gen_range(0..4u32) {
                0 => FeatureExpr::True,
                1 => FeatureExpr::False,
                _ => FeatureExpr::Var(FeatureId(rng.gen_range(0..nfeatures))),
            };
        }
        match rng.gen_range(0..3u32) {
            0 => random_expr(rng, nfeatures, depth - 1).not(),
            1 => random_expr(rng, nfeatures, depth - 1).and(random_expr(rng, nfeatures, depth - 1)),
            _ => random_expr(rng, nfeatures, depth - 1).or(random_expr(rng, nfeatures, depth - 1)),
        }
    }

    fn table_n(n: u32) -> FeatureTable {
        let mut t = FeatureTable::new();
        for i in 0..n {
            t.intern(&format!("F{i}"));
        }
        t
    }

    /// BDD and DNF agree with direct evaluation on every configuration.
    #[test]
    fn representations_agree() {
        let mut rng = SplitMix64::seed_from_u64(0xFEA_0001);
        for _ in 0..256 {
            let e = random_expr(&mut rng, 5, 4);
            let t = table_n(5);
            let bctx = BddConstraintContext::new(&t);
            let dctx = DnfConstraintContext::new(&t);
            let bc = bctx.of_expr(&e);
            let dc = dctx.of_expr(&e);
            for bits in 0u64..32 {
                let cfg = Configuration::from_bits(bits, 5);
                let expected = cfg.satisfies(&e);
                assert_eq!(bctx.satisfied_by(&bc, &cfg), expected, "{e:?} at {bits:#b}");
                assert_eq!(dctx.satisfied_by(&dc, &cfg), expected, "{e:?} at {bits:#b}");
            }
            // is_false ⇔ no satisfying config.
            let any = (0u64..32).any(|bits| Configuration::from_bits(bits, 5).satisfies(&e));
            assert_eq!(!bc.is_false(), any, "{e:?}");
            assert_eq!(!dc.is_false(), any, "{e:?}");
        }
    }

    /// DNF `or` is idempotent after reduction (solver termination).
    #[test]
    fn dnf_join_idempotent() {
        let mut rng = SplitMix64::seed_from_u64(0xFEA_0002);
        for _ in 0..256 {
            let a = random_expr(&mut rng, 4, 4);
            let b = random_expr(&mut rng, 4, 4);
            let t = table_n(4);
            let ctx = DnfConstraintContext::new(&t);
            let ca = ctx.of_expr(&a);
            let cb = ctx.of_expr(&b);
            let j = ca.or(&cb);
            assert_eq!(j.or(&cb), j.clone(), "join of {a:?} and {b:?}");
            assert_eq!(j.or(&ca), j, "join of {a:?} and {b:?}");
        }
    }

    /// Batory translation: a configuration is valid iff it satisfies
    /// every structural rule, cross-checked on random 2-level models.
    #[test]
    fn batory_translation_sound() {
        let mut rng = SplitMix64::seed_from_u64(0xFEA_0003);
        for _ in 0..64 {
            let optional: Vec<bool> = (0..rng.gen_range(1..5usize))
                .map(|_| rng.gen_bool(0.5))
                .collect();
            let has_xor = rng.gen_bool(0.5);
            let n = optional.len() as u32;
            let mut t = FeatureTable::new();
            let root = t.intern("Root");
            let feats: Vec<_> = (0..n).map(|i| t.intern(&format!("F{i}"))).collect();
            let gx = t.intern("GX");
            let gy = t.intern("GY");
            let mut m = FeatureModel::new(root);
            for (i, &opt) in optional.iter().enumerate() {
                if opt {
                    m.add_optional(root, feats[i]).unwrap();
                } else {
                    m.add_mandatory(root, feats[i]).unwrap();
                }
            }
            let kind = if has_xor {
                GroupKind::Xor
            } else {
                GroupKind::Or
            };
            m.add_group(root, kind, &[gx, gy]).unwrap();
            let expr = m.to_expr();
            let total = t.len();
            for bits in 0u64..(1 << total) {
                let cfg = Configuration::from_bits(bits, total);
                let mut expected = cfg.is_enabled(root);
                for (i, &opt) in optional.iter().enumerate() {
                    if opt {
                        expected &= !cfg.is_enabled(feats[i]) || cfg.is_enabled(root);
                    } else {
                        expected &= cfg.is_enabled(feats[i]) == cfg.is_enabled(root);
                    }
                }
                let gx_on = cfg.is_enabled(gx);
                let gy_on = cfg.is_enabled(gy);
                let group_ok = if has_xor {
                    gx_on ^ gy_on
                } else {
                    gx_on || gy_on
                };
                expected &= cfg.is_enabled(root) == group_ok;
                assert_eq!(cfg.satisfies(&expr), expected, "bits {bits:b}");
            }
        }
    }
}

mod model_text {
    use super::*;
    use crate::parse_feature_model;

    #[test]
    fn full_format_round_trip() {
        let mut t = FeatureTable::new();
        let m = parse_feature_model(
            "# demo model\n\
             root R\n\
             mandatory R Core\n\
             optional R Log\n\
             or R Json Xml\n\
             xor R A B C\n\
             constraint Log implies Core\n\
             constraint !(Json && Xml)\n",
            &mut t,
        )
        .unwrap();
        let expr = m.to_expr();
        let ids: Vec<_> = ["R", "Core", "Log", "Json", "Xml", "A", "B", "C"]
            .iter()
            .map(|n| t.get(n).unwrap())
            .collect();
        let cfg = |on: &[usize]| Configuration::from_enabled(on.iter().map(|&i| ids[i]));
        // R, Core, Json, A is valid.
        assert!(cfg(&[0, 1, 3, 5]).satisfies(&expr));
        // Missing mandatory Core: invalid.
        assert!(!cfg(&[0, 3, 5]).satisfies(&expr));
        // Json && Xml forbidden by constraint.
        assert!(!cfg(&[0, 1, 3, 4, 5]).satisfies(&expr));
        // Two xor members: invalid.
        assert!(!cfg(&[0, 1, 3, 5, 6]).satisfies(&expr));
    }

    #[test]
    fn iff_sugar() {
        let mut t = FeatureTable::new();
        let m = parse_feature_model("root R\nconstraint A iff B\n", &mut t).unwrap();
        let expr = m.to_expr();
        let r = t.get("R").unwrap();
        let a = t.get("A").unwrap();
        let b = t.get("B").unwrap();
        assert!(Configuration::from_enabled([r, a, b]).satisfies(&expr));
        assert!(Configuration::from_enabled([r]).satisfies(&expr));
        assert!(!Configuration::from_enabled([r, a]).satisfies(&expr));
        let _ = b;
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut t = FeatureTable::new();
        let e = parse_feature_model("root R\nbogus X\n", &mut t).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown directive"));

        let e = parse_feature_model("optional R F\n", &mut t).unwrap_err();
        assert!(e.message.contains("root"));

        let e = parse_feature_model("", &mut t).unwrap_err();
        assert!(e.message.contains("empty model"));

        let e = parse_feature_model("root R\nor R OnlyOne\n", &mut t).unwrap_err();
        assert!(e.message.contains("two members"), "{e}");

        let e = parse_feature_model("root R\nroot S\n", &mut t).unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = parse_feature_model("root R\nconstraint &&\n", &mut t).unwrap_err();
        assert!(e.message.contains("bad constraint"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let mut t = FeatureTable::new();
        let m =
            parse_feature_model("\n# heading\nroot R\n\n# more\noptional R F\n", &mut t).unwrap();
        assert_eq!(m.features().len(), 2);
    }
}

mod model_roundtrip {
    use super::*;
    use crate::parse_feature_model;

    #[test]
    fn to_text_parse_roundtrip_preserves_semantics() {
        let mut t = FeatureTable::new();
        let root = t.intern("R");
        let core = t.intern("Core");
        let log = t.intern("Log");
        let x = t.intern("X");
        let y = t.intern("Y");
        let mut m = FeatureModel::new(root);
        m.add_mandatory(root, core).unwrap();
        m.add_optional(root, log).unwrap();
        m.add_group(root, GroupKind::Xor, &[x, y]).unwrap();
        m.add_constraint_str("Log && Core || !Log", &mut t).unwrap();

        let text = m.to_text(&t);
        let mut t2 = t.clone();
        let m2 = parse_feature_model(&text, &mut t2).unwrap();
        let (e1, e2) = (m.to_expr(), m2.to_expr());
        for bits in 0u64..(1 << t.len()) {
            let cfg = Configuration::from_bits(bits, t.len());
            assert_eq!(
                cfg.satisfies(&e1),
                cfg.satisfies(&e2),
                "bits {bits:b}\n{text}"
            );
        }
    }
}

mod model_roundtrip_property {
    use super::*;
    use crate::parse_feature_model;
    use spllift_rng::SplitMix64;

    /// Random two-level models survive to_text → parse semantically.
    #[test]
    fn random_models_roundtrip() {
        let mut rng = SplitMix64::seed_from_u64(0xFEA_0004);
        for _ in 0..32 {
            let kinds: Vec<u8> = (0..rng.gen_range(1..6usize))
                .map(|_| rng.gen_range(0..4u8))
                .collect();
            let group: Option<bool> = if rng.gen_bool(0.5) {
                Some(rng.gen_bool(0.5))
            } else {
                None
            };
            let mut t = FeatureTable::new();
            let root = t.intern("R");
            let mut m = FeatureModel::new(root);
            for (i, k) in kinds.iter().enumerate() {
                let f = t.intern(&format!("F{i}"));
                match k {
                    0 => m.add_mandatory(root, f).unwrap(),
                    1 => m.add_optional(root, f).unwrap(),
                    2 => {
                        m.add_optional(root, f).unwrap();
                        m.add_constraint(FeatureExpr::var(f).implies(FeatureExpr::var(root)));
                    }
                    _ => {
                        m.add_optional(root, f).unwrap();
                        let g = t.intern(&format!("X{i}"));
                        m.add_optional(root, g).unwrap();
                        m.add_constraint(FeatureExpr::var(f).and(FeatureExpr::var(g)).not());
                    }
                }
            }
            if let Some(xor) = group {
                let a = t.intern("GA");
                let b = t.intern("GB");
                let kind = if xor { GroupKind::Xor } else { GroupKind::Or };
                m.add_group(root, kind, &[a, b]).unwrap();
            }
            let text = m.to_text(&t);
            let mut t2 = t.clone();
            let m2 = parse_feature_model(&text, &mut t2).unwrap();
            let (e1, e2) = (m.to_expr(), m2.to_expr());
            let n = t.len().min(12);
            for bits in 0u64..(1 << n) {
                let cfg = Configuration::from_bits(bits, n);
                assert_eq!(
                    cfg.satisfies(&e1),
                    cfg.satisfies(&e2),
                    "bits {bits:b}\n{text}"
                );
            }
        }
    }
}

mod bdd_context_order {
    use super::*;

    #[test]
    fn with_order_is_semantically_equivalent() {
        let (t, a, b, c) = table_abc();
        let natural = BddConstraintContext::new(&t);
        let reversed = BddConstraintContext::with_order(&t, &[c, b, a]);
        let mut t2 = t.clone();
        let e = FeatureExpr::parse("(A || !B) && C", &mut t2).unwrap();
        let cn = natural.of_expr(&e);
        let cr = reversed.of_expr(&e);
        for bits in 0u64..8 {
            let cfg = Configuration::from_bits(bits, 3);
            assert_eq!(
                natural.satisfied_by(&cn, &cfg),
                reversed.satisfied_by(&cr, &cfg),
                "bits {bits:b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "order must cover every feature")]
    fn with_order_rejects_partial_orders() {
        let (t, a, _, _) = table_abc();
        let _ = BddConstraintContext::with_order(&t, &[a]);
    }
}
