//! The constraint abstraction used as SPLLIFT's IDE value domain, and its
//! primary (BDD-backed) implementation.

use crate::{AbstractionStep, Configuration, FeatureExpr, FeatureId};
use spllift_bdd::{Bdd, BddManager, VarId};
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// A Boolean feature constraint: the value domain `V` of the lifted IDE
/// problem (§3 of the paper).
///
/// The paper needs exactly conjunction, disjunction, negation (only to form
/// literals), and an `is_false` test. `Eq` must coincide with semantic
/// equivalence for the BDD implementation; the DNF implementation is allowed
/// to be coarser (syntactic), which only delays the solver's fixpoint — see
/// the ablation discussion in `DESIGN.md`.
pub trait Constraint: Clone + Eq + Hash + Debug {
    /// `self ∧ other`.
    #[must_use]
    fn and(&self, other: &Self) -> Self;
    /// `self ∨ other`.
    #[must_use]
    fn or(&self, other: &Self) -> Self;
    /// `true` iff the constraint is unsatisfiable.
    ///
    /// Must be exact: the lifted solver prunes paths on it (§4.2).
    fn is_false(&self) -> bool;
    /// `true` iff the constraint is *recognizably* a tautology.
    ///
    /// May under-approximate (return `false` for a semantic tautology);
    /// it is only used as an optimization hint. The BDD implementation is
    /// exact, the DNF one is not — one of the reasons the paper picked BDDs.
    fn is_true(&self) -> bool;
}

/// Factory and evaluator for a [`Constraint`] representation.
///
/// One context instance corresponds to one product line: it knows the
/// feature universe and how to build literals and constants.
pub trait ConstraintContext {
    /// The constraint representation this context produces.
    type C: Constraint;

    /// The constant `true`.
    fn tt(&self) -> Self::C;
    /// The constant `false`.
    fn ff(&self) -> Self::C;
    /// The literal `f` (if `positive`) or `¬f`.
    fn lit(&self, f: FeatureId, positive: bool) -> Self::C;
    /// `true` iff `config` satisfies `c`.
    fn satisfied_by(&self, c: &Self::C, config: &Configuration) -> bool;

    /// Arms a resource budget on the underlying constraint engine, if it
    /// supports one. `None` means unlimited for that resource. The
    /// default implementation (for unbudgetable representations) is a
    /// no-op.
    fn arm_budget(&self, _max_nodes: Option<u64>, _max_ops: Option<u64>) {}

    /// Removes any armed budget, e.g. before rendering the results of a
    /// solve that completed within budget.
    fn disarm_budget(&self) {}

    /// `Ok(())` if no armed budget has been exceeded, otherwise a
    /// human-readable description of the exhausted resource. Solvers
    /// poll this to abort instead of computing with garbage constraints.
    fn budget_status(&self) -> Result<(), String> {
        Ok(())
    }

    /// Applies a composition of variability-abstraction steps to `c`,
    /// left to right (see [`crate::abstraction`]).
    ///
    /// Implementations must be *weakening*: the result is entailed by
    /// `c` on every assignment. The default (for representations
    /// without quantification, like the DNF ablation context) is the
    /// identity — trivially weakening (`c ⊨ c`), it just gains no
    /// resource headroom from descending the lattice.
    fn apply_abstraction(&self, _steps: &[AbstractionStep], c: &Self::C) -> Self::C {
        c.clone()
    }

    /// Translates a feature expression to a constraint.
    fn of_expr(&self, e: &FeatureExpr) -> Self::C {
        match e {
            FeatureExpr::True => self.tt(),
            FeatureExpr::False => self.ff(),
            FeatureExpr::Var(f) => self.lit(*f, true),
            FeatureExpr::Not(inner) => match &**inner {
                // Literals negate directly; general negation is pushed
                // inwards (the lifted analysis never needs general NOT at
                // runtime, only when translating annotations).
                FeatureExpr::Var(f) => self.lit(*f, false),
                FeatureExpr::True => self.ff(),
                FeatureExpr::False => self.tt(),
                FeatureExpr::Not(e2) => self.of_expr(e2),
                FeatureExpr::And(es) => es
                    .iter()
                    .map(|e2| self.of_expr(&e2.clone().not()))
                    .fold(self.ff(), |a, b| a.or(&b)),
                FeatureExpr::Or(es) => es
                    .iter()
                    .map(|e2| self.of_expr(&e2.clone().not()))
                    .fold(self.tt(), |a, b| a.and(&b)),
            },
            FeatureExpr::And(es) => es
                .iter()
                .map(|e2| self.of_expr(e2))
                .fold(self.tt(), |a, b| a.and(&b)),
            FeatureExpr::Or(es) => es
                .iter()
                .map(|e2| self.of_expr(e2))
                .fold(self.ff(), |a, b| a.or(&b)),
        }
    }
}

/// A feature constraint backed by a reduced ordered BDD.
///
/// Equality is semantic (canonical diagrams), and [`Constraint::is_false`]
/// is constant time — the two properties §5 and §8 of the paper credit for
/// SPLLIFT's performance.
pub type BddConstraint = Bdd;

impl Constraint for Bdd {
    fn and(&self, other: &Self) -> Self {
        Bdd::and(self, other)
    }
    fn or(&self, other: &Self) -> Self {
        Bdd::or(self, other)
    }
    fn is_false(&self) -> bool {
        Bdd::is_false(self)
    }
    fn is_true(&self) -> bool {
        Bdd::is_true(self)
    }
}

/// BDD-backed [`ConstraintContext`]: maps features to BDD variables
/// (in feature-id order — the paper picks one order and keeps it).
///
/// # Example
///
/// ```
/// use spllift_features::{BddConstraintContext, Configuration, ConstraintContext, FeatureTable};
/// let mut t = FeatureTable::new();
/// let f = t.intern("F");
/// let g = t.intern("G");
/// let ctx = BddConstraintContext::new(&t);
/// let c = ctx.lit(f, false).and(&ctx.lit(g, true)); // ¬F ∧ G
/// assert!(ctx.satisfied_by(&c, &Configuration::from_enabled([g])));
/// assert!(!ctx.satisfied_by(&c, &Configuration::from_enabled([f, g])));
/// ```
#[derive(Debug, Clone)]
pub struct BddConstraintContext {
    mgr: BddManager,
    vars: HashMap<FeatureId, VarId>,
    /// Inverse mapping, indexed by `VarId`; var ids are dense.
    features_by_var: Vec<FeatureId>,
}

impl BddConstraintContext {
    /// Creates a context with one BDD variable per feature in `table`,
    /// in id order.
    pub fn new(table: &crate::FeatureTable) -> Self {
        let order: Vec<FeatureId> = table.iter().map(|(id, _)| id).collect();
        Self::with_order(table, &order)
    }

    /// Creates a context with an explicit BDD variable *order* over the
    /// features of `table` (first element = topmost variable).
    ///
    /// The paper picks one order and defers the impact of orderings to
    /// future work (§5, §8); `report -- ordering` uses this constructor to
    /// run that experiment.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the table's features.
    pub fn with_order(table: &crate::FeatureTable, order: &[FeatureId]) -> Self {
        assert_eq!(order.len(), table.len(), "order must cover every feature");
        let mgr = BddManager::new();
        let mut vars = HashMap::new();
        let mut features_by_var = Vec::new();
        for &id in order {
            let v = mgr.new_var(table.name(id));
            assert!(
                vars.insert(id, v).is_none(),
                "duplicate feature {id:?} in order"
            );
            features_by_var.push(id);
        }
        BddConstraintContext {
            mgr,
            vars,
            features_by_var,
        }
    }

    /// The underlying BDD manager.
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// The BDD variable assigned to feature `f`, if any.
    pub fn var_of(&self, f: FeatureId) -> Option<VarId> {
        self.vars.get(&f).copied()
    }

    /// Number of satisfying assignments of `c` over the full feature set.
    pub fn sat_count(&self, c: &Bdd) -> u128 {
        c.sat_count()
    }

    /// The BDD variables for `features`, skipping features unknown to
    /// this context (they cannot occur in any constraint it produced,
    /// so abstracting them is a no-op).
    fn vars_for(&self, features: &[(FeatureId, String)]) -> Vec<VarId> {
        features
            .iter()
            .filter_map(|(f, _)| self.var_of(*f))
            .collect()
    }

    /// The join transformer over the variables `vars` with proxy
    /// `d = ⋁ vars`: `τ(c) = (d ∧ ∃vars.(c ∧ d)) ∨ (¬d ∧ c[vars ↦ 0])`.
    ///
    /// Weakening on *every* assignment: if all of `vars` are off the
    /// value is exactly `c`; if any is on, `c`'s value implies the
    /// existential. (No feature-model validity assumption — this is
    /// what makes confound sound even on invalid configurations.)
    fn join_vars(&self, vars: &[VarId], c: &Bdd) -> Bdd {
        if vars.is_empty() {
            return c.clone();
        }
        let d = vars
            .iter()
            .fold(self.mgr.bottom(), |acc, &v| acc.or(&self.mgr.var_bdd(v)));
        let all_off = vars
            .iter()
            .fold(c.clone(), |acc, &v| acc.restrict(v, false));
        let any_on = c.and(&d).exists_many(vars);
        d.and(&any_on).or(&d.not().and(&all_off))
    }

    /// Applies one variability-abstraction step to `c` (see
    /// [`crate::abstraction`] for the transformer definitions and the
    /// weakening argument).
    pub fn apply_step(&self, step: &AbstractionStep, c: &Bdd) -> Bdd {
        match step {
            AbstractionStep::Project { features } => c.exists_many(&self.vars_for(features)),
            AbstractionStep::Join { features } => self.join_vars(&self.vars_for(features), c),
            AbstractionStep::Confound { members, .. } => self.join_vars(&self.vars_for(members), c),
        }
    }

    /// Translates a BDD back into a [`FeatureExpr`] by Shannon expansion
    /// on its topmost variable — the inverse direction of
    /// [`ConstraintContext::of_expr`].
    ///
    /// The result is semantically equivalent to `c` (not syntactically
    /// canonical); it lets constraint-valued analysis results be
    /// re-evaluated against [`Configuration`]s without the manager, e.g.
    /// for the analysis server's `holds_in` queries on worker threads
    /// (a `FeatureExpr` is plain data — no node store behind it).
    pub fn to_expr(&self, c: &Bdd) -> FeatureExpr {
        if c.is_true() {
            return FeatureExpr::True;
        }
        if c.is_false() {
            return FeatureExpr::False;
        }
        let v = c.support()[0];
        let f = self.features_by_var[v.0 as usize];
        let lo = self.to_expr(&c.restrict(v, false));
        let hi = self.to_expr(&c.restrict(v, true));
        let pos = match hi {
            FeatureExpr::False => FeatureExpr::False,
            FeatureExpr::True => FeatureExpr::var(f),
            hi => FeatureExpr::var(f).and(hi),
        };
        let neg = match lo {
            FeatureExpr::False => FeatureExpr::False,
            FeatureExpr::True => FeatureExpr::var(f).not(),
            lo => FeatureExpr::var(f).not().and(lo),
        };
        match (pos, neg) {
            (FeatureExpr::False, e) | (e, FeatureExpr::False) => e,
            (pos, neg) => pos.or(neg),
        }
    }
}

impl ConstraintContext for BddConstraintContext {
    type C = Bdd;

    fn tt(&self) -> Bdd {
        self.mgr.top()
    }

    fn ff(&self) -> Bdd {
        self.mgr.bottom()
    }

    fn lit(&self, f: FeatureId, positive: bool) -> Bdd {
        let var = *self
            .vars
            .get(&f)
            .unwrap_or_else(|| panic!("feature {f:?} not known to this context"));
        let v = self.mgr.var_bdd(var);
        if positive {
            v
        } else {
            v.not()
        }
    }

    fn satisfied_by(&self, c: &Bdd, config: &Configuration) -> bool {
        c.eval(|v| {
            self.features_by_var
                .get(v.0 as usize)
                .is_some_and(|f| config.is_enabled(*f))
        })
    }

    fn apply_abstraction(&self, steps: &[AbstractionStep], c: &Bdd) -> Bdd {
        steps
            .iter()
            .fold(c.clone(), |acc, s| self.apply_step(s, &acc))
    }

    fn arm_budget(&self, max_nodes: Option<u64>, max_ops: Option<u64>) {
        self.mgr
            .set_budget(spllift_bdd::BddBudget { max_nodes, max_ops });
    }

    fn disarm_budget(&self) {
        self.mgr.clear_budget();
    }

    fn budget_status(&self) -> Result<(), String> {
        self.mgr.budget_status().map_err(|e| e.to_string())
    }
}
