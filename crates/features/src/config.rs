//! Concrete feature selections (products).

use crate::{FeatureExpr, FeatureId, FeatureTable};
use std::fmt;

/// A configuration: the set of enabled features, i.e. one concrete product
/// of the product line.
///
/// Stored as a bitset over [`FeatureId`]s, so containment tests are O(1).
///
/// # Example
///
/// ```
/// use spllift_features::{Configuration, FeatureTable};
/// let mut t = FeatureTable::new();
/// let f = t.intern("F");
/// let g = t.intern("G");
/// let config = Configuration::from_enabled([g]);
/// assert!(config.is_enabled(g));
/// assert!(!config.is_enabled(f));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Configuration {
    words: Vec<u64>,
}

impl Configuration {
    /// The empty configuration (all features disabled).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a configuration from an iterator of enabled features.
    pub fn from_enabled(enabled: impl IntoIterator<Item = FeatureId>) -> Self {
        let mut c = Self::empty();
        for f in enabled {
            c.enable(f);
        }
        c
    }

    /// Builds a configuration from the low `n` bits of `bits`: feature `i`
    /// is enabled iff bit `i` is set. Handy for exhaustive enumeration.
    pub fn from_bits(bits: u64, n: usize) -> Self {
        assert!(n <= 64, "from_bits supports at most 64 features");
        let mut c = Self::empty();
        for i in 0..n {
            if bits & (1 << i) != 0 {
                c.enable(FeatureId(i as u32));
            }
        }
        c
    }

    /// Enables `f`.
    pub fn enable(&mut self, f: FeatureId) {
        let (w, b) = (f.index() / 64, f.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << b;
    }

    /// Disables `f`.
    pub fn disable(&mut self, f: FeatureId) {
        let (w, b) = (f.index() / 64, f.index() % 64);
        if w < self.words.len() {
            self.words[w] &= !(1 << b);
            while self.words.last() == Some(&0) {
                self.words.pop();
            }
        }
    }

    /// `true` iff `f` is enabled.
    pub fn is_enabled(&self, f: FeatureId) -> bool {
        let (w, b) = (f.index() / 64, f.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// `true` iff the annotation `expr` is satisfied by this configuration.
    pub fn satisfies(&self, expr: &FeatureExpr) -> bool {
        expr.eval(|f| self.is_enabled(f))
    }

    /// Iterates over enabled features in id order.
    pub fn enabled(&self) -> impl Iterator<Item = FeatureId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| FeatureId((w * 64 + b) as u32))
        })
    }

    /// Number of enabled features.
    pub fn count_enabled(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Renders using names from `table`, e.g. `{F, H}`.
    pub fn display<'a>(&'a self, table: &'a FeatureTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Configuration, &'a FeatureTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{{")?;
                for (i, feat) in self.0.enabled().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.1.name(feat))?;
                }
                write!(f, "}}")
            }
        }
        D(self, table)
    }
}

/// Splits `configs` into at most `shards` contiguous, near-equal chunks,
/// preserving order: concatenating the returned slices yields `configs`
/// exactly. At most the first `configs.len() % shards` chunks are one
/// element longer than the rest, and no chunk is empty (so fewer than
/// `shards` chunks are returned when there are fewer configurations than
/// shards).
///
/// This is the sharding rule of the parallel A2/crosscheck driver: because
/// chunks are contiguous and in order, merging per-shard results in shard
/// index order reproduces the sequential processing order regardless of
/// how the shards were scheduled.
///
/// # Panics
///
/// Panics if `shards` is zero.
///
/// # Example
///
/// ```
/// use spllift_features::{partition_configurations, Configuration};
/// let configs: Vec<_> = (0..5).map(|b| Configuration::from_bits(b, 3)).collect();
/// let parts = partition_configurations(&configs, 2);
/// assert_eq!(parts.len(), 2);
/// assert_eq!(parts[0].len(), 3);
/// assert_eq!(parts[1].len(), 2);
/// let rejoined: Vec<_> = parts.concat();
/// assert_eq!(rejoined, configs);
/// ```
pub fn partition_configurations(configs: &[Configuration], shards: usize) -> Vec<&[Configuration]> {
    partition_slice(configs, shards)
}

/// The generic form of [`partition_configurations`]: the same contiguous,
/// ordered, near-equal chunking over any item type. The fuzz-campaign
/// driver shards *seeds* with it, so seed verdicts merge back in seed
/// order under exactly the same rule the configuration shards use.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn partition_slice<T>(items: &[T], shards: usize) -> Vec<&[T]> {
    assert!(shards > 0, "cannot partition into zero shards");
    let shards = shards.min(items.len()).max(1);
    let base = items.len() / shards;
    let extra = items.len() % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push(&items[start..start + len]);
        start += len;
    }
    out
}

/// Enumerates all `2^n` configurations over the features `universe`.
///
/// The iteration order is the binary counting order over the universe, so it
/// is deterministic. Intended for the A1/A2 baselines on small feature sets;
/// panics if the universe holds more than 30 features (the enumeration would
/// be pointless at that size — use BDD `sat_count` instead).
pub fn all_configurations(universe: &[FeatureId]) -> impl Iterator<Item = Configuration> + '_ {
    assert!(
        universe.len() <= 30,
        "refusing to enumerate 2^{} configurations",
        universe.len()
    );
    (0u64..(1u64 << universe.len())).map(move |bits| {
        Configuration::from_enabled(
            universe
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, &f)| f),
        )
    })
}
