//! The generic shard-map engine behind every parallel driver in this
//! workspace.
//!
//! [`map_shards`] partitions a work-item slice into contiguous, ordered
//! shards ([`partition_slice`](crate::partition_slice)), runs a caller
//! supplied closure on each shard in its own scoped thread, and merges
//! the per-shard results **in shard index order** — so concatenating
//! them reproduces the sequential item order for every worker count.
//! That invariant is what the workspace-wide `--jobs` determinism tests
//! lean on: the A2 cross-check, the fuzz campaign, and the Datalog
//! engine's rule evaluation all fan out through this one function.
//!
//! This lives in `spllift-features` (the lowest shared crate that knows
//! about slices of work) so both `spllift-spl` and `spllift-datalog`
//! can use it without a dependency cycle; `spllift_spl::parallel`
//! re-exports everything here for backwards compatibility.

use crate::config::partition_slice;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

/// The number of worker threads to use by default: the machine's
/// available parallelism, or 1 if it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Wall-clock accounting for one shard of a parallel run.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (== merge position).
    pub shard: usize,
    /// Number of work items (configurations, fuzz seeds, or rule-eval
    /// tasks) the shard was assigned.
    pub items: usize,
    /// Wall-clock time the shard's worker spent, including its private
    /// context/solution setup.
    pub wall: Duration,
}

/// The generic shard-map engine behind every parallel driver in this
/// workspace: partitions `items` into contiguous ordered shards
/// ([`partition_slice`](crate::partition_slice)), runs `work` on each
/// shard in its own scoped thread, and returns the per-shard results
/// **in shard index order** together with per-shard wall-clock stats
/// and the worker count actually used.
///
/// Because shards are contiguous and merged in order, concatenating the
/// per-shard results reproduces the sequential item order for every
/// `jobs` value — the invariant all determinism tests in this workspace
/// lean on. `work` receives the shard index and its slice; per-worker
/// scratch (constraint contexts, lifted solutions) should be built
/// *inside* `work`.
pub fn map_shards<T, R, F>(items: &[T], jobs: usize, work: F) -> (Vec<R>, Vec<ShardStats>, usize)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let shards = partition_slice(items, jobs.max(1));
    let jobs = shards.len().max(1);
    let per_shard: Vec<(R, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(i, &chunk)| {
                let work = &work;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let result = work(i, chunk);
                    (result, t0.elapsed())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    let mut results = Vec::with_capacity(per_shard.len());
    let mut stats = Vec::with_capacity(per_shard.len());
    for (i, ((result, wall), chunk)) in per_shard.into_iter().zip(&shards).enumerate() {
        stats.push(ShardStats {
            shard: i,
            items: chunk.len(),
            wall,
        });
        results.push(result);
    }
    (results, stats, jobs)
}
