//! Feature models and their translation to propositional constraints.

use crate::{Configuration, FeatureExpr, FeatureId, FeatureTable};
use std::collections::BTreeSet;
use std::fmt;

/// How the children of a feature-group are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupKind {
    /// OR group: if the parent is selected, at least one member must be.
    Or,
    /// Exclusive-OR (alternative) group: exactly one member if the parent is
    /// selected.
    Xor,
}

#[derive(Debug, Clone)]
struct ChildEdge {
    child: FeatureId,
    mandatory: bool,
}

#[derive(Debug, Clone)]
struct Group {
    parent: FeatureId,
    kind: GroupKind,
    members: Vec<FeatureId>,
}

/// Error from feature-model construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A feature was given two parents.
    DuplicateParent(FeatureId),
    /// A group needs at least two members.
    GroupTooSmall,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateParent(id) => {
                write!(f, "feature {id:?} already has a parent")
            }
            ModelError::GroupTooSmall => write!(f, "feature group needs at least two members"),
        }
    }
}

impl std::error::Error for ModelError {}

/// A feature model: a tree of features plus cross-tree constraints.
///
/// Translated to a single propositional constraint following Batory
/// (SPLC 2005), as the paper describes in §4.1:
///
/// 1. a bi-implication between every *mandatory* feature and its parent,
/// 2. an implication from every *optional* feature to its parent,
/// 3. a bi-implication from the parent of every OR group to the disjunction
///    of its members,
/// 4. a bi-implication from the parent of every XOR group to (pairwise
///    mutual exclusion of members) ∧ (disjunction of members),
///
/// conjoined with the root feature itself and all cross-tree constraints.
///
/// # Example
///
/// ```
/// use spllift_features::{FeatureModel, FeatureTable};
///
/// let mut t = FeatureTable::new();
/// let root = t.intern("Root");
/// let f = t.intern("F");
/// let g = t.intern("G");
/// let mut model = FeatureModel::new(root);
/// model.add_optional(root, f)?;
/// model.add_optional(root, g)?;
/// // Cross-tree: F ↔ G (the paper's §1 example "F ≡ G").
/// model.add_constraint_str("(F && G) || (!F && !G)", &mut t)?;
/// let expr = model.to_expr();
/// // {Root, F, G} valid; {Root, F} invalid.
/// # use spllift_features::Configuration;
/// assert!(Configuration::from_enabled([root, f, g]).satisfies(&expr));
/// assert!(!Configuration::from_enabled([root, f]).satisfies(&expr));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FeatureModel {
    root: FeatureId,
    edges: Vec<ChildEdge>,
    groups: Vec<Group>,
    cross_tree: Vec<FeatureExpr>,
    parents: std::collections::HashMap<FeatureId, FeatureId>,
}

impl FeatureModel {
    /// Creates a model whose root feature is `root` (always selected).
    pub fn new(root: FeatureId) -> Self {
        FeatureModel {
            root,
            edges: Vec::new(),
            groups: Vec::new(),
            cross_tree: Vec::new(),
            parents: std::collections::HashMap::new(),
        }
    }

    /// A model with the given root and *no* constraints beyond `root`
    /// itself; every combination of other features is valid.
    pub fn unconstrained(root: FeatureId) -> Self {
        Self::new(root)
    }

    /// The root feature.
    pub fn root(&self) -> FeatureId {
        self.root
    }

    fn add_edge(
        &mut self,
        parent: FeatureId,
        child: FeatureId,
        mandatory: bool,
    ) -> Result<(), ModelError> {
        if self.parents.contains_key(&child) {
            return Err(ModelError::DuplicateParent(child));
        }
        self.parents.insert(child, parent);
        self.edges.push(ChildEdge { child, mandatory });
        Ok(())
    }

    /// Adds `child` as a mandatory child of `parent`.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateParent`] if `child` already has a parent.
    pub fn add_mandatory(&mut self, parent: FeatureId, child: FeatureId) -> Result<(), ModelError> {
        self.add_edge(parent, child, true)
    }

    /// Adds `child` as an optional child of `parent`.
    ///
    /// # Errors
    ///
    /// [`ModelError::DuplicateParent`] if `child` already has a parent.
    pub fn add_optional(&mut self, parent: FeatureId, child: FeatureId) -> Result<(), ModelError> {
        self.add_edge(parent, child, false)
    }

    /// Adds a feature group under `parent`.
    ///
    /// # Errors
    ///
    /// [`ModelError::GroupTooSmall`] for fewer than two members;
    /// [`ModelError::DuplicateParent`] if a member already has a parent.
    pub fn add_group(
        &mut self,
        parent: FeatureId,
        kind: GroupKind,
        members: &[FeatureId],
    ) -> Result<(), ModelError> {
        if members.len() < 2 {
            return Err(ModelError::GroupTooSmall);
        }
        for &m in members {
            if self.parents.contains_key(&m) {
                return Err(ModelError::DuplicateParent(m));
            }
        }
        for &m in members {
            self.parents.insert(m, parent);
        }
        self.groups.push(Group {
            parent,
            kind,
            members: members.to_vec(),
        });
        Ok(())
    }

    /// Adds a cross-tree constraint.
    pub fn add_constraint(&mut self, expr: FeatureExpr) {
        self.cross_tree.push(expr);
    }

    /// Parses and adds a cross-tree constraint in `#ifdef` syntax.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::ParseExprError`] from the expression parser.
    pub fn add_constraint_str(
        &mut self,
        s: &str,
        table: &mut FeatureTable,
    ) -> Result<(), crate::ParseExprError> {
        self.cross_tree.push(FeatureExpr::parse(s, table)?);
        Ok(())
    }

    /// The Batory translation: one propositional formula describing exactly
    /// the valid configurations.
    pub fn to_expr(&self) -> FeatureExpr {
        let mut acc = FeatureExpr::var(self.root);
        for e in &self.edges {
            let parent = self.parents[&e.child];
            let c = FeatureExpr::var(e.child);
            let p = FeatureExpr::var(parent);
            let clause = if e.mandatory { c.iff(p) } else { c.implies(p) };
            acc = acc.and(clause);
        }
        for g in &self.groups {
            let p = FeatureExpr::var(g.parent);
            let disj = g
                .members
                .iter()
                .map(|&m| FeatureExpr::var(m))
                .fold(FeatureExpr::False, FeatureExpr::or);
            let clause = match g.kind {
                GroupKind::Or => p.iff(disj),
                GroupKind::Xor => {
                    let mut mutex = FeatureExpr::True;
                    for (i, &a) in g.members.iter().enumerate() {
                        for &b in &g.members[i + 1..] {
                            mutex = mutex.and(FeatureExpr::var(a).and(FeatureExpr::var(b)).not());
                        }
                    }
                    p.iff(mutex.and(disj))
                }
            };
            acc = acc.and(clause);
        }
        for ct in &self.cross_tree {
            acc = acc.and(ct.clone());
        }
        acc
    }

    /// The model's OR groups as `(parent, members)` pairs, in
    /// declaration order — the candidates for the governor's *confound*
    /// abstraction (XOR groups are excluded: confounding loses their
    /// mutual-exclusion structure for no extra resource headroom).
    pub fn or_groups(&self) -> Vec<(FeatureId, Vec<FeatureId>)> {
        self.groups
            .iter()
            .filter(|g| g.kind == GroupKind::Or)
            .map(|g| (g.parent, g.members.clone()))
            .collect()
    }

    /// All features mentioned by the model (root, tree, groups,
    /// cross-tree constraints).
    pub fn features(&self) -> BTreeSet<FeatureId> {
        let mut out = BTreeSet::new();
        out.insert(self.root);
        for e in &self.edges {
            out.insert(e.child);
            out.insert(self.parents[&e.child]);
        }
        for g in &self.groups {
            out.insert(g.parent);
            out.extend(g.members.iter().copied());
        }
        for c in &self.cross_tree {
            c.collect_features(&mut out);
        }
        out
    }

    /// `true` iff `config` is a valid product of this model.
    pub fn is_valid(&self, config: &Configuration) -> bool {
        config.satisfies(&self.to_expr())
    }

    /// Serializes the model in the text format accepted by
    /// [`crate::parse_feature_model`] — `parse(to_text(m))` is equivalent
    /// to `m` (asserted by this crate's tests).
    pub fn to_text(&self, table: &FeatureTable) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "root {}", table.name(self.root));
        for e in &self.edges {
            let kw = if e.mandatory { "mandatory" } else { "optional" };
            let _ = writeln!(
                out,
                "{kw} {} {}",
                table.name(self.parents[&e.child]),
                table.name(e.child)
            );
        }
        for g in &self.groups {
            let kw = match g.kind {
                GroupKind::Or => "or",
                GroupKind::Xor => "xor",
            };
            let members: Vec<&str> = g.members.iter().map(|&m| table.name(m)).collect();
            let _ = writeln!(out, "{kw} {} {}", table.name(g.parent), members.join(" "));
        }
        for c in &self.cross_tree {
            let _ = writeln!(out, "constraint {}", c.display(table));
        }
        out
    }
}
