//! Feature models, feature expressions, configurations, and constraint
//! representations for software product lines.
//!
//! This crate is the SPLLIFT reproduction's stand-in for CIDE's feature-model
//! layer. It provides:
//!
//! * [`FeatureTable`] — an interner mapping feature names to dense
//!   [`FeatureId`]s,
//! * [`FeatureExpr`] — propositional formulas over features, as written in
//!   `#ifdef` annotations (with a parser for the `F && !G || H` syntax),
//! * [`FeatureModel`] — the usual tree of mandatory/optional features with
//!   OR/XOR groups and cross-tree constraints, translated to a single
//!   propositional constraint following Batory (SPLC 2005), exactly as the
//!   paper describes in §4.1,
//! * [`Configuration`] — a concrete feature selection, i.e. one product,
//! * [`Constraint`]/[`ConstraintContext`] — the abstract interface the
//!   SPLLIFT value domain needs (conjunction, disjunction, `is_false`),
//!   with two implementations: the BDD-backed [`BddConstraintContext`]
//!   (what the paper ships) and the DNF-based [`DnfConstraintContext`]
//!   (what the paper tried first and abandoned, kept here for the ablation
//!   benchmark).
//!
//! # Example
//!
//! ```
//! use spllift_features::{FeatureExpr, FeatureTable};
//!
//! let mut table = FeatureTable::new();
//! let expr = FeatureExpr::parse("!F && G", &mut table)?;
//! let f = table.intern("F");
//! let g = table.intern("G");
//! assert!(expr.eval(|id| id == g));
//! assert!(!expr.eval(|id| id == f));
//! # Ok::<(), spllift_features::ParseExprError>(())
//! ```

#![warn(missing_docs)]
pub mod abstraction;
mod config;
mod constraint;
mod dnf;
mod expr;
mod model;
mod model_text;
mod parallel;

pub use abstraction::{AbstractionStep, LatticePoint, NamedFeature};
pub use config::{all_configurations, partition_configurations, partition_slice, Configuration};
pub use constraint::{BddConstraint, BddConstraintContext, Constraint, ConstraintContext};
pub use dnf::{Dnf, DnfConstraintContext};
pub use expr::{FeatureExpr, FeatureId, FeatureTable, ParseExprError};
pub use model::{FeatureModel, GroupKind, ModelError};
pub use model_text::{parse_feature_model, ModelTextError};
pub use parallel::{default_jobs, map_shards, ShardStats};

#[cfg(test)]
mod tests;
