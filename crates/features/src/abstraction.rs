//! Variability abstractions: a lattice of sound, composable weakenings
//! of the feature-constraint domain (Dimovski–Brabrand–Wasowski,
//! *Variability Abstractions: Trading Precision for Speed*).
//!
//! Each [`AbstractionStep`] is a constraint transformer `τ` that is
//! *weakening*: for every constraint `c`, `c ⊨ τ(c)` — on every
//! assignment, not just the feature model's valid configurations. A
//! lifted solve whose per-statement annotations and feature model are
//! all passed through `τ` therefore over-approximates the precise
//! solve: conjunction and disjunction are monotone w.r.t. entailment,
//! so every constraint the abstracted solve reports is entailed by the
//! full-precision one (the degraded answer may claim a fact holds in
//! more configurations, never fewer — sound for may-analyses).
//!
//! The shipped transformers, most precise first over the same feature
//! set `S` (each is entailed by the previous applied to the same `c`):
//!
//! * **confound** — a feature-model OR-group `p ↔ s₁ ∨ … ∨ sₖ` is
//!   collapsed into the single literal `p`: the members are joined
//!   (below), so constraints stop distinguishing *which* member was
//!   picked while the model still ties "some member" to `p`.
//! * **join(S)** — the features of `S` become one proxy: with
//!   `d = ⋁S`, `τ(c) = (d ∧ ∃S.(c ∧ d)) ∨ (¬d ∧ c[S ↦ 0])`.
//!   Assignments with all of `S` off keep `c` exactly; assignments
//!   with any of `S` on are merged into "at least one on".
//! * **project(S)** — `τ(c) = ∃S. c`: constraints forget everything
//!   about `S`.
//!
//! A [`LatticePoint`] composes zero or more steps with two further
//! (coarsest) weakenings inherited from the PR 5 ladder: dropping the
//! feature model (`c ∧ m ⊨ c`) and collapsing every annotation to
//! *unknown* (every constraint becomes `true`, entailed by anything).
//! The three old rungs are the canonical points [`LatticePoint::full`]
//! (top), [`LatticePoint::no_model`], and
//! [`LatticePoint::constraint_true`] (bottom), and keep their exact
//! wire names.

use crate::FeatureId;
use std::collections::BTreeSet;
use std::fmt;

/// One named feature: the id (for applying the transformer) paired
/// with its display name (for stable wire/stats labels).
pub type NamedFeature = (FeatureId, String);

fn sorted(mut features: Vec<NamedFeature>) -> Vec<NamedFeature> {
    features.sort_by(|a, b| a.1.cmp(&b.1).then(a.0 .0.cmp(&b.0 .0)));
    features.dedup();
    features
}

fn name_list(features: &[NamedFeature]) -> String {
    features
        .iter()
        .map(|(_, n)| n.as_str())
        .collect::<Vec<_>>()
        .join(",")
}

/// One composable, provably weakening constraint transformer.
///
/// Steps carry the display names of the features they abstract so a
/// [`LatticePoint`]'s [`name`](LatticePoint::name) is self-contained
/// (server responses, stats keys, and bench JSON all render it without
/// access to the feature table).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AbstractionStep {
    /// Existentially quantify `features` out of every constraint.
    Project {
        /// The features forgotten, sorted by name.
        features: Vec<NamedFeature>,
    },
    /// Merge `features` into one proxy ("at least one enabled").
    Join {
        /// The features merged, sorted by name.
        features: Vec<NamedFeature>,
    },
    /// Collapse a feature-model OR-group into its parent literal by
    /// joining the members (the parent itself is untouched and remains
    /// the group's representative).
    Confound {
        /// The group's parent feature.
        parent: NamedFeature,
        /// The group members joined away, sorted by name.
        members: Vec<NamedFeature>,
    },
}

impl AbstractionStep {
    /// A project step over `features` (sorted/deduped by name).
    pub fn project(features: impl IntoIterator<Item = NamedFeature>) -> Self {
        AbstractionStep::Project {
            features: sorted(features.into_iter().collect()),
        }
    }

    /// A join step over `features` (sorted/deduped by name).
    pub fn join(features: impl IntoIterator<Item = NamedFeature>) -> Self {
        AbstractionStep::Join {
            features: sorted(features.into_iter().collect()),
        }
    }

    /// A confound step for the OR-group `parent ↔ ⋁ members`.
    pub fn confound(parent: NamedFeature, members: impl IntoIterator<Item = NamedFeature>) -> Self {
        AbstractionStep::Confound {
            parent,
            members: sorted(members.into_iter().collect()),
        }
    }

    /// The features this step abstracts away (loses precision on).
    /// A confound's parent is *not* abstracted — it survives as the
    /// group's representative literal.
    pub fn abstracted_features(&self) -> &[NamedFeature] {
        match self {
            AbstractionStep::Project { features } | AbstractionStep::Join { features } => features,
            AbstractionStep::Confound { members, .. } => members,
        }
    }

    /// Stable machine-readable rendering, e.g. `project(F,G)` or
    /// `confound(Base)`.
    pub fn name(&self) -> String {
        match self {
            AbstractionStep::Project { features } => format!("project({})", name_list(features)),
            AbstractionStep::Join { features } => format!("join({})", name_list(features)),
            AbstractionStep::Confound { parent, .. } => format!("confound({})", parent.1),
        }
    }
}

impl fmt::Display for AbstractionStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A point of the variability-abstraction lattice: a composition of
/// [`AbstractionStep`]s, optionally also dropping the feature model,
/// optionally collapsed to the bottom (every constraint `true`).
///
/// Precision order: the top is [`LatticePoint::full`] (no steps, model
/// kept); adding steps, dropping the model, or collapsing each move
/// strictly down (weaker constraints). The governor descends this
/// lattice on budget exhaustion.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LatticePoint {
    steps: Vec<AbstractionStep>,
    drop_model: bool,
    collapse: bool,
}

impl LatticePoint {
    /// The top: full SPLLIFT precision (PR 5's `full` rung).
    pub fn full() -> Self {
        LatticePoint {
            steps: Vec::new(),
            drop_model: false,
            collapse: false,
        }
    }

    /// Feature model dropped, annotations precise (the `no-model` rung).
    pub fn no_model() -> Self {
        LatticePoint {
            steps: Vec::new(),
            drop_model: true,
            collapse: false,
        }
    }

    /// The bottom: every annotation abstracted to *unknown*, every
    /// reported constraint `true` (the `constraint-true` rung).
    pub fn constraint_true() -> Self {
        LatticePoint {
            steps: Vec::new(),
            drop_model: true,
            collapse: true,
        }
    }

    /// A point applying `steps` (model kept).
    pub fn abstracted(steps: Vec<AbstractionStep>) -> Self {
        LatticePoint {
            steps,
            drop_model: false,
            collapse: false,
        }
    }

    /// The same point with the feature model additionally dropped.
    #[must_use]
    pub fn without_model(mut self) -> Self {
        self.drop_model = true;
        self
    }

    /// The composed transformer steps, applied left to right.
    pub fn steps(&self) -> &[AbstractionStep] {
        &self.steps
    }

    /// Whether the feature model is dropped at this point.
    pub fn drops_model(&self) -> bool {
        self.drop_model
    }

    /// Whether this is the bottom (constraint-true) point.
    pub fn is_collapsed(&self) -> bool {
        self.collapse
    }

    /// Whether this is the top (full-precision) point.
    pub fn is_full(&self) -> bool {
        self.steps.is_empty() && !self.drop_model && !self.collapse
    }

    /// Every feature some step abstracts away, with names.
    pub fn abstracted_features(&self) -> BTreeSet<NamedFeature> {
        self.steps
            .iter()
            .flat_map(|s| s.abstracted_features().iter().cloned())
            .collect()
    }

    /// Stable machine-readable name. The three canonical points render
    /// exactly as PR 5's rung names — `full`, `no-model`,
    /// `constraint-true` — so existing clients, goldens, and bench
    /// documents keep their vocabulary; composite points render their
    /// steps joined by `+`, e.g. `confound(Base)+project(F,G)` or
    /// `no-model+project(F,G)`.
    pub fn name(&self) -> String {
        if self.collapse {
            return "constraint-true".to_string();
        }
        let mut parts: Vec<String> = Vec::new();
        if self.drop_model {
            parts.push("no-model".to_string());
        }
        parts.extend(self.steps.iter().map(AbstractionStep::name));
        if parts.is_empty() {
            return "full".to_string();
        }
        parts.join("+")
    }
}

impl fmt::Display for LatticePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BddConstraintContext, Configuration, ConstraintContext, FeatureExpr, FeatureTable,
    };
    use spllift_bdd::Bdd;

    fn fixture() -> (FeatureTable, BddConstraintContext) {
        let mut t = FeatureTable::new();
        for n in ["A", "B", "C", "D"] {
            t.intern(n);
        }
        let ctx = BddConstraintContext::new(&t);
        (t, ctx)
    }

    fn named(t: &FeatureTable, n: &str) -> NamedFeature {
        let id = t.iter().find(|(_, name)| *name == n).unwrap().0;
        (id, n.to_string())
    }

    /// A small battery of structurally diverse constraints over A–D.
    fn samples(t: &mut FeatureTable, ctx: &BddConstraintContext) -> Vec<Bdd> {
        [
            "A",
            "!A",
            "A && B",
            "A || B",
            "(A && !B) || (C && D)",
            "(A || B) && (!C || D)",
            "((A && B) || !C) && (D || !A)",
            "!(A && B && C && D)",
        ]
        .iter()
        .map(|s| ctx.of_expr(&FeatureExpr::parse(s, t).unwrap()))
        .collect()
    }

    #[test]
    fn every_step_is_weakening_on_every_constraint() {
        let (mut t, ctx) = fixture();
        let steps = [
            AbstractionStep::project(vec![named(&t, "B")]),
            AbstractionStep::project(vec![named(&t, "A"), named(&t, "C")]),
            AbstractionStep::join(vec![named(&t, "B"), named(&t, "C")]),
            AbstractionStep::join(vec![named(&t, "A"), named(&t, "B"), named(&t, "D")]),
            AbstractionStep::confound(named(&t, "A"), vec![named(&t, "B"), named(&t, "C")]),
        ];
        for c in samples(&mut t, &ctx) {
            for step in &steps {
                let tau = ctx.apply_abstraction(std::slice::from_ref(step), &c);
                assert!(
                    c.entails(&tau),
                    "{step} must weaken: {} ⊭ {}",
                    c.to_cube_string(),
                    tau.to_cube_string()
                );
            }
            // Compositions weaken too (monotone chaining).
            let tau = ctx.apply_abstraction(&steps, &c);
            assert!(c.entails(&tau));
        }
    }

    #[test]
    fn join_is_at_least_as_precise_as_project_on_the_same_set() {
        let (mut t, ctx) = fixture();
        let set = vec![named(&t, "B"), named(&t, "C")];
        let join = AbstractionStep::join(set.clone());
        let project = AbstractionStep::project(set);
        for c in samples(&mut t, &ctx) {
            let j = ctx.apply_abstraction(std::slice::from_ref(&join), &c);
            let p = ctx.apply_abstraction(std::slice::from_ref(&project), &c);
            assert!(j.entails(&p), "join(S) ⊨ project(S) must hold");
        }
    }

    #[test]
    fn join_keeps_all_off_assignments_exact_and_merges_on_assignments() {
        let (t, ctx) = fixture();
        let (a, b, c_id) = (named(&t, "A"), named(&t, "B"), named(&t, "C"));
        // c = B ∧ ¬C: distinguishes the two joined features.
        let c = ctx.lit(b.0, true).and(&ctx.lit(c_id.0, false));
        let step = AbstractionStep::join(vec![b.clone(), c_id.clone()]);
        let tau = ctx.apply_abstraction(std::slice::from_ref(&step), &c);
        // All-off: c was false with B=C=0, stays false.
        assert!(!ctx.satisfied_by(&tau, &Configuration::from_enabled([a.0])));
        // Any-on: both B-only (where c held) and C-only (where it did
        // not) now satisfy τ(c) — the join cannot tell them apart.
        assert!(ctx.satisfied_by(&tau, &Configuration::from_enabled([b.0])));
        assert!(ctx.satisfied_by(&tau, &Configuration::from_enabled([c_id.0])));
    }

    #[test]
    fn project_forgets_exactly_the_projected_features() {
        let (t, ctx) = fixture();
        let (a, b) = (named(&t, "A"), named(&t, "B"));
        let c = ctx.lit(a.0, true).and(&ctx.lit(b.0, true));
        let step = AbstractionStep::project(vec![b]);
        let tau = ctx.apply_abstraction(std::slice::from_ref(&step), &c);
        assert_eq!(tau, ctx.lit(a.0, true));
    }

    #[test]
    fn canonical_names_match_the_pr5_rungs() {
        assert_eq!(LatticePoint::full().name(), "full");
        assert_eq!(LatticePoint::no_model().name(), "no-model");
        assert_eq!(LatticePoint::constraint_true().name(), "constraint-true");
        assert!(LatticePoint::full().is_full());
        assert!(LatticePoint::constraint_true().is_collapsed());
    }

    #[test]
    fn composite_names_are_deterministic() {
        let (t, _) = fixture();
        let p = LatticePoint::abstracted(vec![
            AbstractionStep::confound(named(&t, "A"), vec![named(&t, "C"), named(&t, "B")]),
            AbstractionStep::project(vec![named(&t, "D"), named(&t, "B")]),
        ]);
        assert_eq!(p.name(), "confound(A)+project(B,D)");
        assert_eq!(
            p.clone().without_model().name(),
            "no-model+confound(A)+project(B,D)"
        );
        assert_eq!(
            p.abstracted_features()
                .into_iter()
                .map(|(_, n)| n)
                .collect::<Vec<_>>(),
            ["B", "C", "D"]
        );
    }

    #[test]
    fn unknown_features_are_ignored_by_application() {
        let (t, ctx) = fixture();
        let a = named(&t, "A");
        let ghost = (crate::FeatureId(999), "Ghost".to_string());
        let c = ctx.lit(a.0, true);
        let step = AbstractionStep::project(vec![ghost]);
        assert_eq!(ctx.apply_abstraction(std::slice::from_ref(&step), &c), c);
    }
}
