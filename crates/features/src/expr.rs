//! Feature names and propositional feature expressions.

use std::collections::HashMap;
use std::fmt;

/// A dense identifier for an interned feature name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FeatureId(pub u32);

impl FeatureId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interner mapping feature names to [`FeatureId`]s.
///
/// # Example
///
/// ```
/// use spllift_features::FeatureTable;
/// let mut t = FeatureTable::new();
/// let f = t.intern("FEATURE_LOGGING");
/// assert_eq!(t.intern("FEATURE_LOGGING"), f);
/// assert_eq!(t.name(f), "FEATURE_LOGGING");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeatureTable {
    names: Vec<String>,
    by_name: HashMap<String, FeatureId>,
}

impl FeatureTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (stable across repeated calls).
    pub fn intern(&mut self, name: &str) -> FeatureId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = FeatureId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a name without interning.
    pub fn get(&self, name: &str) -> Option<FeatureId> {
        self.by_name.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: FeatureId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no feature has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned features in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FeatureId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (FeatureId(i as u32), n.as_str()))
    }
}

/// A propositional formula over features, as written in `#ifdef` annotations
/// and in cross-tree feature-model constraints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FeatureExpr {
    /// The constant `true` (no annotation).
    True,
    /// The constant `false`.
    False,
    /// A single feature literal.
    Var(FeatureId),
    /// Negation.
    Not(Box<FeatureExpr>),
    /// Conjunction of two or more operands.
    And(Vec<FeatureExpr>),
    /// Disjunction of two or more operands.
    Or(Vec<FeatureExpr>),
}

/// Error produced by [`FeatureExpr::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    msg: String,
    /// Byte offset of the error in the input.
    pub offset: usize,
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid feature expression at byte {}: {}",
            self.offset, self.msg
        )
    }
}

impl std::error::Error for ParseExprError {}

impl FeatureExpr {
    /// Convenience constructor for a feature literal.
    pub fn var(id: FeatureId) -> Self {
        FeatureExpr::Var(id)
    }

    /// `¬self`, with double negations collapsed.
    #[must_use]
    pub fn not(self) -> Self {
        match self {
            FeatureExpr::Not(inner) => *inner,
            FeatureExpr::True => FeatureExpr::False,
            FeatureExpr::False => FeatureExpr::True,
            other => FeatureExpr::Not(Box::new(other)),
        }
    }

    /// `self ∧ other`, flattening nested conjunctions and constants.
    #[must_use]
    pub fn and(self, other: Self) -> Self {
        match (self, other) {
            (FeatureExpr::True, e) | (e, FeatureExpr::True) => e,
            (FeatureExpr::False, _) | (_, FeatureExpr::False) => FeatureExpr::False,
            (FeatureExpr::And(mut a), FeatureExpr::And(b)) => {
                a.extend(b);
                FeatureExpr::And(a)
            }
            (FeatureExpr::And(mut a), e) => {
                a.push(e);
                FeatureExpr::And(a)
            }
            (e, FeatureExpr::And(mut b)) => {
                b.insert(0, e);
                FeatureExpr::And(b)
            }
            (a, b) => FeatureExpr::And(vec![a, b]),
        }
    }

    /// `self ∨ other`, flattening nested disjunctions and constants.
    #[must_use]
    pub fn or(self, other: Self) -> Self {
        match (self, other) {
            (FeatureExpr::False, e) | (e, FeatureExpr::False) => e,
            (FeatureExpr::True, _) | (_, FeatureExpr::True) => FeatureExpr::True,
            (FeatureExpr::Or(mut a), FeatureExpr::Or(b)) => {
                a.extend(b);
                FeatureExpr::Or(a)
            }
            (FeatureExpr::Or(mut a), e) => {
                a.push(e);
                FeatureExpr::Or(a)
            }
            (e, FeatureExpr::Or(mut b)) => {
                b.insert(0, e);
                FeatureExpr::Or(b)
            }
            (a, b) => FeatureExpr::Or(vec![a, b]),
        }
    }

    /// `self → other`.
    #[must_use]
    pub fn implies(self, other: Self) -> Self {
        self.not().or(other)
    }

    /// `self ↔ other`.
    #[must_use]
    pub fn iff(self, other: Self) -> Self {
        self.clone().implies(other.clone()).and(other.implies(self))
    }

    /// Evaluates under a truth assignment for features.
    pub fn eval(&self, enabled: impl Fn(FeatureId) -> bool + Copy) -> bool {
        match self {
            FeatureExpr::True => true,
            FeatureExpr::False => false,
            FeatureExpr::Var(f) => enabled(*f),
            FeatureExpr::Not(e) => !e.eval(enabled),
            FeatureExpr::And(es) => es.iter().all(|e| e.eval(enabled)),
            FeatureExpr::Or(es) => es.iter().any(|e| e.eval(enabled)),
        }
    }

    /// Collects the features mentioned in this expression into `out`.
    pub fn collect_features(&self, out: &mut std::collections::BTreeSet<FeatureId>) {
        match self {
            FeatureExpr::True | FeatureExpr::False => {}
            FeatureExpr::Var(f) => {
                out.insert(*f);
            }
            FeatureExpr::Not(e) => e.collect_features(out),
            FeatureExpr::And(es) | FeatureExpr::Or(es) => {
                for e in es {
                    e.collect_features(out);
                }
            }
        }
    }

    /// Parses the `#ifdef` expression syntax: identifiers, `!`, `&&`, `||`,
    /// parentheses, and the constants `true`/`false`. `&` and `|` are
    /// accepted as synonyms. Precedence: `!` > `&&` > `||`.
    ///
    /// Feature names are interned into `table`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] on malformed input, with the byte offset
    /// of the first offending token.
    ///
    /// # Example
    ///
    /// ```
    /// use spllift_features::{FeatureExpr, FeatureTable};
    /// let mut t = FeatureTable::new();
    /// let e = FeatureExpr::parse("A && (B || !C)", &mut t)?;
    /// let a = t.get("A").unwrap();
    /// assert!(e.eval(|f| f == a)); // A on, B/C off: A && (false || !false)
    /// # Ok::<(), spllift_features::ParseExprError>(())
    /// ```
    pub fn parse(input: &str, table: &mut FeatureTable) -> Result<Self, ParseExprError> {
        let mut p = ExprParser {
            input,
            pos: 0,
            table,
        };
        let e = p.parse_or()?;
        p.skip_ws();
        if p.pos != input.len() {
            return Err(p.err("trailing input"));
        }
        Ok(e)
    }

    /// Renders the expression using feature names from `table`.
    pub fn display<'a>(&'a self, table: &'a FeatureTable) -> impl fmt::Display + 'a {
        ExprDisplay { expr: self, table }
    }
}

struct ExprDisplay<'a> {
    expr: &'a FeatureExpr,
    table: &'a FeatureTable,
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &FeatureExpr, t: &FeatureTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                FeatureExpr::True => write!(f, "true"),
                FeatureExpr::False => write!(f, "false"),
                FeatureExpr::Var(v) => write!(f, "{}", t.name(*v)),
                FeatureExpr::Not(inner) => {
                    write!(f, "!")?;
                    match **inner {
                        FeatureExpr::Var(_) | FeatureExpr::True | FeatureExpr::False => {
                            go(inner, t, f)
                        }
                        _ => {
                            write!(f, "(")?;
                            go(inner, t, f)?;
                            write!(f, ")")
                        }
                    }
                }
                FeatureExpr::And(es) => {
                    write!(f, "(")?;
                    for (i, e) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, " && ")?;
                        }
                        go(e, t, f)?;
                    }
                    write!(f, ")")
                }
                FeatureExpr::Or(es) => {
                    write!(f, "(")?;
                    for (i, e) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, " || ")?;
                        }
                        go(e, t, f)?;
                    }
                    write!(f, ")")
                }
            }
        }
        go(self.expr, self.table, f)
    }
}

struct ExprParser<'a> {
    input: &'a str,
    pos: usize,
    table: &'a mut FeatureTable,
}

impl ExprParser<'_> {
    fn err(&self, msg: &str) -> ParseExprError {
        ParseExprError {
            msg: msg.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<FeatureExpr, ParseExprError> {
        let mut e = self.parse_and()?;
        loop {
            if self.eat("||") || self.peek_single('|') {
                let rhs = self.parse_and()?;
                e = e.or(rhs);
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_and(&mut self) -> Result<FeatureExpr, ParseExprError> {
        let mut e = self.parse_unary()?;
        loop {
            if self.eat("&&") || self.peek_single('&') {
                let rhs = self.parse_unary()?;
                e = e.and(rhs);
            } else {
                return Ok(e);
            }
        }
    }

    /// Consumes a lone `c` that is not doubled (for `&`/`|` synonyms).
    fn peek_single(&mut self, c: char) -> bool {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        if rest.starts_with(c) && !rest.starts_with(&format!("{c}{c}")) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn parse_unary(&mut self) -> Result<FeatureExpr, ParseExprError> {
        if self.eat("!") {
            return Ok(self.parse_unary()?.not());
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<FeatureExpr, ParseExprError> {
        self.skip_ws();
        if self.eat("(") {
            let e = self.parse_or()?;
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(e);
        }
        let rest = &self.input[self.pos..];
        let len = rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        if len == 0 {
            return Err(self.err("expected feature name, '!', or '('"));
        }
        let ident = &rest[..len];
        if ident.starts_with(|c: char| c.is_ascii_digit()) {
            return Err(self.err("feature names must not start with a digit"));
        }
        self.pos += len;
        Ok(match ident {
            "true" => FeatureExpr::True,
            "false" => FeatureExpr::False,
            _ => FeatureExpr::Var(self.table.intern(ident)),
        })
    }
}
