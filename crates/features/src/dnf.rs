//! A hand-written disjunctive-normal-form constraint representation.
//!
//! The paper reports (§5, §7) that the authors *first* implemented feature
//! constraints as a hand-written DNF data structure and abandoned it for
//! BDDs because "others do not scale nearly as well for the Boolean
//! operations we require". We keep a DNF implementation so that the
//! ablation benchmark (`benches/ablation_repr.rs`) can reproduce that
//! finding.
//!
//! A constraint is a set of *cubes*; a cube is a conjunction of literals
//! stored as two bitmasks (positive / negative occurrences) over at most
//! 128 features. The representation is kept *reduced* under cube
//! subsumption (absorption), which makes syntactic equality a usable — if
//! semantically incomplete — equivalence check: semantically equal
//! constraints may compare unequal, which only costs the solver extra
//! propagation, never soundness.

use crate::{Configuration, Constraint, ConstraintContext, FeatureId};
use std::fmt;

/// One conjunction of literals over features `0..=127`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Cube {
    pos: u128,
    neg: u128,
}

impl Cube {
    const TOP: Cube = Cube { pos: 0, neg: 0 };

    fn contradictory(self) -> bool {
        self.pos & self.neg != 0
    }

    /// Conjunction of two cubes, `None` if contradictory.
    fn and(self, other: Cube) -> Option<Cube> {
        let c = Cube {
            pos: self.pos | other.pos,
            neg: self.neg | other.neg,
        };
        (!c.contradictory()).then_some(c)
    }

    /// `self` subsumes `other` iff `self`'s literals ⊆ `other`'s
    /// (then `other → self` and `other` is redundant in a disjunction
    /// containing `self`).
    fn subsumes(self, other: Cube) -> bool {
        self.pos & !other.pos == 0 && self.neg & !other.neg == 0
    }

    fn satisfied_by(self, config: &Configuration) -> bool {
        let enabled = |mask: u128, want: bool| {
            (0..128).all(|i| {
                if mask & (1 << i) == 0 {
                    true
                } else {
                    config.is_enabled(FeatureId(i)) == want
                }
            })
        };
        enabled(self.pos, true) && enabled(self.neg, false)
    }
}

/// A feature constraint in reduced disjunctive normal form.
///
/// Implements [`Constraint`] so that the SPLLIFT lifting can be
/// instantiated with it in place of BDDs for the representation ablation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Dnf {
    /// Sorted, subsumption-reduced cube set. Empty set = `false`;
    /// the single empty cube = `true`.
    cubes: Vec<Cube>,
}

impl Dnf {
    fn tt() -> Self {
        Dnf {
            cubes: vec![Cube::TOP],
        }
    }

    fn ff() -> Self {
        Dnf { cubes: Vec::new() }
    }

    fn lit(f: FeatureId, positive: bool) -> Self {
        assert!(
            f.index() < 128,
            "DNF constraints support at most 128 features"
        );
        let bit = 1u128 << f.index();
        let cube = if positive {
            Cube { pos: bit, neg: 0 }
        } else {
            Cube { pos: 0, neg: bit }
        };
        Dnf { cubes: vec![cube] }
    }

    /// Normalizes: sorts, dedups, and removes subsumed cubes.
    fn reduce(mut cubes: Vec<Cube>) -> Self {
        cubes.sort();
        cubes.dedup();
        let mut keep: Vec<Cube> = Vec::with_capacity(cubes.len());
        'outer: for c in cubes {
            debug_assert!(!c.contradictory());
            for k in &keep {
                if k.subsumes(c) {
                    continue 'outer;
                }
            }
            keep.retain(|k| !c.subsumes(*k));
            keep.push(c);
        }
        keep.sort();
        Dnf { cubes: keep }
    }

    /// Number of cubes (diagnostic; grows where a BDD would stay small).
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// `true` iff `config` satisfies this constraint.
    pub fn satisfied_by(&self, config: &Configuration) -> bool {
        self.cubes.iter().any(|c| c.satisfied_by(config))
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "false");
        }
        if self.cubes == [Cube::TOP] {
            return write!(f, "true");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "(")?;
            let mut first = true;
            for b in 0..128 {
                if c.pos & (1 << b) != 0 {
                    if !first {
                        write!(f, " & ")?;
                    }
                    write!(f, "f{b}")?;
                    first = false;
                }
                if c.neg & (1 << b) != 0 {
                    if !first {
                        write!(f, " & ")?;
                    }
                    write!(f, "!f{b}")?;
                    first = false;
                }
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl Constraint for Dnf {
    fn and(&self, other: &Self) -> Self {
        let mut cubes = Vec::with_capacity(self.cubes.len() * other.cubes.len());
        for &a in &self.cubes {
            for &b in &other.cubes {
                if let Some(c) = a.and(b) {
                    cubes.push(c);
                }
            }
        }
        Dnf::reduce(cubes)
    }

    fn or(&self, other: &Self) -> Self {
        let mut cubes = self.cubes.clone();
        cubes.extend_from_slice(&other.cubes);
        Dnf::reduce(cubes)
    }

    fn is_false(&self) -> bool {
        self.cubes.is_empty()
    }

    fn is_true(&self) -> bool {
        self.cubes == [Cube::TOP]
    }
}

/// [`ConstraintContext`] producing [`Dnf`] constraints.
///
/// # Example
///
/// ```
/// use spllift_features::{Configuration, ConstraintContext, DnfConstraintContext, FeatureTable};
/// use spllift_features::Constraint as _;
/// let mut t = FeatureTable::new();
/// let f = t.intern("F");
/// let ctx = DnfConstraintContext::new(&t);
/// let c = ctx.lit(f, true).and(&ctx.lit(f, false));
/// assert!(c.is_false());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DnfConstraintContext {
    _priv: (),
}

impl DnfConstraintContext {
    /// Creates a context for the features of `table` (at most 128).
    pub fn new(table: &crate::FeatureTable) -> Self {
        assert!(
            table.len() <= 128,
            "DNF constraints support at most 128 features"
        );
        DnfConstraintContext { _priv: () }
    }
}

impl ConstraintContext for DnfConstraintContext {
    type C = Dnf;

    fn tt(&self) -> Dnf {
        Dnf::tt()
    }

    fn ff(&self) -> Dnf {
        Dnf::ff()
    }

    fn lit(&self, f: FeatureId, positive: bool) -> Dnf {
        Dnf::lit(f, positive)
    }

    fn satisfied_by(&self, c: &Dnf, config: &Configuration) -> bool {
        c.satisfied_by(config)
    }
}
