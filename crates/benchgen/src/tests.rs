use crate::{subject_by_name, subjects, GeneratedSpl};
use spllift_ifds::Icfg as _;

#[test]
fn all_subjects_generate_and_parse() {
    for spec in subjects() {
        let spl = GeneratedSpl::generate(spec);
        assert!(spl.program.check().is_ok(), "{}", spec.name);
        assert!(!spl.source.is_empty());
        assert!(spl.loc > 0);
    }
}

#[test]
fn generation_is_deterministic() {
    let spec = subject_by_name("mm08").unwrap();
    let a = GeneratedSpl::generate(spec);
    let b = GeneratedSpl::generate(spec);
    assert_eq!(a.source, b.source);
    assert_eq!(a.program, b.program);
}

#[test]
fn loc_is_near_target() {
    for spec in subjects() {
        let spl = GeneratedSpl::generate(spec);
        let ratio = spl.loc as f64 / spec.loc_target as f64;
        assert!(
            (0.7..1.6).contains(&ratio),
            "{}: loc {} vs target {}",
            spec.name,
            spl.loc,
            spec.loc_target
        );
    }
}

#[test]
fn reachable_feature_counts_match_table1() {
    for spec in subjects() {
        let spl = GeneratedSpl::generate(spec);
        let icfg = spl.icfg();
        let reachable = spl.program.reachable_features(icfg.call_graph());
        assert_eq!(
            reachable.len(),
            spec.reachable_features,
            "{}: reachable features",
            spec.name
        );
        // Reachable annotations use exactly the F* features.
        for f in &reachable {
            assert!(spl.reachable.contains(f), "{}: {f:?}", spec.name);
        }
        // Total features (excluding the synthetic root).
        let total = spl.table.len() - 1;
        assert_eq!(total, spec.total_features, "{}: total features", spec.name);
    }
}

#[test]
fn valid_config_counts_match_table1() {
    for spec in subjects() {
        let spl = GeneratedSpl::generate(spec);
        let counted = spl.count_valid_configs();
        if let Some(expected) = spec.paper_valid_configs {
            assert_eq!(counted, expected, "{}", spec.name);
        } else {
            // BerkeleyDB: the paper says "unknown"; our BDD counts it.
            assert_eq!(counted, 650_280_960, "{}", spec.name);
        }
    }
}

#[test]
fn enumerated_configs_match_bdd_count() {
    for name in ["GPL", "MM08", "Lampiro"] {
        let spl = GeneratedSpl::generate(subject_by_name(name).unwrap());
        let configs = spl.valid_configurations();
        assert_eq!(configs.len() as u128, spl.count_valid_configs(), "{name}");
        // Every enumerated configuration really satisfies the model.
        let expr = spl.model_expr();
        assert!(configs.iter().all(|c| c.satisfies(&expr)));
    }
}

#[test]
fn dead_features_are_unreachable() {
    let spl = GeneratedSpl::generate(subject_by_name("Lampiro").unwrap());
    let icfg = spl.icfg();
    // Dead classes exist but their methods are not in the call graph.
    let dead = spl.program.find_method("Dead0.unused");
    assert!(dead.is_some());
    assert!(!icfg.call_graph().is_reachable(dead.unwrap()));
    // All 20 features appear somewhere; only 2 reachable.
    assert_eq!(spl.program.annotated_features().len(), 20);
}

#[test]
fn subjects_have_interprocedural_structure() {
    let spl = GeneratedSpl::generate(subject_by_name("GPL").unwrap());
    let icfg = spl.icfg();
    let methods = icfg.methods();
    assert!(methods.len() > 10, "enough reachable methods");
    let call_sites: usize = methods.iter().map(|&m| icfg.calls_in(m).len()).sum();
    assert!(call_sites > 20, "enough call sites, got {call_sites}");
}

#[test]
fn extrapolation_configs_are_full_and_empty() {
    let spl = GeneratedSpl::generate(subject_by_name("MM08").unwrap());
    let [full, empty] = spl.extrapolation_configs();
    assert!(spl.reachable.iter().all(|&f| full.is_enabled(f)));
    assert!(spl.reachable.iter().all(|&f| !empty.is_enabled(f)));
    assert!(full.is_enabled(spl.root) && empty.is_enabled(spl.root));
}

#[test]
fn subject_lookup() {
    assert!(subject_by_name("berkeleydb").is_some());
    assert!(subject_by_name("nope").is_none());
}

#[test]
fn chain_model_has_linear_config_count() {
    // fᵢ₊₁ → fᵢ: valid configurations are exactly the n+1 prefixes.
    for n in [1usize, 5, 20, 99] {
        let spec = crate::parse_subject_spec(&format!("synthetic:{n}:400:7:model=chain")).unwrap();
        let spl = GeneratedSpl::generate(spec);
        assert_eq!(spl.count_valid_configs(), n as u128 + 1, "n={n}");
    }
}

#[test]
fn groups_model_generates_and_constrains() {
    let spec = crate::parse_subject_spec("synthetic:30:600:11:model=groups").unwrap();
    let spl = GeneratedSpl::generate(spec);
    let counted = spl.count_valid_configs();
    // Strictly constrained below 2^30, but far from degenerate.
    assert!(counted < 1u128 << 30, "counted {counted}");
    assert!(counted > 1_000, "counted {counted}");
    assert!(spl.program.check().is_ok());
}

#[test]
fn call_depth_produces_deep_chain() {
    let spec = crate::parse_subject_spec("synthetic:8:400:3:depth=12").unwrap();
    let spl = GeneratedSpl::generate(spec);
    let icfg = spl.icfg();
    // Every link of the D0 → … → D11 chain is present and reachable.
    for d in 0..12 {
        let m = spl
            .program
            .find_method(&format!("D{d}.step"))
            .unwrap_or_else(|| panic!("missing D{d}.step"));
        assert!(icfg.call_graph().is_reachable(m), "D{d}.step unreachable");
    }
    assert!(spl.program.find_method("D12.step").is_none());
}

#[test]
fn shaped_generation_is_deterministic() {
    let spec = crate::parse_subject_spec("synthetic:40:2000:5:model=groups:depth=6").unwrap();
    let a = GeneratedSpl::generate(spec);
    let b = GeneratedSpl::generate(spec);
    assert_eq!(a.source, b.source);
    assert_eq!(a.program, b.program);
}

#[test]
fn subject_grammar_round_trips_and_rejects() {
    use crate::parse_subject_spec as p;
    // Named subjects, case-insensitive.
    assert_eq!(p("BerkeleyDB").unwrap().name, "BerkeleyDB");
    assert_eq!(p("mm08").unwrap().name, "MM08");
    // Plain synthetic defaults to the free model, no call chain.
    let s = p("synthetic:6:400:42").unwrap();
    assert_eq!(s.model_shape, crate::ModelShape::Free);
    assert_eq!(s.call_depth, None);
    assert_eq!(s.paper_valid_configs, Some(64));
    // Clauses in either order.
    let s = p("synthetic:6:400:42:depth=3:model=chain").unwrap();
    assert_eq!(s.model_shape, crate::ModelShape::Chain);
    assert_eq!(s.call_depth, Some(3));
    // Rejections: unknown name, bad arity, bad clause, duplicates, limits.
    assert!(p("nope").is_err());
    assert!(p("synthetic:6:400").is_err());
    assert!(p("synthetic:6:400:42:model=weird").is_err());
    assert!(p("synthetic:6:400:42:model=free:model=chain").is_err());
    assert!(p("synthetic:0:400:42").is_err());
    assert!(p("synthetic:257:400:42").is_err());
    // 128+ features are allowed (the config count saturates to "beyond
    // u128" = None); the lattice-degradation experiment relies on it.
    let big = p("synthetic:128:900:7:model=groups").unwrap();
    assert_eq!(big.total_features, 128);
    assert_eq!(big.paper_valid_configs, None);
    assert!(p("synthetic:6:400:42:depth=0").is_err());
}

#[test]
fn committed_scale_subject_is_paper_scale() {
    // The scaled subject in the committed BENCH_solver.json baseline
    // (see its provenance block): ~99 features at >10k statements —
    // BerkeleyDB-magnitude feature count on a program an order of
    // magnitude larger than the Table 1 subjects. The chain model keeps
    // the valid-config count enumerable (exactly n+1 = 100) and the
    // model BDD linear, so the subject stays solvable in CI time.
    let spec = crate::parse_subject_spec("synthetic:99:12000:71:model=chain:depth=8").unwrap();
    let spl = GeneratedSpl::generate(spec);
    let stmts: usize = spl
        .program
        .methods()
        .iter()
        .filter_map(|m| m.body.as_ref())
        .map(|b| b.stmts.len())
        .sum();
    assert!(
        stmts >= 10_000,
        "want a 10k+-statement subject, got {stmts}"
    );
    assert_eq!(spl.reachable.len(), 99);
    assert_eq!(spl.count_valid_configs(), 100);
}
