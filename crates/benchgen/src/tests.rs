use crate::{subject_by_name, subjects, GeneratedSpl};
use spllift_ifds::Icfg as _;

#[test]
fn all_subjects_generate_and_parse() {
    for spec in subjects() {
        let spl = GeneratedSpl::generate(spec);
        assert!(spl.program.check().is_ok(), "{}", spec.name);
        assert!(!spl.source.is_empty());
        assert!(spl.loc > 0);
    }
}

#[test]
fn generation_is_deterministic() {
    let spec = subject_by_name("mm08").unwrap();
    let a = GeneratedSpl::generate(spec);
    let b = GeneratedSpl::generate(spec);
    assert_eq!(a.source, b.source);
    assert_eq!(a.program, b.program);
}

#[test]
fn loc_is_near_target() {
    for spec in subjects() {
        let spl = GeneratedSpl::generate(spec);
        let ratio = spl.loc as f64 / spec.loc_target as f64;
        assert!(
            (0.7..1.6).contains(&ratio),
            "{}: loc {} vs target {}",
            spec.name,
            spl.loc,
            spec.loc_target
        );
    }
}

#[test]
fn reachable_feature_counts_match_table1() {
    for spec in subjects() {
        let spl = GeneratedSpl::generate(spec);
        let icfg = spl.icfg();
        let reachable = spl.program.reachable_features(icfg.call_graph());
        assert_eq!(
            reachable.len(),
            spec.reachable_features,
            "{}: reachable features",
            spec.name
        );
        // Reachable annotations use exactly the F* features.
        for f in &reachable {
            assert!(spl.reachable.contains(f), "{}: {f:?}", spec.name);
        }
        // Total features (excluding the synthetic root).
        let total = spl.table.len() - 1;
        assert_eq!(total, spec.total_features, "{}: total features", spec.name);
    }
}

#[test]
fn valid_config_counts_match_table1() {
    for spec in subjects() {
        let spl = GeneratedSpl::generate(spec);
        let counted = spl.count_valid_configs();
        if let Some(expected) = spec.paper_valid_configs {
            assert_eq!(counted, expected, "{}", spec.name);
        } else {
            // BerkeleyDB: the paper says "unknown"; our BDD counts it.
            assert_eq!(counted, 650_280_960, "{}", spec.name);
        }
    }
}

#[test]
fn enumerated_configs_match_bdd_count() {
    for name in ["GPL", "MM08", "Lampiro"] {
        let spl = GeneratedSpl::generate(subject_by_name(name).unwrap());
        let configs = spl.valid_configurations();
        assert_eq!(configs.len() as u128, spl.count_valid_configs(), "{name}");
        // Every enumerated configuration really satisfies the model.
        let expr = spl.model_expr();
        assert!(configs.iter().all(|c| c.satisfies(&expr)));
    }
}

#[test]
fn dead_features_are_unreachable() {
    let spl = GeneratedSpl::generate(subject_by_name("Lampiro").unwrap());
    let icfg = spl.icfg();
    // Dead classes exist but their methods are not in the call graph.
    let dead = spl.program.find_method("Dead0.unused");
    assert!(dead.is_some());
    assert!(!icfg.call_graph().is_reachable(dead.unwrap()));
    // All 20 features appear somewhere; only 2 reachable.
    assert_eq!(spl.program.annotated_features().len(), 20);
}

#[test]
fn subjects_have_interprocedural_structure() {
    let spl = GeneratedSpl::generate(subject_by_name("GPL").unwrap());
    let icfg = spl.icfg();
    let methods = icfg.methods();
    assert!(methods.len() > 10, "enough reachable methods");
    let call_sites: usize = methods.iter().map(|&m| icfg.calls_in(m).len()).sum();
    assert!(call_sites > 20, "enough call sites, got {call_sites}");
}

#[test]
fn extrapolation_configs_are_full_and_empty() {
    let spl = GeneratedSpl::generate(subject_by_name("MM08").unwrap());
    let [full, empty] = spl.extrapolation_configs();
    assert!(spl.reachable.iter().all(|&f| full.is_enabled(f)));
    assert!(spl.reachable.iter().all(|&f| !empty.is_enabled(f)));
    assert!(full.is_enabled(spl.root) && empty.is_enabled(spl.root));
}

#[test]
fn subject_lookup() {
    assert!(subject_by_name("berkeleydb").is_some());
    assert!(subject_by_name("nope").is_none());
}
