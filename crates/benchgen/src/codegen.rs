//! Seeded mini-Java source generation.

use crate::SubjectSpec;
use spllift_features::{FeatureId, FeatureTable};
use spllift_rng::SplitMix64;
use std::fmt::Write as _;

/// Tunables of the code generator (fixed defaults match the subjects).
#[derive(Debug, Clone, Copy)]
pub struct CodegenParams {
    /// Helpers generated per module class.
    pub helpers_per_class: usize,
    /// Statements per helper body.
    pub stmts_per_helper: usize,
    /// Probability (percent) that a statement group is `#ifdef`-wrapped.
    pub ifdef_percent: u32,
    /// Length of the explicit `D0 → D1 → …` call chain appended after
    /// the module classes (0 = none). Overridden per subject by
    /// [`SubjectSpec::call_depth`](crate::SubjectSpec::call_depth); this
    /// is the scaled-subject *call-graph depth* shaping knob.
    pub call_chain_depth: usize,
}

impl Default for CodegenParams {
    fn default() -> Self {
        CodegenParams {
            helpers_per_class: 6,
            stmts_per_helper: 9,
            ifdef_percent: 30,
            call_chain_depth: 0,
        }
    }
}

/// Emits the whole product-line source for a subject.
pub(crate) fn generate_source(
    spec: &SubjectSpec,
    table: &FeatureTable,
    reachable: &[FeatureId],
    unreachable: &[FeatureId],
    params: CodegenParams,
) -> String {
    let mut g = Gen {
        rng: SplitMix64::seed_from_u64(spec.seed),
        table,
        reachable,
        next_feature: 0,
        out: String::new(),
        params,
    };
    let _ = writeln!(
        g.out,
        "// Generated benchmark subject: {} (seed {:#x})",
        spec.name, spec.seed
    );
    g.emit_runtime();

    let chain_depth = spec.call_depth.unwrap_or(params.call_chain_depth);

    // Module classes until the LOC target is reached (Main + dead code
    // + the call chain add a known tail, so stop a bit early).
    let tail_estimate = 10 + 4 * unreachable.len() + 8 * chain_depth;
    let mut classes = Vec::new();
    let mut k = 0;
    while count_lines(&g.out) + tail_estimate < spec.loc_target {
        g.emit_module_class(k, classes.len());
        classes.push(k);
        k += 1;
    }
    // Ensure at least one module class and full feature coverage: emit
    // extra classes until every reachable feature has been used.
    while classes.is_empty() || g.next_feature < g.reachable.len() {
        g.emit_module_class(k, classes.len());
        classes.push(k);
        k += 1;
    }

    // The explicit call chain (`depth=` shaping): D0.step → D1.step →
    // … → D{n-1}.step, entered from Main, so the call graph is at least
    // `chain_depth + 1` methods deep. Each link carries one
    // `#ifdef`-guarded statement for feature texture; the link calls
    // themselves are unconditional so the depth is guaranteed in every
    // configuration.
    for d in 0..chain_depth {
        let cond = g.feature_cond();
        let _ = writeln!(g.out, "class D{d} {{\n    static int step(int a) {{");
        let _ = writeln!(g.out, "        a = a + {d};");
        let _ = writeln!(g.out, "        #ifdef {cond}");
        let _ = writeln!(g.out, "        a = a * 2;");
        let _ = writeln!(g.out, "        #endif");
        if d + 1 < chain_depth {
            let _ = writeln!(g.out, "        a = D{}.step(a);", d + 1);
        }
        let _ = writeln!(g.out, "        return a;\n    }}\n}}");
    }

    // Driver (the paper wrote driver classes for its subjects, §6.2).
    g.out.push_str("class Main {\n    static void main() {\n");
    g.out.push_str("        int acc = Util.source();\n");
    for &k in &classes {
        let _ = writeln!(g.out, "        acc = M{k}.run(acc);");
    }
    if chain_depth > 0 {
        g.out.push_str("        acc = D0.step(acc);\n");
    }
    g.out.push_str("        Util.sink(acc);\n    }\n}\n");

    // Dead code carrying the unreachable features (Table 1's gap between
    // total and reachable features; cf. the paper's remark that Lampiro
    // "contains many dead features").
    for (i, &u) in unreachable.iter().enumerate() {
        let name = g.table.name(u).to_owned();
        let _ = writeln!(
            g.out,
            "class Dead{i} {{\n    static int unused(int a) {{\n        #ifdef {name}\n        a = a + {i};\n        #endif\n        return a;\n    }}\n}}"
        );
    }
    g.out
}

fn count_lines(s: &str) -> usize {
    s.lines().filter(|l| !l.trim().is_empty()).count()
}

struct Gen<'a> {
    rng: SplitMix64,
    table: &'a FeatureTable,
    reachable: &'a [FeatureId],
    /// Round-robin cursor guaranteeing full reachable-feature coverage.
    next_feature: usize,
    out: String,
    params: CodegenParams,
}

impl Gen<'_> {
    fn emit_runtime(&mut self) {
        // Taint endpoints + a small hierarchy for virtual dispatch.
        self.out.push_str(
            "class Util {\n    static int source() { return 1; }\n    static int secret() { return 77; }\n    static void sink(int v) { }\n    static void print(int v) { }\n}\nclass Node {\n    int weight;\n    int visit(int a) { return a; }\n}\nclass NodeA extends Node {\n    int visit(int a) { return a + 1; }\n}\nclass NodeB extends Node {\n    int visit(int a) { return a * 2; }\n}\n",
        );
    }

    /// Picks a feature: round-robin until all are covered, then random.
    fn pick_feature(&mut self) -> FeatureId {
        if self.next_feature < self.reachable.len() {
            let f = self.reachable[self.next_feature];
            self.next_feature += 1;
            f
        } else {
            self.reachable[self.rng.gen_range(0..self.reachable.len())]
        }
    }

    fn feature_cond(&mut self) -> String {
        let f = self.pick_feature();
        let name = self.table.name(f).to_owned();
        match self.rng.gen_range(0..6u32) {
            0 => format!("!{name}"),
            1 => {
                let g = self.reachable[self.rng.gen_range(0..self.reachable.len())];
                format!("{name} && {}", self.table.name(g))
            }
            2 => {
                let g = self.reachable[self.rng.gen_range(0..self.reachable.len())];
                format!("{name} || {}", self.table.name(g))
            }
            _ => name,
        }
    }

    fn emit_module_class(&mut self, k: usize, prev_classes: usize) {
        let helpers = self.params.helpers_per_class;
        let _ = writeln!(self.out, "class M{k} {{");
        let _ = writeln!(self.out, "    int state;");
        for h in 0..helpers {
            self.emit_helper(k, h, helpers, prev_classes);
        }
        // run(): chains all helpers, with occasional taint and dispatch.
        let _ = writeln!(self.out, "    static int run(int a) {{");
        let _ = writeln!(self.out, "        int r = a;");
        for h in 0..helpers {
            if self.rng.gen_range(0..100) < self.params.ifdef_percent {
                let cond = self.feature_cond();
                let _ = writeln!(self.out, "        #ifdef {cond}");
                let _ = writeln!(self.out, "        r = M{k}.h{h}(r, {h});");
                let _ = writeln!(self.out, "        #endif");
            } else {
                let _ = writeln!(self.out, "        r = M{k}.h{h}(r, {h});");
            }
        }
        if self.rng.gen_bool(0.5) {
            // The §5 pattern: feature-dependent allocation, shared call.
            let cond = self.feature_cond();
            let _ = writeln!(self.out, "        Node n = new NodeA();");
            let _ = writeln!(self.out, "        #ifdef {cond}");
            let _ = writeln!(self.out, "        n = new NodeB();");
            let _ = writeln!(self.out, "        #endif");
            let _ = writeln!(self.out, "        r = n.visit(r);");
        }
        if self.rng.gen_bool(0.4) {
            let cond = self.feature_cond();
            let _ = writeln!(self.out, "        int s = Util.secret();");
            let _ = writeln!(self.out, "        #ifdef {cond}");
            let _ = writeln!(self.out, "        r = r + s;");
            let _ = writeln!(self.out, "        #endif");
            let _ = writeln!(self.out, "        Util.print(r);");
        }
        let _ = writeln!(self.out, "        return r;");
        let _ = writeln!(self.out, "    }}");
        let _ = writeln!(self.out, "}}");
    }

    fn emit_helper(&mut self, k: usize, h: usize, helpers: usize, prev_classes: usize) {
        let _ = writeln!(self.out, "    static int h{h}(int a, int b) {{");
        let _ = writeln!(self.out, "        int v0 = a + b;");
        let _ = writeln!(self.out, "        int v1 = a * 2;");
        // Occasionally exercise the array subset (weak-update cells).
        if self.rng.gen_bool(0.2) {
            let _ = writeln!(self.out, "        int[] buf = new int[4];");
            let _ = writeln!(self.out, "        buf[0] = v0;");
            let _ = writeln!(self.out, "        v1 = buf[1] + v1;");
        }
        // One deliberate maybe-uninitialized pattern now and then — the
        // paper's §1 motivating SPL bug class.
        let uninit = self.rng.gen_bool(0.25);
        if uninit {
            let cond = self.feature_cond();
            let _ = writeln!(self.out, "        int u;");
            let _ = writeln!(self.out, "        #ifdef {cond}");
            let _ = writeln!(self.out, "        u = b;");
            let _ = writeln!(self.out, "        #endif");
            let _ = writeln!(self.out, "        v1 = v1 + u;");
        }
        for i in 0..self.params.stmts_per_helper {
            let wrapped = self.rng.gen_range(0..100) < self.params.ifdef_percent;
            if wrapped {
                let cond = self.feature_cond();
                let _ = writeln!(self.out, "        #ifdef {cond}");
            }
            match self.rng.gen_range(0..6u32) {
                0 => {
                    let _ = writeln!(self.out, "        v0 = v0 + v1 + {i};");
                }
                1 => {
                    let _ = writeln!(
                        self.out,
                        "        if (v0 > v1) {{ v0 = v0 - 1; }} else {{ v1 = v1 + 1; }}"
                    );
                }
                2 => {
                    if self.rng.gen_bool(0.5) {
                        let _ = writeln!(self.out, "        while (v0 > 50) {{ v0 = v0 - 13; }}");
                    } else {
                        let _ = writeln!(
                            self.out,
                            "        for (int k = 0; k < 3; k = k + 1) {{ v0 = v0 + k; }}"
                        );
                    }
                }
                3 if h > 0 => {
                    let callee = self.rng.gen_range(0..h);
                    let _ = writeln!(self.out, "        v1 = M{k}.h{callee}(v1, {i});");
                }
                4 if prev_classes > 0 => {
                    let other = self.rng.gen_range(0..prev_classes);
                    let callee = self.rng.gen_range(0..helpers);
                    let _ = writeln!(self.out, "        v1 = M{other}.h{callee}(v0, v1);");
                }
                _ => {
                    let _ = writeln!(self.out, "        v1 = v1 % 97 + {i};");
                }
            }
            if wrapped {
                let _ = writeln!(self.out, "        #endif");
            }
        }
        let _ = writeln!(self.out, "        return v0 + v1;");
        let _ = writeln!(self.out, "    }}");
    }
}
