//! Delta-debugging (ddmin) reduction of failing product-line programs.
//!
//! When the differential fuzz campaign finds a mismatch, the raw failing
//! program is a few hundred statements of generated noise. This module
//! shrinks it to a minimal failing example by the classic ddmin loop
//! (Zeller & Hildebrandt, TSE 2002), re-running a caller-supplied oracle
//! after every candidate simplification and keeping only changes that
//! preserve the failure.
//!
//! Three reduction passes run in rounds until a fixpoint:
//!
//! 1. **Statements** — replace payload statements by `nop`. Indices stay
//!    stable, so branch targets and the final return never need fixup
//!    (the same trick [`Program::derive_product`] uses).
//! 2. **Functions** — hollow a method body out to `nop; return`, keeping
//!    its signature so callers stay well-formed.
//! 3. **Features** — substitute `false` for a feature in every
//!    annotation, collapsing the configuration space dimension by
//!    dimension.
//!
//! The oracle decides what "failing" means — the fuzz driver plugs in
//! "this analysis still disagrees between SPLLIFT and A2" — so the
//! reducer is oblivious to analyses, solvers, and models.

use spllift_features::{partition_slice, FeatureExpr, FeatureId, FeatureTable};
use spllift_ir::{text, MethodId, Operand, Program, StmtKind, StmtRef};

/// What the reducer may simplify. Each pass can be disabled — the
/// reducer demo test, for instance, pins the feature set so the repro
/// keeps the same configuration space as the original failure.
#[derive(Debug, Clone, Copy)]
pub struct ReduceOptions {
    /// Nop-out individual statements.
    pub reduce_statements: bool,
    /// Hollow out whole method bodies.
    pub reduce_functions: bool,
    /// Eliminate features from annotations (substituting `false`).
    pub reduce_features: bool,
    /// Upper bound on pass rounds (a fixpoint is normally reached in
    /// two or three).
    pub max_rounds: usize,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions {
            reduce_statements: true,
            reduce_functions: true,
            reduce_features: true,
            max_rounds: 8,
        }
    }
}

/// A reduced failing program, plus bookkeeping for reports and tests.
#[derive(Debug)]
pub struct ReduceOutcome {
    /// The minimal failing program.
    pub program: Program,
    /// Features still mentioned by annotations after reduction (in the
    /// original order). Features substituted away are gone.
    pub features: Vec<FeatureId>,
    /// Payload statements remaining (non-`nop`, not the synthetic entry,
    /// not the mandatory final `return`).
    pub payload_stmts: usize,
    /// Total oracle invocations — the reduction's cost.
    pub oracle_runs: usize,
    /// Pass rounds executed before the fixpoint (or the round cap).
    pub rounds: usize,
    /// The pretty-printed repro, ready for `tests/corpus/`.
    pub repro: String,
}

/// The failure predicate: `true` iff the candidate still exhibits the
/// failure being minimized. Receives the candidate program and the
/// features still in play (the oracle typically enumerates
/// configurations over exactly these).
pub type Oracle<'a> = dyn FnMut(&Program, &[FeatureId]) -> bool + 'a;

/// Counts payload statements: everything except `nop`s and each body's
/// mandatory final `return`. This is the metric reduction minimizes and
/// the one the acceptance test bounds.
pub fn payload_stmt_count(program: &Program) -> usize {
    program
        .methods_with_body()
        .map(|m| {
            let stmts = &program.body(m).stmts;
            stmts
                .iter()
                .take(stmts.len().saturating_sub(1))
                .filter(|s| !matches!(s.kind, StmtKind::Nop))
                .count()
        })
        .sum()
}

/// Generic ddmin over a set of still-removable elements: repeatedly try
/// to remove contiguous chunks at increasing granularity, keeping a
/// removal iff `still_fails` holds on the program with that chunk (plus
/// everything already removed) gone. Returns the elements that survived.
///
/// `apply` must rebuild the candidate program from scratch given the
/// *kept* elements, so removals compose without ordering concerns.
fn ddmin<T: Copy>(
    elements: Vec<T>,
    mut apply: impl FnMut(&[T]) -> (Program, Vec<FeatureId>),
    oracle: &mut Oracle<'_>,
    oracle_runs: &mut usize,
) -> Vec<T> {
    let mut kept = elements;
    if kept.is_empty() {
        return kept;
    }
    // Try removing everything first — surprisingly often the failure
    // needs none of the candidate elements (e.g. the bug is in main).
    {
        let (candidate, feats) = apply(&[]);
        *oracle_runs += 1;
        if oracle(&candidate, &feats) {
            return Vec::new();
        }
    }
    let mut granularity = 2usize;
    while kept.len() >= 2 {
        let chunks: Vec<Vec<T>> = partition_slice(&kept, granularity.min(kept.len()))
            .into_iter()
            .map(<[T]>::to_vec)
            .collect();
        let mut reduced = false;
        for i in 0..chunks.len() {
            // Keep every chunk except the i-th (test its complement).
            let complement: Vec<T> = chunks
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .flat_map(|(_, c)| c.iter().copied())
                .collect();
            let (candidate, feats) = apply(&complement);
            *oracle_runs += 1;
            if oracle(&candidate, &feats) {
                kept = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if granularity >= kept.len() {
                break;
            }
            granularity = (granularity * 2).min(kept.len());
        }
    }
    kept
}

/// Substitutes `false` for every feature in `gone` throughout `expr`,
/// then simplifies constant subtrees away.
fn eliminate(expr: &FeatureExpr, gone: &[FeatureId]) -> FeatureExpr {
    match expr {
        FeatureExpr::True => FeatureExpr::True,
        FeatureExpr::False => FeatureExpr::False,
        FeatureExpr::Var(f) => {
            if gone.contains(f) {
                FeatureExpr::False
            } else {
                FeatureExpr::Var(*f)
            }
        }
        FeatureExpr::Not(e) => match eliminate(e, gone) {
            FeatureExpr::True => FeatureExpr::False,
            FeatureExpr::False => FeatureExpr::True,
            e => e.not(),
        },
        FeatureExpr::And(es) => {
            let mut out = Vec::new();
            for e in es {
                match eliminate(e, gone) {
                    FeatureExpr::True => {}
                    FeatureExpr::False => return FeatureExpr::False,
                    e => out.push(e),
                }
            }
            match out.len() {
                0 => FeatureExpr::True,
                1 => out.pop().expect("len checked"),
                _ => FeatureExpr::And(out),
            }
        }
        FeatureExpr::Or(es) => {
            let mut out = Vec::new();
            for e in es {
                match eliminate(e, gone) {
                    FeatureExpr::False => {}
                    FeatureExpr::True => return FeatureExpr::True,
                    e => out.push(e),
                }
            }
            match out.len() {
                0 => FeatureExpr::False,
                1 => out.pop().expect("len checked"),
                _ => FeatureExpr::Or(out),
            }
        }
    }
}

/// Rebuilds `base` with the statements in `gone` nopped out.
fn without_stmts(base: &Program, gone: &[StmtRef]) -> Program {
    let mut p = base.clone();
    for &s in gone {
        p.stmt_mut(s).kind = StmtKind::Nop;
    }
    p
}

/// Rebuilds `base` with the bodies of `gone` hollowed to `nop; return`
/// (returning `0` from non-void methods so call sites stay typed).
fn without_functions(base: &Program, gone: &[MethodId]) -> Program {
    let mut p = base.clone();
    for &m in gone {
        let value = p.method(m).ret.as_ref().map(|_| Operand::IntConst(0));
        let body = p.body_mut(m);
        let entry = body.stmts[0].clone();
        let mut ret = body.stmts[body.stmts.len() - 1].clone();
        ret.kind = StmtKind::Return { value };
        body.stmts = vec![entry, ret];
    }
    p
}

/// Rebuilds `base` with the features in `gone` substituted by `false`
/// in every annotation.
fn without_features(base: &Program, gone: &[FeatureId]) -> Program {
    let mut p = base.clone();
    for m in base.methods_with_body().collect::<Vec<_>>() {
        let len = p.body(m).stmts.len() as u32;
        for index in 0..len {
            let s = StmtRef { method: m, index };
            let ann = eliminate(&p.stmt(s).annotation, gone);
            p.stmt_mut(s).annotation = ann;
        }
    }
    p
}

/// Minimizes `program` while `oracle` keeps returning `true` (failure
/// still present). The input program itself must fail.
///
/// # Panics
///
/// Panics if `oracle(program, features)` is `false` — reducing a passing
/// program is a caller bug and would "minimize" to garbage.
pub fn reduce(
    program: &Program,
    table: &FeatureTable,
    features: &[FeatureId],
    oracle: &mut Oracle<'_>,
    options: ReduceOptions,
) -> ReduceOutcome {
    let mut oracle_runs = 1;
    assert!(
        oracle(program, features),
        "reduce() called on a program the oracle does not fail"
    );

    let mut current = program.clone();
    let mut features: Vec<FeatureId> = features.to_vec();
    let mut rounds = 0;
    loop {
        rounds += 1;
        let before = (payload_stmt_count(&current), features.len());

        if options.reduce_features && !features.is_empty() {
            let feats = features.clone();
            let base = current.clone();
            let kept = ddmin(
                feats.clone(),
                |keep| {
                    let gone: Vec<FeatureId> = feats
                        .iter()
                        .copied()
                        .filter(|f| !keep.contains(f))
                        .collect();
                    (without_features(&base, &gone), keep.to_vec())
                },
                oracle,
                &mut oracle_runs,
            );
            let gone: Vec<FeatureId> = feats
                .iter()
                .copied()
                .filter(|f| !kept.contains(f))
                .collect();
            current = without_features(&base, &gone);
            features = kept;
        }

        if options.reduce_functions {
            // Entry points stay; hollowing them would trivialize the
            // program without exercising interprocedural flow.
            let entries = current.entry_points().to_vec();
            let candidates: Vec<MethodId> = current
                .methods_with_body()
                .filter(|m| !entries.contains(m))
                .collect();
            let base = current.clone();
            let feats = features.clone();
            let kept = ddmin(
                candidates.clone(),
                |keep| {
                    let gone: Vec<MethodId> = candidates
                        .iter()
                        .copied()
                        .filter(|m| !keep.contains(m))
                        .collect();
                    (without_functions(&base, &gone), feats.clone())
                },
                oracle,
                &mut oracle_runs,
            );
            let gone: Vec<MethodId> = candidates
                .iter()
                .copied()
                .filter(|m| !kept.contains(m))
                .collect();
            current = without_functions(&base, &gone);
        }

        if options.reduce_statements {
            let candidates: Vec<StmtRef> = current
                .methods_with_body()
                .flat_map(|m| {
                    let stmts = &current.body(m).stmts;
                    let last = stmts.len() - 1;
                    stmts
                        .iter()
                        .enumerate()
                        .filter(move |&(i, s)| {
                            i != 0 && i != last && !matches!(s.kind, StmtKind::Nop)
                        })
                        .map(move |(i, _)| StmtRef {
                            method: m,
                            index: i as u32,
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            let base = current.clone();
            let feats = features.clone();
            let kept = ddmin(
                candidates.clone(),
                |keep| {
                    let gone: Vec<StmtRef> = candidates
                        .iter()
                        .copied()
                        .filter(|s| !keep.contains(s))
                        .collect();
                    (without_stmts(&base, &gone), feats.clone())
                },
                oracle,
                &mut oracle_runs,
            );
            let gone: Vec<StmtRef> = candidates
                .iter()
                .copied()
                .filter(|s| !kept.contains(s))
                .collect();
            current = without_stmts(&base, &gone);
        }

        let after = (payload_stmt_count(&current), features.len());
        if after == before || rounds >= options.max_rounds {
            break;
        }
    }

    debug_assert!(current.check().is_ok(), "reduction broke IR invariants");
    let repro = text::to_repro_string(&current, table)
        .unwrap_or_else(|e| panic!("reduced program left the repro subset: {e}"));
    ReduceOutcome {
        payload_stmts: payload_stmt_count(&current),
        program: current,
        features,
        oracle_runs,
        rounds,
        repro,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_spl;
    use spllift_ir::interp::{run, InterpConfig};
    use spllift_ir::Callee;

    /// Reduce "program calls the `print` sink at least once under the
    /// full configuration" — a cheap syntactic oracle that still
    /// exercises all three passes.
    #[test]
    fn reduces_to_a_single_call_site() {
        let spl = random_spl(5, 3, 4);
        let print = spl
            .program
            .find_method("print")
            .expect("generator always emits print");
        let mut oracle = |p: &Program, _feats: &[FeatureId]| {
            p.methods_with_body().any(|m| {
                p.body(m).stmts.iter().any(|s| {
                    matches!(
                        &s.kind,
                        StmtKind::Invoke { callee: Callee::Static(c), .. } if *c == print
                    )
                })
            })
        };
        let out = reduce(
            &spl.program,
            &spl.table,
            &spl.features,
            &mut oracle,
            ReduceOptions::default(),
        );
        assert!(out.program.check().is_ok());
        // One call statement must survive; the ddmin floor for this
        // oracle is exactly one payload statement.
        assert_eq!(out.payload_stmts, 1, "repro:\n{}", out.repro);
        // Feature elimination should have emptied the feature set: the
        // oracle ignores annotations entirely.
        assert!(out.features.is_empty());
    }

    /// A semantic oracle: the interpreter still leaks the secret in the
    /// all-features-on product. Slower but end-to-end.
    #[test]
    fn reduction_preserves_interpreter_behavior() {
        let mut found = None;
        for seed in 0..40u64 {
            let spl = random_spl(seed, 3, 3);
            let full = spllift_features::Configuration::from_enabled(spl.features.clone());
            let product = spl.program.derive_product(&full);
            let trace = run(&product, &InterpConfig::secret_to_print());
            if trace
                .events
                .iter()
                .any(|e| matches!(e, spllift_ir::interp::Event::Leak(_)))
            {
                found = Some((spl, full));
                break;
            }
        }
        let (spl, full) = found.expect("some seed in 0..40 leaks");
        let mut oracle = |p: &Program, _feats: &[FeatureId]| {
            let product = p.derive_product(&full);
            run(&product, &InterpConfig::secret_to_print())
                .events
                .iter()
                .any(|e| matches!(e, spllift_ir::interp::Event::Leak(_)))
        };
        let before = payload_stmt_count(&spl.program);
        let out = reduce(
            &spl.program,
            &spl.table,
            &spl.features,
            &mut oracle,
            ReduceOptions {
                reduce_features: false,
                ..ReduceOptions::default()
            },
        );
        assert!(
            out.payload_stmts < before,
            "{} !< {before}",
            out.payload_stmts
        );
        assert!(out.payload_stmts <= 10, "repro:\n{}", out.repro);
        // The repro round-trips through the text format.
        let (parsed, _) = text::parse_repro(&out.repro).expect("repro parses");
        assert_eq!(parsed, out.program);
    }

    #[test]
    fn reduction_is_deterministic() {
        let run_once = || {
            let spl = random_spl(5, 3, 4);
            let mut oracle = |p: &Program, _f: &[FeatureId]| {
                p.methods_with_body().any(|m| {
                    p.body(m)
                        .stmts
                        .iter()
                        .any(|s| matches!(s.kind, StmtKind::Invoke { .. }))
                })
            };
            reduce(
                &spl.program,
                &spl.table,
                &spl.features,
                &mut oracle,
                ReduceOptions::default(),
            )
            .repro
        };
        assert_eq!(run_once(), run_once());
    }
}
