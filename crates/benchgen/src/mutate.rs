//! Seeded structural mutators over annotated programs.
//!
//! The fuzz campaign does not only replay the generator: it *mutates* the
//! generated programs, reaching shapes the generator's grammar never
//! emits (dead statements duplicated under different annotations, calls
//! rewired to other callees, annotations flipped to their negation).
//! Every mutation preserves the structural invariants checked by
//! [`Program::check`] by construction — it never invalidates branch
//! targets or local ids — so mutated programs can go straight into the
//! solvers.
//!
//! All mutators draw from a caller-supplied [`SplitMix64`], so a
//! `(seed, mutation count)` pair identifies a mutant exactly and repro
//! files are redundant with (but much more convenient than) the campaign
//! parameters that produced them.

use spllift_features::{FeatureExpr, FeatureId};
use spllift_ir::{Callee, MethodId, Program, StmtKind, StmtRef};
use spllift_rng::SplitMix64;

/// One structural mutation, as applied (for campaign logs and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// A statement was replaced by `nop` (feature-independent deletion).
    Drop(StmtRef),
    /// A statement was duplicated immediately after itself; branch
    /// targets in the body were shifted to keep the CFG intact.
    Duplicate(StmtRef),
    /// A statement's annotation was replaced by a fresh random one.
    Reannotate(StmtRef),
    /// A static call was retargeted to a different compatible method.
    RewireCall(StmtRef, MethodId),
    /// One feature literal inside an annotation was negated.
    FlipLiteral(StmtRef),
}

/// Statement positions eligible for mutation: everything except the
/// synthetic entry `nop` (index 0) and the final unannotated `return`
/// (which [`Program::check`] requires to stay in place).
fn mutable_stmts(program: &Program) -> Vec<StmtRef> {
    program
        .methods_with_body()
        .flat_map(|m| {
            let len = program.body(m).stmts.len() as u32;
            (1..len.saturating_sub(1)).map(move |index| StmtRef { method: m, index })
        })
        .collect()
}

/// Negates one `Var` occurrence in `expr`, counting occurrences in
/// depth-first order; `which` selects the occurrence. Returns `None` if
/// the expression has no variables.
fn flip_literal(expr: &FeatureExpr, which: &mut usize) -> Option<FeatureExpr> {
    match expr {
        FeatureExpr::True | FeatureExpr::False => None,
        FeatureExpr::Var(f) => {
            if *which == 0 {
                Some(FeatureExpr::var(*f).not())
            } else {
                *which -= 1;
                None
            }
        }
        FeatureExpr::Not(inner) => {
            if let FeatureExpr::Var(f) = &**inner {
                if *which == 0 {
                    return Some(FeatureExpr::var(*f));
                }
                *which -= 1;
                return None;
            }
            flip_literal(inner, which).map(|e| e.not())
        }
        FeatureExpr::And(es) => {
            for (i, e) in es.iter().enumerate() {
                if let Some(flipped) = flip_literal(e, which) {
                    let mut out = es.clone();
                    out[i] = flipped;
                    return Some(FeatureExpr::And(out));
                }
            }
            None
        }
        FeatureExpr::Or(es) => {
            for (i, e) in es.iter().enumerate() {
                if let Some(flipped) = flip_literal(e, which) {
                    let mut out = es.clone();
                    out[i] = flipped;
                    return Some(FeatureExpr::Or(out));
                }
            }
            None
        }
    }
}

fn count_literals(expr: &FeatureExpr) -> usize {
    match expr {
        FeatureExpr::True | FeatureExpr::False => 0,
        FeatureExpr::Var(_) => 1,
        FeatureExpr::Not(e) => count_literals(e),
        FeatureExpr::And(es) | FeatureExpr::Or(es) => es.iter().map(count_literals).sum(),
    }
}

/// A random annotation over `features` (same distribution as the random
/// program generator: mostly simple literals and binary combinations).
fn random_annotation(rng: &mut SplitMix64, features: &[FeatureId]) -> FeatureExpr {
    let var = |rng: &mut SplitMix64| FeatureExpr::var(features[rng.gen_range(0..features.len())]);
    match rng.gen_range(0..6u32) {
        0 => FeatureExpr::True,
        1 => var(rng),
        2 => var(rng).not(),
        3 => var(rng).and(var(rng)),
        4 => var(rng).or(var(rng)),
        _ => var(rng).and(var(rng).not()),
    }
}

/// Applies one random mutation to `program`, drawing from `rng`.
///
/// Returns the mutation applied, or `None` if the drawn mutation was not
/// applicable (e.g. flipping a literal in a program with no annotations);
/// the caller simply draws again. The mutated program always passes
/// [`Program::check`].
pub fn mutate_once(
    program: &mut Program,
    features: &[FeatureId],
    rng: &mut SplitMix64,
) -> Option<Mutation> {
    let candidates = mutable_stmts(program);
    if candidates.is_empty() || features.is_empty() {
        return None;
    }
    let s = *rng.choose(&candidates);
    match rng.gen_range(0..5u32) {
        0 => {
            program.stmt_mut(s).kind = StmtKind::Nop;
            Some(Mutation::Drop(s))
        }
        1 => {
            // Duplicate s right after itself. Branch targets strictly
            // beyond s shift by one; targets at or before s are
            // unaffected. The duplicate keeps s's annotation.
            let dup = program.stmt(s).clone();
            let body = program.body_mut(s.method);
            body.stmts.insert(s.index as usize + 1, dup);
            for stmt in &mut body.stmts {
                if let StmtKind::If { target, .. } | StmtKind::Goto { target } = &mut stmt.kind {
                    if *target > s.index {
                        *target += 1;
                    }
                }
            }
            Some(Mutation::Duplicate(s))
        }
        2 => {
            program.stmt_mut(s).annotation = random_annotation(rng, features);
            Some(Mutation::Reannotate(s))
        }
        3 => {
            // Rewire a static call to another method with the same
            // signature shape (parameter count and return presence).
            let calls: Vec<StmtRef> = candidates
                .iter()
                .copied()
                .filter(|&c| {
                    matches!(
                        program.stmt(c).kind,
                        StmtKind::Invoke {
                            callee: Callee::Static(_),
                            ..
                        }
                    )
                })
                .collect();
            if calls.is_empty() {
                return None;
            }
            let call = *rng.choose(&calls);
            let StmtKind::Invoke {
                callee: Callee::Static(old),
                args,
                result,
            } = &program.stmt(call).kind
            else {
                unreachable!("filtered to static invokes");
            };
            let (old, argc, wants_ret) = (*old, args.len(), result.is_some());
            let compatible: Vec<MethodId> = program
                .methods_with_body()
                .filter(|&m| {
                    let meth = program.method(m);
                    m != old
                        && meth.params.len() == argc
                        && (!wants_ret || meth.ret.is_some())
                        && meth.class.is_none()
                })
                .collect();
            if compatible.is_empty() {
                return None;
            }
            let new = *rng.choose(&compatible);
            let StmtKind::Invoke { callee, .. } = &mut program.stmt_mut(call).kind else {
                unreachable!("filtered to static invokes");
            };
            *callee = Callee::Static(new);
            Some(Mutation::RewireCall(call, new))
        }
        _ => {
            let annotated: Vec<StmtRef> = candidates
                .iter()
                .copied()
                .filter(|&c| count_literals(&program.stmt(c).annotation) > 0)
                .collect();
            if annotated.is_empty() {
                return None;
            }
            let s = *rng.choose(&annotated);
            let ann = program.stmt(s).annotation.clone();
            let mut which = rng.gen_range(0..count_literals(&ann));
            let flipped = flip_literal(&ann, &mut which).expect("literal count > 0");
            program.stmt_mut(s).annotation = flipped;
            Some(Mutation::FlipLiteral(s))
        }
    }
}

/// Applies `count` random mutations (skipping inapplicable draws, with a
/// bounded number of retries so a degenerate program cannot loop
/// forever). Deterministic in the `rng` state.
///
/// # Panics
///
/// Panics (debug builds) if a mutation breaks [`Program::check`] — the
/// mutators are constructed to preserve it.
pub fn mutate(
    program: &mut Program,
    features: &[FeatureId],
    rng: &mut SplitMix64,
    count: usize,
) -> Vec<Mutation> {
    let mut applied = Vec::with_capacity(count);
    let mut attempts = 0;
    while applied.len() < count && attempts < count * 8 {
        attempts += 1;
        if let Some(m) = mutate_once(program, features, rng) {
            debug_assert!(program.check().is_ok(), "mutation {m:?} broke the IR");
            applied.push(m);
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_spl;

    #[test]
    fn mutations_preserve_ir_invariants() {
        for seed in 0..20u64 {
            let mut spl = random_spl(seed, 3, 3);
            let mut rng = SplitMix64::seed_from_u64(seed ^ 0x6d75_7461);
            let applied = mutate(&mut spl.program, &spl.features, &mut rng, 6);
            assert!(!applied.is_empty(), "seed {seed} applied no mutations");
            assert!(spl.program.check().is_ok(), "seed {seed}: {applied:?}");
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let build = || {
            let mut spl = random_spl(11, 3, 3);
            let mut rng = SplitMix64::seed_from_u64(99);
            let applied = mutate(&mut spl.program, &spl.features, &mut rng, 5);
            (spl.program, applied)
        };
        let (p1, a1) = build();
        let (p2, a2) = build();
        assert_eq!(p1, p2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn duplicate_shifts_branch_targets() {
        // Duplicating below a branch target must keep the CFG meaningful:
        // exhaustively mutate and re-check many times.
        let mut spl = random_spl(3, 2, 2);
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..50 {
            mutate_once(&mut spl.program, &spl.features, &mut rng);
            assert!(spl.program.check().is_ok());
        }
    }
}
