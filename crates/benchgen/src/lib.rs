//! Deterministic generators for the four benchmark product lines of the
//! paper's evaluation (Table 1): BerkeleyDB, GPL, Lampiro, and MM08.
//!
//! The original CIDE projects are unavailable (see `DESIGN.md` §4), so
//! each subject is *simulated* by a seeded generator that reproduces the
//! characteristics Table 1 reports and that drive the experiments:
//!
//! * the **feature counts** — total and reachable-from-`main` — are
//!   matched exactly (they determine the number of configurations and
//!   hence the A2 baseline's exponential cost),
//! * the **valid-configuration counts** are matched exactly where the
//!   paper states them (GPL: 1 872 of 2^19; MM08: 26 of 2^9; Lampiro:
//!   4 of 4) by constructing feature models with those solution counts,
//! * **code size** is scaled to roughly a tenth of the original KLOC so
//!   the baselines finish in CI time (the paper itself had to cut A2 off
//!   at ten hours and extrapolate; we apply the same rule at a smaller
//!   cutoff),
//! * the code mixes straight-line arithmetic, branches, loops, calls
//!   (static and virtual through a small class hierarchy), fields, and
//!   CIDE-disciplined `#ifdef` blocks over the reachable features, plus
//!   *dead* classes annotated with the unreachable features.
//!
//! Everything is generated as mini-Java **source text** and pushed through
//! the real frontend, so the pipeline (and the KLOC metric) is honest.

#![warn(missing_docs)]
mod codegen;
mod models;
pub mod mutate;
pub mod random_ir;
pub mod reduce;

pub use codegen::CodegenParams;
pub use mutate::{mutate, mutate_once, Mutation};
pub use random_ir::{random_spl, RandomSpl};
pub use reduce::{payload_stmt_count, reduce, Oracle, ReduceOptions, ReduceOutcome};

use spllift_features::{Configuration, FeatureExpr, FeatureId, FeatureModel, FeatureTable};
use spllift_ir::{Program, ProgramIcfg};

/// Shape of the feature model generated for `Synthetic` subjects — the
/// model-side half of *scaled-subject shaping* (the code-side half is
/// [`SubjectSpec::call_depth`]). The four named subjects keep their
/// Table 1 models regardless of this field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelShape {
    /// Every feature optional and unconstrained: exactly `2^n` valid
    /// configurations (the worst case for product-based baselines) and
    /// a trivial model constraint.
    #[default]
    Free,
    /// An implication chain `f1 → f0, f2 → f1, …`: exactly `n + 1`
    /// valid configurations, and a model BDD that stays *linear* in the
    /// feature count — large feature universes without BDD blowup.
    Chain,
    /// BerkeleyDB-like structure: OR-groups of three, implication
    /// pairs, a mandatory core, and a free tail. Structurally rich
    /// per-edge constraints; the valid-configuration count is computed
    /// (not closed-form), so [`SubjectSpec::paper_valid_configs`] is
    /// `None`.
    Groups,
}

impl ModelShape {
    /// The grammar keyword (`model=<keyword>` in synthetic spec names).
    pub fn keyword(self) -> &'static str {
        match self {
            ModelShape::Free => "free",
            ModelShape::Chain => "chain",
            ModelShape::Groups => "groups",
        }
    }

    /// Parses a grammar keyword.
    pub fn from_keyword(s: &str) -> Option<ModelShape> {
        match s {
            "free" => Some(ModelShape::Free),
            "chain" => Some(ModelShape::Chain),
            "groups" => Some(ModelShape::Groups),
            _ => None,
        }
    }
}

/// Static description of one benchmark subject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubjectSpec {
    /// Subject name as in Table 1.
    pub name: &'static str,
    /// Target generated size, in (scaled) lines of code.
    pub loc_target: usize,
    /// Total number of features (Table 1, "Features total").
    pub total_features: usize,
    /// Features reachable from `main` (Table 1, "Features reachable").
    pub reachable_features: usize,
    /// Valid configurations per Table 1 (`None` = the paper reports
    /// "unknown"; we can still compute it with a BDD).
    pub paper_valid_configs: Option<u128>,
    /// RNG seed (fixed → bit-identical subjects on every run).
    pub seed: u64,
    /// Feature-model shape (`Synthetic` subjects only).
    pub model_shape: ModelShape,
    /// Minimum interprocedural call-chain depth: the generator appends
    /// a `D0 → D1 → … → D{n-1}` call chain reached from `main`, so the
    /// call graph is at least this deep. `None` = generator default
    /// (no explicit chain).
    pub call_depth: Option<usize>,
}

impl SubjectSpec {
    /// The same spec with an explicit feature-model shape.
    #[must_use]
    pub fn with_model_shape(mut self, shape: ModelShape) -> Self {
        self.model_shape = shape;
        // Only `Synthetic` models are shaped; the named subjects keep
        // their Table 1 models and counts.
        if self.name == "Synthetic" {
            self.paper_valid_configs = match shape {
                ModelShape::Free => 1u128.checked_shl(self.total_features as u32),
                ModelShape::Chain => Some(self.total_features as u128 + 1),
                ModelShape::Groups => None,
            };
        }
        self
    }

    /// The same spec with an explicit call-chain depth.
    #[must_use]
    pub fn with_call_depth(mut self, depth: usize) -> Self {
        self.call_depth = Some(depth);
        self
    }
}

/// The four subjects of Table 1, scaled as documented in the crate docs.
pub fn subjects() -> [SubjectSpec; 4] {
    [
        SubjectSpec {
            name: "BerkeleyDB",
            loc_target: 8400,
            total_features: 56,
            reachable_features: 39,
            paper_valid_configs: None,
            seed: 0xBE11,
            model_shape: ModelShape::Free,
            call_depth: None,
        },
        SubjectSpec {
            name: "GPL",
            loc_target: 1400,
            total_features: 29,
            reachable_features: 19,
            paper_valid_configs: Some(1872),
            seed: 0x09B1,
            model_shape: ModelShape::Free,
            call_depth: None,
        },
        SubjectSpec {
            name: "Lampiro",
            loc_target: 4500,
            total_features: 20,
            reachable_features: 2,
            paper_valid_configs: Some(4),
            seed: 0x1A3B,
            model_shape: ModelShape::Free,
            call_depth: None,
        },
        SubjectSpec {
            name: "MM08",
            loc_target: 570,
            total_features: 34,
            reachable_features: 9,
            paper_valid_configs: Some(26),
            seed: 0x3308,
            model_shape: ModelShape::Free,
            call_depth: None,
        },
    ]
}

/// Looks up a subject by (case-insensitive) name.
pub fn subject_by_name(name: &str) -> Option<SubjectSpec> {
    subjects()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// A synthetic scaling subject: `features` unconstrained optional
/// features over ~`loc` lines of code. Every one of the `2^features`
/// configurations is valid — the worst case for the product-based
/// baselines, used by the `report -- scaling` experiment to plot the
/// exponential blowup SPLLIFT avoids (paper §8).
pub fn synthetic_spec(features: usize, loc: usize, seed: u64) -> SubjectSpec {
    SubjectSpec {
        name: "Synthetic",
        loc_target: loc,
        total_features: features,
        reachable_features: features,
        // `None` past 127 features: the count no longer fits a `u128`,
        // which is itself the point of the scaling subjects.
        paper_valid_configs: 1u128.checked_shl(features as u32),
        seed,
        model_shape: ModelShape::Free,
        call_depth: None,
    }
}

/// The one-line grammar every front end (CLI `gen:` inputs, the server
/// `load` request, the bench bins) accepts for generated subjects —
/// kept here so there is exactly one parser:
///
/// ```text
/// MM08 | GPL | Lampiro | BerkeleyDB
/// synthetic:<features>:<loc>:<seed>[:model=free|chain|groups][:depth=N]
/// ```
///
/// The optional trailing `model=`/`depth=` clauses are the
/// *scaled-subject shaping* knobs: `model=` picks the [`ModelShape`]
/// (default `free`), `depth=` forces an interprocedural call chain of
/// at least `N` methods ([`SubjectSpec::call_depth`]). Clauses may
/// appear in either order, each at most once.
pub const SUBJECT_GRAMMAR: &str =
    "MM08|GPL|Lampiro|BerkeleyDB, or synthetic:<features>:<loc>:<seed>[:model=free|chain|groups][:depth=N]";

/// Parses a subject name per [`SUBJECT_GRAMMAR`] — either a Table 1
/// subject (case-insensitive) or a `synthetic:` spec with optional
/// shaping clauses.
pub fn parse_subject_spec(name: &str) -> Result<SubjectSpec, String> {
    let Some(rest) = name.strip_prefix("synthetic:") else {
        return subject_by_name(name)
            .ok_or_else(|| format!("unknown generated subject `{name}` ({SUBJECT_GRAMMAR})"));
    };
    let parts: Vec<&str> = rest.split(':').collect();
    if parts.len() < 3 {
        return Err(format!("synthetic takes {SUBJECT_GRAMMAR}"));
    }
    let parse = |what: &str, v: &str| -> Result<usize, String> {
        v.parse()
            .map_err(|_| format!("synthetic {what} must be an integer, got `{v}`"))
    };
    let features = parse("feature count", parts[0])?;
    if features == 0 || features > 256 {
        return Err(format!(
            "synthetic feature count must be in 1..=256, got `{features}`"
        ));
    }
    let mut spec = synthetic_spec(
        features,
        parse("loc", parts[1])?,
        parse("seed", parts[2])? as u64,
    );
    let (mut saw_model, mut saw_depth) = (false, false);
    for clause in &parts[3..] {
        if let Some(kw) = clause.strip_prefix("model=") {
            if std::mem::replace(&mut saw_model, true) {
                return Err("synthetic `model=` given twice".into());
            }
            let shape = ModelShape::from_keyword(kw)
                .ok_or_else(|| format!("unknown model shape `{kw}` (free|chain|groups)"))?;
            spec = spec.with_model_shape(shape);
        } else if let Some(d) = clause.strip_prefix("depth=") {
            if std::mem::replace(&mut saw_depth, true) {
                return Err("synthetic `depth=` given twice".into());
            }
            let d = parse("depth", d)?;
            if d == 0 {
                return Err("synthetic depth must be >= 1".into());
            }
            spec = spec.with_call_depth(d);
        } else {
            return Err(format!(
                "unknown synthetic clause `{clause}` (expected model=… or depth=…)"
            ));
        }
    }
    Ok(spec)
}

/// A fully generated benchmark product line.
#[derive(Debug)]
pub struct GeneratedSpl {
    /// The spec this was generated from.
    pub spec: SubjectSpec,
    /// The generated mini-Java source.
    pub source: String,
    /// The lowered IR program.
    pub program: Program,
    /// Feature table: reachable features first, then unreachable, then
    /// the model root (named `Root`).
    pub table: FeatureTable,
    /// The feature model.
    pub model: FeatureModel,
    /// The reachable features, in order.
    pub reachable: Vec<FeatureId>,
    /// The model root feature (always enabled in valid configurations).
    pub root: FeatureId,
    /// Generated lines of code (non-blank, non-comment).
    pub loc: usize,
}

impl GeneratedSpl {
    /// Generates the subject with default codegen parameters.
    /// Deterministic: equal specs yield equal output.
    ///
    /// # Panics
    ///
    /// Panics if the generator produces source the frontend rejects —
    /// that would be a bug, and the generator tests would catch it.
    pub fn generate(spec: SubjectSpec) -> Self {
        Self::generate_with_params(spec, CodegenParams::default())
    }

    /// Generates the subject with explicit [`CodegenParams`] — used by the
    /// annotation-density sweep (`report -- density`).
    pub fn generate_with_params(spec: SubjectSpec, params: CodegenParams) -> Self {
        let mut table = FeatureTable::new();
        let reachable: Vec<FeatureId> = (0..spec.reachable_features)
            .map(|i| table.intern(&format!("F{i}")))
            .collect();
        let unreachable: Vec<FeatureId> = (0..spec.total_features - spec.reachable_features)
            .map(|i| table.intern(&format!("U{i}")))
            .collect();
        let root = table.intern("Root");
        let model = models::model_for(spec.name, spec.model_shape, root, &reachable, &unreachable);
        let source = codegen::generate_source(&spec, &table, &reachable, &unreachable, params);
        let loc = spllift_frontend::count_loc(&source);
        let mut parse_table = table.clone();
        let program = spllift_frontend::parse_spl(&source, &mut parse_table)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}"));
        assert_eq!(
            parse_table.len(),
            table.len(),
            "generator used a feature the table does not know"
        );
        GeneratedSpl {
            spec,
            source,
            program,
            table,
            model,
            reachable,
            root,
            loc,
        }
    }

    /// The model as a propositional constraint.
    pub fn model_expr(&self) -> FeatureExpr {
        self.model.to_expr()
    }

    /// Counts the valid configurations over the *reachable* features
    /// (root and unreachable model features projected away by fixing the
    /// root to `true` and existentially ignoring unreachables — our
    /// models constrain only root + reachable features, so a plain
    /// restricted sat-count suffices). This is the Table 1 "valid"
    /// column, computable even where the paper says *unknown*.
    pub fn count_valid_configs(&self) -> u128 {
        use spllift_features::ConstraintContext as _;
        let ctx = spllift_features::BddConstraintContext::new(&self.table);
        let c = ctx.of_expr(&self.model_expr());
        let root_var = ctx.var_of(self.root).expect("root interned");
        let fixed = c.restrict(root_var, true);
        // Project away any non-reachable variables that might linger in
        // the model (ours constrain only root + reachable features, so
        // this is a no-op in practice, but it keeps the count correct for
        // arbitrary models) and count over the reachable prefix.
        let beyond: Vec<_> = fixed
            .support()
            .into_iter()
            .filter(|v| (v.0 as usize) >= self.reachable.len())
            .collect();
        let projected = fixed.exists_many(&beyond);
        projected.sat_count_over(self.reachable.len() as u32)
    }

    /// Enumerates the valid configurations over the reachable features
    /// (with the root enabled). Only for subjects with small counts —
    /// BerkeleyDB-shaped subjects will refuse (2^39).
    ///
    /// # Panics
    ///
    /// Panics if there are more than 30 reachable features.
    pub fn valid_configurations(&self) -> Vec<Configuration> {
        assert!(
            self.reachable.len() <= 30,
            "refusing to enumerate 2^{} configurations",
            self.reachable.len()
        );
        let expr = self.model_expr();
        let mut out = Vec::new();
        for bits in 0u64..(1u64 << self.reachable.len()) {
            let mut cfg = Configuration::from_bits(bits, self.reachable.len());
            cfg.enable(self.root);
            if cfg.satisfies(&expr) {
                out.push(cfg);
            }
        }
        out
    }

    /// The full-configuration (all reachable features on) and
    /// empty-configuration products — the two runs the paper averages to
    /// extrapolate A2 past the cutoff (§6.2).
    pub fn extrapolation_configs(&self) -> [Configuration; 2] {
        let mut full = Configuration::from_enabled(self.reachable.iter().copied());
        full.enable(self.root);
        let mut empty = Configuration::empty();
        empty.enable(self.root);
        [full, empty]
    }

    /// Builds the ICFG (call graph etc.) — the "Soot/CG" step of Table 2.
    pub fn icfg(&self) -> ProgramIcfg<'_> {
        ProgramIcfg::new(&self.program)
    }
}

#[cfg(test)]
mod tests;
