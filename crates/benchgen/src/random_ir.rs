//! Seeded random IR programs (no source text, straight through the
//! builder) — shared by differential and fuzz-style tests across the
//! workspace.
//!
//! Programs contain assignments, arithmetic, forward/backward branches,
//! static calls (including recursion), taint sources/sinks, and
//! `#ifdef`-style annotations over a small feature set. They always pass
//! [`spllift_ir::Program::check`], always terminate under the
//! interpreter's budget in practice, and exercise every lifted
//! flow-function class.

use spllift_features::{FeatureExpr, FeatureId, FeatureTable};
use spllift_ir::{BinOp, Callee, LocalId, Operand, Program, ProgramBuilder, Rvalue, Type};
use spllift_rng::SplitMix64;

/// A random annotated program plus its feature table.
#[derive(Debug)]
pub struct RandomSpl {
    /// The program (entry point `main`; `secret`/`print` present).
    pub program: Program,
    /// Feature table with `nfeatures` features.
    pub table: FeatureTable,
    /// The features, in order.
    pub features: Vec<FeatureId>,
}

/// Generates a random annotated program. Deterministic in `seed`.
///
/// `nfeatures` ≤ 8 keeps exhaustive configuration sweeps cheap.
pub fn random_spl(seed: u64, nfeatures: usize, nmethods: usize) -> RandomSpl {
    assert!((1..=8).contains(&nfeatures));
    assert!((1..=8).contains(&nmethods));
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut table = FeatureTable::new();
    let features: Vec<FeatureId> = (0..nfeatures)
        .map(|i| table.intern(&format!("F{i}")))
        .collect();

    let mut pb = ProgramBuilder::new();
    let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
    let print = pb.declare_method("print", None, &[Type::Int], None, true);
    {
        let mut mb = pb.method_body(secret);
        let v = mb.local("v", Type::Int);
        mb.assign(v, Rvalue::Use(Operand::IntConst(1234)));
        mb.ret(Some(Operand::Local(v)));
        pb.finish_body(mb);
    }
    {
        let mb = pb.method_body(print);
        pb.finish_body(mb);
    }
    let methods: Vec<_> = (0..nmethods)
        .map(|i| pb.declare_method(&format!("m{i}"), None, &[Type::Int], Some(Type::Int), true))
        .collect();
    let main = pb.declare_method("main", None, &[], None, true);

    let annotation = |rng: &mut SplitMix64| -> FeatureExpr {
        match rng.gen_range(0..8u32) {
            0 | 1 | 2 | 3 => FeatureExpr::True,
            4 => FeatureExpr::var(features[rng.gen_range(0..features.len())]),
            5 => FeatureExpr::var(features[rng.gen_range(0..features.len())]).not(),
            6 => FeatureExpr::var(features[rng.gen_range(0..features.len())])
                .and(FeatureExpr::var(features[rng.gen_range(0..features.len())])),
            _ => FeatureExpr::var(features[rng.gen_range(0..features.len())])
                .or(FeatureExpr::var(features[rng.gen_range(0..features.len())])),
        }
    };

    let emit_body = |pb: &mut ProgramBuilder, rng: &mut SplitMix64, mid, has_param: bool| {
        let mut mb = pb.method_body(mid);
        let mut locals: Vec<LocalId> = Vec::new();
        if has_param {
            locals.push(mb.param_local(0));
        }
        for i in 0..3 {
            locals.push(mb.local(&format!("v{i}"), Type::Int));
        }
        // One possibly-uninitialized local.
        let u = mb.local("u", Type::Int);
        let nops = rng.gen_range(4..12usize);
        let labels: Vec<_> = (0..nops + 1).map(|_| mb.fresh_label()).collect();
        for i in 0..nops {
            mb.bind(labels[i]);
            let ann = annotation(rng);
            let push = ann != FeatureExpr::True;
            if push {
                mb.push_annotation(ann);
            }
            let pick = |rng: &mut SplitMix64| locals[rng.gen_range(0..locals.len())];
            match rng.gen_range(0..10u32) {
                0 | 1 => {
                    let t = pick(rng);
                    let c = rng.gen_range(-4..20);
                    mb.assign(t, Rvalue::Use(Operand::IntConst(c)));
                }
                2 => {
                    let (t, a, b) = (pick(rng), pick(rng), pick(rng));
                    mb.assign(
                        t,
                        Rvalue::Binary(BinOp::Add, Operand::Local(a), Operand::Local(b)),
                    );
                }
                3 => {
                    // Forward conditional branch.
                    let target = (i + 1 + rng.gen_range(1..3)).min(nops);
                    mb.if_cmp(
                        BinOp::Lt,
                        Operand::Local(pick(rng)),
                        Operand::IntConst(rng.gen_range(0..10)),
                        labels[target],
                    );
                }
                4 => {
                    // Forward goto.
                    let target = (i + 1 + rng.gen_range(1..3)).min(nops);
                    mb.goto(labels[target]);
                }
                5 => {
                    let t = pick(rng);
                    mb.invoke(Some(t), Callee::Static(secret), vec![]);
                }
                6 => {
                    mb.invoke(None, Callee::Static(print), vec![Operand::Local(pick(rng))]);
                }
                7 => {
                    let callee = methods[rng.gen_range(0..methods.len())];
                    let (t, a) = (pick(rng), pick(rng));
                    mb.invoke(Some(t), Callee::Static(callee), vec![Operand::Local(a)]);
                }
                8 => {
                    // Use of the possibly-uninitialized local.
                    let t = pick(rng);
                    mb.assign(
                        t,
                        Rvalue::Binary(BinOp::Add, Operand::Local(u), Operand::IntConst(1)),
                    );
                }
                _ => {
                    // Sometimes initialize u (possibly under an annotation).
                    mb.assign(u, Rvalue::Use(Operand::IntConst(7)));
                }
            }
            if push {
                mb.pop_annotation();
            }
        }
        mb.bind(labels[nops]);
        if has_param {
            mb.ret(Some(Operand::Local(locals[rng.gen_range(0..locals.len())])));
        }
        pb.finish_body(mb);
    };

    for &mid in &methods {
        emit_body(&mut pb, &mut rng, mid, true);
    }
    emit_body(&mut pb, &mut rng, main, false);
    pb.add_entry_point(main);
    let program = pb.finish();
    debug_assert!(program.check().is_ok());
    RandomSpl {
        program,
        table,
        features,
    }
}
