//! Feature models with the exact valid-configuration counts of Table 1,
//! plus the shaped models for synthetic scaling subjects.

use crate::ModelShape;
use spllift_features::{FeatureExpr, FeatureId, FeatureModel, GroupKind};

/// Builds the feature model for a subject. `shape` only affects
/// `Synthetic` subjects; the four named subjects always get their
/// Table 1 models.
///
/// The constructions are documented per subject; the arithmetic is
/// verified by the crate's tests against `count_valid_configs`.
pub(crate) fn model_for(
    name: &str,
    shape: ModelShape,
    root: FeatureId,
    reachable: &[FeatureId],
    unreachable: &[FeatureId],
) -> FeatureModel {
    let mut m = FeatureModel::new(root);
    match name {
        // 1 872 = 13 × 9 × 2⁴ over 19 reachable features:
        //   r0..r3   optional, minus 3 forbidden combinations → 13
        //   r4,r5    OR group → 3;  r6,r7 OR group → 3
        //   r8..r14  mandatory → 1
        //   r15..r18 free optional → 2⁴
        "GPL" => {
            assert_eq!(reachable.len(), 19);
            thirteen_block(&mut m, root, &reachable[0..4]);
            m.add_group(root, GroupKind::Or, &reachable[4..6]).unwrap();
            m.add_group(root, GroupKind::Or, &reachable[6..8]).unwrap();
            for &f in &reachable[8..15] {
                m.add_mandatory(root, f).unwrap();
            }
            for &f in &reachable[15..19] {
                m.add_optional(root, f).unwrap();
            }
        }
        // 26 = 13 × 2 over 9 reachable features:
        //   r0..r3 thirteen-block, r4 free, r5..r8 mandatory.
        "MM08" => {
            assert_eq!(reachable.len(), 9);
            thirteen_block(&mut m, root, &reachable[0..4]);
            m.add_optional(root, reachable[4]).unwrap();
            for &f in &reachable[5..9] {
                m.add_mandatory(root, f).unwrap();
            }
        }
        // 4 = 2² : both reachable features unconstrained (the paper:
        // "the feature model ended up not constraining the 4
        // combinations of the 2 reachable features").
        "Lampiro" => {
            assert_eq!(reachable.len(), 2);
            for &f in reachable {
                m.add_optional(root, f).unwrap();
            }
        }
        // BerkeleyDB: the paper could not count the valid configurations
        // (Table 1: "unknown"). We build a structurally rich model —
        // XOR-5 × OR-3 × OR-3 × four implications × 5 mandatory × 15
        // free — whose count (5·7·7·3⁴·2¹⁵ = 650 280 960) our BDD
        // reports in seconds; see EXPERIMENTS.md.
        "BerkeleyDB" => {
            assert_eq!(reachable.len(), 39);
            m.add_group(root, GroupKind::Xor, &reachable[0..5]).unwrap();
            m.add_group(root, GroupKind::Or, &reachable[5..8]).unwrap();
            m.add_group(root, GroupKind::Or, &reachable[8..11]).unwrap();
            for pair in reachable[11..19].chunks(2) {
                m.add_optional(root, pair[0]).unwrap();
                m.add_optional(root, pair[1]).unwrap();
                m.add_constraint(FeatureExpr::var(pair[0]).implies(FeatureExpr::var(pair[1])));
            }
            for &f in &reachable[19..24] {
                m.add_mandatory(root, f).unwrap();
            }
            for &f in &reachable[24..39] {
                m.add_optional(root, f).unwrap();
            }
        }
        // Synthetic scaling subjects: the model is shaped by the spec
        // (see `ModelShape`), defaulting to all-optional/unconstrained
        // — exactly 2^n valid configurations, the worst case for
        // product-based baselines.
        "Synthetic" => match shape {
            ModelShape::Free => {
                for &f in reachable {
                    m.add_optional(root, f).unwrap();
                }
            }
            // fᵢ₊₁ → fᵢ for every i: the valid configurations are
            // exactly the n+1 prefixes, and the model BDD is a linear
            // chain — large universes stay cheap.
            ModelShape::Chain => {
                for &f in reachable {
                    m.add_optional(root, f).unwrap();
                }
                for pair in reachable.windows(2) {
                    m.add_constraint(FeatureExpr::var(pair[1]).implies(FeatureExpr::var(pair[0])));
                }
            }
            // BerkeleyDB-like texture at any size: a leading XOR-3,
            // OR-3 groups over the next third, implication pairs over
            // the following third, one mandatory anchor, free tail.
            ModelShape::Groups => {
                let n = reachable.len();
                let mut i = 0;
                if n >= 3 {
                    m.add_group(root, GroupKind::Xor, &reachable[0..3]).unwrap();
                    i = 3;
                }
                let or_end = i + (n - i) / 3 / 3 * 3;
                while i + 3 <= or_end {
                    m.add_group(root, GroupKind::Or, &reachable[i..i + 3])
                        .unwrap();
                    i += 3;
                }
                let imp_end = i + (n - i) / 3 / 2 * 2;
                while i + 2 <= imp_end {
                    m.add_optional(root, reachable[i]).unwrap();
                    m.add_optional(root, reachable[i + 1]).unwrap();
                    m.add_constraint(
                        FeatureExpr::var(reachable[i]).implies(FeatureExpr::var(reachable[i + 1])),
                    );
                    i += 2;
                }
                if i < n {
                    m.add_mandatory(root, reachable[i]).unwrap();
                    i += 1;
                }
                for &f in &reachable[i..] {
                    m.add_optional(root, f).unwrap();
                }
            }
        },
        other => panic!("unknown subject {other}"),
    }
    // Unreachable features are optional and unconstrained; with the root
    // enabled they cancel out of the model constraint entirely.
    for &u in unreachable {
        m.add_optional(root, u).unwrap();
    }
    m
}

/// Four optional features with exactly 13 of the 16 combinations allowed
/// (three cross-tree prohibitions).
fn thirteen_block(m: &mut FeatureModel, root: FeatureId, f: &[FeatureId]) {
    assert_eq!(f.len(), 4);
    for &x in f {
        m.add_optional(root, x).unwrap();
    }
    let v = |i: usize| FeatureExpr::var(f[i]);
    m.add_constraint(v(0).and(v(1)).and(v(2)).and(v(3)).not());
    m.add_constraint(v(0).and(v(1)).and(v(2)).and(v(3).not()).not());
    m.add_constraint(v(0).and(v(1)).and(v(2).not()).and(v(3)).not());
}
