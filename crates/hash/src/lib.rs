//! A tiny, dependency-free, fast non-cryptographic hasher for the
//! solver hot paths.
//!
//! The workspace must build **offline** (see `DESIGN.md` §5), so we
//! cannot pull in `rustc-hash`/`fxhash`/`ahash`; this crate provides
//! the small part of them the solvers need. The std `HashMap` defaults
//! to SipHash-1-3, which is DoS-resistant but spends ~1 ns/byte on
//! keys; the SPLLIFT hot path — BDD unique-table and op-cache lookups,
//! IDE jump-function maps, IFDS path-edge dedup — hashes billions of
//! tiny fixed-size keys (a few machine words each), where a
//! multiply-rotate mixer is several times faster and the keys are
//! internal solver state, never attacker-controlled.
//!
//! [`FxHasher64`] uses the FxHash word-mixing step (the compiler's
//! `(state.rotate_left(5) ^ word) * SEED` per 8-byte word), plus a
//! SplitMix64-style finalizer in [`finish`](std::hash::Hasher::finish)
//! so the low bits — the ones hashbrown's bucket index uses — see full
//! avalanche even for keys that only differ in their high bits.
//!
//! # Example
//!
//! ```
//! use spllift_hash::{FastMap, FastSet};
//! let mut m: FastMap<(u32, u32), u64> = FastMap::default();
//! m.insert((1, 2), 3);
//! assert_eq!(m.get(&(1, 2)), Some(&3));
//! let mut s: FastSet<u32> = FastSet::default();
//! assert!(s.insert(7));
//! ```

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The FxHash multiplication constant (a 64-bit odd number derived from
/// the golden ratio; the same one rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic 64-bit hasher.
///
/// Deterministic across processes and runs (no random state), which the
/// deterministic-output invariants of the parallel drivers rely on —
/// and which also means it must **never** be used on attacker-chosen
/// keys where HashDoS matters. Every key it hashes in this workspace is
/// internal solver state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(word.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_to_hash(u32::from_le_bytes(word.try_into().unwrap()) as u64);
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // SplitMix64 finalizer: full avalanche so the low bits (the
        // hashbrown bucket index) depend on every input bit.
        let mut z = self.hash;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `BuildHasher` producing [`FxHasher64`]s (zero-sized, `Default`).
pub type FastBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` keyed with [`FxHasher64`] — drop-in for hot-path maps.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FxHasher64`] — drop-in for hot-path sets.
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

/// Hashes one value to a 64-bit digest (convenience for checksums).
pub fn hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher64::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let key = (42u32, 7u32, "x");
        assert_eq!(hash_one(&key), hash_one(&key));
        let mut a = FxHasher64::default();
        let mut b = FxHasher64::default();
        key.hash(&mut a);
        key.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn small_integer_keys_do_not_collide() {
        // The BDD unique table hashes (var, low, high) triples of small
        // integers; a mixer with weak low bits would cluster them.
        let mut seen = HashSet::new();
        for var in 0u32..32 {
            for low in 0u32..32 {
                for high in 0u32..32 {
                    assert!(
                        seen.insert(hash_one(&(var, low, high))),
                        "collision at ({var},{low},{high})"
                    );
                }
            }
        }
    }

    #[test]
    fn low_bits_are_mixed() {
        // Keys differing only in high bits must differ in low bits
        // often enough for bucket indexing: 1024 uniform draws over 256
        // bins hit ~251 distinct values in expectation (256·(1−e⁻⁴));
        // raw FxHash without a finalizer would hit far fewer.
        let mut low_bytes = HashSet::new();
        for i in 0u64..1024 {
            low_bytes.insert((hash_one(&(i << 48)) & 0xff) as u8);
        }
        assert!(low_bytes.len() > 235, "only {} low bytes", low_bytes.len());
    }

    #[test]
    fn byte_slices_hash_by_content() {
        assert_eq!(hash_one(&[1u8, 2, 3][..]), hash_one(&[1u8, 2, 3][..]));
        assert_ne!(hash_one(&[1u8, 2, 3][..]), hash_one(&[1u8, 2, 4][..]));
        // Exercise the 8-byte, 4-byte, and tail paths of `write`.
        let long: Vec<u8> = (0..29).collect();
        let mut tweaked = long.clone();
        tweaked[28] ^= 1;
        assert_ne!(hash_one(&long[..]), hash_one(&tweaked[..]));
    }

    #[test]
    fn fast_map_and_set_behave_like_std() {
        let mut m: FastMap<String, usize> = FastMap::default();
        for i in 0..100 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get("k42"), Some(&42));
        let mut s: FastSet<(u64, u64)> = FastSet::default();
        for i in 0..100u64 {
            assert!(s.insert((i, i * 3)));
            assert!(!s.insert((i, i * 3)));
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn with_capacity_constructors_work() {
        // `with_capacity_and_hasher` is what hot loops use to presize.
        let m: FastMap<u32, u32> = FastMap::with_capacity_and_hasher(64, Default::default());
        assert!(m.capacity() >= 64);
    }
}
