//! The lexer.

use crate::{FrontendError, Pos};

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `#ifdef` directive.
    HashIfdef,
    /// `#else` directive.
    HashElse,
    /// `#endif` directive.
    HashEndif,
    /// A punctuation/operator token, e.g. `&&`, `==`, `{`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The kind.
    pub kind: TokenKind,
    /// The starting position.
    pub pos: Pos,
}

/// Converts source text to tokens.
#[derive(Debug)]
pub struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

const PUNCTS: &[&str] = &[
    "&&", "||", "==", "!=", "<=", ">=", "{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "!", "<",
    ">", "+", "-", "*", "/", "%",
];

impl<'s> Lexer<'s> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'s str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Lexes the whole input.
    ///
    /// # Errors
    ///
    /// Returns a [`FrontendError`] on an unknown character or an
    /// unterminated block comment.
    pub fn tokenize(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = Pos {
                line: self.line,
                col: self.col,
            };
            let Some(&c) = self.src.get(self.pos) else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                return Ok(out);
            };
            let kind = if c == b'#' {
                self.lex_directive()?
            } else if c.is_ascii_alphabetic() || c == b'_' {
                let ident = self.lex_while(|c| c.is_ascii_alphanumeric() || c == b'_');
                TokenKind::Ident(ident)
            } else if c.is_ascii_digit() {
                let digits = self.lex_while(|c| c.is_ascii_digit());
                let value = digits.parse::<i64>().map_err(|_| {
                    FrontendError::new(format!("integer literal too large: {digits}"), pos)
                })?;
                TokenKind::Int(value)
            } else if let Some(p) = PUNCTS
                .iter()
                .find(|p| self.src[self.pos..].starts_with(p.as_bytes()))
            {
                self.advance(p.len());
                TokenKind::Punct(p)
            } else {
                return Err(FrontendError::new(
                    format!("unexpected character {:?}", c as char),
                    pos,
                ));
            };
            out.push(Token { kind, pos });
        }
    }

    fn lex_directive(&mut self) -> Result<TokenKind, FrontendError> {
        let pos = Pos {
            line: self.line,
            col: self.col,
        };
        self.advance(1); // '#'
        let word = self.lex_while(|c| c.is_ascii_alphabetic());
        match word.as_str() {
            "ifdef" => Ok(TokenKind::HashIfdef),
            "else" => Ok(TokenKind::HashElse),
            "endif" => Ok(TokenKind::HashEndif),
            other => Err(FrontendError::new(
                format!("unknown directive #{other} (expected #ifdef/#else/#endif)"),
                pos,
            )),
        }
    }

    fn lex_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while self.src.get(self.pos).copied().is_some_and(&pred) {
            self.advance(1);
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn skip_trivia(&mut self) -> Result<(), FrontendError> {
        loop {
            match self.src.get(self.pos) {
                Some(c) if c.is_ascii_whitespace() => self.advance(1),
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while self.src.get(self.pos).is_some_and(|&c| c != b'\n') {
                        self.advance(1);
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    let start = Pos {
                        line: self.line,
                        col: self.col,
                    };
                    self.advance(2);
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(FrontendError::new("unterminated block comment", start));
                        }
                        if self.src[self.pos..].starts_with(b"*/") {
                            self.advance(2);
                            break;
                        }
                        self.advance(1);
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.src.get(self.pos) == Some(&b'\n') {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
    }
}
