//! The abstract syntax tree.

use crate::Pos;
use spllift_features::FeatureExpr;

/// A parsed compilation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct AstProgram {
    /// The classes, in source order.
    pub classes: Vec<AstClass>,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AstClass {
    /// Class name.
    pub name: String,
    /// Superclass name, if `extends` was given.
    pub superclass: Option<String>,
    /// Field declarations.
    pub fields: Vec<AstField>,
    /// Method declarations.
    pub methods: Vec<AstMethod>,
    /// Source position.
    pub pos: Pos,
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AstField {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: AstType,
    /// Source position.
    pub pos: Pos,
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AstMethod {
    /// Method name.
    pub name: String,
    /// `true` for `static` methods.
    pub is_static: bool,
    /// Return type; `None` for `void`.
    pub ret: Option<AstType>,
    /// Parameters (name, type).
    pub params: Vec<(String, AstType)>,
    /// The body statements.
    pub body: Vec<AstStmt>,
    /// Source position.
    pub pos: Pos,
}

/// A source-level type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstType {
    /// `int`
    Int,
    /// `boolean`
    Boolean,
    /// A class reference by name.
    Class(String),
    /// A one-dimensional array `T[]`.
    Array(Box<AstType>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum AstStmt {
    /// `type name [= init];`
    LocalDecl {
        /// Declared name.
        name: String,
        /// Declared type.
        ty: AstType,
        /// Optional initializer.
        init: Option<AstExpr>,
        /// Position.
        pos: Pos,
    },
    /// `lvalue = expr;`
    Assign {
        /// Assignment target.
        target: AstLValue,
        /// Right-hand side.
        value: AstExpr,
        /// Position.
        pos: Pos,
    },
    /// An expression statement (a call).
    Expr(AstExpr, Pos),
    /// `if (cond) { .. } [else { .. }]`
    If {
        /// Condition.
        cond: AstExpr,
        /// Then-branch.
        then_body: Vec<AstStmt>,
        /// Else-branch.
        else_body: Vec<AstStmt>,
        /// Position.
        pos: Pos,
    },
    /// `for (init; cond; update) { .. }`
    For {
        /// Optional init statement (declaration or assignment).
        init: Option<Box<AstStmt>>,
        /// Loop condition.
        cond: AstExpr,
        /// Optional update statement (assignment).
        update: Option<Box<AstStmt>>,
        /// Loop body.
        body: Vec<AstStmt>,
        /// Position.
        pos: Pos,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: AstExpr,
        /// Loop body.
        body: Vec<AstStmt>,
        /// Position.
        pos: Pos,
    },
    /// `return [expr];`
    Return(Option<AstExpr>, Pos),
    /// `#ifdef cond … [#else …] #endif`
    Ifdef {
        /// The feature condition.
        cond: FeatureExpr,
        /// Statements under the condition.
        then_body: Vec<AstStmt>,
        /// Statements under the negated condition.
        else_body: Vec<AstStmt>,
        /// Position.
        pos: Pos,
    },
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum AstLValue {
    /// A local variable.
    Local(String),
    /// `base.field` — `base` is a local name or a class name.
    Field {
        /// Receiver: local or class name.
        base: String,
        /// Field name.
        field: String,
    },
    /// `base[index]` — an array element.
    Index {
        /// The array local.
        base: String,
        /// Index expression.
        index: Box<AstExpr>,
    },
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// A local variable read.
    Local(String, Pos),
    /// `base.field` read — `base` is a local name or a class name.
    Field {
        /// Receiver: local or class name.
        base: String,
        /// Field name.
        field: String,
        /// Position.
        pos: Pos,
    },
    /// `new C()`.
    New(String, Pos),
    /// `new T[len]`.
    NewArray {
        /// Element type.
        elem: AstType,
        /// Length expression.
        len: Box<AstExpr>,
        /// Position.
        pos: Pos,
    },
    /// `base[index]` — an array element read.
    Index {
        /// The array local.
        base: String,
        /// Index expression.
        index: Box<AstExpr>,
        /// Position.
        pos: Pos,
    },
    /// Unary operator.
    Unary {
        /// `!` or `-`.
        op: AstUnOp,
        /// Operand.
        expr: Box<AstExpr>,
    },
    /// Binary operator (incl. short-circuit `&&`/`||`).
    Binary {
        /// The operator.
        op: AstBinOp,
        /// Left operand.
        lhs: Box<AstExpr>,
        /// Right operand.
        rhs: Box<AstExpr>,
    },
    /// A call: `m(args)`, `Class.m(args)`, or `local.m(args)`.
    Call {
        /// Receiver: `None` for same-class calls, or a local/class name.
        receiver: Option<String>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<AstExpr>,
        /// Position.
        pos: Pos,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstUnOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}
