//! A frontend for a mini-Java language with CIDE-style `#ifdef`
//! annotations, lowering to the Jimple-like IR.
//!
//! This crate is the SPLLIFT reproduction's stand-in for CIDE + Soot's
//! Java frontend. The language is a Java subset:
//!
//! * classes with single inheritance, fields, static and instance methods,
//! * types `int`, `boolean`, and class references,
//! * statements: local declarations, assignments, field stores, `if`/
//!   `else`, `while`, `return`, calls,
//! * expressions: literals, locals, field loads, `new C()`, unary `!`/`-`,
//!   binary arithmetic/comparison, short-circuit `&&`/`||`, and method
//!   calls (static `C.m(..)`, same-class `m(..)`, or virtual `x.m(..)`),
//! * **disciplined feature annotations**: `#ifdef <expr> … [#else …]
//!   #endif` around whole statements or members, nestable — exactly the
//!   discipline CIDE enforces (paper §5: "users mark code regions that
//!   span entire statements, members or classes").
//!
//! Lowering produces three-address code: expressions are flattened into
//! temporaries, `if`/`while` become conditional/unconditional branches,
//! and every statement inherits the conjunction of its enclosing `#ifdef`
//! conditions as its feature annotation.
//!
//! # Example
//!
//! ```
//! use spllift_features::FeatureTable;
//! use spllift_frontend::parse_spl;
//!
//! let source = r#"
//!     class Main {
//!         static void main() {
//!             int x = 1;
//!             #ifdef LOGGING
//!             x = 2;
//!             #endif
//!         }
//!     }
//! "#;
//! let mut table = FeatureTable::new();
//! let program = parse_spl(source, &mut table)?;
//! assert!(program.check().is_ok());
//! assert_eq!(table.len(), 1); // LOGGING
//! # Ok::<(), spllift_frontend::FrontendError>(())
//! ```

#![warn(missing_docs)]
mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::*;
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::lower_program;
pub use parser::Parser;

use spllift_features::FeatureTable;
use spllift_ir::Program;
use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error produced by the frontend, with a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub pos: Pos,
}

impl FrontendError {
    pub(crate) fn new(message: impl Into<String>, pos: Pos) -> Self {
        FrontendError {
            message: message.into(),
            pos,
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for FrontendError {}

/// Parses and lowers a product-line source file to the IR.
///
/// Feature names from `#ifdef` expressions are interned into `table`.
/// Every method named `main` becomes an analysis entry point.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error with its
/// source position.
pub fn parse_spl(source: &str, table: &mut FeatureTable) -> Result<Program, FrontendError> {
    let ast = Parser::parse(source, table)?;
    lower_program(&ast)
}

/// Parses SPL source in either supported text format, sniffing the
/// repro-file header: input starting with
/// [`spllift_ir::text::REPRO_HEADER`] goes through
/// [`spllift_ir::text::parse_repro`], anything else through
/// [`parse_spl`]. Used by the analysis server's `load` request, which
/// accepts both formats.
///
/// # Errors
///
/// The respective parser's error, rendered to a string (the two parsers
/// report positions differently).
pub fn parse_source(source: &str, table: &mut FeatureTable) -> Result<Program, String> {
    if source
        .trim_start()
        .starts_with(spllift_ir::text::REPRO_HEADER)
    {
        let (program, parsed_table) =
            spllift_ir::text::parse_repro(source).map_err(|e| e.to_string())?;
        // Repro files fix the feature order via their `features` header;
        // merge into the caller's (expected-empty) table in that order.
        for (_, name) in parsed_table.iter() {
            table.intern(name);
        }
        Ok(program)
    } else {
        parse_spl(source, table).map_err(|e| e.to_string())
    }
}

/// Counts the non-blank, non-comment source lines — the KLOC metric of
/// the paper's Table 1.
pub fn count_loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

#[cfg(test)]
mod tests;
