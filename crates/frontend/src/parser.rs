//! The recursive-descent parser.

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use crate::{FrontendError, Pos};
use spllift_features::{FeatureExpr, FeatureTable};

/// Parses token streams into an [`AstProgram`].
#[derive(Debug)]
pub struct Parser<'t> {
    tokens: Vec<Token>,
    pos: usize,
    table: &'t mut FeatureTable,
}

const KEYWORDS: &[&str] = &[
    "class", "extends", "static", "void", "int", "boolean", "if", "else", "while", "for", "return",
    "new", "true", "false", "null",
];

impl<'t> Parser<'t> {
    /// Parses `source`, interning feature names into `table`.
    ///
    /// # Errors
    ///
    /// The first lexical or syntax error, with position.
    pub fn parse(source: &str, table: &'t mut FeatureTable) -> Result<AstProgram, FrontendError> {
        let tokens = Lexer::new(source).tokenize()?;
        let mut p = Parser {
            tokens,
            pos: 0,
            table,
        };
        let mut classes = Vec::new();
        while !p.at_eof() {
            classes.push(p.class_decl()?);
        }
        Ok(AstProgram { classes })
    }

    // --- token helpers -------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, FrontendError> {
        Err(FrontendError::new(msg, self.peek().pos))
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<Pos, FrontendError> {
        if self.is_punct(p) {
            Ok(self.bump().pos)
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.peek().kind))
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(w) if w == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Pos, FrontendError> {
        if self.is_keyword(kw) {
            Ok(self.bump().pos)
        } else {
            self.err(format!("expected `{kw}`, found {:?}", self.peek().kind))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Pos), FrontendError> {
        match &self.peek().kind {
            TokenKind::Ident(w) if !KEYWORDS.contains(&w.as_str()) => {
                let w = w.clone();
                let pos = self.bump().pos;
                Ok((w, pos))
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // --- declarations ---------------------------------------------------

    fn class_decl(&mut self) -> Result<AstClass, FrontendError> {
        let pos = self.expect_keyword("class")?;
        let (name, _) = self.expect_ident()?;
        let superclass = if self.eat_keyword("extends") {
            Some(self.expect_ident()?.0)
        } else {
            None
        };
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return self.err("unexpected end of input inside class body");
            }
            self.member(&mut fields, &mut methods)?;
        }
        Ok(AstClass {
            name,
            superclass,
            fields,
            methods,
            pos,
        })
    }

    fn parse_type(&mut self) -> Result<AstType, FrontendError> {
        let base = if self.eat_keyword("int") {
            AstType::Int
        } else if self.eat_keyword("boolean") {
            AstType::Boolean
        } else {
            let (name, _) = self.expect_ident()?;
            AstType::Class(name)
        };
        if self.eat_punct("[") {
            self.expect_punct("]")?;
            return Ok(AstType::Array(Box::new(base)));
        }
        Ok(base)
    }

    fn member(
        &mut self,
        fields: &mut Vec<AstField>,
        methods: &mut Vec<AstMethod>,
    ) -> Result<(), FrontendError> {
        let is_static = self.eat_keyword("static");
        let pos = self.peek().pos;
        let ret = if self.eat_keyword("void") {
            None
        } else {
            Some(self.parse_type()?)
        };
        let (name, _) = self.expect_ident()?;
        if self.is_punct("(") {
            // Method.
            self.bump();
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    let ty = self.parse_type()?;
                    let (pname, _) = self.expect_ident()?;
                    params.push((pname, ty));
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            self.expect_punct("{")?;
            let body = self.stmt_list_until_brace()?;
            methods.push(AstMethod {
                name,
                is_static,
                ret,
                params,
                body,
                pos,
            });
        } else {
            // Field.
            let Some(ty) = ret else {
                return self.err("fields cannot have type void");
            };
            self.expect_punct(";")?;
            fields.push(AstField { name, ty, pos });
        }
        Ok(())
    }

    // --- statements -----------------------------------------------------

    fn stmt_list_until_brace(&mut self) -> Result<Vec<AstStmt>, FrontendError> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return self.err("unexpected end of input; missing `}`");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn block(&mut self) -> Result<Vec<AstStmt>, FrontendError> {
        self.expect_punct("{")?;
        self.stmt_list_until_brace()
    }

    fn feature_expr(&mut self) -> Result<FeatureExpr, FrontendError> {
        self.feature_or()
    }

    fn feature_or(&mut self) -> Result<FeatureExpr, FrontendError> {
        let mut e = self.feature_and()?;
        while self.eat_punct("||") {
            e = e.or(self.feature_and()?);
        }
        Ok(e)
    }

    fn feature_and(&mut self) -> Result<FeatureExpr, FrontendError> {
        let mut e = self.feature_unary()?;
        while self.eat_punct("&&") {
            e = e.and(self.feature_unary()?);
        }
        Ok(e)
    }

    fn feature_unary(&mut self) -> Result<FeatureExpr, FrontendError> {
        if self.eat_punct("!") {
            return Ok(self.feature_unary()?.not());
        }
        if self.eat_punct("(") {
            let e = self.feature_or()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        if self.eat_keyword("true") {
            return Ok(FeatureExpr::True);
        }
        if self.eat_keyword("false") {
            return Ok(FeatureExpr::False);
        }
        let (name, _) = self.expect_ident()?;
        Ok(FeatureExpr::Var(self.table.intern(&name)))
    }

    fn stmt(&mut self) -> Result<AstStmt, FrontendError> {
        let pos = self.peek().pos;
        // #ifdef
        if matches!(self.peek().kind, TokenKind::HashIfdef) {
            self.bump();
            let cond = self.feature_expr()?;
            let mut then_body = Vec::new();
            let mut else_body = Vec::new();
            let mut in_else = false;
            loop {
                match &self.peek().kind {
                    TokenKind::HashEndif => {
                        self.bump();
                        break;
                    }
                    TokenKind::HashElse => {
                        if in_else {
                            return self.err("duplicate #else");
                        }
                        self.bump();
                        in_else = true;
                    }
                    TokenKind::Eof => return self.err("unterminated #ifdef"),
                    TokenKind::Punct("}") => {
                        return self.err("unterminated #ifdef (missing #endif before `}`)")
                    }
                    _ => {
                        let s = self.stmt()?;
                        if in_else {
                            else_body.push(s);
                        } else {
                            then_body.push(s);
                        }
                    }
                }
            }
            return Ok(AstStmt::Ifdef {
                cond,
                then_body,
                else_body,
                pos,
            });
        }
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_body = self.block()?;
            let else_body = if self.eat_keyword("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(AstStmt::If {
                cond,
                then_body,
                else_body,
                pos,
            });
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(AstStmt::While { cond, body, pos });
        }
        if self.eat_keyword("for") {
            self.expect_punct("(")?;
            let init = if self.is_punct(";") {
                self.bump();
                None
            } else {
                Some(Box::new(self.simple_stmt()?))
            };
            let cond = self.expr()?;
            self.expect_punct(";")?;
            let update = if self.is_punct(")") {
                None
            } else {
                Some(Box::new(self.simple_stmt_no_semi()?))
            };
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(AstStmt::For {
                init,
                cond,
                update,
                body,
                pos,
            });
        }
        if self.eat_keyword("return") {
            let value = if self.is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(AstStmt::Return(value, pos));
        }
        // Local declaration: `int x ...` / `boolean b ...` / `C x ...`.
        if self.is_keyword("int") || self.is_keyword("boolean") || self.is_local_decl() {
            let ty = self.parse_type()?;
            let (name, _) = self.expect_ident()?;
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(AstStmt::LocalDecl {
                name,
                ty,
                init,
                pos,
            });
        }
        // Assignment or expression statement.
        let (first, _) = self.expect_ident()?;
        if self.eat_punct("=") {
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(AstStmt::Assign {
                target: AstLValue::Local(first),
                value,
                pos,
            });
        }
        if self.eat_punct("[") {
            let index = self.expr()?;
            self.expect_punct("]")?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(AstStmt::Assign {
                target: AstLValue::Index {
                    base: first,
                    index: Box::new(index),
                },
                value,
                pos,
            });
        }
        if self.eat_punct(".") {
            let (second, _) = self.expect_ident()?;
            if self.is_punct("(") {
                let call = self.finish_call(Some(first), second, pos)?;
                self.expect_punct(";")?;
                return Ok(AstStmt::Expr(call, pos));
            }
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(AstStmt::Assign {
                target: AstLValue::Field {
                    base: first,
                    field: second,
                },
                value,
                pos,
            });
        }
        if self.is_punct("(") {
            let call = self.finish_call(None, first, pos)?;
            self.expect_punct(";")?;
            return Ok(AstStmt::Expr(call, pos));
        }
        self.err("expected statement")
    }

    /// A declaration or assignment terminated by `;` (for-loop init).
    fn simple_stmt(&mut self) -> Result<AstStmt, FrontendError> {
        let s = self.simple_stmt_no_semi()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// A declaration or assignment *without* the trailing `;`
    /// (for-loop update clause).
    fn simple_stmt_no_semi(&mut self) -> Result<AstStmt, FrontendError> {
        let pos = self.peek().pos;
        if self.is_keyword("int") || self.is_keyword("boolean") || self.is_local_decl() {
            let ty = self.parse_type()?;
            let (name, _) = self.expect_ident()?;
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(AstStmt::LocalDecl {
                name,
                ty,
                init,
                pos,
            });
        }
        let (first, _) = self.expect_ident()?;
        self.expect_punct("=")?;
        let value = self.expr()?;
        Ok(AstStmt::Assign {
            target: AstLValue::Local(first),
            value,
            pos,
        })
    }

    /// Lookahead: `Ident Ident` (or `Ident [ ] Ident`) begins a local
    /// declaration of class (or class-array) type.
    fn is_local_decl(&self) -> bool {
        let TokenKind::Ident(first) = &self.peek().kind else {
            return false;
        };
        if KEYWORDS.contains(&first.as_str()) {
            return false;
        }
        let at = |o: usize| self.tokens.get(self.pos + o).map(|t| &t.kind);
        match at(1) {
            Some(TokenKind::Ident(second)) => !KEYWORDS.contains(&second.as_str()),
            Some(TokenKind::Punct("[")) => {
                matches!(at(2), Some(TokenKind::Punct("]")))
                    && matches!(at(3), Some(TokenKind::Ident(n)) if !KEYWORDS.contains(&n.as_str()))
            }
            _ => false,
        }
    }

    // --- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<AstExpr, FrontendError> {
        self.expr_or()
    }

    fn expr_or(&mut self) -> Result<AstExpr, FrontendError> {
        let mut e = self.expr_and()?;
        while self.eat_punct("||") {
            let rhs = self.expr_and()?;
            e = AstExpr::Binary {
                op: AstBinOp::Or,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn expr_and(&mut self) -> Result<AstExpr, FrontendError> {
        let mut e = self.expr_equality()?;
        while self.eat_punct("&&") {
            let rhs = self.expr_equality()?;
            e = AstExpr::Binary {
                op: AstBinOp::And,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn expr_equality(&mut self) -> Result<AstExpr, FrontendError> {
        let mut e = self.expr_rel()?;
        loop {
            let op = if self.eat_punct("==") {
                AstBinOp::Eq
            } else if self.eat_punct("!=") {
                AstBinOp::Ne
            } else {
                return Ok(e);
            };
            let rhs = self.expr_rel()?;
            e = AstExpr::Binary {
                op,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
    }

    fn expr_rel(&mut self) -> Result<AstExpr, FrontendError> {
        let mut e = self.expr_add()?;
        loop {
            let op = if self.eat_punct("<=") {
                AstBinOp::Le
            } else if self.eat_punct(">=") {
                AstBinOp::Ge
            } else if self.eat_punct("<") {
                AstBinOp::Lt
            } else if self.eat_punct(">") {
                AstBinOp::Gt
            } else {
                return Ok(e);
            };
            let rhs = self.expr_add()?;
            e = AstExpr::Binary {
                op,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
    }

    fn expr_add(&mut self) -> Result<AstExpr, FrontendError> {
        let mut e = self.expr_mul()?;
        loop {
            let op = if self.eat_punct("+") {
                AstBinOp::Add
            } else if self.eat_punct("-") {
                AstBinOp::Sub
            } else {
                return Ok(e);
            };
            let rhs = self.expr_mul()?;
            e = AstExpr::Binary {
                op,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
    }

    fn expr_mul(&mut self) -> Result<AstExpr, FrontendError> {
        let mut e = self.expr_unary()?;
        loop {
            let op = if self.eat_punct("*") {
                AstBinOp::Mul
            } else if self.eat_punct("/") {
                AstBinOp::Div
            } else if self.eat_punct("%") {
                AstBinOp::Rem
            } else {
                return Ok(e);
            };
            let rhs = self.expr_unary()?;
            e = AstExpr::Binary {
                op,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
    }

    fn expr_unary(&mut self) -> Result<AstExpr, FrontendError> {
        if self.eat_punct("!") {
            return Ok(AstExpr::Unary {
                op: AstUnOp::Not,
                expr: Box::new(self.expr_unary()?),
            });
        }
        if self.eat_punct("-") {
            return Ok(AstExpr::Unary {
                op: AstUnOp::Neg,
                expr: Box::new(self.expr_unary()?),
            });
        }
        self.expr_primary()
    }

    fn expr_primary(&mut self) -> Result<AstExpr, FrontendError> {
        let pos = self.peek().pos;
        if let TokenKind::Int(v) = self.peek().kind {
            self.bump();
            return Ok(AstExpr::Int(v));
        }
        if self.eat_keyword("true") {
            return Ok(AstExpr::Bool(true));
        }
        if self.eat_keyword("false") {
            return Ok(AstExpr::Bool(false));
        }
        if self.eat_keyword("null") {
            return Ok(AstExpr::Null);
        }
        if self.eat_keyword("new") {
            // `new int[n]` / `new boolean[n]` / `new C[n]` / `new C()`.
            let elem = if self.eat_keyword("int") {
                Some(AstType::Int)
            } else if self.eat_keyword("boolean") {
                Some(AstType::Boolean)
            } else {
                None
            };
            if let Some(elem) = elem {
                self.expect_punct("[")?;
                let len = self.expr()?;
                self.expect_punct("]")?;
                return Ok(AstExpr::NewArray {
                    elem,
                    len: Box::new(len),
                    pos,
                });
            }
            let (name, _) = self.expect_ident()?;
            if self.eat_punct("[") {
                let len = self.expr()?;
                self.expect_punct("]")?;
                return Ok(AstExpr::NewArray {
                    elem: AstType::Class(name),
                    len: Box::new(len),
                    pos,
                });
            }
            self.expect_punct("(")?;
            self.expect_punct(")")?;
            return Ok(AstExpr::New(name, pos));
        }
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        let (first, _) = self.expect_ident()?;
        if self.is_punct("(") {
            return self.finish_call(None, first, pos);
        }
        if self.eat_punct("[") {
            let index = self.expr()?;
            self.expect_punct("]")?;
            return Ok(AstExpr::Index {
                base: first,
                index: Box::new(index),
                pos,
            });
        }
        if self.eat_punct(".") {
            let (second, _) = self.expect_ident()?;
            if self.is_punct("(") {
                return self.finish_call(Some(first), second, pos);
            }
            return Ok(AstExpr::Field {
                base: first,
                field: second,
                pos,
            });
        }
        Ok(AstExpr::Local(first, pos))
    }

    fn finish_call(
        &mut self,
        receiver: Option<String>,
        method: String,
        pos: Pos,
    ) -> Result<AstExpr, FrontendError> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.expr()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(AstExpr::Call {
            receiver,
            method,
            args,
            pos,
        })
    }
}
