use crate::{count_loc, parse_spl, FrontendError};
use spllift_features::{FeatureExpr, FeatureTable};
use spllift_ir::{StmtKind, Type};

fn parse_ok(src: &str) -> (spllift_ir::Program, FeatureTable) {
    let mut table = FeatureTable::new();
    let p = parse_spl(src, &mut table).expect("parse");
    assert!(p.check().is_ok());
    (p, table)
}

fn parse_err(src: &str) -> FrontendError {
    let mut table = FeatureTable::new();
    parse_spl(src, &mut table).expect_err("expected error")
}

const FIG1: &str = r#"
class Main {
    static int secret() { return 42; }
    static void print(int v) { }
    static int foo(int p) {
        #ifdef H
        p = 0;
        #endif
        return p;
    }
    static void main() {
        int x = secret();
        int y = 0;
        #ifdef F
        x = 0;
        #endif
        #ifdef G
        y = Main.foo(x);
        #endif
        Main.print(y);
    }
}
"#;

mod parsing {
    use super::*;

    #[test]
    fn fig1_parses_and_lowers() {
        let (p, table) = parse_ok(FIG1);
        assert_eq!(p.classes().len(), 1);
        assert_eq!(p.methods().len(), 4);
        assert_eq!(table.len(), 3); // H, F, G
        assert_eq!(p.entry_points().len(), 1);
    }

    #[test]
    fn annotations_attach_to_statements() {
        let (p, table) = parse_ok(FIG1);
        let main = p.find_method("Main.main").unwrap();
        let f = table.get("F").unwrap();
        let annotated: Vec<_> = p
            .stmts_of(main)
            .filter(|&s| p.stmt(s).annotation != FeatureExpr::True)
            .collect();
        assert!(!annotated.is_empty());
        assert!(annotated
            .iter()
            .any(|&s| p.stmt(s).annotation == FeatureExpr::var(f)));
    }

    #[test]
    fn nested_ifdefs_conjoin() {
        let src = r#"
        class C {
            static void main() {
                int x = 0;
                #ifdef A
                #ifdef B
                x = 1;
                #endif
                #endif
            }
        }
        "#;
        let (p, table) = parse_ok(src);
        let a = table.get("A").unwrap();
        let b = table.get("B").unwrap();
        let main = p.find_method("C.main").unwrap();
        let expected = FeatureExpr::var(a).and(FeatureExpr::var(b));
        assert!(p.stmts_of(main).any(|s| p.stmt(s).annotation == expected));
    }

    #[test]
    fn ifdef_else_negates() {
        let src = r#"
        class C {
            static void main() {
                int x = 0;
                #ifdef A
                x = 1;
                #else
                x = 2;
                #endif
            }
        }
        "#;
        let (p, table) = parse_ok(src);
        let a = table.get("A").unwrap();
        let main = p.find_method("C.main").unwrap();
        let anns: Vec<_> = p
            .stmts_of(main)
            .map(|s| p.stmt(s).annotation.clone())
            .collect();
        assert!(anns.contains(&FeatureExpr::var(a)));
        assert!(anns.contains(&FeatureExpr::var(a).not()));
    }

    #[test]
    fn ifdef_with_compound_condition() {
        let src = r#"
        class C {
            static void main() {
                #ifdef A && !B
                int x = 0;
                #endif
            }
        }
        "#;
        let (p, table) = parse_ok(src);
        let a = table.get("A").unwrap();
        let b = table.get("B").unwrap();
        let main = p.find_method("C.main").unwrap();
        let expected = FeatureExpr::var(a).and(FeatureExpr::var(b).not());
        assert!(p.stmts_of(main).any(|s| p.stmt(s).annotation == expected));
    }

    #[test]
    fn control_flow_lowering() {
        let src = r#"
        class C {
            static int abs(int v) {
                int r = v;
                if (v < 0) { r = 0 - v; }
                while (r > 100) { r = r - 100; }
                return r;
            }
            static void main() { int q = C.abs(0 - 5); }
        }
        "#;
        let (p, _) = parse_ok(src);
        let abs = p.find_method("C.abs").unwrap();
        let kinds: Vec<_> = p.stmts_of(abs).map(|s| p.stmt(s).kind.clone()).collect();
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::If { .. })));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::Goto { .. })));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::Return { .. })));
    }

    #[test]
    fn classes_fields_inheritance() {
        let src = r#"
        class Base { int data; int get() { return 0; } }
        class Sub extends Base { int get() { return 1; } }
        class Main {
            static void main() {
                Base o = new Sub();
                o.data = 5;
                int d = o.data;
                int g = o.get();
            }
        }
        "#;
        let (p, _) = parse_ok(src);
        let base = p.find_class("Base").unwrap();
        let sub = p.find_class("Sub").unwrap();
        assert_eq!(p.class(sub).superclass, Some(base));
        assert_eq!(p.fields().len(), 1);
        let main = p.find_method("Main.main").unwrap();
        let has_virtual = p.stmts_of(main).any(|s| {
            matches!(
                &p.stmt(s).kind,
                StmtKind::Invoke {
                    callee: spllift_ir::Callee::Virtual { .. },
                    ..
                }
            )
        });
        assert!(has_virtual);
    }

    #[test]
    fn short_circuit_lowering() {
        let src = r#"
        class C {
            static boolean both(boolean a, boolean b) { return a && b; }
            static boolean either(boolean a, boolean b) { return a || b; }
            static void main() {
                boolean x = C.both(true, false);
                boolean y = C.either(false, true);
            }
        }
        "#;
        let (p, _) = parse_ok(src);
        let both = p.find_method("C.both").unwrap();
        // Short-circuit becomes a conditional branch.
        assert!(p
            .stmts_of(both)
            .any(|s| matches!(p.stmt(s).kind, StmtKind::If { .. })));
    }

    #[test]
    fn comments_and_loc() {
        let src = "// a comment\nclass C { /* block\ncomment */ static void main() { } }\n\n";
        parse_ok(src);
        assert_eq!(count_loc(src), 2); // the class lines, not the // line
    }

    #[test]
    fn this_in_instance_methods() {
        let src = r#"
        class Counter {
            int n;
            void bump() { this.n = this.n + 1; }
            int read() { return this.n; }
        }
        class Main {
            static void main() {
                Counter c = new Counter();
                c.bump();
                int v = c.read();
            }
        }
        "#;
        let (p, _) = parse_ok(src);
        assert!(p.find_method("Counter.bump").is_some());
    }
}

mod errors {
    use super::*;

    #[test]
    fn unknown_variable() {
        let e = parse_err("class C { static void main() { x = 1; } }");
        assert!(e.message.contains("unknown variable"), "{e}");
    }

    #[test]
    fn unknown_method() {
        let e = parse_err("class C { static void main() { nope(); } }");
        assert!(e.message.contains("unknown method"), "{e}");
    }

    #[test]
    fn duplicate_local() {
        let e = parse_err("class C { static void main() { int x = 0; int x = 1; } }");
        assert!(e.message.contains("duplicate local"), "{e}");
    }

    #[test]
    fn unterminated_ifdef() {
        let e = parse_err("class C { static void main() { #ifdef F int x = 0; } }");
        assert!(
            e.message.contains("ifdef") || e.message.contains("statement"),
            "{e}"
        );
    }

    #[test]
    fn unknown_directive() {
        let e = parse_err("class C { static void main() { #if F\n } }");
        assert!(e.message.contains("unknown directive"), "{e}");
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_err("class C {\n  static void main() {\n    x = 1;\n  }\n}");
        assert_eq!(e.pos.line, 3);
    }

    #[test]
    fn unterminated_comment() {
        let e = parse_err("class C { /* never closed");
        assert!(e.message.contains("unterminated block comment"), "{e}");
    }

    #[test]
    fn undeclared_superclass() {
        let e = parse_err("class C extends Nope { }");
        assert!(e.message.contains("unknown superclass"), "{e}");
    }
}

mod end_to_end {
    use super::*;
    use spllift_core::{LiftedSolution, ModelMode};
    use spllift_features::{BddConstraintContext, ConstraintContext};
    use spllift_ir::ProgramIcfg;

    /// The full paper pipeline from *source text*: parse the Figure 1
    /// product line, lift the taint analysis, and verify the leak
    /// constraint ¬F ∧ G ∧ ¬H.
    #[test]
    fn fig1_from_source_reports_leak_constraint() {
        let (p, table) = parse_ok(FIG1);
        let icfg = ProgramIcfg::new(&p);
        let ctx = BddConstraintContext::new(&table);
        let analysis = spllift_analyses::TaintAnalysis::secret_to_print();
        let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
        // Find the print call and its argument local.
        let main = p.find_method("Main.main").unwrap();
        let print = p.find_method("Main.print").unwrap();
        let (call, arg) = p
            .stmts_of(main)
            .find_map(|s| match &p.stmt(s).kind {
                StmtKind::Invoke {
                    callee: spllift_ir::Callee::Static(m),
                    args,
                    ..
                } if *m == print => Some((s, args[0].as_local().unwrap())),
                _ => None,
            })
            .unwrap();
        let got = solution.constraint_of(call, &spllift_analyses::TaintFact::Local(arg));
        let mut t2 = table.clone();
        let expected = ctx.of_expr(&FeatureExpr::parse("!F && G && !H", &mut t2).unwrap());
        assert_eq!(got, expected, "got {}", got.to_cube_string());
    }

    #[test]
    fn roundtrip_through_pretty_printer_is_stable() {
        let (p, table) = parse_ok(FIG1);
        let text = spllift_ir::pretty::program_to_string(&p, &table);
        assert!(text.contains("@ifdef F"));
        assert!(text.contains("secret"));
    }

    #[test]
    fn parse_declares_types_for_virtual_dispatch() {
        let src = r#"
        class Shape { int area() { return 0; } }
        class Circle extends Shape { int area() { return 3; } }
        class Main {
            static void main() {
                Shape s = new Circle();
                int a = s.area();
            }
        }
        "#;
        let (p, _) = parse_ok(src);
        let main = p.find_method("Main.main").unwrap();
        let body = p.body(main);
        let shape = p.find_class("Shape").unwrap();
        assert!(body.locals.iter().any(|l| l.ty == Type::Ref(shape)));
        let icfg = ProgramIcfg::new(&p);
        // CHA resolves both area() implementations.
        let call = p
            .stmts_of(main)
            .find(|&s| matches!(p.stmt(s).kind, StmtKind::Invoke { .. }))
            .unwrap();
        assert_eq!(spllift_ifds::Icfg::callees_of(&icfg, call).len(), 2);
    }
}

mod properties {
    use super::*;
    use spllift_ir::ProgramIcfg;
    use spllift_rng::SplitMix64;

    /// Random feature-expression strings survive a display→parse round
    /// trip semantically (via the features crate's display).
    #[test]
    fn large_generated_program_parses() {
        // Sanity: a program with hundreds of statements and nested
        // #ifdefs parses and validates in one go.
        let mut src = String::from("class Big {\n");
        for m in 0..25 {
            src.push_str(&format!("  static int f{m}(int a) {{\n"));
            src.push_str("    int v = a;\n");
            for i in 0..10 {
                src.push_str(&format!("    #ifdef FEAT{}\n", i % 4));
                src.push_str(&format!("    v = v + {i};\n"));
                src.push_str("    #endif\n");
            }
            if m > 0 {
                src.push_str(&format!("    v = Big.f{}(v);\n", m - 1));
            }
            src.push_str("    return v;\n  }\n");
        }
        src.push_str("  static void main() { int r = Big.f24(1); }\n}\n");
        let (p, t) = parse_ok(&src);
        assert_eq!(t.len(), 4);
        assert_eq!(p.methods().len(), 26);
        let icfg = ProgramIcfg::new(&p);
        assert_eq!(spllift_ifds::Icfg::methods(&icfg).len(), 26);
    }

    /// Any byte soup either parses or produces a positioned error —
    /// the frontend never panics.
    #[test]
    fn parser_never_panics() {
        let mut rng = SplitMix64::seed_from_u64(0xF807_0001);
        for _ in 0..256 {
            // Printable-ASCII-plus-newline soup, like the old proptest
            // regex strategy `[ -~\n]{0,200}`.
            let len = rng.gen_range(0..201usize);
            let input: String = (0..len)
                .map(|_| {
                    if rng.gen_bool(0.05) {
                        '\n'
                    } else {
                        rng.gen_range(0x20..0x7fu8) as char
                    }
                })
                .collect();
            let mut t = FeatureTable::new();
            let _ = parse_spl(&input, &mut t);
        }
    }

    /// Structured-but-randomized programs always lower to valid IR.
    #[test]
    fn randomized_bodies_lower_to_valid_ir() {
        let mut rng = SplitMix64::seed_from_u64(0xF807_0002);
        for _ in 0..128 {
            let n = rng.gen_range(1..8usize);
            let consts: Vec<i64> = (0..n).map(|_| rng.gen_range(0..100i64)).collect();
            let use_ifdef: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let mut src = String::from("class R {\n  static void main() {\n    int x = 0;\n");
            for (i, (&c, &wrap)) in consts.iter().zip(&use_ifdef).enumerate() {
                if wrap {
                    src.push_str(&format!("    #ifdef W{}\n", i % 3));
                }
                match i % 3 {
                    0 => src.push_str(&format!("    x = x + {c};\n")),
                    1 => src.push_str(&format!(
                        "    if (x < {c}) {{ x = x + 1; }} else {{ x = x - 1; }}\n"
                    )),
                    _ => src.push_str(&format!("    while (x > {c}) {{ x = x - 2; }}\n")),
                }
                if wrap {
                    src.push_str("    #endif\n");
                }
            }
            src.push_str("  }\n}\n");
            let mut t = FeatureTable::new();
            let p = parse_spl(&src, &mut t).expect("structured program parses");
            assert!(p.check().is_ok(), "{src}");
        }
    }
}

mod arrays {
    use super::*;

    #[test]
    fn array_syntax_parses_and_lowers() {
        let src = r#"
        class A {
            static void main() {
                int[] buf = new int[8];
                int i = 0;
                buf[i] = 42;
                int v = buf[i + 1];
            }
        }
        "#;
        let (p, _) = parse_ok(src);
        let main = p.find_method("A.main").unwrap();
        let kinds: Vec<_> = p.stmts_of(main).map(|s| p.stmt(s).kind.clone()).collect();
        assert!(kinds.iter().any(|k| matches!(
            k,
            StmtKind::Assign {
                rvalue: spllift_ir::Rvalue::NewArray { .. },
                ..
            }
        )));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, StmtKind::ArrayStore { .. })));
        assert!(kinds.iter().any(|k| matches!(
            k,
            StmtKind::Assign {
                rvalue: spllift_ir::Rvalue::ArrayLoad { .. },
                ..
            }
        )));
    }

    #[test]
    fn class_arrays_and_params() {
        let src = r#"
        class Node { int v; }
        class A {
            static int use_arr(Node[] ns) { Node n = ns[0]; return 1; }
            static void main() {
                Node[] ns = new Node[4];
                ns[0] = new Node();
                int r = A.use_arr(ns);
            }
        }
        "#;
        let (p, _) = parse_ok(src);
        assert!(p.find_method("A.use_arr").is_some());
    }

    #[test]
    fn nested_arrays_rejected() {
        // `int[][]` is not in the subset; the second `[` fails to parse
        // as a declaration.
        let e = parse_err("class A { static void main() { int[][] m = null; } }");
        assert!(!e.message.is_empty());
    }

    #[test]
    fn taint_flows_through_array_cells() {
        use spllift_core::{LiftedSolution, ModelMode};
        use spllift_features::BddConstraintContext;
        let src = r#"
        class A {
            static int secret() { return 7; }
            static void print(int v) { }
            static void main() {
                int[] buf = new int[2];
                int s = secret();
                #ifdef STASH
                buf[0] = s;
                #endif
                int out = buf[1];
                A.print(out);
            }
        }
        "#;
        let (p, t) = parse_ok(src);
        let icfg = spllift_ir::ProgramIcfg::new(&p);
        let ctx = BddConstraintContext::new(&t);
        let analysis = spllift_analyses::TaintAnalysis::secret_to_print();
        let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
        // Find the print call; its argument is tainted exactly under STASH
        // (weak, index-insensitive array cells).
        let main = p.find_method("A.main").unwrap();
        let print = p.find_method("A.print").unwrap();
        let (call, arg) = p
            .stmts_of(main)
            .find_map(|s| match &p.stmt(s).kind {
                StmtKind::Invoke {
                    callee: spllift_ir::Callee::Static(m),
                    args,
                    ..
                } if *m == print => Some((s, args[0].as_local().unwrap())),
                _ => None,
            })
            .unwrap();
        let c = solution.constraint_of(call, &spllift_analyses::TaintFact::Local(arg));
        let stash = t.get("STASH").unwrap();
        use spllift_features::ConstraintContext as _;
        assert_eq!(c, ctx.lit(stash, true));
    }
}

mod for_loops {
    use super::*;

    #[test]
    fn for_loop_desugars_to_branches() {
        let src = r#"
        class C {
            static int sum(int n) {
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    acc = acc + i;
                }
                return acc;
            }
            static void main() { int r = C.sum(5); }
        }
        "#;
        let (p, _) = parse_ok(src);
        let sum = p.find_method("C.sum").unwrap();
        let kinds: Vec<_> = p.stmts_of(sum).map(|s| p.stmt(s).kind.clone()).collect();
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::If { .. })));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::Goto { .. })));
        // Concrete semantics: sum(5) = 0+1+2+3+4 = 10.
        let trace = spllift_ir::interp::run(&p, &spllift_ir::interp::InterpConfig::default());
        assert!(!trace.budget_exhausted);
        assert!(trace.events.is_empty());
    }

    #[test]
    fn for_init_scope_allows_reuse() {
        let src = r#"
        class C {
            static void main() {
                for (int i = 0; i < 2; i = i + 1) { int t = i; }
                for (int i = 5; i < 7; i = i + 1) { int t = i; }
            }
        }
        "#;
        parse_ok(src);
    }

    #[test]
    fn for_without_init_or_update() {
        let src = r#"
        class C {
            static void main() {
                int i = 0;
                for (; i < 3;) { i = i + 1; }
            }
        }
        "#;
        let (p, _) = parse_ok(src);
        let trace = spllift_ir::interp::run(&p, &spllift_ir::interp::InterpConfig::default());
        assert!(!trace.budget_exhausted);
    }

    #[test]
    fn annotated_for_loop() {
        let src = r#"
        class C {
            static void main() {
                int acc = 0;
                #ifdef UNROLL
                for (int i = 0; i < 4; i = i + 1) { acc = acc + 1; }
                #endif
            }
        }
        "#;
        let (p, t) = parse_ok(src);
        let u = t.get("UNROLL").unwrap();
        let main = p.find_method("C.main").unwrap();
        // Every loop statement carries the annotation.
        let annotated = p
            .stmts_of(main)
            .filter(|&s| p.stmt(s).annotation == FeatureExpr::var(u))
            .count();
        assert!(annotated >= 4, "init, cond, body, update, goto annotated");
    }
}
