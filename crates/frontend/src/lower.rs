//! Lowering the AST to the three-address IR.

use crate::ast::*;
use crate::{FrontendError, Pos};
use spllift_ir::{
    BinOp, Callee, ClassId, ElemType, FieldId, LocalId, MethodBuilder, MethodId, Operand, Program,
    ProgramBuilder, Rvalue, Type,
};
use std::collections::HashMap;

/// Lowers a parsed program to the IR. Every method named `main` becomes
/// an analysis entry point.
///
/// # Errors
///
/// Reports unresolved names, duplicate declarations, arity mismatches,
/// and structurally invalid uses, each with a source position.
pub fn lower_program(ast: &AstProgram) -> Result<Program, FrontendError> {
    let mut pb = ProgramBuilder::new();
    let mut ctx = GlobalCtx::default();

    // Pass 1: declare classes.
    for c in &ast.classes {
        if ctx.classes.contains_key(&c.name) {
            return Err(FrontendError::new(
                format!("duplicate class `{}`", c.name),
                c.pos,
            ));
        }
        let id = pb.add_class(&c.name, None);
        ctx.classes.insert(c.name.clone(), id);
    }
    // Pass 2: link superclasses, declare fields and method signatures.
    for c in &ast.classes {
        let cid = ctx.classes[&c.name];
        if let Some(sup) = &c.superclass {
            let sup_id = *ctx
                .classes
                .get(sup)
                .ok_or_else(|| FrontendError::new(format!("unknown superclass `{sup}`"), c.pos))?;
            pb.set_superclass(cid, Some(sup_id));
        }
        for f in &c.fields {
            let ty = ctx.resolve_type(&f.ty, f.pos)?;
            let fid = pb.add_field(cid, &f.name, ty);
            ctx.fields.insert((cid, f.name.clone()), fid);
        }
        for m in &c.methods {
            let params: Vec<Type> = m
                .params
                .iter()
                .map(|(_, t)| ctx.resolve_type(t, m.pos))
                .collect::<Result<_, _>>()?;
            let ret = m
                .ret
                .as_ref()
                .map(|t| ctx.resolve_type(t, m.pos))
                .transpose()?;
            let mid = pb.declare_method(&m.name, Some(cid), &params, ret, m.is_static);
            ctx.methods
                .entry((c.name.clone(), m.name.clone()))
                .or_insert(mid);
            ctx.methods_by_name
                .entry(m.name.clone())
                .or_default()
                .push(mid);
        }
    }
    // Pass 3: lower bodies.
    for c in &ast.classes {
        for m in &c.methods {
            let mid = ctx.methods[&(c.name.clone(), m.name.clone())];
            let mut mb = pb.method_body(mid);
            let mut env = Env::new(&ctx, c, m, &mut mb)?;
            env.install_classes(&ast.classes);
            for stmt in &m.body {
                env.lower_stmt(&mut mb, stmt)?;
            }
            pb.finish_body(mb);
            if m.name == "main" {
                pb.add_entry_point(mid);
            }
        }
    }
    let program = pb.finish();
    debug_assert!(program.check().is_ok(), "{:?}", program.check());
    Ok(program)
}

/// Program-wide name tables.
#[derive(Default)]
struct GlobalCtx {
    classes: HashMap<String, ClassId>,
    fields: HashMap<(ClassId, String), FieldId>,
    methods: HashMap<(String, String), MethodId>,
    methods_by_name: HashMap<String, Vec<MethodId>>,
}

impl GlobalCtx {
    fn resolve_type(&self, t: &AstType, pos: Pos) -> Result<Type, FrontendError> {
        Ok(match t {
            AstType::Int => Type::Int,
            AstType::Boolean => Type::Boolean,
            AstType::Class(name) => Type::Ref(
                *self
                    .classes
                    .get(name)
                    .ok_or_else(|| FrontendError::new(format!("unknown class `{name}`"), pos))?,
            ),
            AstType::Array(elem) => Type::Array(self.resolve_elem_type(elem, pos)?),
        })
    }

    fn resolve_elem_type(&self, t: &AstType, pos: Pos) -> Result<ElemType, FrontendError> {
        Ok(match t {
            AstType::Int => ElemType::Int,
            AstType::Boolean => ElemType::Boolean,
            AstType::Class(name) => ElemType::Ref(
                *self
                    .classes
                    .get(name)
                    .ok_or_else(|| FrontendError::new(format!("unknown class `{name}`"), pos))?,
            ),
            AstType::Array(_) => {
                return Err(FrontendError::new("nested arrays are not supported", pos))
            }
        })
    }

    /// Resolves a field by name, walking up from `class` (superclass
    /// chain lookup happens at IR build time via class links, so here we
    /// search the maps directly per class — the AST gives us names only).
    fn resolve_field(
        &self,
        class_name: &str,
        field: &str,
        classes: &HashMap<String, &AstClass>,
        pos: Pos,
    ) -> Result<FieldId, FrontendError> {
        let mut cur = Some(class_name.to_owned());
        while let Some(name) = cur {
            let cid = self.classes[&name];
            if let Some(&fid) = self.fields.get(&(cid, field.to_owned())) {
                return Ok(fid);
            }
            cur = classes
                .get(name.as_str())
                .and_then(|c| c.superclass.clone());
        }
        Err(FrontendError::new(
            format!("no field `{field}` in class `{class_name}` or its superclasses"),
            pos,
        ))
    }
}

/// Per-method lowering environment.
struct Env<'c, 'a> {
    ctx: &'c GlobalCtx,
    classes_by_name: HashMap<String, &'a AstClass>,
    class: &'a AstClass,
    /// Lexical scopes: name → (local, declared source type).
    scopes: Vec<HashMap<String, (LocalId, AstType)>>,
    temp_counter: u32,
}

impl<'c, 'a> Env<'c, 'a> {
    fn new(
        ctx: &'c GlobalCtx,
        class: &'a AstClass,
        method: &'a AstMethod,
        mb: &mut MethodBuilder,
    ) -> Result<Self, FrontendError> {
        // `classes_by_name` is rebuilt per method from ctx — callers hold
        // the AST, so gather lazily instead would need the AstProgram;
        // store references from the class list reachable via ctx is not
        // possible, so Env::new receives them through `install_classes`.
        let mut env = Env {
            ctx,
            classes_by_name: HashMap::new(),
            class,
            scopes: vec![HashMap::new()],
            temp_counter: 0,
        };
        if !method.is_static {
            if let Some(this) = mb.this_local() {
                env.scopes[0].insert(
                    "this".to_owned(),
                    (this, AstType::Class(class.name.clone())),
                );
            }
        }
        for (i, (name, ty)) in method.params.iter().enumerate() {
            let dup = env.scopes[0]
                .insert(name.clone(), (mb.param_local(i), ty.clone()))
                .is_some();
            if dup {
                return Err(FrontendError::new(
                    format!("duplicate parameter `{name}`"),
                    method.pos,
                ));
            }
        }
        Ok(env)
    }

    fn install_classes(&mut self, classes: &'a [AstClass]) {
        for c in classes {
            self.classes_by_name.insert(c.name.clone(), c);
        }
    }

    fn lookup(&self, name: &str) -> Option<(LocalId, AstType)> {
        self.scopes.iter().rev().find_map(|s| s.get(name).cloned())
    }

    fn fresh_temp(&mut self, mb: &mut MethodBuilder, ty: Type) -> LocalId {
        self.temp_counter += 1;
        mb.local(&format!("$t{}", self.temp_counter), ty)
    }

    // --- statements ---------------------------------------------------

    fn lower_stmt(&mut self, mb: &mut MethodBuilder, stmt: &AstStmt) -> Result<(), FrontendError> {
        match stmt {
            AstStmt::LocalDecl {
                name,
                ty,
                init,
                pos,
            } => {
                if self.scopes.last().unwrap().contains_key(name) {
                    return Err(FrontendError::new(
                        format!("duplicate local `{name}`"),
                        *pos,
                    ));
                }
                let ir_ty = self.ctx.resolve_type(ty, *pos)?;
                let local = mb.local(name, ir_ty);
                self.scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), (local, ty.clone()));
                if let Some(e) = init {
                    self.lower_expr_into(mb, local, e)?;
                }
                Ok(())
            }
            AstStmt::Assign { target, value, pos } => match target {
                AstLValue::Local(name) => {
                    let (local, _) = self.lookup(name).ok_or_else(|| {
                        FrontendError::new(format!("unknown variable `{name}`"), *pos)
                    })?;
                    self.lower_expr_into(mb, local, value)
                }
                AstLValue::Field { base, field } => {
                    let (base_op, fid) = self.resolve_field_access(mb, base, field, *pos)?;
                    let v = self.lower_expr(mb, value)?;
                    mb.field_store(base_op, fid, v);
                    Ok(())
                }
                AstLValue::Index { base, index } => {
                    let (arr, _) = self.lookup(base).ok_or_else(|| {
                        FrontendError::new(format!("unknown variable `{base}`"), *pos)
                    })?;
                    let idx = self.lower_expr(mb, index)?;
                    let v = self.lower_expr(mb, value)?;
                    mb.array_store(Operand::Local(arr), idx, v);
                    Ok(())
                }
            },
            AstStmt::Expr(e, pos) => {
                let AstExpr::Call {
                    receiver,
                    method,
                    args,
                    ..
                } = e
                else {
                    return Err(FrontendError::new(
                        "only calls may be used as statements",
                        *pos,
                    ));
                };
                let (callee, ops) = self.lower_call_parts(mb, receiver, method, args, *pos)?;
                mb.invoke(None, callee, ops);
                Ok(())
            }
            AstStmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self.lower_expr(mb, cond)?;
                let else_l = mb.fresh_label();
                let end_l = mb.fresh_label();
                mb.if_cmp(BinOp::Eq, c, Operand::BoolConst(false), else_l);
                self.scoped(mb, then_body)?;
                mb.goto(end_l);
                mb.bind(else_l);
                self.scoped(mb, else_body)?;
                mb.bind(end_l);
                Ok(())
            }
            AstStmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                // Java-style: the init declaration is scoped to the loop.
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.lower_stmt(mb, i)?;
                }
                let head = mb.fresh_label();
                let end = mb.fresh_label();
                mb.bind(head);
                let c = self.lower_expr(mb, cond)?;
                mb.if_cmp(BinOp::Eq, c, Operand::BoolConst(false), end);
                for s in body {
                    self.lower_stmt(mb, s)?;
                }
                if let Some(u) = update {
                    self.lower_stmt(mb, u)?;
                }
                mb.goto(head);
                mb.bind(end);
                self.scopes.pop();
                Ok(())
            }
            AstStmt::While { cond, body, .. } => {
                let head = mb.fresh_label();
                let end = mb.fresh_label();
                mb.bind(head);
                let c = self.lower_expr(mb, cond)?;
                mb.if_cmp(BinOp::Eq, c, Operand::BoolConst(false), end);
                self.scoped(mb, body)?;
                mb.goto(head);
                mb.bind(end);
                Ok(())
            }
            AstStmt::Return(value, _) => {
                let op = value.as_ref().map(|e| self.lower_expr(mb, e)).transpose()?;
                mb.ret(op);
                Ok(())
            }
            AstStmt::Ifdef {
                cond,
                then_body,
                else_body,
                ..
            } => {
                // CPP-style: #ifdef does NOT open a variable scope, so a
                // declaration inside it stays visible afterwards — which
                // is precisely how the paper's §1 "possibly undefined
                // variable" SPL bugs arise.
                mb.push_annotation(cond.clone());
                for s in then_body {
                    self.lower_stmt(mb, s)?;
                }
                mb.pop_annotation();
                if !else_body.is_empty() {
                    mb.push_annotation(cond.clone().not());
                    for s in else_body {
                        self.lower_stmt(mb, s)?;
                    }
                    mb.pop_annotation();
                }
                Ok(())
            }
        }
    }

    fn scoped(&mut self, mb: &mut MethodBuilder, body: &[AstStmt]) -> Result<(), FrontendError> {
        self.scopes.push(HashMap::new());
        for s in body {
            self.lower_stmt(mb, s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    // --- expressions ----------------------------------------------------

    /// Lowers `e` directly into `target` where profitable (calls, `new`,
    /// field loads, binaries), otherwise via [`lower_expr`].
    fn lower_expr_into(
        &mut self,
        mb: &mut MethodBuilder,
        target: LocalId,
        e: &AstExpr,
    ) -> Result<(), FrontendError> {
        match e {
            AstExpr::Call {
                receiver,
                method,
                args,
                pos,
            } => {
                let (callee, ops) = self.lower_call_parts(mb, receiver, method, args, *pos)?;
                mb.invoke(Some(target), callee, ops);
                Ok(())
            }
            AstExpr::New(class, pos) => {
                let cid =
                    *self.ctx.classes.get(class).ok_or_else(|| {
                        FrontendError::new(format!("unknown class `{class}`"), *pos)
                    })?;
                mb.assign(target, Rvalue::New(cid));
                Ok(())
            }
            AstExpr::Field { base, field, pos } => {
                let (base_op, fid) = self.resolve_field_access(mb, base, field, *pos)?;
                mb.assign(
                    target,
                    Rvalue::FieldLoad {
                        base: base_op,
                        field: fid,
                    },
                );
                Ok(())
            }
            AstExpr::NewArray { elem, len, pos } => {
                let e = self.ctx.resolve_elem_type(elem, *pos)?;
                let n = self.lower_expr(mb, len)?;
                mb.assign(target, Rvalue::NewArray { elem: e, len: n });
                Ok(())
            }
            AstExpr::Index { base, index, pos } => {
                let (arr, _) = self.lookup(base).ok_or_else(|| {
                    FrontendError::new(format!("unknown variable `{base}`"), *pos)
                })?;
                let idx = self.lower_expr(mb, index)?;
                mb.assign(
                    target,
                    Rvalue::ArrayLoad {
                        base: Operand::Local(arr),
                        index: idx,
                    },
                );
                Ok(())
            }
            AstExpr::Binary { op, lhs, rhs } if !matches!(op, AstBinOp::And | AstBinOp::Or) => {
                let a = self.lower_expr(mb, lhs)?;
                let b = self.lower_expr(mb, rhs)?;
                mb.assign(target, Rvalue::Binary(lower_binop(*op), a, b));
                Ok(())
            }
            other => {
                let op = self.lower_expr(mb, other)?;
                mb.assign(target, Rvalue::Use(op));
                Ok(())
            }
        }
    }

    fn lower_expr(
        &mut self,
        mb: &mut MethodBuilder,
        e: &AstExpr,
    ) -> Result<Operand, FrontendError> {
        match e {
            AstExpr::Int(v) => Ok(Operand::IntConst(*v)),
            AstExpr::Bool(b) => Ok(Operand::BoolConst(*b)),
            AstExpr::Null => Ok(Operand::Null),
            AstExpr::Local(name, pos) => {
                let (local, _) = self.lookup(name).ok_or_else(|| {
                    FrontendError::new(format!("unknown variable `{name}`"), *pos)
                })?;
                Ok(Operand::Local(local))
            }
            AstExpr::Unary {
                op: AstUnOp::Not,
                expr,
            } => {
                let a = self.lower_expr(mb, expr)?;
                let t = self.fresh_temp(mb, Type::Boolean);
                mb.assign(t, Rvalue::Binary(BinOp::Eq, a, Operand::BoolConst(false)));
                Ok(Operand::Local(t))
            }
            AstExpr::Unary {
                op: AstUnOp::Neg,
                expr,
            } => {
                let a = self.lower_expr(mb, expr)?;
                let t = self.fresh_temp(mb, Type::Int);
                mb.assign(t, Rvalue::Binary(BinOp::Sub, Operand::IntConst(0), a));
                Ok(Operand::Local(t))
            }
            AstExpr::Binary {
                op: AstBinOp::And,
                lhs,
                rhs,
            } => {
                // Short-circuit: t = false; if (a == false) goto end;
                // t = b; end:
                let t = self.fresh_temp(mb, Type::Boolean);
                mb.assign(t, Rvalue::Use(Operand::BoolConst(false)));
                let end = mb.fresh_label();
                let a = self.lower_expr(mb, lhs)?;
                mb.if_cmp(BinOp::Eq, a, Operand::BoolConst(false), end);
                self.lower_expr_into(mb, t, rhs)?;
                mb.bind(end);
                Ok(Operand::Local(t))
            }
            AstExpr::Binary {
                op: AstBinOp::Or,
                lhs,
                rhs,
            } => {
                let t = self.fresh_temp(mb, Type::Boolean);
                mb.assign(t, Rvalue::Use(Operand::BoolConst(true)));
                let end = mb.fresh_label();
                let a = self.lower_expr(mb, lhs)?;
                mb.if_cmp(BinOp::Eq, a, Operand::BoolConst(true), end);
                self.lower_expr_into(mb, t, rhs)?;
                mb.bind(end);
                Ok(Operand::Local(t))
            }
            AstExpr::Binary { op, lhs, rhs } => {
                let a = self.lower_expr(mb, lhs)?;
                let b = self.lower_expr(mb, rhs)?;
                let ty = match op {
                    AstBinOp::Add
                    | AstBinOp::Sub
                    | AstBinOp::Mul
                    | AstBinOp::Div
                    | AstBinOp::Rem => Type::Int,
                    _ => Type::Boolean,
                };
                let t = self.fresh_temp(mb, ty);
                mb.assign(t, Rvalue::Binary(lower_binop(*op), a, b));
                Ok(Operand::Local(t))
            }
            AstExpr::New(..)
            | AstExpr::NewArray { .. }
            | AstExpr::Index { .. }
            | AstExpr::Field { .. }
            | AstExpr::Call { .. } => {
                let ty = self.static_type_of(e)?;
                let t = self.fresh_temp(mb, ty);
                self.lower_expr_into(mb, t, e)?;
                Ok(Operand::Local(t))
            }
        }
    }

    /// The IR type of a compound expression, for temp creation.
    fn static_type_of(&self, e: &AstExpr) -> Result<Type, FrontendError> {
        match e {
            AstExpr::New(class, pos) => {
                let cid =
                    *self.ctx.classes.get(class).ok_or_else(|| {
                        FrontendError::new(format!("unknown class `{class}`"), *pos)
                    })?;
                Ok(Type::Ref(cid))
            }
            AstExpr::Field { base, field, pos } => {
                let class_name = self.base_class_name(base, *pos)?;
                self.field_ast_type(&class_name, field, *pos)
            }
            AstExpr::NewArray { elem, pos, .. } => {
                Ok(Type::Array(self.ctx.resolve_elem_type(elem, *pos)?))
            }
            AstExpr::Index { base, pos, .. } => match self.lookup(base) {
                Some((_, AstType::Array(elem))) => {
                    Ok(self.ctx.resolve_elem_type(&elem, *pos)?.into())
                }
                Some(_) => Err(FrontendError::new(
                    format!("`{base}` is not an array"),
                    *pos,
                )),
                None => Err(FrontendError::new(
                    format!("unknown variable `{base}`"),
                    *pos,
                )),
            },
            AstExpr::Call {
                receiver,
                method,
                args,
                pos,
            } => {
                let mid = self.resolve_callee_id(receiver, method, args.len(), *pos)?;
                let _ = mid;
                self.method_ret_type(receiver, method, args.len(), *pos)
            }
            _ => Ok(Type::Int),
        }
    }

    fn field_ast_type(
        &self,
        class_name: &str,
        field: &str,
        pos: Pos,
    ) -> Result<Type, FrontendError> {
        let mut cur = Some(class_name.to_owned());
        while let Some(name) = cur {
            if let Some(c) = self.classes_by_name.get(name.as_str()) {
                if let Some(f) = c.fields.iter().find(|f| f.name == field) {
                    return self.ctx.resolve_type(&f.ty, pos);
                }
                cur = c.superclass.clone();
            } else {
                break;
            }
        }
        Err(FrontendError::new(format!("no field `{field}`"), pos))
    }

    fn method_ret_type(
        &self,
        receiver: &Option<String>,
        method: &str,
        argc: usize,
        pos: Pos,
    ) -> Result<Type, FrontendError> {
        let class_name = match receiver {
            None => self.class.name.clone(),
            Some(r) => match self.lookup(r) {
                Some((_, AstType::Class(cn))) => cn,
                Some(_) => {
                    return Err(FrontendError::new(
                        format!("`{r}` is not of class type"),
                        pos,
                    ))
                }
                None => r.clone(),
            },
        };
        let mut cur = Some(class_name);
        while let Some(name) = cur {
            if let Some(c) = self.classes_by_name.get(name.as_str()) {
                if let Some(m) = c
                    .methods
                    .iter()
                    .find(|m| m.name == method && m.params.len() == argc)
                {
                    return match &m.ret {
                        Some(t) => self.ctx.resolve_type(t, pos),
                        None => Err(FrontendError::new(
                            format!("void method `{method}` used as a value"),
                            pos,
                        )),
                    };
                }
                cur = c.superclass.clone();
            } else {
                break;
            }
        }
        // Fall back to a global unique match.
        for c in self.classes_by_name.values() {
            if let Some(m) = c
                .methods
                .iter()
                .find(|m| m.name == method && m.params.len() == argc)
            {
                return match &m.ret {
                    Some(t) => self.ctx.resolve_type(t, pos),
                    None => Err(FrontendError::new(
                        format!("void method `{method}` used as a value"),
                        pos,
                    )),
                };
            }
        }
        Err(FrontendError::new(
            format!("unknown method `{method}`"),
            pos,
        ))
    }

    /// Resolves a call's [`Callee`] and lowers its arguments.
    fn lower_call_parts(
        &mut self,
        mb: &mut MethodBuilder,
        receiver: &Option<String>,
        method: &str,
        args: &[AstExpr],
        pos: Pos,
    ) -> Result<(Callee, Vec<Operand>), FrontendError> {
        let ops: Vec<Operand> = args
            .iter()
            .map(|a| self.lower_expr(mb, a))
            .collect::<Result<_, _>>()?;
        let callee = match receiver {
            Some(r) => {
                if let Some((local, ty)) = self.lookup(r) {
                    match ty {
                        AstType::Class(_) => Callee::Virtual {
                            base: local,
                            name: method.to_owned(),
                            argc: args.len(),
                        },
                        _ => {
                            return Err(FrontendError::new(
                                format!("`{r}` is not of class type"),
                                pos,
                            ))
                        }
                    }
                } else {
                    // Class-name receiver: static call.
                    Callee::Static(self.resolve_static(r, method, pos)?)
                }
            }
            None => Callee::Static(self.resolve_callee_id(receiver, method, args.len(), pos)?),
        };
        Ok((callee, ops))
    }

    fn resolve_static(
        &self,
        class_name: &str,
        method: &str,
        pos: Pos,
    ) -> Result<MethodId, FrontendError> {
        let mut cur = Some(class_name.to_owned());
        while let Some(name) = cur {
            if !self.ctx.classes.contains_key(&name) {
                return Err(FrontendError::new(
                    format!("unknown class or variable `{class_name}`"),
                    pos,
                ));
            }
            if let Some(&mid) = self.ctx.methods.get(&(name.clone(), method.to_owned())) {
                return Ok(mid);
            }
            cur = self
                .classes_by_name
                .get(name.as_str())
                .and_then(|c| c.superclass.clone());
        }
        Err(FrontendError::new(
            format!("no method `{method}` in class `{class_name}`"),
            pos,
        ))
    }

    /// Same-class (or unique global) static resolution for bare calls.
    fn resolve_callee_id(
        &self,
        receiver: &Option<String>,
        method: &str,
        _argc: usize,
        pos: Pos,
    ) -> Result<MethodId, FrontendError> {
        if let Some(r) = receiver {
            return self.resolve_static(r, method, pos);
        }
        if let Ok(m) = self.resolve_static(&self.class.name, method, pos) {
            return Ok(m);
        }
        match self.ctx.methods_by_name.get(method).map(Vec::as_slice) {
            Some([unique]) => Ok(*unique),
            Some([]) | None => Err(FrontendError::new(
                format!("unknown method `{method}`"),
                pos,
            )),
            Some(_) => Err(FrontendError::new(
                format!("ambiguous call to `{method}`; qualify with a class name"),
                pos,
            )),
        }
    }

    fn resolve_field_access(
        &mut self,
        _mb: &mut MethodBuilder,
        base: &str,
        field: &str,
        pos: Pos,
    ) -> Result<(Option<Operand>, FieldId), FrontendError> {
        if let Some((local, ty)) = self.lookup(base) {
            let AstType::Class(cn) = ty else {
                return Err(FrontendError::new(
                    format!("`{base}` is not of class type"),
                    pos,
                ));
            };
            let fid = self
                .ctx
                .resolve_field(&cn, field, &self.classes_by_name, pos)?;
            Ok((Some(Operand::Local(local)), fid))
        } else {
            // Class-name base: static-style access (no receiver).
            if !self.ctx.classes.contains_key(base) {
                return Err(FrontendError::new(
                    format!("unknown class or variable `{base}`"),
                    pos,
                ));
            }
            let fid = self
                .ctx
                .resolve_field(base, field, &self.classes_by_name, pos)?;
            Ok((None, fid))
        }
    }

    fn base_class_name(&self, base: &str, pos: Pos) -> Result<String, FrontendError> {
        if let Some((_, ty)) = self.lookup(base) {
            match ty {
                AstType::Class(cn) => Ok(cn),
                _ => Err(FrontendError::new(
                    format!("`{base}` is not of class type"),
                    pos,
                )),
            }
        } else if self.ctx.classes.contains_key(base) {
            Ok(base.to_owned())
        } else {
            Err(FrontendError::new(
                format!("unknown class or variable `{base}`"),
                pos,
            ))
        }
    }
}

fn lower_binop(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
        AstBinOp::Rem => BinOp::Rem,
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::Ne => BinOp::Ne,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::Le => BinOp::Le,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::Ge => BinOp::Ge,
        AstBinOp::And | AstBinOp::Or => unreachable!("short-circuit ops are lowered to branches"),
    }
}
