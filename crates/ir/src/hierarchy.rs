//! Class hierarchy and CHA-style virtual dispatch resolution.

use crate::types::*;
use std::collections::HashMap;

/// Precomputed class-hierarchy queries for a [`Program`].
///
/// Virtual calls are resolved with Class Hierarchy Analysis: a call
/// `base.m()` where `base` has declared type `C` may dispatch to the
/// implementation of `m` visible in any subtype of `C`. As in the paper
/// (§5, "Current Limitations"), resolution is *feature-insensitive*: the
/// call graph ignores annotations, which is sound but imprecise.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    subclasses: Vec<Vec<ClassId>>,
    /// (class, name, argc) → dispatched implementation.
    dispatch: HashMap<(ClassId, String, usize), MethodId>,
}

impl Hierarchy {
    /// Builds the hierarchy tables for `program`.
    pub fn new(program: &Program) -> Self {
        let n = program.classes().len();
        let mut subclasses: Vec<Vec<ClassId>> = vec![Vec::new(); n];
        for (i, c) in program.classes().iter().enumerate() {
            if let Some(sup) = c.superclass {
                subclasses[sup.index()].push(ClassId(i as u32));
            }
        }
        let mut dispatch = HashMap::new();
        for (i, _) in program.classes().iter().enumerate() {
            let cid = ClassId(i as u32);
            // Walk from `cid` up the superclass chain; the first
            // declaration of each (name, argc) wins (override).
            let mut cur = Some(cid);
            while let Some(c) = cur {
                for &mid in &program.class(c).methods {
                    let m = program.method(mid);
                    if m.is_static {
                        continue;
                    }
                    let key = (cid, m.name.clone(), m.params.len());
                    dispatch.entry(key).or_insert(mid);
                }
                cur = program.class(c).superclass;
            }
        }
        Hierarchy {
            subclasses,
            dispatch,
        }
    }

    /// Direct subclasses of `c`.
    pub fn direct_subclasses(&self, c: ClassId) -> &[ClassId] {
        &self.subclasses[c.index()]
    }

    /// All subtypes of `c`, including `c` itself, in deterministic order.
    pub fn subtypes_of(&self, c: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut stack = vec![c];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend(self.subclasses[x.index()].iter().rev().copied());
        }
        out.sort();
        out
    }

    /// `true` iff `sub` is `sup` or a (transitive) subclass of it.
    pub fn is_subtype(&self, program: &Program, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = program.class(c).superclass;
        }
        false
    }

    /// The implementation a receiver of *exact* runtime type `c` dispatches
    /// to for `name`/`argc`, if any.
    pub fn dispatch(&self, c: ClassId, name: &str, argc: usize) -> Option<MethodId> {
        self.dispatch.get(&(c, name.to_owned(), argc)).copied()
    }

    /// CHA resolution: all implementations a call `base.name(...)` with
    /// declared receiver type `declared` may reach.
    pub fn resolve_virtual(&self, declared: ClassId, name: &str, argc: usize) -> Vec<MethodId> {
        let mut out: Vec<MethodId> = self
            .subtypes_of(declared)
            .into_iter()
            .filter_map(|c| self.dispatch(c, name, argc))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}
