//! A Jimple-like three-address intermediate representation for a mini-Java
//! language, with feature annotations on statements.
//!
//! This crate is the SPLLIFT reproduction's stand-in for Soot: it provides
//! the typed three-address code the paper's analyses run on (§5 — "Jimple
//! statements are never nested, and all control-flow constructs are reduced
//! to simple conditional and unconditional branches"), plus:
//!
//! * a class hierarchy with CHA-based virtual dispatch ([`Hierarchy`]),
//! * a call graph reachable from declared entry points ([`CallGraph`]) —
//!   computed *feature-insensitively*, reproducing the limitation the paper
//!   discusses in §5,
//! * an implementation of [`spllift_ifds::Icfg`] ([`ProgramIcfg`]) so all
//!   solvers in the workspace run directly on programs,
//! * per-statement feature annotations ([`Stmt::annotation`]) as produced
//!   by the CIDE-style frontend,
//! * product derivation ([`Program::derive_product`]) — the "preprocessor"
//!   that turns the product line into a single product for a configuration
//!   (used by the A1 baseline and by differential tests),
//! * a [`ProgramBuilder`] for constructing programs programmatically and a
//!   pretty-printer for a Jimple-like text form,
//! * a round-trippable plain-text program format ([`text`]) for committed
//!   fuzzing repros (`tests/corpus/`).
//!
//! Statements are addressed by [`StmtRef`] (method + index); index 0 is a
//! synthetic entry `nop`, and every method body ends with an unannotated
//! `return` so that disabled trailing returns still fall through somewhere.

#![warn(missing_docs)]
mod builder;
mod callgraph;
mod fingerprint;
mod hierarchy;
mod icfg;
pub mod interp;
pub mod pretty;
mod product;
pub mod samples;
pub mod text;
mod types;

pub use builder::{Label, MethodBuilder, ProgramBuilder};
pub use callgraph::{transitive_callers, CallGraph};
pub use fingerprint::fingerprint;
pub use hierarchy::Hierarchy;
pub use icfg::ProgramIcfg;
pub use types::{
    BinOp, Body, Callee, Class, ClassId, ElemType, Field, FieldId, IrError, Local, LocalId, Method,
    MethodId, Operand, Program, Rvalue, Stmt, StmtKind, StmtRef, Type,
};

#[cfg(test)]
mod tests;
