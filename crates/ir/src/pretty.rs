//! Jimple-like pretty-printing of programs.

use crate::types::*;
use std::fmt::Write as _;

fn operand_to_string(_program: &Program, body: &Body, op: Operand) -> String {
    match op {
        Operand::Local(l) => body.locals[l.index()].name.clone(),
        Operand::IntConst(c) => c.to_string(),
        Operand::BoolConst(b) => b.to_string(),
        Operand::Null => "null".into(),
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
    }
}

/// Renders the statement at `s` in Jimple-like syntax.
pub fn stmt_to_string(program: &Program, s: StmtRef) -> String {
    let body = program.body(s.method);
    let op = |o: Operand| operand_to_string(program, body, o);
    let local = |l: LocalId| body.locals[l.index()].name.clone();
    match &body.stmts[s.index as usize].kind {
        StmtKind::Nop => "nop".into(),
        StmtKind::Assign { target, rvalue } => {
            let rhs = match rvalue {
                Rvalue::Use(o) => op(*o),
                Rvalue::Binary(b, l, r) => {
                    format!("{} {} {}", op(*l), binop_str(*b), op(*r))
                }
                Rvalue::New(c) => format!("new {}", program.class(*c).name),
                Rvalue::FieldLoad { base, field } => {
                    let f = program.field(*field);
                    match base {
                        Some(b) => format!("{}.{}", op(*b), f.name),
                        None => format!("{}.{}", program.class(f.class).name, f.name),
                    }
                }
                Rvalue::NewArray { elem, len } => {
                    let name = match elem {
                        ElemType::Int => "int".to_owned(),
                        ElemType::Boolean => "boolean".to_owned(),
                        ElemType::Ref(c) => program.class(*c).name.clone(),
                    };
                    format!("new {name}[{}]", op(*len))
                }
                Rvalue::ArrayLoad { base, index } => {
                    format!("{}[{}]", op(*base), op(*index))
                }
            };
            format!("{} = {}", local(*target), rhs)
        }
        StmtKind::FieldStore { base, field, value } => {
            let f = program.field(*field);
            let lhs = match base {
                Some(b) => format!("{}.{}", op(*b), f.name),
                None => format!("{}.{}", program.class(f.class).name, f.name),
            };
            format!("{} = {}", lhs, op(*value))
        }
        StmtKind::ArrayStore { base, index, value } => {
            format!("{}[{}] = {}", op(*base), op(*index), op(*value))
        }
        StmtKind::If {
            op: o,
            lhs,
            rhs,
            target,
        } => {
            format!(
                "if {} {} {} goto {}",
                op(*lhs),
                binop_str(*o),
                op(*rhs),
                target
            )
        }
        StmtKind::Goto { target } => format!("goto {target}"),
        StmtKind::Invoke {
            result,
            callee,
            args,
        } => {
            let args_str: Vec<String> = args.iter().map(|&a| op(a)).collect();
            let call = match callee {
                Callee::Static(m) => {
                    let meth = program.method(*m);
                    let qual = meth
                        .class
                        .map(|c| format!("{}.", program.class(c).name))
                        .unwrap_or_default();
                    format!("{}{}({})", qual, meth.name, args_str.join(", "))
                }
                Callee::Virtual { base, name, .. } => {
                    format!("{}.{}({})", local(*base), name, args_str.join(", "))
                }
            };
            match result {
                Some(r) => format!("{} = {}", local(*r), call),
                None => call,
            }
        }
        StmtKind::Return { value } => match value {
            Some(v) => format!("return {}", op(*v)),
            None => "return".into(),
        },
    }
}

/// Renders a whole program in Jimple-like syntax, with `// @ifdef` comments
/// for feature annotations.
pub fn program_to_string(program: &Program, table: &spllift_features::FeatureTable) -> String {
    let mut out = String::new();
    for (mi, m) in program.methods().iter().enumerate() {
        let mid = MethodId(mi as u32);
        let qual = m
            .class
            .map(|c| format!("{}.", program.class(c).name))
            .unwrap_or_default();
        let _ = writeln!(out, "method {qual}{}({} params):", m.name, m.params.len());
        let Some(body) = &m.body else {
            let _ = writeln!(out, "  <abstract>");
            continue;
        };
        for (i, stmt) in body.stmts.iter().enumerate() {
            let sref = StmtRef {
                method: mid,
                index: i as u32,
            };
            let ann = if stmt.annotation == spllift_features::FeatureExpr::True {
                String::new()
            } else {
                format!("  // @ifdef {}", stmt.annotation.display(table))
            };
            let _ = writeln!(out, "  {i:3}: {}{ann}", stmt_to_string(program, sref));
        }
    }
    out
}
