//! Call-graph construction (reachability from entry points, CHA targets).

use crate::types::*;
use crate::Hierarchy;
use std::collections::{BTreeSet, HashMap};

/// A call graph: per-call-site targets plus the reachable-method set,
/// computed by a worklist from the program's entry points.
///
/// As in the paper (§5), construction ignores feature annotations: a call
/// site annotated `#ifdef F` still contributes its edges. This reproduces
/// both the soundness and the imprecision the paper describes, and it
/// matches the "Soot/CG" column of Table 2 (one shared call graph for
/// SPLLIFT and the baselines).
#[derive(Debug, Clone)]
pub struct CallGraph {
    targets: HashMap<StmtRef, Vec<MethodId>>,
    reachable: BTreeSet<MethodId>,
    /// Call sites per callee, for reverse queries.
    callers: HashMap<MethodId, Vec<StmtRef>>,
}

impl CallGraph {
    /// Builds the call graph of `program` using `hierarchy` for virtual
    /// dispatch.
    pub fn build(program: &Program, hierarchy: &Hierarchy) -> Self {
        let mut targets: HashMap<StmtRef, Vec<MethodId>> = HashMap::new();
        let mut callers: HashMap<MethodId, Vec<StmtRef>> = HashMap::new();
        let mut reachable: BTreeSet<MethodId> = BTreeSet::new();
        let mut worklist: Vec<MethodId> = program.entry_points().to_vec();
        while let Some(m) = worklist.pop() {
            if !reachable.insert(m) || program.method(m).body.is_none() {
                continue;
            }
            for sref in program.stmts_of(m) {
                let StmtKind::Invoke { callee, .. } = &program.stmt(sref).kind else {
                    continue;
                };
                let callees = match callee {
                    Callee::Static(target) => vec![*target],
                    Callee::Virtual { base, name, argc } => {
                        let body = program.body(m);
                        match body.locals[base.index()].ty {
                            Type::Ref(declared) => hierarchy.resolve_virtual(declared, name, *argc),
                            _ => Vec::new(),
                        }
                    }
                };
                for &q in &callees {
                    callers.entry(q).or_default().push(sref);
                    if program.method(q).body.is_some() {
                        worklist.push(q);
                    }
                }
                targets.insert(sref, callees);
            }
        }
        // Only keep reachable methods that have bodies (abstract targets
        // are kept in `targets` for diagnostics but not analyzed).
        reachable.retain(|&m| program.method(m).body.is_some());
        CallGraph {
            targets,
            reachable,
            callers,
        }
    }

    /// The possible callees of call site `s` (empty for non-calls).
    pub fn callees_of(&self, s: StmtRef) -> &[MethodId] {
        self.targets.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Call sites that may invoke `m`.
    pub fn callers_of(&self, m: MethodId) -> &[StmtRef] {
        self.callers.get(&m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Methods (with bodies) reachable from the entry points.
    pub fn reachable_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.reachable.iter().copied()
    }

    /// `true` iff `m` is reachable.
    pub fn is_reachable(&self, m: MethodId) -> bool {
        self.reachable.contains(&m)
    }

    /// Number of call edges.
    pub fn edge_count(&self) -> usize {
        self.targets.values().map(Vec::len).sum()
    }
}

/// The transitive *caller* closure of `roots`: every method from which
/// some root is reachable through call edges, roots included.
///
/// This is the dirty set of an incremental re-analysis after editing the
/// bodies of `roots` (see `SolverMemo` in `spllift-ide`): a method whose
/// body is unchanged can still observe an edit through a callee's end
/// summary, so every transitive caller must be re-tabulated, while the
/// complement — the clean set — is closed under "calls into" by
/// construction.
///
/// Unlike [`CallGraph::build`], this scans *every* body (not just
/// entry-reachable ones): the closure must stay sound even for methods a
/// later edit could make reachable.
pub fn transitive_callers(
    program: &Program,
    hierarchy: &Hierarchy,
    roots: &BTreeSet<MethodId>,
) -> BTreeSet<MethodId> {
    // callee → callers, over all bodies.
    let mut callers: HashMap<MethodId, Vec<MethodId>> = HashMap::new();
    for m in program.methods_with_body() {
        let body = program.body(m);
        for stmt in &body.stmts {
            let StmtKind::Invoke { callee, .. } = &stmt.kind else {
                continue;
            };
            let callees = match callee {
                Callee::Static(target) => vec![*target],
                Callee::Virtual { base, name, argc } => match body.locals[base.index()].ty {
                    Type::Ref(declared) => hierarchy.resolve_virtual(declared, name, *argc),
                    _ => Vec::new(),
                },
            };
            for q in callees {
                callers.entry(q).or_default().push(m);
            }
        }
    }
    let mut closure: BTreeSet<MethodId> = roots.clone();
    let mut worklist: Vec<MethodId> = roots.iter().copied().collect();
    while let Some(m) = worklist.pop() {
        for &caller in callers.get(&m).map(Vec::as_slice).unwrap_or(&[]) {
            if closure.insert(caller) {
                worklist.push(caller);
            }
        }
    }
    closure
}
