//! Product derivation: the "preprocessor" of the traditional approach.

use crate::types::*;
use spllift_features::{Configuration, FeatureExpr};

impl Program {
    /// Derives the single product of this product line selected by
    /// `config`: every statement whose annotation is not satisfied is
    /// replaced by a `nop` (which is exactly "the statement is absent and
    /// control falls through", while keeping branch targets stable).
    ///
    /// This is what the A1 baseline ("generate and analyze all products",
    /// paper §6.2) feeds to the plain IFDS solver.
    ///
    /// The derived program carries no annotations (everything is `True`).
    pub fn derive_product(&self, config: &Configuration) -> Program {
        let mut product = self.clone();
        for m in &mut product.methods {
            let Some(body) = &mut m.body else { continue };
            for stmt in &mut body.stmts {
                if !config.satisfies(&stmt.annotation) {
                    stmt.kind = StmtKind::Nop;
                }
                stmt.annotation = FeatureExpr::True;
            }
        }
        product
    }

    /// Returns a copy of the program with every statement annotation
    /// rewritten by `f` (statement kinds and CFG untouched). Useful for
    /// controlled experiments — e.g. thinning annotations to measure the
    /// cost of annotation density on an otherwise identical program.
    #[must_use]
    pub fn map_annotations(
        &self,
        mut f: impl FnMut(StmtRef, &FeatureExpr) -> FeatureExpr,
    ) -> Program {
        let mut out = self.clone();
        for (mi, m) in out.methods.iter_mut().enumerate() {
            let Some(body) = &mut m.body else { continue };
            for (i, stmt) in body.stmts.iter_mut().enumerate() {
                let sref = StmtRef {
                    method: MethodId(mi as u32),
                    index: i as u32,
                };
                stmt.annotation = f(sref, &stmt.annotation);
            }
        }
        out
    }

    /// The features mentioned in annotations of statements *reachable*
    /// from the entry points (per the given call graph) — the paper's
    /// "Features reachable" column of Table 1.
    pub fn reachable_features(
        &self,
        call_graph: &crate::CallGraph,
    ) -> std::collections::BTreeSet<spllift_features::FeatureId> {
        let mut out = std::collections::BTreeSet::new();
        for m in call_graph.reachable_methods() {
            for s in self.stmts_of(m) {
                self.stmt(s).annotation.collect_features(&mut out);
            }
        }
        out
    }

    /// All features mentioned in any annotation (reachable or not).
    pub fn annotated_features(&self) -> std::collections::BTreeSet<spllift_features::FeatureId> {
        let mut out = std::collections::BTreeSet::new();
        for (mi, m) in self.methods.iter().enumerate() {
            let _ = mi;
            let Some(body) = &m.body else { continue };
            for stmt in &body.stmts {
                stmt.annotation.collect_features(&mut out);
            }
        }
        out
    }
}
