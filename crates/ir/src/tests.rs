use crate::samples::{fig1, shapes};
use crate::*;
use spllift_features::{Configuration, FeatureExpr, FeatureTable};
use spllift_ifds::Icfg;

mod builder {
    use super::*;

    #[test]
    fn entry_nop_and_final_return_are_synthesized() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_method("m", None, &[], None, true);
        let mb = pb.method_body(m);
        pb.finish_body(mb);
        let p = pb.finish();
        let body = p.body(m);
        assert!(matches!(body.stmts[0].kind, StmtKind::Nop));
        assert!(matches!(
            body.stmts.last().unwrap().kind,
            StmtKind::Return { .. }
        ));
        assert!(p.check().is_ok());
    }

    #[test]
    fn annotated_final_return_gets_backstop() {
        let mut t = FeatureTable::new();
        let f = t.intern("F");
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_method("m", None, &[], None, true);
        let mut mb = pb.method_body(m);
        mb.push_annotation(FeatureExpr::var(f));
        mb.ret(None);
        mb.pop_annotation();
        pb.finish_body(mb);
        let p = pb.finish();
        // The annotated return must be followed by an unannotated one.
        let body = p.body(m);
        assert_eq!(body.stmts.len(), 3);
        assert!(p.check().is_ok());
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_method("m", None, &[], None, true);
        let mut mb = pb.method_body(m);
        let x = mb.local("x", Type::Int);
        let loop_head = mb.fresh_label();
        let done = mb.fresh_label();
        mb.bind(loop_head);
        mb.if_cmp(BinOp::Ge, Operand::Local(x), Operand::IntConst(10), done);
        mb.assign(
            x,
            Rvalue::Binary(BinOp::Add, Operand::Local(x), Operand::IntConst(1)),
        );
        mb.goto(loop_head);
        mb.bind(done);
        mb.ret(None);
        pb.finish_body(mb);
        let p = pb.finish();
        assert!(p.check().is_ok());
        // if at index 1 targets the return at index 4; goto at 3 targets 1.
        let body = p.body(m);
        match &body.stmts[1].kind {
            StmtKind::If { target, .. } => assert_eq!(*target, 4),
            other => panic!("expected if, got {other:?}"),
        }
        match &body.stmts[3].kind {
            StmtKind::Goto { target } => assert_eq!(*target, 1),
            other => panic!("expected goto, got {other:?}"),
        }
    }

    #[test]
    fn param_locals_and_this() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let m = pb.declare_method("m", Some(c), &[Type::Int, Type::Boolean], None, false);
        let mb = pb.method_body(m);
        assert_eq!(mb.this_local(), Some(LocalId(0)));
        assert_eq!(mb.param_local(0), LocalId(1));
        assert_eq!(mb.param_local(1), LocalId(2));
        pb.finish_body(mb);
        let p = pb.finish();
        let body = p.body(m);
        assert_eq!(body.locals[0].ty, Type::Ref(c));
        assert_eq!(body.locals[1].ty, Type::Int);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_method("m", None, &[], None, true);
        let mut mb = pb.method_body(m);
        let l = mb.fresh_label();
        mb.goto(l);
        pb.finish_body(mb);
    }
}

mod cfg {
    use super::*;

    #[test]
    fn successors_of_branches() {
        let ex = fig1();
        let p = &ex.program;
        // In foo: 0 nop, 1 p=0 (H), 2 return p (unannotated, no backstop).
        let body = p.body(ex.foo);
        assert_eq!(body.stmts.len(), 3);
        let s0 = StmtRef {
            method: ex.foo,
            index: 0,
        };
        let s2 = StmtRef {
            method: ex.foo,
            index: 2,
        };
        assert_eq!(
            p.successors_of(s0),
            vec![StmtRef {
                method: ex.foo,
                index: 1
            }]
        );
        assert!(p.successors_of(s2).is_empty(), "return has no successors");
    }

    #[test]
    fn if_has_two_successors() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_method("m", None, &[], None, true);
        let mut mb = pb.method_body(m);
        let done = mb.fresh_label();
        mb.if_cmp(BinOp::Eq, Operand::IntConst(1), Operand::IntConst(2), done);
        mb.nop();
        mb.bind(done);
        mb.ret(None);
        pb.finish_body(mb);
        let p = pb.finish();
        let s_if = StmtRef {
            method: m,
            index: 1,
        };
        let succs = p.successors_of(s_if);
        assert_eq!(succs.len(), 2);
        assert_eq!(
            p.fall_through_of(s_if),
            Some(StmtRef {
                method: m,
                index: 2
            })
        );
        assert_eq!(
            p.branch_target_of(s_if),
            Some(StmtRef {
                method: m,
                index: 3
            })
        );
    }

    #[test]
    fn check_rejects_bad_branch_target() {
        let ex = fig1();
        let mut p = ex.program.clone();
        let body = p.methods[ex.main.index()].body.as_mut().unwrap();
        body.stmts[1].kind = StmtKind::Goto { target: 999 };
        assert!(matches!(p.check(), Err(IrError::BadBranchTarget(_, 999))));
    }
}

mod hierarchy_and_callgraph {
    use super::*;

    #[test]
    fn cha_resolves_all_overrides() {
        let ex = shapes();
        let icfg = ProgramIcfg::new(&ex.program);
        let callees = icfg.callees_of(ex.call_site);
        // Declared type Shape: all three implementations are candidates.
        assert_eq!(callees.len(), 3);
        for m in &ex.methods[..3] {
            assert!(callees.contains(m));
        }
    }

    #[test]
    fn dispatch_walks_superclass_chain() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", None);
        let b = pb.add_class("B", Some(a));
        let m = pb.declare_method("f", Some(a), &[], None, false);
        {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        let p = pb.finish();
        let h = Hierarchy::new(&p);
        // B does not override f: dispatch on B resolves to A.f.
        assert_eq!(h.dispatch(b, "f", 0), Some(m));
        assert_eq!(h.resolve_virtual(a, "f", 0), vec![m]);
        assert!(h.is_subtype(&p, b, a));
        assert!(!h.is_subtype(&p, a, b));
        assert_eq!(h.subtypes_of(a), vec![a, b]);
    }

    #[test]
    fn call_graph_reaches_transitively() {
        let ex = fig1();
        let icfg = ProgramIcfg::new(&ex.program);
        let cg = icfg.call_graph();
        for m in [ex.main, ex.foo, ex.secret, ex.print] {
            assert!(cg.is_reachable(m), "{m} must be reachable");
        }
        assert!(cg.edge_count() >= 3);
        assert!(cg.callers_of(ex.foo).iter().all(|s| s.method == ex.main));
    }

    #[test]
    fn unreachable_methods_excluded() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let dead = pb.declare_method("dead", None, &[], None, true);
        for m in [main, dead] {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        assert!(icfg.call_graph().is_reachable(main));
        assert!(!icfg.call_graph().is_reachable(dead));
        assert_eq!(icfg.methods(), vec![main]);
    }

    #[test]
    fn call_graph_is_feature_insensitive() {
        // The #ifdef G call to foo still produces a call edge (paper §5).
        let ex = fig1();
        let icfg = ProgramIcfg::new(&ex.program);
        assert!(icfg.call_graph().is_reachable(ex.foo));
    }
}

mod icfg_impl {
    use super::*;

    #[test]
    fn icfg_trait_views_fig1() {
        let ex = fig1();
        let icfg = ProgramIcfg::new(&ex.program);
        assert_eq!(icfg.entry_points(), vec![ex.main]);
        let sp = icfg.start_point_of(ex.main);
        assert_eq!(sp.index, 0);
        assert!(!icfg.is_call(sp));
        // Statement 1 of main is the secret() call.
        let call = StmtRef {
            method: ex.main,
            index: 1,
        };
        assert!(icfg.is_call(call));
        assert_eq!(icfg.callees_of(call), vec![ex.secret]);
        assert_eq!(icfg.return_sites_of(call).len(), 1);
        let exits: Vec<_> = icfg
            .stmts_of(ex.main)
            .into_iter()
            .filter(|&s| icfg.is_exit(s))
            .collect();
        assert!(!exits.is_empty());
    }

    #[test]
    fn annotations_visible_through_icfg() {
        let ex = fig1();
        let icfg = ProgramIcfg::new(&ex.program);
        let [f, _, _] = ex.features;
        // Statement 3 of main is `x = 0` under F.
        let s = StmtRef {
            method: ex.main,
            index: 3,
        };
        assert_eq!(*icfg.annotation_of(s), FeatureExpr::var(f));
        assert_eq!(
            *icfg.annotation_of(icfg.start_point_of(ex.main)),
            FeatureExpr::True
        );
    }

    #[test]
    fn stmt_labels_render() {
        let ex = fig1();
        let icfg = ProgramIcfg::new(&ex.program);
        let label = icfg.stmt_label(StmtRef {
            method: ex.main,
            index: 1,
        });
        assert!(label.contains("secret"), "{label}");
        assert_eq!(icfg.method_label(ex.main), "main");
    }
}

mod product {
    use super::*;

    #[test]
    fn derive_product_disables_statements() {
        let ex = fig1();
        let [f, g, _h] = ex.features;
        // ¬F ∧ G ∧ ¬H: the leaky product of Figure 1b.
        let config = Configuration::from_enabled([g]);
        let product = ex.program.derive_product(&config);
        assert!(product.check().is_ok());
        // x = 0 under F (main index 3) must be a nop now.
        let s = StmtRef {
            method: ex.main,
            index: 3,
        };
        assert!(matches!(product.stmt(s).kind, StmtKind::Nop));
        // y = foo(x) under G (main index 4) must survive.
        let s = StmtRef {
            method: ex.main,
            index: 4,
        };
        assert!(matches!(product.stmt(s).kind, StmtKind::Invoke { .. }));
        // Annotations are gone.
        assert!(product
            .stmts_of(ex.main)
            .all(|s| product.stmt(s).annotation == FeatureExpr::True));
        let _ = f;
    }

    #[test]
    fn derive_product_full_config_is_annotation_erasure() {
        let ex = fig1();
        let [f, g, h] = ex.features;
        let config = Configuration::from_enabled([f, g, h]);
        let product = ex.program.derive_product(&config);
        for (orig, derived) in ex.program.stmts_of(ex.main).zip(product.stmts_of(ex.main)) {
            assert_eq!(ex.program.stmt(orig).kind, product.stmt(derived).kind);
        }
    }

    #[test]
    fn reachable_features_of_fig1() {
        let ex = fig1();
        let icfg = ProgramIcfg::new(&ex.program);
        let feats = ex.program.reachable_features(icfg.call_graph());
        assert_eq!(feats.len(), 3);
        let all = ex.program.annotated_features();
        assert_eq!(feats, all);
    }

    #[test]
    fn unreachable_annotations_not_counted() {
        let mut t = FeatureTable::new();
        let f = t.intern("DEAD_FEATURE");
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let dead = pb.declare_method("dead", None, &[], None, true);
        {
            let mb = pb.method_body(main);
            pb.finish_body(mb);
        }
        {
            let mut mb = pb.method_body(dead);
            mb.push_annotation(FeatureExpr::var(f));
            mb.nop();
            mb.pop_annotation();
            pb.finish_body(mb);
        }
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        assert!(p.reachable_features(icfg.call_graph()).is_empty());
        assert_eq!(p.annotated_features().len(), 1);
    }
}

mod pretty {
    use super::*;

    #[test]
    fn program_renders_with_annotations() {
        let ex = fig1();
        let text = crate::pretty::program_to_string(&ex.program, &ex.table);
        assert!(text.contains("main"));
        assert!(text.contains("@ifdef F"));
        assert!(text.contains("@ifdef G"));
        assert!(text.contains("return"));
        assert!(text.contains("foo(")); // invoke rendering
    }

    #[test]
    fn stmt_rendering_covers_kinds() {
        let ex = shapes();
        let p = &ex.program;
        let texts: Vec<String> = p
            .stmts_of(ex.methods[3])
            .map(|s| crate::pretty::stmt_to_string(p, s))
            .collect();
        assert!(texts.iter().any(|t| t.contains("new Circle")));
        assert!(texts.iter().any(|t| t.contains(".area(")));
    }
}

mod uses_defs {
    use super::*;

    #[test]
    fn def_and_uses() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_method("m", None, &[], None, true);
        let mut mb = pb.method_body(m);
        let x = mb.local("x", Type::Int);
        let y = mb.local("y", Type::Int);
        mb.assign(
            y,
            Rvalue::Binary(BinOp::Add, Operand::Local(x), Operand::IntConst(1)),
        );
        mb.ret(Some(Operand::Local(y)));
        pb.finish_body(mb);
        let p = pb.finish();
        let assign = p.stmt(StmtRef {
            method: m,
            index: 1,
        });
        assert_eq!(assign.kind.def(), Some(y));
        assert_eq!(assign.kind.uses(), vec![x]);
        let ret = p.stmt(StmtRef {
            method: m,
            index: 2,
        });
        assert_eq!(ret.kind.def(), None);
        assert_eq!(ret.kind.uses(), vec![y]);
    }
}

mod properties {
    use super::*;
    use spllift_features::Configuration;
    use spllift_rng::SplitMix64;

    /// Random annotated straight-line-with-branches method bodies,
    /// validating structural invariants and product derivation.
    fn random_ops(rng: &mut SplitMix64) -> Vec<(u8, u8)> {
        (0..rng.gen_range(1..12usize))
            .map(|_| (rng.gen_range(0..4u8), rng.gen_range(0..6u8)))
            .collect()
    }

    fn annotation_of(code: u8, f: &[spllift_features::FeatureId; 2]) -> FeatureExpr {
        match code {
            0 | 1 => FeatureExpr::True,
            2 => FeatureExpr::var(f[0]),
            3 => FeatureExpr::var(f[1]),
            4 => FeatureExpr::var(f[0]).not(),
            _ => FeatureExpr::var(f[0]).and(FeatureExpr::var(f[1])),
        }
    }

    fn build(ops: &[(u8, u8)], f: &[spllift_features::FeatureId; 2]) -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_method("m", None, &[], None, true);
        let mut mb = pb.method_body(m);
        let x = mb.local("x", Type::Int);
        let y = mb.local("y", Type::Int);
        let labels: Vec<_> = (0..ops.len() + 1).map(|_| mb.fresh_label()).collect();
        for (i, &(op, ann)) in ops.iter().enumerate() {
            mb.bind(labels[i]);
            let a = annotation_of(ann, f);
            let push = a != FeatureExpr::True;
            if push {
                mb.push_annotation(a);
            }
            match op % 4 {
                0 => {
                    mb.assign(x, Rvalue::Use(Operand::IntConst(op as i64)));
                }
                1 => {
                    mb.assign(
                        y,
                        Rvalue::Binary(BinOp::Add, Operand::Local(x), Operand::IntConst(1)),
                    );
                }
                2 => {
                    let t = (i + 2).min(ops.len());
                    mb.if_cmp(
                        BinOp::Lt,
                        Operand::Local(x),
                        Operand::IntConst(5),
                        labels[t],
                    );
                }
                _ => {
                    let t = (i + 2).min(ops.len());
                    mb.goto(labels[t]);
                }
            }
            if push {
                mb.pop_annotation();
            }
        }
        mb.bind(labels[ops.len()]);
        pb.finish_body(mb);
        pb.add_entry_point(m);
        pb.finish()
    }

    /// Every generated program passes structural validation, and so
    /// does every derived product; deriving twice equals deriving
    /// once (annotation erasure is idempotent).
    #[test]
    fn derivation_is_valid_and_idempotent() {
        let mut rng = SplitMix64::seed_from_u64(0x18_0001);
        for _ in 0..256 {
            let ops = random_ops(&mut rng);
            let bits = rng.gen_range(0..4u64);
            let mut t = spllift_features::FeatureTable::new();
            let f = [t.intern("A"), t.intern("B")];
            let p = build(&ops, &f);
            assert!(p.check().is_ok(), "ops {ops:?}");
            let config = Configuration::from_bits(bits, 2);
            let once = p.derive_product(&config);
            assert!(once.check().is_ok(), "ops {ops:?} bits {bits:b}");
            let twice = once.derive_product(&config);
            assert_eq!(&once, &twice);
            // Derived products carry no annotations.
            for m in 0..once.methods().len() {
                let mid = MethodId(m as u32);
                if once.method(mid).body.is_none() {
                    continue;
                }
                for s in once.stmts_of(mid) {
                    assert_eq!(&once.stmt(s).annotation, &FeatureExpr::True);
                }
            }
        }
    }

    /// CFG sanity: every successor is in range and non-return
    /// statements always have at least one successor.
    #[test]
    fn cfg_well_formed() {
        let mut rng = SplitMix64::seed_from_u64(0x18_0002);
        for _ in 0..256 {
            let ops = random_ops(&mut rng);
            let mut t = spllift_features::FeatureTable::new();
            let f = [t.intern("A"), t.intern("B")];
            let p = build(&ops, &f);
            let m = MethodId(0);
            let n = p.body(m).stmts.len() as u32;
            for s in p.stmts_of(m) {
                let succs = p.successors_of(s);
                for succ in &succs {
                    assert!(succ.index < n);
                }
                let is_return = matches!(p.stmt(s).kind, StmtKind::Return { .. });
                assert_eq!(succs.is_empty(), is_return, "at {s}");
            }
        }
    }
}

mod interp {
    use super::*;
    use crate::interp::{run, Event, InterpConfig};
    use spllift_features::Configuration;

    #[test]
    fn fig1_products_leak_dynamically_exactly_when_static_says() {
        let ex = fig1();
        let [f, g, h] = ex.features;
        let config_leaks =
            |cfg: &Configuration| !cfg.is_enabled(f) && cfg.is_enabled(g) && !cfg.is_enabled(h);
        for bits in 0u64..8 {
            let mut cfg = Configuration::empty();
            for (i, feat) in [f, g, h].into_iter().enumerate() {
                if bits & (1 << i) != 0 {
                    cfg.enable(feat);
                }
            }
            let product = ex.program.derive_product(&cfg);
            let trace = run(&product, &InterpConfig::secret_to_print());
            let leaked = trace.events.iter().any(|e| matches!(e, Event::Leak(_)));
            assert_eq!(leaked, config_leaks(&cfg), "config {cfg:?}");
            assert!(!trace.budget_exhausted);
        }
    }

    #[test]
    fn uninit_read_is_observed() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        let y = mb.local("y", Type::Int);
        let use_idx = mb.assign(
            y,
            Rvalue::Binary(BinOp::Add, Operand::Local(x), Operand::IntConst(1)),
        );
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let trace = run(&p, &InterpConfig::default());
        assert_eq!(
            trace.events,
            vec![Event::UninitRead(
                StmtRef {
                    method: main,
                    index: use_idx
                },
                x
            )]
        );
    }

    #[test]
    fn loops_terminate_via_budget_or_condition() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        mb.assign(x, Rvalue::Use(Operand::IntConst(100)));
        let head = mb.fresh_label();
        let done = mb.fresh_label();
        mb.bind(head);
        mb.if_cmp(BinOp::Le, Operand::Local(x), Operand::IntConst(0), done);
        mb.assign(
            x,
            Rvalue::Binary(BinOp::Sub, Operand::Local(x), Operand::IntConst(1)),
        );
        mb.goto(head);
        mb.bind(done);
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let trace = run(&p, &InterpConfig::default());
        assert!(!trace.budget_exhausted);
        assert!(trace.steps > 300, "the loop actually ran: {}", trace.steps);

        // Infinite loop: the budget stops it.
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let head = mb.fresh_label();
        mb.bind(head);
        mb.nop();
        mb.goto(head);
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let trace = run(
            &p,
            &InterpConfig {
                step_budget: 1_000,
                ..Default::default()
            },
        );
        assert!(trace.budget_exhausted);
    }

    #[test]
    fn virtual_dispatch_uses_runtime_type() {
        let ex = shapes();
        let [f, ..] = [ex.table.get("F").unwrap()];
        // F on: s = new Circle (area=1); F off: Square (area=2).
        for (cfg, _expected_area) in [
            (Configuration::from_enabled([f]), 1),
            (Configuration::empty(), 2),
        ] {
            let product = ex.program.derive_product(&cfg);
            let trace = run(&product, &InterpConfig::default());
            assert!(!trace.budget_exhausted);
            assert!(trace.events.is_empty());
        }
    }

    #[test]
    fn deep_recursion_is_bounded() {
        let mut pb = ProgramBuilder::new();
        let rec = pb.declare_method("rec", None, &[Type::Int], Some(Type::Int), true);
        let main = pb.declare_method("main", None, &[], None, true);
        {
            let mut mb = pb.method_body(rec);
            let p0 = mb.param_local(0);
            let r = mb.local("r", Type::Int);
            // rec(n) = rec(n+1): infinite recursion.
            let arg = mb.local("arg", Type::Int);
            mb.assign(
                arg,
                Rvalue::Binary(BinOp::Add, Operand::Local(p0), Operand::IntConst(1)),
            );
            mb.invoke(Some(r), Callee::Static(rec), vec![Operand::Local(arg)]);
            mb.ret(Some(Operand::Local(r)));
            pb.finish_body(mb);
        }
        {
            let mut mb = pb.method_body(main);
            let r = mb.local("r", Type::Int);
            mb.invoke(Some(r), Callee::Static(main), vec![]); // harmless self-call shape
            mb.invoke(Some(r), Callee::Static(rec), vec![Operand::IntConst(0)]);
            mb.ret(None);
            pb.finish_body(mb);
        }
        pb.add_entry_point(main);
        let p = pb.finish();
        let trace = run(
            &p,
            &InterpConfig {
                step_budget: 50_000,
                ..Default::default()
            },
        );
        // Either budget or depth guard fires; no stack overflow.
        assert!(trace.budget_exhausted);
    }

    #[test]
    fn arrays_carry_taint_concretely() {
        let mut pb = ProgramBuilder::new();
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        let main = pb.declare_method("main", None, &[], None, true);
        {
            let mut mb = pb.method_body(secret);
            let v = mb.local("v", Type::Int);
            mb.assign(v, Rvalue::Use(Operand::IntConst(9)));
            mb.ret(Some(Operand::Local(v)));
            pb.finish_body(mb);
        }
        {
            let mb = pb.method_body(print);
            pb.finish_body(mb);
        }
        let mut mb = pb.method_body(main);
        let buf = mb.local("buf", Type::Array(ElemType::Int));
        let s = mb.local("s", Type::Int);
        let out = mb.local("out", Type::Int);
        mb.assign(
            buf,
            Rvalue::NewArray {
                elem: ElemType::Int,
                len: Operand::IntConst(3),
            },
        );
        mb.invoke(Some(s), Callee::Static(secret), vec![]);
        mb.array_store(Operand::Local(buf), Operand::IntConst(1), Operand::Local(s));
        mb.assign(
            out,
            Rvalue::ArrayLoad {
                base: Operand::Local(buf),
                index: Operand::IntConst(1),
            },
        );
        let sink = mb.invoke(None, Callee::Static(print), vec![Operand::Local(out)]);
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let trace = run(&p, &InterpConfig::secret_to_print());
        assert!(trace.events.contains(&Event::Leak(StmtRef {
            method: main,
            index: sink
        })));
    }
}

mod arrays_ir {
    use super::*;

    #[test]
    fn array_pretty_printing() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_method("m", None, &[], None, true);
        let mut mb = pb.method_body(m);
        let buf = mb.local("buf", Type::Array(ElemType::Int));
        let v = mb.local("v", Type::Int);
        mb.assign(
            buf,
            Rvalue::NewArray {
                elem: ElemType::Int,
                len: Operand::IntConst(8),
            },
        );
        mb.array_store(
            Operand::Local(buf),
            Operand::IntConst(0),
            Operand::IntConst(5),
        );
        mb.assign(
            v,
            Rvalue::ArrayLoad {
                base: Operand::Local(buf),
                index: Operand::IntConst(0),
            },
        );
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(m);
        let p = pb.finish();
        let texts: Vec<String> = p
            .stmts_of(m)
            .map(|s| crate::pretty::stmt_to_string(&p, s))
            .collect();
        assert!(texts.iter().any(|t| t.contains("new int[8]")));
        assert!(texts.iter().any(|t| t.contains("buf[0] = 5")));
        assert!(texts.iter().any(|t| t.contains("v = buf[0]")));
    }

    #[test]
    fn array_uses_and_defs() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_method("m", None, &[], None, true);
        let mut mb = pb.method_body(m);
        let buf = mb.local("buf", Type::Array(ElemType::Int));
        let i = mb.local("i", Type::Int);
        let v = mb.local("v", Type::Int);
        let store = mb.array_store(Operand::Local(buf), Operand::Local(i), Operand::Local(v));
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(m);
        let p = pb.finish();
        let s = p.stmt(StmtRef {
            method: m,
            index: store,
        });
        assert_eq!(s.kind.def(), None, "array stores define no local");
        let uses = s.kind.uses();
        for l in [buf, i, v] {
            assert!(uses.contains(&l));
        }
    }

    #[test]
    fn elem_type_conversion() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        drop(pb);
        assert_eq!(Type::from(ElemType::Int), Type::Int);
        assert_eq!(Type::from(ElemType::Boolean), Type::Boolean);
        assert_eq!(Type::from(ElemType::Ref(c)), Type::Ref(c));
    }
}

mod interp_fields {
    use super::*;
    use crate::interp::{run, Event, InterpConfig};

    /// Taint flows through instance fields concretely: store the secret
    /// in an object field, read it back, leak it.
    #[test]
    fn taint_through_object_fields() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Box", None);
        let fld = pb.add_field(c, "payload", Type::Int);
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        {
            let mut mb = pb.method_body(secret);
            let v = mb.local("v", Type::Int);
            mb.assign(v, Rvalue::Use(Operand::IntConst(3)));
            mb.ret(Some(Operand::Local(v)));
            pb.finish_body(mb);
        }
        {
            let mb = pb.method_body(print);
            pb.finish_body(mb);
        }
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let b = mb.local("b", Type::Ref(c));
        let s = mb.local("s", Type::Int);
        let out = mb.local("out", Type::Int);
        mb.assign(b, Rvalue::New(c));
        mb.invoke(Some(s), Callee::Static(secret), vec![]);
        mb.field_store(Some(Operand::Local(b)), fld, Operand::Local(s));
        mb.assign(
            out,
            Rvalue::FieldLoad {
                base: Some(Operand::Local(b)),
                field: fld,
            },
        );
        let sink = mb.invoke(None, Callee::Static(print), vec![Operand::Local(out)]);
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let trace = run(&p, &InterpConfig::secret_to_print());
        assert!(trace.events.contains(&Event::Leak(StmtRef {
            method: main,
            index: sink
        })));
    }

    /// Distinct objects have distinct field storage: taint in one box
    /// does not contaminate another (the concrete semantics is *more*
    /// precise than the receiver-abstracted static analysis, as it
    /// should be for a soundness comparison).
    #[test]
    fn distinct_objects_do_not_alias() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Box", None);
        let fld = pb.add_field(c, "payload", Type::Int);
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        for m in [secret, print] {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let b1 = mb.local("b1", Type::Ref(c));
        let b2 = mb.local("b2", Type::Ref(c));
        let s = mb.local("s", Type::Int);
        let out = mb.local("out", Type::Int);
        mb.assign(b1, Rvalue::New(c));
        mb.assign(b2, Rvalue::New(c));
        mb.invoke(Some(s), Callee::Static(secret), vec![]);
        mb.field_store(Some(Operand::Local(b1)), fld, Operand::Local(s));
        mb.field_store(Some(Operand::Local(b2)), fld, Operand::IntConst(0));
        // Read from the CLEAN box only.
        mb.assign(
            out,
            Rvalue::FieldLoad {
                base: Some(Operand::Local(b2)),
                field: fld,
            },
        );
        mb.invoke(None, Callee::Static(print), vec![Operand::Local(out)]);
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let trace = run(&p, &InterpConfig::secret_to_print());
        assert!(
            !trace.events.iter().any(|e| matches!(e, Event::Leak(_))),
            "concretely clean (though the static analysis may warn): {:?}",
            trace.events
        );
    }
}
