//! [`spllift_ifds::Icfg`] implementation for [`Program`]s.

use crate::types::*;
use crate::{CallGraph, Hierarchy};
use spllift_features::FeatureExpr;
use spllift_ifds::Icfg;

/// The inter-procedural CFG of a [`Program`]: the view all solvers in the
/// workspace analyze.
///
/// Construction builds the class hierarchy and the call graph; this is the
/// analogue of the "Soot/CG" preprocessing step the paper times separately
/// in Table 2.
#[derive(Debug)]
pub struct ProgramIcfg<'p> {
    program: &'p Program,
    hierarchy: Hierarchy,
    call_graph: CallGraph,
}

impl<'p> ProgramIcfg<'p> {
    /// Builds hierarchy + call graph for `program`.
    pub fn new(program: &'p Program) -> Self {
        let hierarchy = Hierarchy::new(program);
        let call_graph = CallGraph::build(program, &hierarchy);
        ProgramIcfg {
            program,
            hierarchy,
            call_graph,
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The class hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The call graph.
    pub fn call_graph(&self) -> &CallGraph {
        &self.call_graph
    }

    /// The feature annotation of `s` (`True` for unannotated statements).
    pub fn annotation_of(&self, s: StmtRef) -> &FeatureExpr {
        &self.program.stmt(s).annotation
    }

    /// Fall-through successor of `s` — where control goes when `s` is
    /// *disabled* (paper Fig. 4).
    pub fn fall_through_of(&self, s: StmtRef) -> Option<StmtRef> {
        self.program.fall_through_of(s)
    }

    /// Branch target of an `if`/`goto` at `s`.
    pub fn branch_target_of(&self, s: StmtRef) -> Option<StmtRef> {
        self.program.branch_target_of(s)
    }
}

impl Icfg for ProgramIcfg<'_> {
    type Stmt = StmtRef;
    type Method = MethodId;

    fn entry_points(&self) -> Vec<MethodId> {
        self.program.entry_points().to_vec()
    }

    fn start_point_of(&self, m: MethodId) -> StmtRef {
        self.program.entry_of(m)
    }

    fn method_of(&self, s: StmtRef) -> MethodId {
        s.method
    }

    fn successors_of(&self, s: StmtRef) -> Vec<StmtRef> {
        self.program.successors_of(s)
    }

    fn is_call(&self, s: StmtRef) -> bool {
        matches!(self.program.stmt(s).kind, StmtKind::Invoke { .. })
            && !self.call_graph.callees_of(s).is_empty()
    }

    fn callees_of(&self, s: StmtRef) -> Vec<MethodId> {
        self.call_graph
            .callees_of(s)
            .iter()
            .copied()
            .filter(|&m| self.program.method(m).body.is_some())
            .collect()
    }

    fn is_exit(&self, s: StmtRef) -> bool {
        matches!(self.program.stmt(s).kind, StmtKind::Return { .. })
    }

    fn stmts_of(&self, m: MethodId) -> Vec<StmtRef> {
        self.program.stmts_of(m).collect()
    }

    fn methods(&self) -> Vec<MethodId> {
        self.call_graph.reachable_methods().collect()
    }

    fn stmt_label(&self, s: StmtRef) -> String {
        format!("{}: {}", s, crate::pretty::stmt_to_string(self.program, s))
    }

    fn method_label(&self, m: MethodId) -> String {
        let meth = self.program.method(m);
        match meth.class {
            Some(c) => format!("{}.{}", self.program.class(c).name, meth.name),
            None => meth.name.clone(),
        }
    }
}
