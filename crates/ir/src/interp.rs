//! A concrete interpreter for the IR — used to validate the static
//! analyses *dynamically*: whatever a concrete execution of a derived
//! product observes (a tainted value reaching a sink, a read of an
//! uninitialized local) must be predicted by the corresponding sound
//! static analysis. The workspace's differential tests drive random
//! programs through both and compare.
//!
//! Semantics notes:
//!
//! * values carry a *taint bit*; methods named in
//!   [`InterpConfig::sources`] taint their return value, methods in
//!   [`InterpConfig::sinks`] record a [`Event::Leak`] when any argument
//!   is tainted;
//! * reading an uninitialized local records [`Event::UninitRead`] and
//!   yields an (untainted) zero — execution continues, mirroring the
//!   "may" nature of the static analysis;
//! * arithmetic is total (division by zero yields 0);
//! * execution is bounded by a step budget; hitting it stops cleanly
//!   (a partial trace is still sound to compare against).

use crate::types::*;
use std::collections::HashMap;

/// Interpreter configuration.
#[derive(Debug, Clone, Default)]
pub struct InterpConfig {
    /// Methods whose return value is tainted.
    pub sources: Vec<String>,
    /// Methods that report a leak when called with a tainted argument.
    pub sinks: Vec<String>,
    /// Maximum number of executed statements (0 = default 100 000).
    pub step_budget: u64,
}

impl InterpConfig {
    /// The examples' default: `secret` → `print`.
    pub fn secret_to_print() -> Self {
        InterpConfig {
            sources: vec!["secret".into()],
            sinks: vec!["print".into()],
            step_budget: 0,
        }
    }
}

/// An observable event of a concrete run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Event {
    /// A tainted value was passed to a sink at this call.
    Leak(StmtRef),
    /// An uninitialized local was read at this statement.
    UninitRead(StmtRef, LocalId),
}

/// The result of a run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Observed events, in program order (deduplicated).
    pub events: Vec<Event>,
    /// Statements executed.
    pub steps: u64,
    /// `true` if the run ended because the step budget was exhausted.
    pub budget_exhausted: bool,
}

/// A runtime value with its taint bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Value {
    raw: Raw,
    tainted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Raw {
    Int(i64),
    Bool(bool),
    Null,
    Object(usize),
    Array(usize),
}

impl Value {
    fn int(v: i64) -> Self {
        Value {
            raw: Raw::Int(v),
            tainted: false,
        }
    }
    fn as_int(self) -> i64 {
        match self.raw {
            Raw::Int(v) => v,
            Raw::Bool(b) => b as i64,
            _ => 0,
        }
    }
}

struct Heap {
    /// Object fields, keyed per object id by FieldId.
    objects: Vec<(ClassId, HashMap<FieldId, Value>)>,
    /// Arrays: one *summary cell* per array would be unfaithful for a
    /// concrete semantics — store real element vectors.
    arrays: Vec<Vec<Value>>,
}

/// Runs `program` from its entry points (in order) and collects events.
///
/// The program must be a *product* (annotation-free); run
/// [`Program::derive_product`] first. Annotations still present are
/// ignored (treated as enabled), which would make the comparison
/// meaningless — hence the debug assertion.
pub fn run(program: &Program, config: &InterpConfig) -> Trace {
    debug_assert!(
        program.methods().iter().all(|m| m
            .body
            .as_ref()
            .map(|b| b
                .stmts
                .iter()
                .all(|s| s.annotation == spllift_features::FeatureExpr::True))
            .unwrap_or(true)),
        "interpret derived products, not annotated product lines"
    );
    let hierarchy = crate::Hierarchy::new(program);
    let mut interp = Interp {
        program,
        hierarchy,
        config,
        heap: Heap {
            objects: Vec::new(),
            arrays: Vec::new(),
        },
        trace: Trace::default(),
        budget: if config.step_budget == 0 {
            100_000
        } else {
            config.step_budget
        },
        depth: 0,
    };
    for &entry in program.entry_points() {
        if program.method(entry).body.is_some() {
            interp.call(entry, Vec::new(), None);
        }
    }
    interp.trace.events.sort();
    interp.trace.events.dedup();
    interp.trace
}

struct Interp<'p> {
    program: &'p Program,
    hierarchy: crate::Hierarchy,
    config: &'p InterpConfig,
    heap: Heap,
    trace: Trace,
    budget: u64,
    depth: u32,
}

impl Interp<'_> {
    /// Executes `method` with `args` (after the optional receiver) and
    /// returns its return value.
    fn call(&mut self, method: MethodId, args: Vec<Value>, this: Option<Value>) -> Value {
        let Some(body) = &self.program.method(method).body else {
            return Value::int(0);
        };
        // Bound host-stack recursion; the budget alone cannot, because a
        // deep call chain consumes native stack before it runs out.
        if self.depth >= 200 {
            self.trace.budget_exhausted = true;
            return Value::int(0);
        }
        self.depth += 1;
        let result = self.call_inner(method, body, args, this);
        self.depth -= 1;
        result
    }

    fn call_inner(
        &mut self,
        method: MethodId,
        body: &Body,
        args: Vec<Value>,
        this: Option<Value>,
    ) -> Value {
        let mut locals: Vec<Option<Value>> = vec![None; body.locals.len()];
        if let (Some(t), Some(v)) = (body.this_local, this) {
            locals[t.index()] = Some(v);
        }
        for (i, v) in args.into_iter().enumerate() {
            if let Some(&p) = body.param_locals.get(i) {
                locals[p.index()] = Some(v);
            }
        }
        let mut pc: u32 = 0;
        loop {
            if self.trace.steps >= self.budget {
                self.trace.budget_exhausted = true;
                return Value::int(0);
            }
            if (pc as usize) >= body.stmts.len() {
                return Value::int(0); // fell off the end (defensive)
            }
            self.trace.steps += 1;
            let sref = StmtRef { method, index: pc };
            match &body.stmts[pc as usize].kind {
                StmtKind::Nop => pc += 1,
                StmtKind::Assign { target, rvalue } => {
                    let v = self.eval_rvalue(sref, &mut locals, rvalue);
                    locals[target.index()] = Some(v);
                    pc += 1;
                }
                StmtKind::FieldStore { base, field, value } => {
                    let v = self.read_op(sref, &mut locals, *value);
                    match base.map(|b| self.read_op(sref, &mut locals, b)) {
                        Some(Value {
                            raw: Raw::Object(o),
                            ..
                        }) => {
                            self.heap.objects[o].1.insert(*field, v);
                        }
                        _ => {
                            // Static-style store: keep in a synthetic
                            // object per field's class, object 0 slot.
                            self.static_field_slot(*field, Some(v));
                        }
                    }
                    pc += 1;
                }
                StmtKind::ArrayStore { base, index, value } => {
                    let v = self.read_op(sref, &mut locals, *value);
                    let idx = self.read_op(sref, &mut locals, *index).as_int();
                    if let Value {
                        raw: Raw::Array(a), ..
                    } = self.read_op(sref, &mut locals, *base)
                    {
                        let arr = &mut self.heap.arrays[a];
                        if !arr.is_empty() {
                            let i = (idx.unsigned_abs() as usize) % arr.len();
                            arr[i] = v;
                        }
                    }
                    pc += 1;
                }
                StmtKind::If {
                    op,
                    lhs,
                    rhs,
                    target,
                } => {
                    let a = self.read_op(sref, &mut locals, *lhs);
                    let b = self.read_op(sref, &mut locals, *rhs);
                    if eval_cmp(*op, a, b) {
                        pc = *target;
                    } else {
                        pc += 1;
                    }
                }
                StmtKind::Goto { target } => pc = *target,
                StmtKind::Invoke {
                    result,
                    callee,
                    args,
                } => {
                    let ret = self.eval_invoke(sref, &mut locals, callee, args);
                    if let Some(r) = result {
                        locals[r.index()] = Some(ret);
                    }
                    pc += 1;
                }
                StmtKind::Return { value } => {
                    return match value {
                        Some(op) => self.read_op(sref, &mut locals, *op),
                        None => Value::int(0),
                    };
                }
            }
        }
    }

    fn static_field_slot(&mut self, field: FieldId, store: Option<Value>) -> Value {
        // One global slot per field id for static-style accesses.
        let class = self.program.field(field).class;
        let slot = self
            .heap
            .objects
            .iter()
            .position(|(c, _)| *c == class)
            .unwrap_or_else(|| {
                self.heap.objects.push((class, HashMap::new()));
                self.heap.objects.len() - 1
            });
        if let Some(v) = store {
            self.heap.objects[slot].1.insert(field, v);
            v
        } else {
            *self.heap.objects[slot]
                .1
                .get(&field)
                .unwrap_or(&Value::int(0))
        }
    }

    fn read_op(&mut self, at: StmtRef, locals: &mut [Option<Value>], op: Operand) -> Value {
        match op {
            Operand::IntConst(v) => Value::int(v),
            Operand::BoolConst(b) => Value {
                raw: Raw::Bool(b),
                tainted: false,
            },
            Operand::Null => Value {
                raw: Raw::Null,
                tainted: false,
            },
            Operand::Local(l) => match locals[l.index()] {
                Some(v) => v,
                None => {
                    self.trace.events.push(Event::UninitRead(at, l));
                    Value::int(0)
                }
            },
        }
    }

    fn eval_rvalue(&mut self, at: StmtRef, locals: &mut [Option<Value>], rvalue: &Rvalue) -> Value {
        match rvalue {
            Rvalue::Use(op) => self.read_op(at, locals, *op),
            Rvalue::Binary(op, a, b) => {
                let va = self.read_op(at, locals, *a);
                let vb = self.read_op(at, locals, *b);
                let tainted = va.tainted || vb.tainted;
                let raw = match op {
                    BinOp::Add => Raw::Int(va.as_int().wrapping_add(vb.as_int())),
                    BinOp::Sub => Raw::Int(va.as_int().wrapping_sub(vb.as_int())),
                    BinOp::Mul => Raw::Int(va.as_int().wrapping_mul(vb.as_int())),
                    BinOp::Div => Raw::Int(va.as_int().checked_div(vb.as_int()).unwrap_or(0)),
                    BinOp::Rem => Raw::Int(va.as_int().checked_rem(vb.as_int()).unwrap_or(0)),
                    _ => Raw::Bool(eval_cmp(*op, va, vb)),
                };
                Value { raw, tainted }
            }
            Rvalue::New(c) => {
                self.heap.objects.push((*c, HashMap::new()));
                Value {
                    raw: Raw::Object(self.heap.objects.len() - 1),
                    tainted: false,
                }
            }
            Rvalue::NewArray { len, .. } => {
                let n = self.read_op(at, locals, *len).as_int().clamp(0, 4096) as usize;
                self.heap.arrays.push(vec![Value::int(0); n]);
                Value {
                    raw: Raw::Array(self.heap.arrays.len() - 1),
                    tainted: false,
                }
            }
            Rvalue::FieldLoad { base, field } => match base.map(|b| self.read_op(at, locals, b)) {
                Some(Value {
                    raw: Raw::Object(o),
                    ..
                }) => *self.heap.objects[o].1.get(field).unwrap_or(&Value::int(0)),
                _ => self.static_field_slot(*field, None),
            },
            Rvalue::ArrayLoad { base, index } => {
                let idx = self.read_op(at, locals, *index).as_int();
                match self.read_op(at, locals, *base) {
                    Value {
                        raw: Raw::Array(a), ..
                    } => {
                        let arr = &self.heap.arrays[a];
                        if arr.is_empty() {
                            Value::int(0)
                        } else {
                            arr[(idx.unsigned_abs() as usize) % arr.len()]
                        }
                    }
                    _ => Value::int(0),
                }
            }
        }
    }

    fn eval_invoke(
        &mut self,
        at: StmtRef,
        locals: &mut [Option<Value>],
        callee: &Callee,
        args: &[Operand],
    ) -> Value {
        let arg_values: Vec<Value> = args.iter().map(|&a| self.read_op(at, locals, a)).collect();
        let (target, this, name) = match callee {
            Callee::Static(m) => (Some(*m), None, self.program.method(*m).name.clone()),
            Callee::Virtual { base, name, argc } => {
                let recv = self.read_op(at, locals, Operand::Local(*base));
                let target = match recv.raw {
                    Raw::Object(o) => {
                        let class = self.heap.objects[o].0;
                        self.hierarchy.dispatch(class, name, *argc)
                    }
                    _ => {
                        // Null/garbage receiver: fall back to the declared
                        // type's dispatch so execution stays total.
                        match self.program.body(at.method).locals[base.index()].ty {
                            Type::Ref(c) => self.hierarchy.dispatch(c, name, *argc),
                            _ => None,
                        }
                    }
                };
                (target, Some(recv), name.clone())
            }
        };
        // Sink check happens at the call site, like the static analysis.
        if self.config.sinks.contains(&name) && arg_values.iter().any(|v| v.tainted) {
            self.trace.events.push(Event::Leak(at));
        }
        let mut ret = match target {
            Some(m) if self.program.method(m).body.is_some() => self.call(m, arg_values, this),
            _ => Value::int(0),
        };
        if self.config.sources.contains(&name) {
            ret.tainted = true;
        }
        ret
    }
}

fn eval_cmp(op: BinOp, a: Value, b: Value) -> bool {
    let (x, y) = (a.as_int(), b.as_int());
    match op {
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        BinOp::Lt => x < y,
        BinOp::Le => x <= y,
        BinOp::Gt => x > y,
        BinOp::Ge => x >= y,
        _ => false,
    }
}
