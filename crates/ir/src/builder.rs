//! Programmatic construction of [`Program`]s.

use crate::types::*;
use spllift_features::FeatureExpr;

/// A forward-referencable branch label inside a [`MethodBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Builds a [`Program`]: declare classes, fields, and method signatures
/// first (so calls can reference them), then define bodies.
///
/// # Example
///
/// ```
/// use spllift_ir::{Operand, ProgramBuilder, Rvalue, Type};
///
/// let mut pb = ProgramBuilder::new();
/// let main = pb.declare_method("main", None, &[], None, true);
/// let mut mb = pb.method_body(main);
/// let x = mb.local("x", Type::Int);
/// mb.assign(x, Rvalue::Use(Operand::IntConst(1)));
/// mb.ret(None);
/// pb.finish_body(mb);
/// pb.add_entry_point(main);
/// let program = pb.finish();
/// assert!(program.check().is_ok());
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class; `superclass` must already exist.
    pub fn add_class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        let id = ClassId(self.program.classes.len() as u32);
        self.program.classes.push(Class {
            name: name.to_owned(),
            superclass,
            fields: Vec::new(),
            methods: Vec::new(),
        });
        id
    }

    /// Sets (or replaces) the superclass of `class` after the fact —
    /// useful when classes are declared in one pass and linked in a
    /// second, as source order need not be topological.
    pub fn set_superclass(&mut self, class: ClassId, superclass: Option<ClassId>) {
        self.program.classes[class.index()].superclass = superclass;
    }

    /// Declares a field on `class`.
    pub fn add_field(&mut self, class: ClassId, name: &str, ty: Type) -> FieldId {
        let id = FieldId(self.program.fields.len() as u32);
        self.program.fields.push(Field {
            name: name.to_owned(),
            class,
            ty,
        });
        self.program.classes[class.index()].fields.push(id);
        id
    }

    /// Declares a method signature (no body yet).
    pub fn declare_method(
        &mut self,
        name: &str,
        class: Option<ClassId>,
        params: &[Type],
        ret: Option<Type>,
        is_static: bool,
    ) -> MethodId {
        let id = MethodId(self.program.methods.len() as u32);
        self.program.methods.push(Method {
            name: name.to_owned(),
            class,
            params: params.to_vec(),
            ret,
            is_static,
            body: None,
        });
        if let Some(c) = class {
            self.program.classes[c.index()].methods.push(id);
        }
        id
    }

    /// Starts building the body of a previously declared method. Parameter
    /// locals (and `this` for instance methods) are created automatically,
    /// and a synthetic entry `nop` is inserted at index 0.
    pub fn method_body(&self, method: MethodId) -> MethodBuilder {
        let m = &self.program.methods[method.index()];
        let mut locals = Vec::new();
        let this_local = if m.is_static || m.class.is_none() {
            None
        } else {
            locals.push(Local {
                name: "this".into(),
                ty: Type::Ref(m.class.expect("instance method has a class")),
            });
            Some(LocalId(0))
        };
        let mut param_locals = Vec::new();
        for (i, &ty) in m.params.iter().enumerate() {
            let id = LocalId(locals.len() as u32);
            locals.push(Local {
                name: format!("p{i}"),
                ty,
            });
            param_locals.push(id);
        }
        MethodBuilder {
            method,
            locals,
            param_locals,
            this_local,
            stmts: vec![Stmt {
                kind: StmtKind::Nop,
                annotation: FeatureExpr::True,
            }],
            labels: Vec::new(),
            fixups: Vec::new(),
            annotation_stack: Vec::new(),
        }
    }

    /// Installs a finished body. Appends the final unannotated `return`
    /// if the builder did not end with one, and resolves labels.
    ///
    /// # Panics
    ///
    /// Panics if a label was used but never bound.
    pub fn finish_body(&mut self, mb: MethodBuilder) {
        let body = mb.into_body();
        self.program.methods[body.0.index()].body = Some(body.1);
    }

    /// Marks `m` as an analysis entry point.
    pub fn add_entry_point(&mut self, m: MethodId) {
        self.program.entry_points.push(m);
    }

    /// Finishes construction.
    pub fn finish(self) -> Program {
        self.program
    }
}

/// Builds one method body. Create with [`ProgramBuilder::method_body`].
#[derive(Debug)]
pub struct MethodBuilder {
    method: MethodId,
    locals: Vec<Local>,
    param_locals: Vec<LocalId>,
    this_local: Option<LocalId>,
    stmts: Vec<Stmt>,
    /// label id → bound statement index (u32::MAX = unbound).
    labels: Vec<u32>,
    /// (stmt index with placeholder target, label id).
    fixups: Vec<(usize, u32)>,
    annotation_stack: Vec<FeatureExpr>,
}

impl MethodBuilder {
    /// The method being built.
    pub fn method_id(&self) -> MethodId {
        self.method
    }

    /// The locals bound to parameters, in order.
    pub fn param_local(&self, i: usize) -> LocalId {
        self.param_locals[i]
    }

    /// The `this` local, for instance methods.
    pub fn this_local(&self) -> Option<LocalId> {
        self.this_local
    }

    /// Declares a fresh local.
    pub fn local(&mut self, name: &str, ty: Type) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(Local {
            name: name.to_owned(),
            ty,
        });
        id
    }

    /// Current feature annotation (conjunction of the pushed stack).
    fn current_annotation(&self) -> FeatureExpr {
        self.annotation_stack
            .iter()
            .cloned()
            .fold(FeatureExpr::True, FeatureExpr::and)
    }

    /// Enters an `#ifdef expr` region: statements emitted until the
    /// matching [`pop_annotation`](Self::pop_annotation) carry `expr`
    /// (conjoined with any enclosing region).
    pub fn push_annotation(&mut self, expr: FeatureExpr) {
        self.annotation_stack.push(expr);
    }

    /// Leaves the innermost `#ifdef` region.
    ///
    /// # Panics
    ///
    /// Panics if no region is open.
    pub fn pop_annotation(&mut self) {
        self.annotation_stack
            .pop()
            .expect("pop_annotation without matching push");
    }

    fn push_stmt(&mut self, kind: StmtKind) -> u32 {
        let idx = self.stmts.len() as u32;
        self.stmts.push(Stmt {
            kind,
            annotation: self.current_annotation(),
        });
        idx
    }

    /// Emits a `nop`.
    pub fn nop(&mut self) -> u32 {
        self.push_stmt(StmtKind::Nop)
    }

    /// Emits `target = rvalue`.
    pub fn assign(&mut self, target: LocalId, rvalue: Rvalue) -> u32 {
        self.push_stmt(StmtKind::Assign { target, rvalue })
    }

    /// Emits a field store.
    pub fn field_store(&mut self, base: Option<Operand>, field: FieldId, value: Operand) -> u32 {
        self.push_stmt(StmtKind::FieldStore { base, field, value })
    }

    /// Emits `base[index] = value`.
    pub fn array_store(&mut self, base: Operand, index: Operand, value: Operand) -> u32 {
        self.push_stmt(StmtKind::ArrayStore { base, index, value })
    }

    /// Emits an invoke.
    pub fn invoke(&mut self, result: Option<LocalId>, callee: Callee, args: Vec<Operand>) -> u32 {
        self.push_stmt(StmtKind::Invoke {
            result,
            callee,
            args,
        })
    }

    /// Emits `return [value]`.
    pub fn ret(&mut self, value: Option<Operand>) -> u32 {
        self.push_stmt(StmtKind::Return { value })
    }

    /// Creates a label for later binding.
    pub fn fresh_label(&mut self) -> Label {
        let id = self.labels.len() as u32;
        self.labels.push(u32::MAX);
        Label(id)
    }

    /// Binds `label` to the next statement to be emitted.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0 as usize] = self.stmts.len() as u32;
    }

    /// Emits `if lhs op rhs goto label`.
    pub fn if_cmp(&mut self, op: BinOp, lhs: Operand, rhs: Operand, label: Label) -> u32 {
        let idx = self.push_stmt(StmtKind::If {
            op,
            lhs,
            rhs,
            target: u32::MAX,
        });
        self.fixups.push((idx as usize, label.0));
        idx
    }

    /// Emits `goto label`.
    pub fn goto(&mut self, label: Label) -> u32 {
        let idx = self.push_stmt(StmtKind::Goto { target: u32::MAX });
        self.fixups.push((idx as usize, label.0));
        idx
    }

    fn into_body(mut self) -> (MethodId, Body) {
        // Guarantee an unannotated final return (the fall-through anchor
        // for disabled trailing statements).
        let needs_ret = !matches!(
            self.stmts.last(),
            Some(Stmt { kind: StmtKind::Return { .. }, annotation })
                if *annotation == FeatureExpr::True
        );
        if needs_ret {
            self.stmts.push(Stmt {
                kind: StmtKind::Return { value: None },
                annotation: FeatureExpr::True,
            });
        }
        // Labels bound past the end point at the final return.
        let last = (self.stmts.len() - 1) as u32;
        for (idx, label) in self.fixups {
            let mut bound = self.labels[label as usize];
            assert_ne!(bound, u32::MAX, "label {label} used but never bound");
            if bound >= self.stmts.len() as u32 {
                bound = last;
            }
            match &mut self.stmts[idx].kind {
                StmtKind::If { target, .. } | StmtKind::Goto { target } => {
                    *target = bound;
                }
                _ => unreachable!("fixup on non-branch"),
            }
        }
        (
            self.method,
            Body {
                locals: self.locals,
                param_locals: self.param_locals,
                this_local: self.this_local,
                stmts: self.stmts,
            },
        )
    }
}
