//! A plain-text round-trippable program format for fuzzing repros.
//!
//! The fuzz campaign ([`spllift_spl::fuzz`] in the `spl` crate) shrinks
//! failing random programs with delta debugging and commits the result to
//! `tests/corpus/` as a *repro file*. Repro files must be (a) readable in
//! a code review and (b) parseable back into the exact same [`Program`],
//! so the corpus replay test re-runs the full cross-check on them. The
//! Jimple-like pretty-printer ([`crate::pretty`]) is for humans only and
//! drops types and entry points; this module defines a self-contained
//! format that round-trips:
//!
//! ```text
//! # spllift repro v1
//! features F0 F1 F2
//!
//! method m0(p0: int): int
//!   locals v0: int, u: int
//!     0: nop
//!     1: v0 = p0 + 1 @ F0 && !F1
//!     2: if v0 < 3 goto 4
//!     3: v0 = secret()
//!     4: return v0
//!
//! entry m0
//! ```
//!
//! The format covers the *repro subset* of the IR: classless static
//! methods over `int` locals with assignments, arithmetic, branches,
//! static calls, and returns — exactly what the random-program generator
//! and its mutators produce. [`to_repro_string`] refuses programs outside
//! the subset (classes, fields, arrays, virtual calls) rather than
//! silently dropping information.
//!
//! Feature annotations use the `#ifdef` expression syntax of
//! [`FeatureExpr::parse`], appended to a statement after ` @ `. The
//! `features` header fixes the [`FeatureId`] order, so configurations
//! enumerated over the parsed table line up with the original program.

use crate::types::*;
use spllift_features::{FeatureExpr, FeatureTable};
use std::fmt;
use std::fmt::Write as _;

/// Header line identifying the format (and its version).
pub const REPRO_HEADER: &str = "# spllift repro v1";

/// Error from [`to_repro_string`]: the program uses IR constructs outside
/// the repro subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReproUnsupported(String);

impl fmt::Display for ReproUnsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program outside the repro subset: {}", self.0)
    }
}

impl std::error::Error for ReproUnsupported {}

/// Error from [`parse_repro`], with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReproParseError {
    /// 1-based line the error was detected on (0 = end of input).
    pub line: usize,
    msg: String,
}

impl fmt::Display for ReproParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "repro line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ReproParseError {}

fn unsupported(what: impl Into<String>) -> ReproUnsupported {
    ReproUnsupported(what.into())
}

fn type_name(ty: Type) -> Result<&'static str, ReproUnsupported> {
    match ty {
        Type::Int => Ok("int"),
        Type::Boolean => Ok("boolean"),
        other => Err(unsupported(format!("type {other:?}"))),
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
    }
}

fn binop_from(s: &str) -> Option<BinOp> {
    Some(match s {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        "%" => BinOp::Rem,
        "==" => BinOp::Eq,
        "!=" => BinOp::Ne,
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        _ => return None,
    })
}

/// Serializes `program` into the repro text format.
///
/// # Errors
///
/// [`ReproUnsupported`] if the program falls outside the repro subset:
/// classes, fields, arrays, virtual calls, non-`int`/`boolean` types,
/// instance or abstract methods, duplicate method names, or local names
/// that are not unique within a body.
pub fn to_repro_string(
    program: &Program,
    table: &FeatureTable,
) -> Result<String, ReproUnsupported> {
    if !program.classes().is_empty() || !program.fields().is_empty() {
        return Err(unsupported("classes/fields"));
    }
    {
        let mut names: Vec<&str> = program.methods().iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err(unsupported("duplicate method names"));
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{REPRO_HEADER}");
    let _ = write!(out, "features");
    for (_, name) in table.iter() {
        let _ = write!(out, " {name}");
    }
    let _ = writeln!(out);
    for m in program.methods() {
        if m.class.is_some() || !m.is_static {
            return Err(unsupported(format!("instance method {}", m.name)));
        }
        let Some(body) = &m.body else {
            return Err(unsupported(format!("abstract method {}", m.name)));
        };
        if body.this_local.is_some() {
            return Err(unsupported(format!("this-local in {}", m.name)));
        }
        let expected: Vec<LocalId> = (0..m.params.len() as u32).map(LocalId).collect();
        if body.param_locals != expected {
            return Err(unsupported(format!(
                "non-prefix parameter locals in {}",
                m.name
            )));
        }
        {
            let mut names: Vec<&str> = body.locals.iter().map(|l| l.name.as_str()).collect();
            names.sort_unstable();
            if names.windows(2).any(|w| w[0] == w[1]) {
                return Err(unsupported(format!("duplicate local names in {}", m.name)));
            }
        }
        let _ = writeln!(out);
        let params: Vec<String> = body
            .param_locals
            .iter()
            .map(|&l| {
                let local = &body.locals[l.index()];
                Ok(format!("{}: {}", local.name, type_name(local.ty)?))
            })
            .collect::<Result<_, ReproUnsupported>>()?;
        let _ = write!(out, "method {}({})", m.name, params.join(", "));
        if let Some(ret) = m.ret {
            let _ = write!(out, ": {}", type_name(ret)?);
        }
        let _ = writeln!(out);
        let extras: Vec<String> = body.locals[m.params.len()..]
            .iter()
            .map(|l| Ok(format!("{}: {}", l.name, type_name(l.ty)?)))
            .collect::<Result<_, ReproUnsupported>>()?;
        let _ = writeln!(out, "  locals {}", extras.join(", "));
        for (i, stmt) in body.stmts.iter().enumerate() {
            let text = stmt_text(program, body, &stmt.kind)?;
            let _ = write!(out, "    {i}: {text}");
            if stmt.annotation != FeatureExpr::True {
                let _ = write!(out, " @ {}", stmt.annotation.display(table));
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(out);
    for &e in program.entry_points() {
        let _ = writeln!(out, "entry {}", program.method(e).name);
    }
    Ok(out)
}

fn operand_text(body: &Body, op: Operand) -> Result<String, ReproUnsupported> {
    Ok(match op {
        Operand::Local(l) => body.locals[l.index()].name.clone(),
        Operand::IntConst(c) => c.to_string(),
        Operand::BoolConst(b) => b.to_string(),
        Operand::Null => return Err(unsupported("null operand")),
    })
}

fn stmt_text(program: &Program, body: &Body, kind: &StmtKind) -> Result<String, ReproUnsupported> {
    let op = |o: Operand| operand_text(body, o);
    let local = |l: LocalId| body.locals[l.index()].name.clone();
    Ok(match kind {
        StmtKind::Nop => "nop".into(),
        StmtKind::Assign { target, rvalue } => {
            let rhs = match rvalue {
                Rvalue::Use(o) => op(*o)?,
                Rvalue::Binary(b, l, r) => {
                    format!("{} {} {}", op(*l)?, binop_str(*b), op(*r)?)
                }
                other => return Err(unsupported(format!("rvalue {other:?}"))),
            };
            format!("{} = {}", local(*target), rhs)
        }
        StmtKind::If {
            op: o,
            lhs,
            rhs,
            target,
        } => format!(
            "if {} {} {} goto {}",
            op(*lhs)?,
            binop_str(*o),
            op(*rhs)?,
            target
        ),
        StmtKind::Goto { target } => format!("goto {target}"),
        StmtKind::Invoke {
            result,
            callee,
            args,
        } => {
            let Callee::Static(mid) = callee else {
                return Err(unsupported("virtual call"));
            };
            let args: Vec<String> = args
                .iter()
                .map(|&a| op(a))
                .collect::<Result<_, ReproUnsupported>>()?;
            let call = format!("{}({})", program.method(*mid).name, args.join(", "));
            match result {
                Some(r) => format!("{} = {}", local(*r), call),
                None => call,
            }
        }
        StmtKind::Return { value } => match value {
            Some(v) => format!("return {}", op(*v)?),
            None => "return".into(),
        },
        other => return Err(unsupported(format!("statement {other:?}"))),
    })
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ReproParseError {
        ReproParseError {
            line: self
                .lines
                .get(self.pos.min(self.lines.len().saturating_sub(1)))
                .map_or(0, |(n, _)| *n),
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&'a str> {
        self.lines.get(self.pos).map(|(_, l)| *l)
    }

    fn next(&mut self) -> Option<&'a str> {
        let l = self.peek()?;
        self.pos += 1;
        Some(l)
    }
}

fn parse_type(s: &str) -> Result<Type, String> {
    match s {
        "int" => Ok(Type::Int),
        "boolean" => Ok(Type::Boolean),
        other => Err(format!("unknown type `{other}`")),
    }
}

/// One `name: type` pair, or a list of them separated by `, `.
fn parse_typed_names(s: &str) -> Result<Vec<(String, Type)>, String> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|part| {
            let (name, ty) = part
                .split_once(':')
                .ok_or_else(|| format!("expected `name: type`, got `{part}`"))?;
            Ok((name.trim().to_owned(), parse_type(ty.trim())?))
        })
        .collect()
}

/// Header of one method: name, params, return type.
struct MethodHeader {
    name: String,
    params: Vec<(String, Type)>,
    ret: Option<Type>,
}

fn parse_method_header(line: &str) -> Result<MethodHeader, String> {
    let rest = line
        .strip_prefix("method ")
        .ok_or("expected `method` header")?;
    let open = rest.find('(').ok_or("expected `(` in method header")?;
    let close = rest.rfind(')').ok_or("expected `)` in method header")?;
    if close < open {
        return Err(format!(
            "mismatched parentheses in method header `{rest}`: `)` before `(`"
        ));
    }
    let name = rest[..open].trim().to_owned();
    if name.is_empty() {
        return Err("empty method name".into());
    }
    let params = parse_typed_names(&rest[open + 1..close])?;
    let tail = rest[close + 1..].trim();
    let ret = match tail.strip_prefix(':') {
        Some(ty) => Some(parse_type(ty.trim())?),
        None if tail.is_empty() => None,
        None => return Err(format!("unexpected trailer `{tail}`")),
    };
    Ok(MethodHeader { name, params, ret })
}

/// Splits `text` into the statement proper and its ` @ annotation` suffix.
fn split_annotation(text: &str) -> (&str, Option<&str>) {
    match text.split_once(" @ ") {
        Some((stmt, ann)) => (stmt.trim(), Some(ann.trim())),
        None => (text.trim(), None),
    }
}

fn parse_operand(s: &str, locals: &dyn Fn(&str) -> Option<LocalId>) -> Result<Operand, String> {
    let s = s.trim();
    if let Some(l) = locals(s) {
        return Ok(Operand::Local(l));
    }
    match s {
        "true" => return Ok(Operand::BoolConst(true)),
        "false" => return Ok(Operand::BoolConst(false)),
        _ => {}
    }
    s.parse::<i64>()
        .map(Operand::IntConst)
        .map_err(|_| format!("unknown operand `{s}`"))
}

/// `lhs OP rhs` with OP one of the binary operators, or a plain operand.
fn parse_rvalue(s: &str, locals: &dyn Fn(&str) -> Option<LocalId>) -> Result<Rvalue, String> {
    let tokens: Vec<&str> = s.split_whitespace().collect();
    match tokens.as_slice() {
        [one] => Ok(Rvalue::Use(parse_operand(one, locals)?)),
        [lhs, op, rhs] => {
            let b = binop_from(op).ok_or_else(|| format!("unknown operator `{op}`"))?;
            Ok(Rvalue::Binary(
                b,
                parse_operand(lhs, locals)?,
                parse_operand(rhs, locals)?,
            ))
        }
        _ => Err(format!("cannot parse rvalue `{s}`")),
    }
}

/// Parses a repro file back into a program and its feature table.
///
/// # Errors
///
/// [`ReproParseError`] with the offending line on malformed input; the
/// parsed program is additionally validated with [`Program::check`].
pub fn parse_repro(input: &str) -> Result<(Program, FeatureTable), ReproParseError> {
    let lines: Vec<(usize, &str)> = input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut p = Parser { lines, pos: 0 };

    let mut table = FeatureTable::new();
    match p.next() {
        Some(l) if l.starts_with("features") => {
            for name in l["features".len()..].split_whitespace() {
                table.intern(name);
            }
        }
        _ => return Err(p.err("expected `features` header")),
    }

    // Pass 1: collect method headers so calls can be resolved by name.
    struct RawMethod<'a> {
        header: MethodHeader,
        locals: Vec<(String, Type)>,
        stmt_lines: Vec<(usize, &'a str)>,
    }
    let mut methods: Vec<RawMethod> = Vec::new();
    let mut entries: Vec<String> = Vec::new();
    while let Some(line) = p.next() {
        if let Some(name) = line.strip_prefix("entry ") {
            entries.push(name.trim().to_owned());
            continue;
        }
        let header = parse_method_header(line).map_err(|e| p.err(e))?;
        let locals_line = p
            .next()
            .and_then(|l| l.strip_prefix("locals"))
            .ok_or_else(|| p.err("expected `locals` line after method header"))?;
        let locals = parse_typed_names(locals_line).map_err(|e| p.err(e))?;
        let mut stmt_lines = Vec::new();
        while let Some(l) = p.peek() {
            if l.starts_with("method ") || l.starts_with("entry ") {
                break;
            }
            let lineno = p.lines[p.pos].0;
            stmt_lines.push((lineno, l));
            p.next();
        }
        if methods.iter().any(|m| m.header.name == header.name) {
            return Err(p.err(format!("duplicate method `{}`", header.name)));
        }
        methods.push(RawMethod {
            header,
            locals,
            stmt_lines,
        });
    }

    let find_method = |name: &str| -> Option<MethodId> {
        methods
            .iter()
            .position(|m| m.header.name == name)
            .map(|i| MethodId(i as u32))
    };

    // Pass 2: build bodies.
    let mut program = Program::default();
    for raw in &methods {
        let mut body_locals: Vec<Local> = Vec::new();
        for (name, ty) in raw.header.params.iter().chain(&raw.locals) {
            if body_locals.iter().any(|l| l.name == *name) {
                return Err(p.err(format!("duplicate local `{name}` in `{}`", raw.header.name)));
            }
            body_locals.push(Local {
                name: name.clone(),
                ty: *ty,
            });
        }
        let lookup = |s: &str| -> Option<LocalId> {
            body_locals
                .iter()
                .position(|l| l.name == s)
                .map(|i| LocalId(i as u32))
        };
        let mut stmts = Vec::new();
        for (lineno, line) in &raw.stmt_lines {
            let fail = |msg: String| ReproParseError { line: *lineno, msg };
            let (index, text) = line
                .split_once(':')
                .ok_or_else(|| fail("expected `index: statement`".into()))?;
            let index: usize = index
                .trim()
                .parse()
                .map_err(|_| fail(format!("bad statement index `{}`", index.trim())))?;
            if index != stmts.len() {
                return Err(fail(format!(
                    "statement index {index} out of order (expected {})",
                    stmts.len()
                )));
            }
            let (stmt_text, ann_text) = split_annotation(text);
            let annotation = match ann_text {
                None => FeatureExpr::True,
                Some(a) => {
                    let before = table.len();
                    let e = FeatureExpr::parse(a, &mut table).map_err(|e| fail(e.to_string()))?;
                    if table.len() != before {
                        return Err(fail(format!(
                            "annotation `{a}` uses a feature missing from the `features` header"
                        )));
                    }
                    e
                }
            };
            let arity = |m: MethodId| methods[m.index()].header.params.len();
            let kind = parse_stmt_kind(stmt_text, &lookup, &find_method, &arity).map_err(fail)?;
            stmts.push(Stmt { kind, annotation });
        }
        let nparams = raw.header.params.len();
        let method = Method {
            name: raw.header.name.clone(),
            class: None,
            params: body_locals[..nparams].iter().map(|l| l.ty).collect(),
            ret: raw.header.ret,
            is_static: true,
            body: Some(Body {
                param_locals: (0..nparams as u32).map(LocalId).collect(),
                this_local: None,
                locals: body_locals,
                stmts,
            }),
        };
        program.push_method(method);
    }
    for name in &entries {
        let m = find_method(name).ok_or_else(|| p.err(format!("unknown entry method `{name}`")))?;
        program.push_entry_point(m);
    }
    program
        .check()
        .map_err(|e| p.err(format!("invalid program: {e}")))?;
    Ok((program, table))
}

/// Parses a replacement body for one method of an existing program — the
/// payload of the analysis server's `edit` request.
///
/// `locals_line` lists the non-parameter locals in the `locals` syntax of
/// the repro format (may be empty); `stmt_lines` are repro statement
/// lines (`index: statement [@ annotation]`, indices `0..n` in order).
/// The parameter locals (names and types) are carried over from the
/// method's current body; calls are resolved against `program` by method
/// name, and annotations may only use features already in `table` — an
/// edit can never grow the feature table, which keeps the session's BDD
/// variable order stable.
///
/// The returned [`Body`] is *not* yet validated against the program
/// invariants ([`Program::check`]); the caller splices it in and
/// re-checks (reverting on failure).
///
/// # Errors
///
/// [`ReproParseError`] with a 1-based line number into `stmt_lines`
/// (0 = the locals line) on malformed input, unknown names, new
/// features, or a method outside the editable subset (instance methods,
/// bodyless methods, non-prefix parameter locals).
pub fn parse_body_edit(
    program: &Program,
    table: &FeatureTable,
    method: MethodId,
    locals_line: &str,
    stmt_lines: &[&str],
) -> Result<Body, ReproParseError> {
    let fail0 = |msg: String| ReproParseError { line: 0, msg };
    let m = program.method(method);
    let Some(old_body) = &m.body else {
        return Err(fail0(format!("method `{}` has no body to edit", m.name)));
    };
    let nparams = m.params.len();
    let expected: Vec<LocalId> = (0..nparams as u32).map(LocalId).collect();
    if old_body.this_local.is_some() || old_body.param_locals != expected {
        return Err(fail0(format!(
            "method `{}` is outside the editable subset (instance method or \
             non-prefix parameter locals)",
            m.name
        )));
    }
    let mut body_locals: Vec<Local> = old_body.locals[..nparams].to_vec();
    for (name, ty) in parse_typed_names(locals_line).map_err(fail0)? {
        if body_locals.iter().any(|l| l.name == name) {
            return Err(fail0(format!("duplicate local `{name}`")));
        }
        body_locals.push(Local { name, ty });
    }
    let lookup = |s: &str| -> Option<LocalId> {
        body_locals
            .iter()
            .position(|l| l.name == s)
            .map(|i| LocalId(i as u32))
    };
    let find_method = |name: &str| program.find_method(name);
    let arity = |mid: MethodId| program.method(mid).params.len();
    // Parse annotations against a scratch copy so a rejected edit cannot
    // leave a half-interned feature behind in the session's table.
    let mut scratch = table.clone();
    let frozen = scratch.len();
    let mut stmts = Vec::new();
    for (i, line) in stmt_lines.iter().enumerate() {
        let fail = |msg: String| ReproParseError { line: i + 1, msg };
        let (index, text) = line
            .split_once(':')
            .ok_or_else(|| fail("expected `index: statement`".into()))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| fail(format!("bad statement index `{}`", index.trim())))?;
        if index != stmts.len() {
            return Err(fail(format!(
                "statement index {index} out of order (expected {})",
                stmts.len()
            )));
        }
        let (stmt_text, ann_text) = split_annotation(text);
        let annotation = match ann_text {
            None => FeatureExpr::True,
            Some(a) => {
                let e = FeatureExpr::parse(a, &mut scratch).map_err(|e| fail(e.to_string()))?;
                if scratch.len() != frozen {
                    return Err(fail(format!(
                        "annotation `{a}` uses a feature missing from the session's \
                         feature table"
                    )));
                }
                e
            }
        };
        let kind = parse_stmt_kind(stmt_text, &lookup, &find_method, &arity).map_err(fail)?;
        stmts.push(Stmt { kind, annotation });
    }
    Ok(Body {
        param_locals: expected,
        this_local: None,
        locals: body_locals,
        stmts,
    })
}

fn parse_stmt_kind(
    text: &str,
    lookup: &dyn Fn(&str) -> Option<LocalId>,
    find_method: &dyn Fn(&str) -> Option<MethodId>,
    arity: &dyn Fn(MethodId) -> usize,
) -> Result<StmtKind, String> {
    if text == "nop" {
        return Ok(StmtKind::Nop);
    }
    if text == "return" {
        return Ok(StmtKind::Return { value: None });
    }
    if let Some(v) = text.strip_prefix("return ") {
        return Ok(StmtKind::Return {
            value: Some(parse_operand(v, lookup)?),
        });
    }
    if let Some(t) = text.strip_prefix("goto ") {
        let target = t
            .trim()
            .parse()
            .map_err(|_| format!("bad goto target `{t}`"))?;
        return Ok(StmtKind::Goto { target });
    }
    if let Some(rest) = text.strip_prefix("if ") {
        let (cond, target) = rest
            .split_once(" goto ")
            .ok_or("expected ` goto ` in if statement")?;
        let tokens: Vec<&str> = cond.split_whitespace().collect();
        let [lhs, op, rhs] = tokens.as_slice() else {
            return Err(format!("cannot parse condition `{cond}`"));
        };
        return Ok(StmtKind::If {
            op: binop_from(op).ok_or_else(|| format!("unknown operator `{op}`"))?,
            lhs: parse_operand(lhs, lookup)?,
            rhs: parse_operand(rhs, lookup)?,
            target: target
                .trim()
                .parse()
                .map_err(|_| format!("bad branch target `{target}`"))?,
        });
    }
    // Assignment or call. A call has a parenthesized argument list.
    let (result, rest) = match text.split_once(" = ") {
        Some((lhs, rhs)) => {
            let l = lookup(lhs.trim()).ok_or_else(|| format!("unknown local `{}`", lhs.trim()))?;
            (Some(l), rhs.trim())
        }
        None => (None, text),
    };
    if let Some(open) = rest.find('(') {
        let callee_name = rest[..open].trim();
        // `v = a + b` never contains `(`, so this is a call.
        let close = rest.rfind(')').ok_or("expected `)` in call")?;
        if close < open {
            return Err(format!(
                "mismatched parentheses in call `{rest}`: `)` before `(`"
            ));
        }
        let callee = find_method(callee_name)
            .ok_or_else(|| format!("call to unknown method `{callee_name}`"))?;
        let args_text = rest[open + 1..close].trim();
        let args: Vec<Operand> = if args_text.is_empty() {
            Vec::new()
        } else {
            args_text
                .split(',')
                .map(|a| parse_operand(a, lookup))
                .collect::<Result<_, _>>()?
        };
        if args.len() != arity(callee) {
            return Err(format!(
                "call to `{callee_name}` with {} args, expected {}",
                args.len(),
                arity(callee)
            ));
        }
        return Ok(StmtKind::Invoke {
            result,
            callee: Callee::Static(callee),
            args,
        });
    }
    match result {
        Some(target) => Ok(StmtKind::Assign {
            target,
            rvalue: parse_rvalue(rest, lookup)?,
        }),
        None => Err(format!("cannot parse statement `{text}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use spllift_features::FeatureTable;

    fn sample() -> (Program, FeatureTable) {
        let mut table = FeatureTable::new();
        let f = table.intern("F");
        let g = table.intern("G");
        let mut pb = ProgramBuilder::new();
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        let main = pb.declare_method("main", None, &[], None, true);
        {
            let mut mb = pb.method_body(secret);
            let v = mb.local("v", Type::Int);
            mb.assign(v, Rvalue::Use(Operand::IntConst(42)));
            mb.ret(Some(Operand::Local(v)));
            pb.finish_body(mb);
        }
        {
            let mb = pb.method_body(print);
            pb.finish_body(mb);
        }
        {
            let mut mb = pb.method_body(main);
            let x = mb.local("x", Type::Int);
            let y = mb.local("y", Type::Int);
            mb.invoke(Some(x), Callee::Static(secret), vec![]);
            mb.push_annotation(FeatureExpr::var(f).and(FeatureExpr::var(g).not()));
            mb.assign(
                y,
                Rvalue::Binary(BinOp::Add, Operand::Local(x), Operand::IntConst(-3)),
            );
            mb.pop_annotation();
            let l = mb.fresh_label();
            mb.if_cmp(BinOp::Lt, Operand::Local(y), Operand::IntConst(0), l);
            mb.invoke(None, Callee::Static(print), vec![Operand::Local(y)]);
            mb.bind(l);
            mb.ret(None);
            pb.finish_body(mb);
        }
        pb.add_entry_point(main);
        (pb.finish(), table)
    }

    #[test]
    fn round_trips_exactly() {
        let (program, table) = sample();
        let text = to_repro_string(&program, &table).expect("in subset");
        let (parsed, parsed_table) = parse_repro(&text).expect("parses");
        assert_eq!(parsed, program);
        assert_eq!(parsed_table, table);
        // And the re-serialization is byte-identical (fixpoint).
        assert_eq!(to_repro_string(&parsed, &parsed_table).unwrap(), text);
    }

    #[test]
    fn rejects_programs_outside_the_subset() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let o = mb.local("o", Type::Ref(c));
        mb.assign(o, Rvalue::New(c));
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let program = pb.finish();
        assert!(to_repro_string(&program, &FeatureTable::new()).is_err());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "# spllift repro v1\nfeatures F\n\nmethod main()\n  locals\n    0: nop\n    1: zap zap\n";
        let err = parse_repro(bad).unwrap_err();
        assert_eq!(err.line, 7, "{err}");
        assert!(parse_repro("nonsense").is_err());
    }

    /// `)` before `(` in a method header or a call used to slice with
    /// `begin > end` and panic; both sites must answer a diagnostic.
    #[test]
    fn mismatched_parentheses_are_diagnosed_not_panics() {
        let bad_header =
            "# spllift repro v1\nfeatures F\n\nmethod f)x(: int\n  locals\n    0: return\n";
        let err = parse_repro(bad_header).unwrap_err();
        assert!(
            err.to_string()
                .contains("mismatched parentheses in method header"),
            "{err}"
        );
        assert!(err.line > 0, "{err}");
        let bad_call = "# spllift repro v1\nfeatures F\n\nmethod main()\n  locals\n    0: )f(\n    1: return\nentry main\n";
        let err = parse_repro(bad_call).unwrap_err();
        assert!(
            err.to_string().contains("mismatched parentheses in call"),
            "{err}"
        );
        assert!(err.line > 0, "{err}");
    }

    #[test]
    fn unknown_annotation_feature_is_rejected() {
        let bad = "features F\nmethod main()\n  locals\n    0: nop\n    1: nop @ MISSING\n    2: return\nentry main\n";
        let err = parse_repro(bad).unwrap_err();
        assert!(err.to_string().contains("features"), "{err}");
    }
}
