//! Ready-made sample programs, including the paper's running example.

use crate::builder::ProgramBuilder;
use crate::types::*;
use spllift_features::{FeatureExpr, FeatureId, FeatureTable};

/// The paper's Figure 1 product line, plus handles to its pieces.
#[derive(Debug)]
pub struct Fig1 {
    /// The product line as an IR program.
    pub program: Program,
    /// Feature table containing `F`, `G`, `H`.
    pub table: FeatureTable,
    /// The features `[F, G, H]`.
    pub features: [FeatureId; 3],
    /// `main`.
    pub main: MethodId,
    /// `foo`.
    pub foo: MethodId,
    /// `secret` (the taint source).
    pub secret: MethodId,
    /// `print` (the taint sink).
    pub print: MethodId,
    /// The `print(y)` call statement in `main` — where the leak shows.
    pub print_call: StmtRef,
}

/// Builds the running example of the paper (Figure 1):
///
/// ```java
/// void main() {
///     int x = secret();
///     int y = 0;
///     #ifdef F   x = 0;        #endif
///     #ifdef G   y = foo(x);   #endif
///     print(y);
/// }
/// int foo(int p) {
///     #ifdef H   p = 0;        #endif
///     return p;
/// }
/// ```
///
/// The taint analysis lifted with SPLLIFT computes that `secret` reaches
/// `print` exactly under `¬F ∧ G ∧ ¬H`.
pub fn fig1() -> Fig1 {
    let mut table = FeatureTable::new();
    let f = table.intern("F");
    let g = table.intern("G");
    let h = table.intern("H");

    let mut pb = ProgramBuilder::new();
    let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
    let print = pb.declare_method("print", None, &[Type::Int], None, true);
    let foo = pb.declare_method("foo", None, &[Type::Int], Some(Type::Int), true);
    let main = pb.declare_method("main", None, &[], None, true);

    {
        let mut mb = pb.method_body(secret);
        let v = mb.local("v", Type::Int);
        mb.assign(v, Rvalue::Use(Operand::IntConst(42)));
        mb.ret(Some(Operand::Local(v)));
        pb.finish_body(mb);
    }
    {
        let mut mb = pb.method_body(print);
        mb.ret(None);
        pb.finish_body(mb);
    }
    {
        let mut mb = pb.method_body(foo);
        let p = mb.param_local(0);
        mb.push_annotation(FeatureExpr::var(h));
        mb.assign(p, Rvalue::Use(Operand::IntConst(0)));
        mb.pop_annotation();
        mb.ret(Some(Operand::Local(p)));
        pb.finish_body(mb);
    }
    let print_call;
    {
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        let y = mb.local("y", Type::Int);
        mb.invoke(Some(x), Callee::Static(secret), vec![]);
        mb.assign(y, Rvalue::Use(Operand::IntConst(0)));
        mb.push_annotation(FeatureExpr::var(f));
        mb.assign(x, Rvalue::Use(Operand::IntConst(0)));
        mb.pop_annotation();
        mb.push_annotation(FeatureExpr::var(g));
        mb.invoke(Some(y), Callee::Static(foo), vec![Operand::Local(x)]);
        mb.pop_annotation();
        let idx = mb.invoke(None, Callee::Static(print), vec![Operand::Local(y)]);
        print_call = StmtRef {
            method: main,
            index: idx,
        };
        mb.ret(None);
        pb.finish_body(mb);
    }
    pb.add_entry_point(main);
    let program = pb.finish();
    debug_assert!(program.check().is_ok());
    Fig1 {
        program,
        table,
        features: [f, g, h],
        main,
        foo,
        secret,
        print,
        print_call,
    }
}

/// A small virtual-dispatch sample: `Shape { area() }` with `Circle` and
/// `Square` overriding it, exercising CHA resolution and the §5 limitation
/// example (`#ifdef`-dependent allocation, feature-insensitive dispatch).
#[derive(Debug)]
pub struct Shapes {
    /// The program.
    pub program: Program,
    /// Feature table containing `F`.
    pub table: FeatureTable,
    /// Classes `[Shape, Circle, Square]`.
    pub classes: [ClassId; 3],
    /// The virtual call site `s.area()` in `main`.
    pub call_site: StmtRef,
    /// Methods `[Shape.area, Circle.area, Square.area, main]`.
    pub methods: [MethodId; 4],
}

/// Builds the virtual-dispatch sample.
pub fn shapes() -> Shapes {
    let mut table = FeatureTable::new();
    let f = table.intern("F");

    let mut pb = ProgramBuilder::new();
    let shape = pb.add_class("Shape", None);
    let circle = pb.add_class("Circle", Some(shape));
    let square = pb.add_class("Square", Some(shape));
    let shape_area = pb.declare_method("area", Some(shape), &[], Some(Type::Int), false);
    let circle_area = pb.declare_method("area", Some(circle), &[], Some(Type::Int), false);
    let square_area = pb.declare_method("area", Some(square), &[], Some(Type::Int), false);
    let main = pb.declare_method("main", None, &[], None, true);

    for (m, v) in [(shape_area, 0), (circle_area, 1), (square_area, 2)] {
        let mut mb = pb.method_body(m);
        let r = mb.local("r", Type::Int);
        mb.assign(r, Rvalue::Use(Operand::IntConst(v)));
        mb.ret(Some(Operand::Local(r)));
        pb.finish_body(mb);
    }

    let call_site;
    {
        let mut mb = pb.method_body(main);
        let s = mb.local("s", Type::Ref(shape));
        let a = mb.local("a", Type::Int);
        // #ifdef F: s = new Circle() #else-ish: s = new Square()
        mb.push_annotation(FeatureExpr::var(f));
        mb.assign(s, Rvalue::New(circle));
        mb.pop_annotation();
        mb.push_annotation(FeatureExpr::var(f).not());
        mb.assign(s, Rvalue::New(square));
        mb.pop_annotation();
        let idx = mb.invoke(
            Some(a),
            Callee::Virtual {
                base: s,
                name: "area".into(),
                argc: 0,
            },
            vec![],
        );
        call_site = StmtRef {
            method: main,
            index: idx,
        };
        mb.ret(None);
        pb.finish_body(mb);
    }
    pb.add_entry_point(main);
    let program = pb.finish();
    debug_assert!(program.check().is_ok());
    Shapes {
        program,
        table,
        classes: [shape, circle, square],
        call_site,
        methods: [shape_area, circle_area, square_area, main],
    }
}
