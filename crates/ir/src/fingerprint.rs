//! Deterministic program fingerprints.
//!
//! The analysis server keys its solution cache and its incremental-solve
//! bookkeeping on a fingerprint of everything the lifted analysis reads:
//! the program (classes, fields, methods, bodies, annotations), the
//! feature table (names *and* interning order — BDD variable order
//! follows it), and the feature-model constraint. Two inputs with equal
//! fingerprints produce byte-identical analysis output, so a fingerprint
//! match is a safe cache hit; a mismatch forces a re-solve.
//!
//! The hash is [`spllift_hash::FxHasher64`] — deterministic across runs
//! and platforms (no randomized state), which keeps server responses
//! reproducible in golden-transcript tests.

use crate::Program;
use spllift_features::{FeatureExpr, FeatureTable};
use spllift_hash::FxHasher64;
use std::hash::{Hash, Hasher};

/// Fingerprint of `(program, feature table, feature model)`.
pub fn fingerprint(program: &Program, table: &FeatureTable, model: Option<&FeatureExpr>) -> u64 {
    let mut h = FxHasher64::default();
    program.hash(&mut h);
    table.len().hash(&mut h);
    for (_, name) in table.iter() {
        name.hash(&mut h);
    }
    model.hash(&mut h);
    h.finish()
}
