//! Core IR data types.

use spllift_features::FeatureExpr;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a `usize` index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a class in a [`Program`].
    ClassId
);
id_type!(
    /// Identifies a method in a [`Program`].
    MethodId
);
id_type!(
    /// Identifies a field in a [`Program`].
    FieldId
);
id_type!(
    /// Identifies a local variable within one method body.
    LocalId
);

/// A reference to one statement: method plus index into the body.
///
/// Index 0 is the synthetic entry `nop` of the method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtRef {
    /// The containing method.
    pub method: MethodId,
    /// Index into the method body's statement list.
    pub index: u32,
}

impl fmt::Display for StmtRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}:{}", self.method.0, self.index)
    }
}

/// A value type. The mini-Java subset has `int`, `boolean`, class
/// references, and one-dimensional arrays thereof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit integer.
    Int,
    /// Boolean.
    Boolean,
    /// Reference to an instance of a class (or any subclass).
    Ref(ClassId),
    /// One-dimensional array of `ElemType` (no nested arrays).
    Array(ElemType),
}

/// The element type of an array (arrays of arrays are not supported).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElemType {
    /// 64-bit integer elements.
    Int,
    /// Boolean elements.
    Boolean,
    /// Reference elements.
    Ref(ClassId),
}

impl From<ElemType> for Type {
    fn from(e: ElemType) -> Type {
        match e {
            ElemType::Int => Type::Int,
            ElemType::Boolean => Type::Boolean,
            ElemType::Ref(c) => Type::Ref(c),
        }
    }
}

/// A local variable declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Local {
    /// Source-level name (for diagnostics; uniqueness not required).
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A simple operand: a local or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read of a local variable.
    Local(LocalId),
    /// Integer literal.
    IntConst(i64),
    /// Boolean literal.
    BoolConst(bool),
    /// The `null` reference.
    Null,
}

impl Operand {
    /// The local this operand reads, if any.
    pub fn as_local(self) -> Option<LocalId> {
        match self {
            Operand::Local(l) => Some(l),
            _ => None,
        }
    }
}

/// Binary operators of the mini-Java subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// The right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Rvalue {
    /// Plain copy of an operand.
    Use(Operand),
    /// Binary operation.
    Binary(BinOp, Operand, Operand),
    /// Allocation `new C()`.
    New(ClassId),
    /// Field read `base.f` (`base = None` for a static field).
    FieldLoad {
        /// Receiver, or `None` for static fields.
        base: Option<Operand>,
        /// The field read.
        field: FieldId,
    },
    /// Array allocation `new T[len]`.
    NewArray {
        /// Element type.
        elem: ElemType,
        /// Length operand.
        len: Operand,
    },
    /// Array read `base[index]`. The analyses treat array contents with
    /// weak, index-insensitive updates (paper §6.2).
    ArrayLoad {
        /// The array reference.
        base: Operand,
        /// The index (tracked for uses, ignored for content abstraction).
        index: Operand,
    },
}

impl Rvalue {
    /// Locals read by this rvalue.
    pub fn uses(&self) -> Vec<LocalId> {
        match self {
            Rvalue::Use(op) => op.as_local().into_iter().collect(),
            Rvalue::Binary(_, a, b) => a.as_local().into_iter().chain(b.as_local()).collect(),
            Rvalue::New(_) => Vec::new(),
            Rvalue::FieldLoad { base, .. } => base.and_then(|b| b.as_local()).into_iter().collect(),
            Rvalue::NewArray { len, .. } => len.as_local().into_iter().collect(),
            Rvalue::ArrayLoad { base, index } => base
                .as_local()
                .into_iter()
                .chain(index.as_local())
                .collect(),
        }
    }
}

/// Call target of an [`StmtKind::Invoke`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Callee {
    /// Direct call to a static method (or constructor).
    Static(MethodId),
    /// Virtual dispatch on the declared type of `base`, resolved by CHA.
    Virtual {
        /// The receiver local.
        base: LocalId,
        /// The invoked method name.
        name: String,
        /// Number of (non-receiver) arguments, for overload disambiguation.
        argc: usize,
    },
}

/// A single three-address statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StmtKind {
    /// No operation (also the synthetic method entry).
    Nop,
    /// `target = rvalue`.
    Assign {
        /// Assigned local.
        target: LocalId,
        /// Right-hand side.
        rvalue: Rvalue,
    },
    /// `base.field = value` (static field when `base = None`).
    FieldStore {
        /// Receiver, or `None` for static fields.
        base: Option<Operand>,
        /// The stored-to field.
        field: FieldId,
        /// Stored value.
        value: Operand,
    },
    /// `base[index] = value` — weak, index-insensitive content update.
    ArrayStore {
        /// The array reference.
        base: Operand,
        /// The index.
        index: Operand,
        /// Stored value.
        value: Operand,
    },
    /// `if lhs op rhs goto target` — conditional branch; falls through to
    /// the next statement otherwise.
    If {
        /// Comparison operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Branch-target statement index within the same body.
        target: u32,
    },
    /// `goto target` — unconditional branch.
    Goto {
        /// Target statement index within the same body.
        target: u32,
    },
    /// Method call, optionally assigning the result.
    Invoke {
        /// Local receiving the return value, if any.
        result: Option<LocalId>,
        /// Call target.
        callee: Callee,
        /// Actual arguments (excluding the receiver).
        args: Vec<Operand>,
    },
    /// `return [value]` — method exit.
    Return {
        /// Returned operand, if the method is non-void.
        value: Option<Operand>,
    },
}

impl StmtKind {
    /// The local this statement writes, if any.
    pub fn def(&self) -> Option<LocalId> {
        match self {
            StmtKind::Assign { target, .. } => Some(*target),
            StmtKind::Invoke { result, .. } => *result,
            _ => None,
        }
    }

    /// Locals this statement reads.
    pub fn uses(&self) -> Vec<LocalId> {
        match self {
            StmtKind::Nop => Vec::new(),
            StmtKind::Assign { rvalue, .. } => rvalue.uses(),
            StmtKind::FieldStore { base, value, .. } => base
                .and_then(|b| b.as_local())
                .into_iter()
                .chain(value.as_local())
                .collect(),
            StmtKind::ArrayStore { base, index, value } => base
                .as_local()
                .into_iter()
                .chain(index.as_local())
                .chain(value.as_local())
                .collect(),
            StmtKind::If { lhs, rhs, .. } => {
                lhs.as_local().into_iter().chain(rhs.as_local()).collect()
            }
            StmtKind::Goto { .. } => Vec::new(),
            StmtKind::Invoke { callee, args, .. } => {
                let mut v: Vec<LocalId> = args.iter().filter_map(|a| a.as_local()).collect();
                if let Callee::Virtual { base, .. } = callee {
                    v.push(*base);
                }
                v
            }
            StmtKind::Return { value } => value.and_then(|v| v.as_local()).into_iter().collect(),
        }
    }
}

/// A statement together with its feature annotation.
///
/// The annotation is the conjunction of all `#ifdef` conditions enclosing
/// the statement in the SPL source; `FeatureExpr::True` for unannotated
/// code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Stmt {
    /// The operation.
    pub kind: StmtKind,
    /// Feature condition under which the statement is present.
    pub annotation: FeatureExpr,
}

/// A method body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Body {
    /// All locals, including parameter locals.
    pub locals: Vec<Local>,
    /// The locals bound to the parameters, in parameter order.
    pub param_locals: Vec<LocalId>,
    /// The local bound to `this` for instance methods.
    pub this_local: Option<LocalId>,
    /// The statements. Index 0 is a synthetic entry `nop`; the last
    /// statement is an unannotated `return`.
    pub stmts: Vec<Stmt>,
}

/// A method declaration (possibly abstract: no body).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Declaring class, if any (`None` for free functions/drivers).
    pub class: Option<ClassId>,
    /// Parameter types (excluding the receiver).
    pub params: Vec<Type>,
    /// Return type; `None` for `void`.
    pub ret: Option<Type>,
    /// `true` for static methods.
    pub is_static: bool,
    /// The body; `None` for abstract/native methods.
    pub body: Option<Body>,
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Declaring class.
    pub class: ClassId,
    /// Field type.
    pub ty: Type,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Class {
    /// Class name.
    pub name: String,
    /// Superclass, if any.
    pub superclass: Option<ClassId>,
    /// Declared fields.
    pub fields: Vec<FieldId>,
    /// Declared methods.
    pub methods: Vec<MethodId>,
}

/// Errors from IR validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A branch target is out of range.
    BadBranchTarget(StmtRef, u32),
    /// A local id is out of range for its body.
    BadLocal(StmtRef, LocalId),
    /// A method body does not end in an unannotated return.
    MissingFinalReturn(MethodId),
    /// The entry statement (index 0) is not a `nop`.
    BadEntry(MethodId),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BadBranchTarget(s, t) => {
                write!(f, "branch target {t} out of range at {s}")
            }
            IrError::BadLocal(s, l) => write!(f, "local {l} out of range at {s}"),
            IrError::MissingFinalReturn(m) => {
                write!(f, "method {m} does not end in an unannotated return")
            }
            IrError::BadEntry(m) => write!(f, "method {m} entry statement is not a nop"),
        }
    }
}

impl std::error::Error for IrError {}

/// A whole program: classes, fields, methods, and entry points.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Program {
    pub(crate) classes: Vec<Class>,
    pub(crate) fields: Vec<Field>,
    pub(crate) methods: Vec<Method>,
    pub(crate) entry_points: Vec<MethodId>,
}

impl Program {
    /// Appends a fully formed method (used by the repro-file parser,
    /// which bypasses [`crate::ProgramBuilder`] because bodies arrive
    /// complete with their synthetic entry and final return).
    pub(crate) fn push_method(&mut self, m: Method) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(m);
        id
    }

    /// Appends an entry point (repro-file parser hook).
    pub(crate) fn push_entry_point(&mut self, m: MethodId) {
        self.entry_points.push(m);
    }

    /// All classes, indexable by [`ClassId`].
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// All fields, indexable by [`FieldId`].
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// All methods, indexable by [`MethodId`].
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// The declared analysis entry points.
    pub fn entry_points(&self) -> &[MethodId] {
        &self.entry_points
    }

    /// The class with id `c`.
    pub fn class(&self, c: ClassId) -> &Class {
        &self.classes[c.index()]
    }

    /// The field with id `f`.
    pub fn field(&self, f: FieldId) -> &Field {
        &self.fields[f.index()]
    }

    /// The method with id `m`.
    pub fn method(&self, m: MethodId) -> &Method {
        &self.methods[m.index()]
    }

    /// The body of `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` has no body.
    pub fn body(&self, m: MethodId) -> &Body {
        self.methods[m.index()]
            .body
            .as_ref()
            .unwrap_or_else(|| panic!("method {m} has no body"))
    }

    /// Mutable access to the body of `m` — the hook the structural
    /// mutators and the test-case reducer use to edit programs in place.
    /// Callers are expected to re-validate with [`Program::check`] after
    /// a batch of edits.
    ///
    /// # Panics
    ///
    /// Panics if `m` has no body.
    pub fn body_mut(&mut self, m: MethodId) -> &mut Body {
        self.methods[m.index()]
            .body
            .as_mut()
            .unwrap_or_else(|| panic!("method {m} has no body"))
    }

    /// The statement referred to by `s`.
    pub fn stmt(&self, s: StmtRef) -> &Stmt {
        &self.body(s.method).stmts[s.index as usize]
    }

    /// Mutable access to the statement referred to by `s`.
    pub fn stmt_mut(&mut self, s: StmtRef) -> &mut Stmt {
        &mut self.body_mut(s.method).stmts[s.index as usize]
    }

    /// Method ids whose method has a body, in declaration order.
    pub fn methods_with_body(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.methods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.body.is_some())
            .map(|(i, _)| MethodId(i as u32))
    }

    /// The synthetic entry statement of `m`.
    pub fn entry_of(&self, m: MethodId) -> StmtRef {
        StmtRef {
            method: m,
            index: 0,
        }
    }

    /// Iterates over all statements of `m`.
    pub fn stmts_of(&self, m: MethodId) -> impl Iterator<Item = StmtRef> + '_ {
        let n = self.body(m).stmts.len() as u32;
        (0..n).map(move |index| StmtRef { method: m, index })
    }

    /// Looks up a method by `Class.name` notation (or bare name for
    /// classless methods). Returns the first match.
    pub fn find_method(&self, qualified: &str) -> Option<MethodId> {
        let (class_name, meth_name) = match qualified.split_once('.') {
            Some((c, m)) => (Some(c), m),
            None => (None, qualified),
        };
        self.methods.iter().enumerate().find_map(|(i, m)| {
            let class_ok = match (class_name, m.class) {
                (None, None) => true,
                (Some(cn), Some(cid)) => self.classes[cid.index()].name == cn,
                _ => class_name.is_none(),
            };
            (class_ok && m.name == meth_name).then_some(MethodId(i as u32))
        })
    }

    /// Looks up a class by name.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u32))
    }

    /// Intra-procedural successors of `s` in the *product-line* CFG:
    /// both branch outcomes for `if`, the target for `goto`, nothing after
    /// `return`, and fall-through otherwise.
    pub fn successors_of(&self, s: StmtRef) -> Vec<StmtRef> {
        let body = self.body(s.method);
        let next = |i: u32| -> Option<StmtRef> {
            (((i + 1) as usize) < body.stmts.len()).then_some(StmtRef {
                method: s.method,
                index: i + 1,
            })
        };
        match &body.stmts[s.index as usize].kind {
            StmtKind::Return { .. } => Vec::new(),
            StmtKind::Goto { target } => {
                vec![StmtRef {
                    method: s.method,
                    index: *target,
                }]
            }
            StmtKind::If { target, .. } => {
                let mut v: Vec<StmtRef> = next(s.index).into_iter().collect();
                v.push(StmtRef {
                    method: s.method,
                    index: *target,
                });
                v
            }
            _ => next(s.index).into_iter().collect(),
        }
    }

    /// The fall-through successor (`index + 1`), if in range. This is the
    /// successor a *disabled* statement falls through to (paper Fig. 4).
    pub fn fall_through_of(&self, s: StmtRef) -> Option<StmtRef> {
        let body = self.body(s.method);
        (((s.index + 1) as usize) < body.stmts.len()).then_some(StmtRef {
            method: s.method,
            index: s.index + 1,
        })
    }

    /// The branch target of an `if`/`goto`, if `s` is a branch.
    pub fn branch_target_of(&self, s: StmtRef) -> Option<StmtRef> {
        match &self.stmt(s).kind {
            StmtKind::If { target, .. } | StmtKind::Goto { target } => Some(StmtRef {
                method: s.method,
                index: *target,
            }),
            _ => None,
        }
    }

    /// Number of statements across all bodies.
    pub fn stmt_count(&self) -> usize {
        self.methods
            .iter()
            .filter_map(|m| m.body.as_ref())
            .map(|b| b.stmts.len())
            .sum()
    }

    /// Validates structural invariants (branch targets, locals, final
    /// returns, entry nops).
    ///
    /// # Errors
    ///
    /// The first violated invariant, as an [`IrError`].
    pub fn check(&self) -> Result<(), IrError> {
        for (mi, m) in self.methods.iter().enumerate() {
            let mid = MethodId(mi as u32);
            let Some(body) = &m.body else { continue };
            if !matches!(body.stmts.first().map(|s| &s.kind), Some(StmtKind::Nop)) {
                return Err(IrError::BadEntry(mid));
            }
            match body.stmts.last() {
                Some(Stmt {
                    kind: StmtKind::Return { .. },
                    annotation,
                }) if *annotation == FeatureExpr::True => {}
                _ => return Err(IrError::MissingFinalReturn(mid)),
            }
            for (i, stmt) in body.stmts.iter().enumerate() {
                let sref = StmtRef {
                    method: mid,
                    index: i as u32,
                };
                let check_local = |l: LocalId| -> Result<(), IrError> {
                    if l.index() < body.locals.len() {
                        Ok(())
                    } else {
                        Err(IrError::BadLocal(sref, l))
                    }
                };
                if let Some(d) = stmt.kind.def() {
                    check_local(d)?;
                }
                for u in stmt.kind.uses() {
                    check_local(u)?;
                }
                if let StmtKind::If { target, .. } | StmtKind::Goto { target } = &stmt.kind {
                    if (*target as usize) >= body.stmts.len() {
                        return Err(IrError::BadBranchTarget(sref, *target));
                    }
                }
            }
        }
        Ok(())
    }
}
