//! A tiny, dependency-free, seeded PRNG for deterministic benchmark
//! generation and randomized property tests.
//!
//! The workspace must build **offline** (see `DESIGN.md` §5): Cargo
//! resolves even *optional* registry dependencies at lock time, so any
//! mention of `rand`/`proptest` in a manifest breaks a network-less
//! build. This crate replaces both for our purposes with a SplitMix64
//! generator — 64 bits of state, statistically solid for test-case
//! generation, and trivially reproducible from a `u64` seed.
//!
//! This is **not** a cryptographic generator and must never be used for
//! anything security-sensitive; everything in this workspace that wants
//! randomness wants *reproducible* randomness.
//!
//! # Example
//!
//! ```
//! use spllift_rng::SplitMix64;
//! let mut rng = SplitMix64::seed_from_u64(42);
//! let d = rng.gen_range(0..6u32);
//! assert!(d < 6);
//! // Same seed, same stream: `gen_range` consumed draw #1 above.
//! assert_eq!(rng.next_u64(), SplitMix64::seed_from_u64(42).nth_u64(2));
//! ```

#![warn(missing_docs)]

use std::ops::Range;

/// Sebastiano Vigna's SplitMix64: the recommended seeder for the
/// xorshift family, and a perfectly good generator on its own for
/// non-cryptographic use. Passes BigCrush when used directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Skips ahead and returns the `n`-th draw (1-based); handy in tests.
    pub fn nth_u64(&mut self, n: u64) -> u64 {
        let mut v = 0;
        for _ in 0..n {
            v = self.next_u64();
        }
        v
    }

    /// A uniform draw from `range` (half-open, must be non-empty).
    ///
    /// Uses Lemire-style rejection-free multiply-shift reduction; the
    /// modulo bias is below 2⁻⁴⁰ for every span this workspace uses,
    /// which is irrelevant for test-case generation.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }

    /// A uniformly chosen element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.gen_range(0..slice.len())]
    }

    /// A fresh generator seeded from this one — lets one master seed
    /// drive independent sub-streams without correlated draws.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::seed_from_u64(self.next_u64())
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Multiply-shift reduction of a 64-bit draw onto [0, span).
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Types [`SplitMix64::gen_range`] can sample from a half-open range.
pub trait SampleRange: Copy {
    /// Draws a uniform value in `[range.start, range.end)`.
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.below(span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                (range.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::seed_from_u64(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn reference_vector() {
        // First outputs of SplitMix64 with seed 1234567, from the
        // reference C implementation (prng.di.unimi.it/splitmix64.c).
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(99);
        for _ in 0..10_000 {
            let u = r.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let i = r.gen_range(-5..6i64);
            assert!((-5..6).contains(&i));
            let b = r.gen_range(0..2u8);
            assert!(b < 2);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut r = SplitMix64::seed_from_u64(5);
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads} heads");
    }

    #[test]
    fn choose_and_fork() {
        let mut r = SplitMix64::seed_from_u64(3);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(r.choose(&xs)));
        }
        let mut f1 = r.clone().fork();
        let mut f2 = r.fork();
        assert_eq!(f1.next_u64(), f2.next_u64(), "fork is deterministic");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SplitMix64::seed_from_u64(0);
        let _ = r.gen_range(5..5usize);
    }
}
