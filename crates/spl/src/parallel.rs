//! Parallel configuration-sharded solving: the A2 baseline and the RQ1
//! cross-check, fanned out over `std::thread::scope` workers.
//!
//! Configuration-specific solving is embarrassingly parallel — every A2
//! run reads the shared program and writes only its own results — so a
//! production-scale baseline should use every core. The BDD store is
//! thread-safe nowadays, but per-worker constraint contexts are still
//! the right shape here: each A2 shard's scratch constraints are
//! garbage to every other shard, so sharing a node store would only
//! contend. The driver therefore:
//!
//! 1. partitions the configuration slice into contiguous, ordered shards
//!    ([`spllift_features::partition_configurations`]),
//! 2. gives each worker its *own* constraint context (built by a caller
//!    supplied factory) and, for the cross-check, its own lifted
//!    solution — BDD state is created, used, and dropped on one thread,
//! 3. merges per-shard results **in shard index order**, which equals
//!    the sequential configuration order regardless of how the OS
//!    scheduled the workers.
//!
//! Because each shard also reports mismatches in the sequential order
//! (see `check_shard` in the crosscheck module) and caps locally at the
//! same `max_mismatches` budget, the merged, truncated mismatch vector
//! is byte-identical to the sequential pass for every worker count.

use crate::crosscheck::{check_shard, Mismatch, DEFAULT_MAX_MISMATCHES};
use spllift_core::{LiftedIcfg, LiftedSolution, ModelMode};
use spllift_features::{Configuration, ConstraintContext, FeatureExpr};
use spllift_ifds::{Icfg, IfdsProblem};
use spllift_ir::ProgramIcfg;
use std::hash::Hash;
use std::time::{Duration, Instant};

// The generic shard-map engine moved down to `spllift-features` so the
// Datalog backend can shard rule evaluation without depending on this
// crate; re-exported here so existing `spllift_spl::parallel` users
// keep compiling unchanged.
pub use spllift_features::{default_jobs, map_shards, ShardStats};

/// Tuning knobs of the parallel driver.
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Worker threads (shards). Clamped to at least 1; shards never
    /// outnumber configurations.
    pub jobs: usize,
    /// Cap on collected mismatches, applied per shard *and* to the
    /// merged result — see the module docs for why this keeps the
    /// output identical to the sequential pass.
    pub max_mismatches: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            jobs: default_jobs(),
            max_mismatches: DEFAULT_MAX_MISMATCHES,
        }
    }
}

impl ParallelOptions {
    /// Options with `jobs` workers and the default mismatch cap.
    pub fn with_jobs(jobs: usize) -> Self {
        ParallelOptions {
            jobs,
            ..Default::default()
        }
    }
}

/// Result of a parallel cross-check.
#[derive(Debug)]
pub struct CrosscheckOutcome {
    /// Mismatches in sequential configuration order, capped at
    /// [`ParallelOptions::max_mismatches`]. Identical to what
    /// [`crate::crosscheck_with`] returns for the same inputs.
    pub mismatches: Vec<Mismatch>,
    /// Per-shard wall-clock stats, in shard order.
    pub shards: Vec<ShardStats>,
    /// Worker threads actually used (after clamping).
    pub jobs: usize,
    /// Wall-clock time of the whole fan-out, including the merge.
    pub wall: Duration,
}

/// Result of a parallel A2 campaign (every configuration solved).
#[derive(Debug)]
pub struct A2CampaignOutcome {
    /// Total number of (statement, fact) results across all
    /// configurations — an order-independent checksum, so it is equal
    /// for every `jobs` value.
    pub facts: u64,
    /// Per-shard wall-clock stats, in shard order.
    pub shards: Vec<ShardStats>,
    /// Worker threads actually used (after clamping).
    pub jobs: usize,
    /// Wall-clock time of the whole campaign.
    pub wall: Duration,
}

/// Runs the §6.1 bidirectional cross-check with configurations sharded
/// across `opts.jobs` scoped threads.
///
/// `make_ctx` is called once per worker: giving each worker a private
/// constraint context keeps its scratch BDD nodes out of everyone
/// else's unique-table shards. Each worker solves its own lifted
/// instance — that repeats the cheap single-pass SPLLIFT solve per
/// worker, but the A2 oracle (one full IFDS solve *per configuration*)
/// dominates, which is the point of sharding by configuration.
///
/// The merged mismatch vector is byte-identical to
/// [`crate::crosscheck_with`] with the same `max_mismatches`, for every
/// `jobs` value.
pub fn crosscheck_parallel<'p, P, Ctx, F>(
    icfg: &ProgramIcfg<'p>,
    problem: &P,
    make_ctx: F,
    model: Option<&FeatureExpr>,
    configs: &[Configuration],
    opts: &ParallelOptions,
) -> CrosscheckOutcome
where
    P: IfdsProblem<ProgramIcfg<'p>> + Sync,
    P::Fact: Ord + Hash + Send + Sync,
    Ctx: ConstraintContext + Sync,
    Ctx::C: Send + Sync,
    F: Fn() -> Ctx + Sync,
{
    let start = Instant::now();
    let budget = opts.max_mismatches;

    let (per_shard, stats, jobs) = map_shards(configs, opts.jobs, |_shard, chunk| {
        let ctx = make_ctx();
        let lifted = LiftedSolution::solve(problem, icfg, &ctx, model, ModelMode::OnEdges);
        let lifted_icfg = LiftedIcfg::new(icfg);
        let mut mismatches = Vec::new();
        check_shard(
            icfg,
            &lifted,
            &lifted_icfg,
            problem,
            &ctx,
            chunk,
            budget,
            &mut mismatches,
        );
        mismatches
    });

    let mut mismatches: Vec<Mismatch> = per_shard.into_iter().flatten().collect();
    mismatches.truncate(budget);
    CrosscheckOutcome {
        mismatches,
        shards: stats,
        jobs,
        wall: start.elapsed(),
    }
}

/// Solves A2 for every configuration, sharded across `jobs` scoped
/// threads — the brute-force "A2 × every valid configuration" arm of
/// Table 2, parallelized.
///
/// A2 consults the concrete configuration directly (no constraints are
/// built), so no per-worker constraint context is needed; each worker
/// only builds its own [`LiftedIcfg`] view. Returns an
/// order-independent fact count as a determinism checksum together with
/// per-shard and total wall-clock times.
pub fn a2_campaign_parallel<'p, P>(
    icfg: &ProgramIcfg<'p>,
    problem: &P,
    configs: &[Configuration],
    jobs: usize,
) -> A2CampaignOutcome
where
    P: IfdsProblem<ProgramIcfg<'p>> + Sync,
    P::Fact: Hash,
{
    let start = Instant::now();

    let (per_shard, stats, jobs) = map_shards(configs, jobs, |_shard, chunk| {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let stmts: Vec<_> = icfg
            .methods()
            .into_iter()
            .flat_map(|m| icfg.stmts_of(m))
            .collect();
        let mut facts = 0u64;
        for config in chunk {
            let a2 = crate::a2::solve_a2(problem, &lifted_icfg, config);
            for &s in &stmts {
                facts += a2.results_at(s).len() as u64;
            }
        }
        facts
    });

    A2CampaignOutcome {
        facts: per_shard.into_iter().sum(),
        shards: stats,
        jobs,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosscheck_with;
    use spllift_analyses::TaintAnalysis;
    use spllift_features::BddConstraintContext;
    use spllift_ir::samples::fig1;

    #[test]
    fn empty_config_slice_is_trivial() {
        let ex = fig1();
        let icfg = ProgramIcfg::new(&ex.program);
        let analysis = TaintAnalysis::secret_to_print();
        let outcome = crosscheck_parallel(
            &icfg,
            &analysis,
            || BddConstraintContext::new(&ex.table),
            None,
            &[],
            &ParallelOptions::with_jobs(4),
        );
        assert!(outcome.mismatches.is_empty());
        assert!(outcome.shards.is_empty());
        let campaign = a2_campaign_parallel(&icfg, &analysis, &[], 4);
        assert_eq!(campaign.facts, 0);
    }

    #[test]
    fn parallel_equals_sequential_on_fig1() {
        let ex = fig1();
        let icfg = ProgramIcfg::new(&ex.program);
        let analysis = TaintAnalysis::secret_to_print();
        let configs: Vec<_> = (0u64..8).map(|b| Configuration::from_bits(b, 3)).collect();
        let ctx = BddConstraintContext::new(&ex.table);
        let sequential = crosscheck_with(&icfg, &analysis, &ctx, None, &configs, 100);
        for jobs in [1, 2, 3, 8, 64] {
            let outcome = crosscheck_parallel(
                &icfg,
                &analysis,
                || BddConstraintContext::new(&ex.table),
                None,
                &configs,
                &ParallelOptions {
                    jobs,
                    max_mismatches: 100,
                },
            );
            assert_eq!(outcome.mismatches, sequential, "jobs = {jobs}");
            assert_eq!(
                outcome.shards.iter().map(|s| s.items).sum::<usize>(),
                configs.len()
            );
        }
    }

    #[test]
    fn campaign_checksum_is_jobs_invariant() {
        let ex = fig1();
        let icfg = ProgramIcfg::new(&ex.program);
        let analysis = TaintAnalysis::secret_to_print();
        let configs: Vec<_> = (0u64..8).map(|b| Configuration::from_bits(b, 3)).collect();
        let reference = a2_campaign_parallel(&icfg, &analysis, &configs, 1).facts;
        assert!(reference > 0, "fig1 taint campaign computes facts");
        for jobs in [2, 3, 8] {
            assert_eq!(
                a2_campaign_parallel(&icfg, &analysis, &configs, jobs).facts,
                reference
            );
        }
    }
}
