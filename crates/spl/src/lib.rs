//! Baseline analysis strategies for software product lines, and the RQ1
//! correctness cross-check.
//!
//! The paper evaluates SPLLIFT against two product-based baselines:
//!
//! * **A1** — the *traditional* approach: generate every valid product
//!   with a preprocessor, then run the plain IFDS analysis on each
//!   product ([`a1`]). Requires one parse + call-graph computation per
//!   product, which is why the paper calls it intractable.
//! * **A2** — a *configuration-specific feature-aware* analysis
//!   ([`a2::A2Problem`]): runs on the annotated product line directly,
//!   consulting one concrete configuration to decide per statement whether
//!   to apply its flow function or fall through (§6.1). It shares the
//!   single parse/call graph across configurations and is "so simple that
//!   we consider it foolproof" — the paper (and we) use it as the RQ1
//!   oracle for SPLLIFT.
//!
//! [`crosscheck()`](crosscheck::crosscheck) implements the paper's §6.1 bidirectional validation:
//! whenever A2 computes a fact for configuration `c`, SPLLIFT's constraint
//! must allow `c`; and every SPLLIFT result satisfied by `c` must also be
//! computed by A2.

#![warn(missing_docs)]
pub mod a1;
pub mod a2;
pub mod chaos;
pub mod crosscheck;
pub mod fuzz;
pub mod parallel;

pub use a1::A1Run;
pub use a2::{solve_a2, A2Problem};
pub use chaos::{ChaosWrapper, FaultKind, FaultPlan, PANIC_IN_FLOW_MESSAGE};
pub use crosscheck::{
    crosscheck, crosscheck_with, crosscheck_with_options, Mismatch, DEFAULT_MAX_MISMATCHES,
};
pub use fuzz::{
    check_program, failure_persists, fuzz_campaign, subject_for_seed, AnalysisVerdict, BugWrapper,
    FailureReport, FuzzOptions, FuzzReport, InjectedBug, SeedVerdict, UnpredictedEvent, ANALYSES,
};
pub use parallel::{
    a2_campaign_parallel, crosscheck_parallel, default_jobs, map_shards, A2CampaignOutcome,
    CrosscheckOutcome, ParallelOptions, ShardStats,
};

use spllift_features::{Configuration, FeatureExpr, FeatureId};

/// Enumerates the configurations over `universe` that satisfy
/// `model` — the "Configurations valid" column of Table 1, as concrete
/// configurations. Intended for baseline runs on small universes.
///
/// # Panics
///
/// Panics if `universe` has more than 30 features (enumerate via BDD
/// `sat_count` instead — this is exactly the wall the paper hits with
/// BerkeleyDB's 2^39 reachable configurations).
pub fn valid_configurations(model: &FeatureExpr, universe: &[FeatureId]) -> Vec<Configuration> {
    assert!(
        universe.len() <= 30,
        "refusing to enumerate 2^{} configurations",
        universe.len()
    );
    let mut out = Vec::new();
    for bits in 0u64..(1u64 << universe.len()) {
        let mut config = Configuration::empty();
        for (i, &f) in universe.iter().enumerate() {
            if bits & (1 << i) != 0 {
                config.enable(f);
            }
        }
        if config.satisfies(model) {
            out.push(config);
        }
    }
    out
}

#[cfg(test)]
mod tests;
