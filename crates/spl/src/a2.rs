//! A2: the configuration-specific feature-aware baseline (the oracle).

use spllift_core::{AnnotatedIcfg, LiftedIcfg};
use spllift_features::Configuration;
use spllift_ifds::{IfdsProblem, IfdsSolver};

/// Wraps an unchanged IFDS problem into a *configuration-specific*
/// feature-aware analysis, exactly as the paper describes A2 (§6.1):
///
/// > "If a statement s is labeled with a feature constraint F then A2
/// > first checks whether c satisfies F to determine whether s is
/// > enabled. If it is, then A2 propagates flow to s's standard
/// > successors using the standard IFDS flow function defined for s. If c
/// > does not satisfy F then A2 uses the identity function to propagate
/// > intra-procedural flows to fall-through successor nodes only."
///
/// Disabled calls and returns use the kill-all function (no flow between
/// caller and callee), mirroring Fig. 4d.
///
/// A2 runs on the [`LiftedIcfg`] view (which has the disabled-return
/// fall-through edges) but needs only one parse and one call graph for
/// all configurations — that is its advantage over A1 and why the paper
/// uses it as the performance baseline in Table 2.
#[derive(Debug)]
pub struct A2Problem<'a, P> {
    problem: &'a P,
    config: &'a Configuration,
}

impl<'a, P> A2Problem<'a, P> {
    /// Specializes `problem` to `config`.
    pub fn new(problem: &'a P, config: &'a Configuration) -> Self {
        A2Problem { problem, config }
    }
}

/// Runs the full A2 analysis of `problem` for one configuration.
pub fn solve_a2<'g, G, P, D>(
    problem: &P,
    icfg: &LiftedIcfg<'g, G>,
    config: &Configuration,
) -> IfdsSolver<LiftedIcfg<'g, G>, D>
where
    G: AnnotatedIcfg,
    P: IfdsProblem<G, Fact = D>,
    D: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let a2 = A2Problem::new(problem, config);
    IfdsSolver::solve(&a2, icfg)
}

impl<'a, 'g, G, P> IfdsProblem<LiftedIcfg<'g, G>> for A2Problem<'a, P>
where
    G: AnnotatedIcfg,
    P: IfdsProblem<G>,
{
    type Fact = P::Fact;

    fn zero(&self) -> P::Fact {
        self.problem.zero()
    }

    fn flow_normal(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        curr: G::Stmt,
        succ: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<P::Fact> {
        let inner = icfg.inner();
        let enabled = self.config.satisfies(&inner.annotation(curr));
        let fall_through = inner.fall_through_of(curr);
        let target = inner.branch_target_of(curr);

        if inner.is_exit(curr) {
            // Normal flow out of an exit exists only when it is disabled
            // (the synthetic fall-through edge).
            return if enabled || Some(succ) != fall_through {
                Vec::new()
            } else {
                vec![fact.clone()]
            };
        }
        if !enabled {
            // Disabled: identity to the fall-through successor only.
            return if Some(succ) == fall_through {
                vec![fact.clone()]
            } else {
                Vec::new()
            };
        }
        if inner.is_unconditional_branch(curr) && Some(succ) != target {
            // Enabled goto: flow only to its target.
            return Vec::new();
        }
        self.problem.flow_normal(inner, curr, succ, fact)
    }

    fn flow_call(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        callee: G::Method,
        fact: &P::Fact,
    ) -> Vec<P::Fact> {
        let inner = icfg.inner();
        if !self.config.satisfies(&inner.annotation(call)) {
            return Vec::new(); // kill-all: the call never happens
        }
        self.problem.flow_call(inner, call, callee, fact)
    }

    fn flow_return(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        callee: G::Method,
        exit: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<P::Fact> {
        let inner = icfg.inner();
        if !self.config.satisfies(&inner.annotation(call))
            || !self.config.satisfies(&inner.annotation(exit))
        {
            return Vec::new();
        }
        self.problem
            .flow_return(inner, call, callee, exit, return_site, fact)
    }

    fn flow_call_to_return(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<P::Fact> {
        let inner = icfg.inner();
        if !self.config.satisfies(&inner.annotation(call)) {
            return vec![fact.clone()]; // the call is absent: identity
        }
        self.problem
            .flow_call_to_return(inner, call, return_site, fact)
    }

    fn initial_seeds(&self, icfg: &LiftedIcfg<'g, G>) -> Vec<(G::Stmt, P::Fact)> {
        self.problem.initial_seeds(icfg.inner())
    }
}
