//! A1: the traditional generate-and-analyze baseline.

use spllift_features::Configuration;
use spllift_hash::{FastMap, FastSet};
use spllift_ifds::{IfdsProblem, IfdsSolver};
use spllift_ir::{Program, ProgramIcfg, StmtRef};
use std::hash::Hash;

/// The result of analyzing one derived product with the plain analysis.
///
/// Because [`Program::derive_product`] replaces disabled statements by
/// `nop`s *in place*, statement indices are stable: a [`StmtRef`] means
/// the same source location in every product and in the product line,
/// which is what makes per-product results comparable.
#[derive(Debug)]
pub struct A1Run<D: Clone + Eq + Hash> {
    /// The configuration this product was derived with.
    pub config: Configuration,
    results: FastMap<StmtRef, FastSet<D>>,
    /// Solver statistics for this product.
    pub stats: spllift_ifds::SolverStats,
}

impl<D: Clone + Eq + Hash + std::fmt::Debug> A1Run<D> {
    /// Derives the product of `spl` for `config`, builds its own call
    /// graph (A1 pays this cost per product — the reason Table 2's A1 was
    /// estimated in *years*), and runs the plain analysis.
    pub fn analyze<P>(spl: &Program, problem: &P, config: Configuration) -> Self
    where
        P: for<'a> IfdsProblem<ProgramIcfg<'a>, Fact = D>,
    {
        let product = spl.derive_product(&config);
        let icfg = ProgramIcfg::new(&product);
        let solver = IfdsSolver::solve(problem, &icfg);
        let mut results = FastMap::default();
        for s in solver.statements() {
            results.insert(s, solver.results_at(s));
        }
        A1Run {
            config,
            results,
            stats: solver.stats(),
        }
    }

    /// Facts (incl. zero) at `s` in this product.
    pub fn results_at(&self, s: StmtRef) -> FastSet<D> {
        self.results.get(&s).cloned().unwrap_or_default()
    }

    /// All statements with results.
    pub fn statements(&self) -> impl Iterator<Item = StmtRef> + '_ {
        self.results.keys().copied()
    }
}
