//! Deterministic fault injection for chaos-testing the solve path.
//!
//! [`ChaosWrapper`] generalizes the fuzzing campaign's
//! [`BugWrapper`](crate::BugWrapper): instead of corrupting *results*, it
//! injects operational faults — a panic, a constraint-budget blowout, or
//! a pathological slowdown — at a precisely reproducible point (the first
//! flow-function evaluation after arming). Each wrapper carries a finite
//! number of *charges*; once they are spent the wrapper is transparent,
//! so a degraded re-solve of the same problem (the governor's lower
//! ladder rungs) runs clean. That is what makes chaos outcomes
//! deterministic: rung 1 always absorbs the fault, rung 2 always
//! completes.
//!
//! The analysis server's `--inject-fault {kind}@{n}` flag builds a
//! [`FaultPlan`] and arms a one-charge wrapper on the `n`-th `analyze`
//! request only, so golden-transcript tests can pin byte-exact responses
//! for both the victim and every healthy session.

use spllift_ifds::{Icfg, IfdsProblem};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The fault classes the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside a flow-function evaluation — models a client-analysis
    /// bug escaping into the solver. The panic message is fixed
    /// (`"injected fault: panic-in-flow"`) so quarantine transcripts are
    /// reproducible.
    PanicInFlow,
    /// Burn the constraint engine's operation budget — models feature
    /// constraint blow-up tripping `BddError::BudgetExceeded`.
    BddBlowup,
    /// Sleep through the wall-clock allowance — models a pathologically
    /// slow edge-function evaluation tripping the deadline.
    SlowEdge,
    /// Deterministically exhaust the BDD *operation* budget at a chosen
    /// point: the server arms an op budget of exactly `N`
    /// (`--inject-fault budget-exhaust@N`), so the meter trips on the
    /// operation after the `N`-th — mid-solve, at a reproducible spot —
    /// and the governor descends the variability-abstraction lattice.
    /// In-process tests use the wrapper form instead
    /// ([`ChaosWrapper::with_delay`]): the fault fires at the chosen
    /// flow evaluation and burns the remaining budget via `on_blowup`.
    BudgetExhaust,
}

impl FaultKind {
    /// Stable flag spelling, as accepted by `--inject-fault`.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::PanicInFlow => "panic-in-flow",
            FaultKind::BddBlowup => "bdd-blowup",
            FaultKind::SlowEdge => "slow-edge",
            FaultKind::BudgetExhaust => "budget-exhaust",
        }
    }

    /// Parses the flag spelling.
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic-in-flow" => Some(FaultKind::PanicInFlow),
            "bdd-blowup" => Some(FaultKind::BddBlowup),
            "slow-edge" => Some(FaultKind::SlowEdge),
            "budget-exhaust" => Some(FaultKind::BudgetExhaust),
            _ => None,
        }
    }

    /// All fault classes, for exhaustive chaos sweeps.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::PanicInFlow,
        FaultKind::BddBlowup,
        FaultKind::SlowEdge,
        FaultKind::BudgetExhaust,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed `--inject-fault {kind}@{n}` plan.
///
/// For the operational faults (`panic-in-flow`, `bdd-blowup`,
/// `slow-edge`), `n` is the 1-based ordinal of the `analyze` request to
/// sabotage. For `budget-exhaust`, `n` is the *operation count*: the
/// victim request (always the first qualifying `analyze`) is armed with
/// a BDD op budget of exactly `n`, so the meter trips deterministically
/// on the operation after the `n`-th.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// 1-based ordinal of the event to sabotage.
    pub trigger: u64,
    /// [`FaultKind::BudgetExhaust`] only: the op budget to arm (the
    /// meter admits exactly this many operations).
    pub ops: u64,
}

/// Default op budget for a bare `budget-exhaust` plan — small enough to
/// trip on any non-trivial subject, large enough to survive lifting a
/// handful of annotation constraints.
pub const DEFAULT_EXHAUST_OPS: u64 = 1000;

impl FaultPlan {
    /// Parses `"kind@n"` (e.g. `"panic-in-flow@2"`, where `n` is the
    /// trigger ordinal, or `"budget-exhaust@500"`, where `n` is the op
    /// count). A bare `"kind"` means trigger 1 (resp.
    /// [`DEFAULT_EXHAUST_OPS`] operations).
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let (kind_s, trig_s) = match s.split_once('@') {
            Some((k, t)) => (k, Some(t)),
            None => (s, None),
        };
        let kind = FaultKind::parse(kind_s).ok_or_else(|| {
            format!(
                "unknown fault kind `{kind_s}` (expected one of: panic-in-flow, bdd-blowup, slow-edge, budget-exhaust)"
            )
        })?;
        let n =
            match trig_s {
                None => None,
                Some(t) => Some(t.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("invalid fault trigger `{t}` (expected integer >= 1)")
                })?),
            };
        Ok(match kind {
            FaultKind::BudgetExhaust => FaultPlan {
                kind,
                trigger: 1,
                ops: n.unwrap_or(DEFAULT_EXHAUST_OPS),
            },
            _ => FaultPlan {
                kind,
                trigger: n.unwrap_or(1),
                ops: DEFAULT_EXHAUST_OPS,
            },
        })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::BudgetExhaust => write!(f, "{}@{}", self.kind, self.ops),
            _ => write!(f, "{}@{}", self.kind, self.trigger),
        }
    }
}

/// The panic payload [`FaultKind::PanicInFlow`] raises — fixed so
/// structured panic responses are byte-reproducible.
pub const PANIC_IN_FLOW_MESSAGE: &str = "injected fault: panic-in-flow";

/// Wraps an [`IfdsProblem`], injecting one operational fault on the
/// first flow-function evaluation, then becoming transparent.
///
/// `charges` counts how many evaluations still sabotage (normally 1).
/// The wrapper delegates every flow function unchanged — unlike
/// [`BugWrapper`](crate::BugWrapper) it never alters results, only the
/// *process* of computing them.
pub struct ChaosWrapper<'a, P> {
    inner: &'a P,
    kind: FaultKind,
    /// Atomic so a charge is claimed exactly once even when the parallel
    /// Phase-1 workers race through flow evaluations.
    charges: AtomicU64,
    /// How long a [`FaultKind::SlowEdge`] evaluation stalls. Must exceed
    /// the governor's per-rung allowance for the fault to be observed.
    slow_for: Duration,
    /// [`FaultKind::BddBlowup`] / [`FaultKind::BudgetExhaust`] handler:
    /// burns the constraint budget. Injected by the harness because the
    /// wrapper itself is representation-agnostic (the server passes a
    /// closure charging the session's BDD manager).
    on_blowup: Box<dyn Fn() + Sync + 'a>,
    /// Flow evaluations to let through untouched before the charges
    /// start being claimed — lets a test exhaust the budget at a chosen
    /// point *mid-solve* instead of on the very first evaluation.
    delay: AtomicU64,
}

impl<'a, P> ChaosWrapper<'a, P> {
    /// Wraps `inner` with `charges` charges of `kind`.
    ///
    /// `slow_for` is the [`FaultKind::SlowEdge`] stall; `on_blowup` is
    /// invoked (once per charge) for [`FaultKind::BddBlowup`] and
    /// [`FaultKind::BudgetExhaust`].
    pub fn new(
        inner: &'a P,
        kind: FaultKind,
        charges: u64,
        slow_for: Duration,
        on_blowup: Box<dyn Fn() + Sync + 'a>,
    ) -> Self {
        Self::with_delay(inner, kind, charges, 0, slow_for, on_blowup)
    }

    /// Like [`new`](Self::new), but the first `delay` flow evaluations
    /// pass through untouched — the fault fires on evaluation
    /// `delay + 1` (deterministic with a single-threaded Phase 1).
    pub fn with_delay(
        inner: &'a P,
        kind: FaultKind,
        charges: u64,
        delay: u64,
        slow_for: Duration,
        on_blowup: Box<dyn Fn() + Sync + 'a>,
    ) -> Self {
        ChaosWrapper {
            inner,
            kind,
            charges: AtomicU64::new(charges),
            slow_for,
            on_blowup,
            delay: AtomicU64::new(delay),
        }
    }

    /// Charges left (0 = transparent from now on).
    pub fn charges_left(&self) -> u64 {
        self.charges.load(Ordering::Acquire)
    }

    fn trip(&self) {
        // Spend the delay before any charge can be claimed.
        if self
            .delay
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |d| d.checked_sub(1))
            .is_ok()
        {
            return;
        }
        // Claim a charge atomically: with a multi-threaded Phase 1,
        // racing evaluations must fire the fault exactly `charges`
        // times, not once per racer.
        let claimed = self
            .charges
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| c.checked_sub(1))
            .is_ok();
        if !claimed {
            return;
        }
        match self.kind {
            FaultKind::PanicInFlow => panic!("{}", PANIC_IN_FLOW_MESSAGE),
            FaultKind::BddBlowup | FaultKind::BudgetExhaust => (self.on_blowup)(),
            FaultKind::SlowEdge => std::thread::sleep(self.slow_for),
        }
    }
}

impl<'a, G, P> IfdsProblem<G> for ChaosWrapper<'a, P>
where
    G: Icfg,
    P: IfdsProblem<G>,
{
    type Fact = P::Fact;

    fn zero(&self) -> P::Fact {
        self.inner.zero()
    }

    fn flow_normal(&self, icfg: &G, curr: G::Stmt, succ: G::Stmt, fact: &P::Fact) -> Vec<P::Fact> {
        self.trip();
        self.inner.flow_normal(icfg, curr, succ, fact)
    }

    fn flow_call(
        &self,
        icfg: &G,
        call: G::Stmt,
        callee: G::Method,
        fact: &P::Fact,
    ) -> Vec<P::Fact> {
        self.trip();
        self.inner.flow_call(icfg, call, callee, fact)
    }

    fn flow_return(
        &self,
        icfg: &G,
        call: G::Stmt,
        callee: G::Method,
        exit: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<P::Fact> {
        self.trip();
        self.inner
            .flow_return(icfg, call, callee, exit, return_site, fact)
    }

    fn flow_call_to_return(
        &self,
        icfg: &G,
        call: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<P::Fact> {
        self.trip();
        self.inner
            .flow_call_to_return(icfg, call, return_site, fact)
    }

    fn initial_seeds(&self, icfg: &G) -> Vec<(G::Stmt, P::Fact)> {
        self.inner.initial_seeds(icfg)
    }
}
