use crate::a2::solve_a2;
use crate::{crosscheck, valid_configurations, A1Run, A2Problem};
use spllift_analyses::{PossibleTypes, ReachingDefs, TaintAnalysis, UninitVars};
use spllift_core::LiftedIcfg;
use spllift_features::{BddConstraintContext, Configuration, FeatureExpr, FeatureId, FeatureTable};
use spllift_ifds::{Icfg, IfdsSolver};
use spllift_ir::samples::fig1;
use spllift_ir::ProgramIcfg;

fn all_fig1_configs() -> Vec<Configuration> {
    (0u64..8)
        .map(|bits| Configuration::from_bits(bits, 3))
        .collect()
}

#[test]
fn valid_configurations_respects_model() {
    let mut t = FeatureTable::new();
    let f = t.intern("F");
    let g = t.intern("G");
    let model = FeatureExpr::parse("(F && G) || (!F && !G)", &mut t).unwrap();
    let configs = valid_configurations(&model, &[f, g]);
    assert_eq!(configs.len(), 2);
    assert!(configs.contains(&Configuration::empty()));
    assert!(configs.contains(&Configuration::from_enabled([f, g])));
}

#[test]
fn a2_matches_a1_on_every_fig1_configuration() {
    // A2 on the annotated SPL must equal A1 on the derived product —
    // statement indices are stable across derivation, so results are
    // directly comparable.
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let lifted_icfg = LiftedIcfg::new(&icfg);
    let analysis = TaintAnalysis::secret_to_print();
    for config in all_fig1_configs() {
        let a2 = solve_a2(&analysis, &lifted_icfg, &config);
        let a1 = A1Run::analyze(&ex.program, &analysis, config.clone());
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                assert_eq!(
                    a2.results_at(s),
                    a1.results_at(s),
                    "config {config:?} at {s}"
                );
            }
        }
    }
}

#[test]
fn a2_detects_leak_only_in_leaky_config() {
    let ex = fig1();
    let [f, g, h] = ex.features;
    let icfg = ProgramIcfg::new(&ex.program);
    let lifted_icfg = LiftedIcfg::new(&icfg);
    let analysis = TaintAnalysis::secret_to_print();
    for config in all_fig1_configs() {
        let a2 = solve_a2(&analysis, &lifted_icfg, &config);
        let leaky = !config.is_enabled(f) && config.is_enabled(g) && !config.is_enabled(h);
        let tainted = a2
            .results_at(ex.print_call)
            .contains(&spllift_analyses::TaintFact::Local(spllift_ir::LocalId(1)));
        assert_eq!(tainted, leaky, "config {config:?}");
    }
}

#[test]
fn crosscheck_taint_on_fig1_has_no_mismatches() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let mismatches = crosscheck(&icfg, &analysis, &ctx, None, &all_fig1_configs());
    assert!(mismatches.is_empty(), "{mismatches:?}");
}

#[test]
fn crosscheck_all_three_paper_analyses_on_fig1() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let configs = all_fig1_configs();
    let m1 = crosscheck(&icfg, &PossibleTypes::new(), &ctx, None, &configs);
    assert!(m1.is_empty(), "possible types: {m1:?}");
    let m2 = crosscheck(&icfg, &ReachingDefs::new(), &ctx, None, &configs);
    assert!(m2.is_empty(), "reaching defs: {m2:?}");
    let m3 = crosscheck(&icfg, &UninitVars::new(), &ctx, None, &configs);
    assert!(m3.is_empty(), "uninit vars: {m3:?}");
}

#[test]
fn crosscheck_with_feature_model() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let mut table = ex.table.clone();
    let model = FeatureExpr::parse("(F && G) || (!F && !G)", &mut table).unwrap();
    let [f, g, h] = ex.features;
    let configs = valid_configurations(&model, &[f, g, h]);
    assert_eq!(configs.len(), 4);
    let analysis = TaintAnalysis::secret_to_print();
    let mismatches = crosscheck(&icfg, &analysis, &ctx, Some(&model), &configs);
    assert!(mismatches.is_empty(), "{mismatches:?}");
}

#[test]
fn crosscheck_reports_oracle_disagreement() {
    // Sanity: a deliberately broken "analysis pair" must be caught. We
    // simulate it by cross-checking against configurations that are NOT
    // valid for the model (so the model-laden constraints reject them
    // while A2 still computes facts).
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let mut table = ex.table.clone();
    // Model that forbids G — but we pass a config with G enabled.
    let model = FeatureExpr::parse("!G", &mut table).unwrap();
    let [_, g, _] = ex.features;
    let bad_config = Configuration::from_enabled([g]);
    let analysis = TaintAnalysis::secret_to_print();
    let mismatches = crosscheck(&icfg, &analysis, &ctx, Some(&model), &[bad_config]);
    assert!(
        !mismatches.is_empty(),
        "invalid configs must surface as disagreements"
    );
    assert!(mismatches.iter().all(|m| m.missing_in_lifted));
    // Display rendering sanity.
    assert!(mismatches[0].to_string().contains("A2 has fact"));
}

#[test]
fn a2_uses_single_shared_call_graph() {
    // A2's advantage over A1: the icfg (with its call graph) is built
    // once. This test just pins the API shape: many configs, one icfg.
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let lifted_icfg = LiftedIcfg::new(&icfg);
    let analysis = TaintAnalysis::secret_to_print();
    let mut total_propagations = 0;
    for config in all_fig1_configs() {
        let solver = solve_a2(&analysis, &lifted_icfg, &config);
        total_propagations += solver.stats().propagations;
    }
    assert!(total_propagations > 0);
}

#[test]
fn a2_problem_is_reusable_via_new() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let lifted_icfg = LiftedIcfg::new(&icfg);
    let analysis = TaintAnalysis::secret_to_print();
    let config = Configuration::from_enabled([ex.features[1]]);
    let a2 = A2Problem::new(&analysis, &config);
    let solver = IfdsSolver::solve(&a2, &lifted_icfg);
    assert!(solver.is_reachable(icfg.start_point_of(ex.main)));
}

#[test]
fn enumerating_too_many_features_panics() {
    let universe: Vec<FeatureId> = (0..31).map(FeatureId).collect();
    let result = std::panic::catch_unwind(|| valid_configurations(&FeatureExpr::True, &universe));
    assert!(result.is_err());
}

/// Property-based RQ1: the cross-check holds on *randomly generated*
/// annotated programs, for all four analyses, over every configuration
/// of a 3-feature universe. This is the strongest correctness evidence
/// in the workspace: any disagreement between the lifting (Fig. 4 rules,
/// IDE solver, BDD algebra) and the simple A2 oracle fails the test.
mod property {
    use super::*;
    use spllift_features::FeatureExpr;
    use spllift_ir::{BinOp, LocalId, Operand, Program, ProgramBuilder, Rvalue, Type};
    use spllift_rng::SplitMix64;

    /// One random statement of a method body.
    #[derive(Debug, Clone)]
    enum Op {
        AssignConst(u8, i8),
        Copy(u8, u8),
        Add(u8, u8, u8),
        /// Conditional forward branch skipping `skip` ops.
        IfSkip(u8),
        /// Unconditional forward branch skipping `skip` ops.
        GotoSkip(u8),
        CallSecret(u8),
        CallPrint(u8),
        /// Call generated method `m % N`, passing local, storing result.
        CallM(u8, u8, u8),
        Ret(u8),
    }

    /// Annotation palette over features F0, F1, F2.
    fn annotation(code: u8, f: &[spllift_features::FeatureId; 3]) -> FeatureExpr {
        match code % 8 {
            0 | 1 | 2 => FeatureExpr::True,
            3 => FeatureExpr::var(f[0]),
            4 => FeatureExpr::var(f[1]),
            5 => FeatureExpr::var(f[2]).not(),
            6 => FeatureExpr::var(f[0]).and(FeatureExpr::var(f[1])),
            _ => FeatureExpr::var(f[1]).or(FeatureExpr::var(f[2])),
        }
    }

    fn random_op(rng: &mut SplitMix64) -> Op {
        match rng.gen_range(0..9u32) {
            0 => Op::AssignConst(rng.gen_range(0..3u8), rng.gen_range(-5..6i8)),
            1 => Op::Copy(rng.gen_range(0..3u8), rng.gen_range(0..3u8)),
            2 => Op::Add(
                rng.gen_range(0..3u8),
                rng.gen_range(0..3u8),
                rng.gen_range(0..3u8),
            ),
            3 => Op::IfSkip(rng.gen_range(1..4u8)),
            4 => Op::GotoSkip(rng.gen_range(1..3u8)),
            5 => Op::CallSecret(rng.gen_range(0..3u8)),
            6 => Op::CallPrint(rng.gen_range(0..3u8)),
            7 => Op::CallM(
                rng.gen_range(0..4u8),
                rng.gen_range(0..3u8),
                rng.gen_range(0..3u8),
            ),
            _ => Op::Ret(rng.gen_range(0..3u8)),
        }
    }

    fn random_body(rng: &mut SplitMix64) -> Vec<(Op, u8)> {
        (0..rng.gen_range(2..9usize))
            .map(|_| (random_op(rng), rng.gen_range(0..256u32) as u8))
            .collect()
    }

    fn random_bodies(rng: &mut SplitMix64, range: std::ops::Range<usize>) -> Vec<Vec<(Op, u8)>> {
        (0..rng.gen_range(range))
            .map(|_| random_body(rng))
            .collect()
    }

    fn build_program(bodies: &[Vec<(Op, u8)>], f: &[spllift_features::FeatureId; 3]) -> Program {
        let n = bodies.len() - 1; // last body is main
        let mut pb = ProgramBuilder::new();
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        {
            let mut mb = pb.method_body(secret);
            let v = mb.local("v", Type::Int);
            mb.assign(v, Rvalue::Use(Operand::IntConst(7)));
            mb.ret(Some(Operand::Local(v)));
            pb.finish_body(mb);
        }
        {
            let mb = pb.method_body(print);
            pb.finish_body(mb);
        }
        let gen_methods: Vec<_> = (0..n.max(1))
            .map(|i| pb.declare_method(&format!("m{i}"), None, &[Type::Int], Some(Type::Int), true))
            .collect();
        let main = pb.declare_method("main", None, &[], None, true);

        let emit = |pb: &mut ProgramBuilder,
                    mid: spllift_ir::MethodId,
                    ops: &[(Op, u8)],
                    has_param: bool| {
            let mut mb = pb.method_body(mid);
            let locals: Vec<LocalId> = if has_param {
                let p = mb.param_local(0);
                vec![p, mb.local("a", Type::Int), mb.local("b", Type::Int)]
            } else {
                vec![
                    mb.local("a", Type::Int),
                    mb.local("b", Type::Int),
                    mb.local("c", Type::Int),
                ]
            };
            // Pre-create one label per op position for forward jumps.
            let labels: Vec<_> = (0..ops.len() + 1).map(|_| mb.fresh_label()).collect();
            for (i, (op, ann)) in ops.iter().enumerate() {
                mb.bind(labels[i]);
                let a = annotation(*ann, f);
                let annotated = a != FeatureExpr::True;
                if annotated {
                    mb.push_annotation(a);
                }
                let l = |x: u8| locals[(x as usize) % locals.len()];
                match op {
                    Op::AssignConst(t, c) => {
                        mb.assign(l(*t), Rvalue::Use(Operand::IntConst(*c as i64)));
                    }
                    Op::Copy(t, s) => {
                        mb.assign(l(*t), Rvalue::Use(Operand::Local(l(*s))));
                    }
                    Op::Add(t, x, y) => {
                        mb.assign(
                            l(*t),
                            Rvalue::Binary(
                                BinOp::Add,
                                Operand::Local(l(*x)),
                                Operand::Local(l(*y)),
                            ),
                        );
                    }
                    Op::IfSkip(skip) => {
                        let target = (i + 1 + *skip as usize).min(ops.len());
                        mb.if_cmp(
                            BinOp::Lt,
                            Operand::Local(locals[0]),
                            Operand::IntConst(3),
                            labels[target],
                        );
                    }
                    Op::GotoSkip(skip) => {
                        let target = (i + 1 + *skip as usize).min(ops.len());
                        mb.goto(labels[target]);
                    }
                    Op::CallSecret(t) => {
                        mb.invoke(Some(l(*t)), spllift_ir::Callee::Static(secret), vec![]);
                    }
                    Op::CallPrint(s) => {
                        mb.invoke(
                            None,
                            spllift_ir::Callee::Static(print),
                            vec![Operand::Local(l(*s))],
                        );
                    }
                    Op::CallM(m, arg, res) => {
                        let callee = gen_methods[(*m as usize) % gen_methods.len()];
                        mb.invoke(
                            Some(l(*res)),
                            spllift_ir::Callee::Static(callee),
                            vec![Operand::Local(l(*arg))],
                        );
                    }
                    Op::Ret(s) => {
                        mb.ret(Some(Operand::Local(l(*s))));
                    }
                }
                if annotated {
                    mb.pop_annotation();
                }
            }
            mb.bind(labels[ops.len()]);
            pb.finish_body(mb);
        };

        for (i, &mid) in gen_methods.iter().enumerate() {
            emit(&mut pb, mid, &bodies[i.min(bodies.len() - 2)], true);
        }
        emit(&mut pb, main, bodies.last().unwrap(), false);
        pb.add_entry_point(main);
        let p = pb.finish();
        assert!(p.check().is_ok(), "generated program must validate");
        p
    }

    fn features3() -> (FeatureTable, [spllift_features::FeatureId; 3]) {
        let mut t = FeatureTable::new();
        let f = [t.intern("F0"), t.intern("F1"), t.intern("F2")];
        (t, f)
    }

    /// SPLLIFT ≡ A2 on random annotated programs, all configurations,
    /// all four analyses (and reaching defs under a feature model).
    #[test]
    fn crosscheck_random_programs() {
        let mut rng = SplitMix64::seed_from_u64(0x591_0001);
        for _ in 0..24 {
            let bodies = random_bodies(&mut rng, 2..5);
            let (t, f) = features3();
            let program = build_program(&bodies, &f);
            let icfg = ProgramIcfg::new(&program);
            let ctx = BddConstraintContext::new(&t);
            let configs: Vec<_> = (0u64..8).map(|b| Configuration::from_bits(b, 3)).collect();

            let m = crosscheck(
                &icfg,
                &TaintAnalysis::secret_to_print(),
                &ctx,
                None,
                &configs,
            );
            assert!(m.is_empty(), "taint: {m:?}");
            let m = crosscheck(&icfg, &UninitVars::new(), &ctx, None, &configs);
            assert!(m.is_empty(), "uninit: {m:?}");
            let m = crosscheck(&icfg, &ReachingDefs::new(), &ctx, None, &configs);
            assert!(m.is_empty(), "reaching defs: {m:?}");
            let m = crosscheck(&icfg, &PossibleTypes::new(), &ctx, None, &configs);
            assert!(m.is_empty(), "possible types: {m:?}");

            // With a feature model: only valid configs participate.
            let mut t2 = t.clone();
            let model = FeatureExpr::parse("F0 || !F1", &mut t2).unwrap();
            let valid: Vec<_> = configs
                .iter()
                .filter(|c| c.satisfies(&model))
                .cloned()
                .collect();
            let m = crosscheck(&icfg, &ReachingDefs::new(), &ctx, Some(&model), &valid);
            assert!(m.is_empty(), "reaching defs + model: {m:?}");
        }
    }

    /// BDD- and DNF-backed liftings agree semantically on random
    /// programs (every fact, every statement, every configuration).
    #[test]
    fn bdd_and_dnf_liftings_agree() {
        use spllift_core::{LiftedSolution, ModelMode};
        use spllift_features::{ConstraintContext as _, DnfConstraintContext};
        let mut rng = SplitMix64::seed_from_u64(0x591_0002);
        for _ in 0..24 {
            let bodies = random_bodies(&mut rng, 2..4);
            let (t, f) = features3();
            let program = build_program(&bodies, &f);
            let icfg = ProgramIcfg::new(&program);
            let bctx = BddConstraintContext::new(&t);
            let dctx = DnfConstraintContext::new(&t);
            let analysis = UninitVars::new();
            let bsol = LiftedSolution::solve(&analysis, &icfg, &bctx, None, ModelMode::Ignore);
            let dsol = LiftedSolution::solve(&analysis, &icfg, &dctx, None, ModelMode::Ignore);
            for m in icfg.methods() {
                for s in icfg.stmts_of(m) {
                    let br = bsol.results_at(s);
                    let dr = dsol.results_at(s);
                    for bits in 0u64..8 {
                        let cfg = Configuration::from_bits(bits, 3);
                        for (fact, bc) in &br {
                            let holds_b = bctx.satisfied_by(bc, &cfg);
                            let holds_d =
                                dr.get(fact).is_some_and(|dc| dctx.satisfied_by(dc, &cfg));
                            assert_eq!(holds_b, holds_d, "fact {fact:?} at {s} under {cfg:?}");
                        }
                        for (fact, dc) in &dr {
                            let holds_d = dctx.satisfied_by(dc, &cfg);
                            let holds_b =
                                br.get(fact).is_some_and(|bc| bctx.satisfied_by(bc, &cfg));
                            assert_eq!(holds_d, holds_b);
                        }
                    }
                }
            }
        }
    }
}

/// Differential tests that the hot-path perf work — the Phase-1 worklist
/// dedup and the hasher swap — is *invisible* in results: only
/// [`spllift_ide::IdeStats`] may change, and `propagations` may only go
/// down.
mod perf_invariance {
    use super::*;
    use spllift_benchgen::{synthetic_spec, GeneratedSpl};
    use spllift_core::{LiftedSolution, ModelMode};
    use spllift_frontend::parse_spl;
    use spllift_ide::IdeSolverOptions;
    use spllift_ifds::IfdsProblem;
    use spllift_ir::Program;

    /// Solves `problem` twice — worklist dedup off and on — asserts the
    /// complete result sets are identical, and returns the two
    /// propagation counts `(off, on)`.
    fn dedup_propagations<P, D>(
        subject: &str,
        program: &Program,
        table: &FeatureTable,
        model: Option<&FeatureExpr>,
        problem: &P,
    ) -> (u64, u64)
    where
        P: for<'a> IfdsProblem<spllift_ir::ProgramIcfg<'a>, Fact = D> + Sync,
        D: Clone + Eq + std::hash::Hash + Ord + std::fmt::Debug + Send + Sync,
    {
        let icfg = ProgramIcfg::new(program);
        let ctx = BddConstraintContext::new(table);
        let base = LiftedSolution::solve_with(
            problem,
            &icfg,
            &ctx,
            model,
            ModelMode::OnEdges,
            IdeSolverOptions {
                worklist_dedup: false,
                ..IdeSolverOptions::default()
            },
        );
        let dedup = LiftedSolution::solve_with(
            problem,
            &icfg,
            &ctx,
            model,
            ModelMode::OnEdges,
            IdeSolverOptions {
                worklist_dedup: true,
                ..IdeSolverOptions::default()
            },
        );
        // Both runs share `ctx`, so equal constraints are the same
        // hash-consed BDD node and compare by id.
        let snapshot = |sol: &LiftedSolution<'_, ProgramIcfg<'_>, D, spllift_bdd::Bdd>| {
            let mut v: Vec<_> = sol
                .all_results()
                .map(|(s, d, c)| (s, d.clone(), c.clone()))
                .collect();
            v.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
            v
        };
        assert_eq!(
            snapshot(&base),
            snapshot(&dedup),
            "worklist dedup changed results on {subject}"
        );
        let (off, on) = (base.stats().propagations, dedup.stats().propagations);
        assert!(
            on <= off,
            "dedup increased propagations on {subject}: {off} -> {on}"
        );
        (off, on)
    }

    fn load_chat() -> (Program, FeatureTable, FeatureExpr) {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples_data");
        let source = std::fs::read_to_string(format!("{dir}/chat.minijava")).unwrap();
        let mut table = FeatureTable::new();
        let program = parse_spl(&source, &mut table).unwrap();
        let model_text = std::fs::read_to_string(format!("{dir}/chat.model")).unwrap();
        let model = spllift_features::parse_feature_model(&model_text, &mut table)
            .unwrap()
            .to_expr();
        (program, table, model)
    }

    #[test]
    fn dedup_invisible_on_fig1() {
        let ex = fig1();
        let analysis = TaintAnalysis::secret_to_print();
        dedup_propagations("fig1/Taint", &ex.program, &ex.table, None, &analysis);
        dedup_propagations(
            "fig1/R.Def",
            &ex.program,
            &ex.table,
            None,
            &ReachingDefs::new(),
        );
    }

    #[test]
    fn dedup_invisible_on_chat() {
        // `chat` is small enough that Phase 1 never re-queues a triple
        // while it is still queued, so the counts are *equal* — the
        // helper still checks the full result sets match.
        let (program, table, model) = load_chat();
        let analysis = TaintAnalysis::secret_to_print();
        dedup_propagations("chat/Taint", &program, &table, Some(&model), &analysis);
        dedup_propagations(
            "chat/R.Def",
            &program,
            &table,
            Some(&model),
            &ReachingDefs::new(),
        );
    }

    #[test]
    fn dedup_strictly_reduces_propagations_on_mm08() {
        // MM08 is a committed benchmark subject (`spllift_benchgen`
        // generates it deterministically from its committed spec) that
        // is large enough for jump functions to strengthen while their
        // triple is queued: dedup must *strictly* reduce propagations
        // for every paper analysis while the fixpoint stays identical.
        let spl = GeneratedSpl::generate(spllift_benchgen::subject_by_name("MM08").unwrap());
        let model = spl.model_expr();
        let analysis = TaintAnalysis::secret_to_print();
        for (label, (off, on)) in [
            (
                "Taint",
                dedup_propagations(
                    "MM08/Taint",
                    &spl.program,
                    &spl.table,
                    Some(&model),
                    &analysis,
                ),
            ),
            (
                "R.Def",
                dedup_propagations(
                    "MM08/R.Def",
                    &spl.program,
                    &spl.table,
                    Some(&model),
                    &ReachingDefs::new(),
                ),
            ),
            (
                "U.Var",
                dedup_propagations(
                    "MM08/U.Var",
                    &spl.program,
                    &spl.table,
                    Some(&model),
                    &UninitVars::new(),
                ),
            ),
        ] {
            eprintln!("MM08/{label}: propagations {off} (no dedup) -> {on} (dedup)");
            assert!(
                on < off,
                "expected strictly fewer propagations under dedup on MM08/{label}: {off} -> {on}"
            );
        }
    }

    #[test]
    fn dedup_invisible_on_generated_subjects() {
        // Deterministic seeds; chosen to keep the test fast, not for
        // their deltas (dedup is a FIFO-order heuristic — on rare
        // subjects it can cost a few extra propagations, which is why
        // the helper only asserts non-increase on these and the strict
        // decrease is pinned to MM08 above).
        for seed in [1u64, 2, 42] {
            let spl = GeneratedSpl::generate(synthetic_spec(8, 250, seed));
            let model = spl.model_expr();
            let analysis = TaintAnalysis::secret_to_print();
            dedup_propagations(
                &format!("synthetic:8:250:{seed}/Taint"),
                &spl.program,
                &spl.table,
                Some(&model),
                &analysis,
            );
            dedup_propagations(
                &format!("synthetic:8:250:{seed}/U.Var"),
                &spl.program,
                &spl.table,
                Some(&model),
                &UninitVars::new(),
            );
        }
    }

    #[test]
    fn crosscheck_still_clean_with_dedup_default() {
        // `crosscheck` runs the *default* solver options (dedup on):
        // SPLLIFT must still agree with the A2 oracle per configuration.
        let (program, table, model) = load_chat();
        let icfg = ProgramIcfg::new(&program);
        let ctx = BddConstraintContext::new(&table);
        let features: Vec<_> = (0..table.len() as u32).map(FeatureId).collect();
        let configs = valid_configurations(&model, &features);
        let analysis = TaintAnalysis::secret_to_print();
        let mismatches = crosscheck(&icfg, &analysis, &ctx, Some(&model), &configs);
        assert!(mismatches.is_empty(), "{mismatches:?}");
    }
}

#[test]
#[ignore]
fn probe_dedup_counts() {
    use spllift_benchgen::{subject_by_name, synthetic_spec, GeneratedSpl};
    use spllift_core::LiftedSolution;
    use spllift_ide::IdeSolverOptions;
    let run = |name: &str, spl: &GeneratedSpl| {
        let icfg = ProgramIcfg::new(&spl.program);
        let ctx = BddConstraintContext::new(&spl.table);
        let model = spl.model_expr();
        macro_rules! go {
            ($label:expr, $p:expr) => {{
                let p = $p;
                let off = LiftedSolution::solve_with(
                    &p,
                    &icfg,
                    &ctx,
                    Some(&model),
                    spllift_core::ModelMode::OnEdges,
                    IdeSolverOptions {
                        worklist_dedup: false,
                        ..IdeSolverOptions::default()
                    },
                );
                let on = LiftedSolution::solve_with(
                    &p,
                    &icfg,
                    &ctx,
                    Some(&model),
                    spllift_core::ModelMode::OnEdges,
                    IdeSolverOptions {
                        worklist_dedup: true,
                        ..IdeSolverOptions::default()
                    },
                );
                eprintln!(
                    "{name}/{}: {} -> {}",
                    $label,
                    off.stats().propagations,
                    on.stats().propagations
                );
            }};
        }
        go!("Taint", TaintAnalysis::secret_to_print());
        go!("P.Types", PossibleTypes::new());
        go!("R.Def", ReachingDefs::new());
        go!("U.Var", UninitVars::new());
    };
    for s in ["MM08", "GPL"] {
        let spl = GeneratedSpl::generate(subject_by_name(s).unwrap());
        run(s, &spl);
    }
    for seed in [1u64, 2, 3, 7, 42] {
        let spl = GeneratedSpl::generate(synthetic_spec(8, 250, seed));
        run(&format!("syn:{seed}"), &spl);
    }
}
