//! RQ1: the bidirectional SPLLIFT ↔ A2 correctness cross-check (§6.1).

use crate::a2::solve_a2;
use spllift_core::{LiftedIcfg, LiftedSolution, ModelMode};
use spllift_features::{Configuration, Constraint, ConstraintContext, FeatureExpr};
use spllift_ifds::{Icfg, IfdsProblem};
use spllift_ir::{ProgramIcfg, StmtRef};
use std::fmt;
use std::hash::Hash;

/// A disagreement between SPLLIFT and the A2 oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// The configuration under which the solvers disagree.
    pub config: Configuration,
    /// The statement at which they disagree.
    pub stmt: StmtRef,
    /// Rendering of the offending fact.
    pub fact: String,
    /// `true` if A2 computed the fact but SPLLIFT's constraint rejects
    /// the configuration (SPLLIFT overly restrictive / unsound);
    /// `false` if SPLLIFT allows the configuration but A2 did not compute
    /// the fact (SPLLIFT imprecise: a false positive w.r.t. the oracle).
    pub missing_in_lifted: bool,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = if self.missing_in_lifted {
            "A2 has fact but SPLLIFT constraint rejects config"
        } else {
            "SPLLIFT constraint allows config but A2 lacks fact"
        };
        write!(f, "{dir}: {:?} at {} under {:?}", self.fact, self.stmt, self.config)
    }
}

/// Cross-checks SPLLIFT against A2 on every configuration in `configs`,
/// in both directions, exactly as the paper's §6.1 describes:
///
/// 1. whenever A2 computes a fact `r` at `s` for configuration `c`, the
///    constraint SPLLIFT computed for `r` at `s` must allow `c`
///    (SPLLIFT is not overly restrictive — soundness), and
/// 2. whenever SPLLIFT's constraint for `(s, r)` allows `c`, the A2
///    instance for `c` must have computed `r` at `s`
///    (SPLLIFT reports no false positives w.r.t. the oracle — precision).
///
/// Returns all mismatches (empty = the implementations agree).
pub fn crosscheck<'p, P, Ctx>(
    icfg: &ProgramIcfg<'p>,
    problem: &P,
    ctx: &Ctx,
    model: Option<&FeatureExpr>,
    configs: &[Configuration],
) -> Vec<Mismatch>
where
    P: IfdsProblem<ProgramIcfg<'p>>,
    P::Fact: Ord + Hash,
    Ctx: ConstraintContext,
{
    let lifted =
        LiftedSolution::solve(problem, icfg, ctx, model, ModelMode::OnEdges);
    let lifted_icfg = LiftedIcfg::new(icfg);
    let mut mismatches = Vec::new();

    for config in configs {
        let a2 = solve_a2(problem, &lifted_icfg, config);
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                let a2_facts = a2.results_at(s);
                // Direction 1: A2 fact ⟹ constraint allows config.
                for fact in &a2_facts {
                    let c = lifted.constraint_of(s, fact);
                    if !ctx.satisfied_by(&c, config) {
                        mismatches.push(Mismatch {
                            config: config.clone(),
                            stmt: s,
                            fact: format!("{fact:?}"),
                            missing_in_lifted: true,
                        });
                    }
                }
                // Direction 2: constraint allows config ⟹ A2 fact.
                for (fact, c) in lifted.results_at(s) {
                    if !c.is_false()
                        && ctx.satisfied_by(&c, config)
                        && !a2_facts.contains(&fact)
                    {
                        mismatches.push(Mismatch {
                            config: config.clone(),
                            stmt: s,
                            fact: format!("{fact:?}"),
                            missing_in_lifted: false,
                        });
                    }
                }
            }
        }
    }
    mismatches
}
