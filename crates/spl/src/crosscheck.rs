//! RQ1: the bidirectional SPLLIFT ↔ A2 correctness cross-check (§6.1).

use crate::a2::solve_a2;
use spllift_core::{LiftedIcfg, LiftedSolution, ModelMode};
use spllift_features::{Configuration, Constraint, ConstraintContext, FeatureExpr};
use spllift_ifds::{Icfg, IfdsProblem};
use spllift_ir::{ProgramIcfg, StmtRef};
use std::fmt;
use std::hash::Hash;

/// Default cap on the number of [`Mismatch`]es a cross-check collects.
///
/// A badly broken analysis would otherwise allocate
/// O(configs × stmts × facts) mismatches before reporting anything; one
/// hundred disagreements are more than enough to diagnose any bug.
pub const DEFAULT_MAX_MISMATCHES: usize = 100;

/// A disagreement between SPLLIFT and the A2 oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// The configuration under which the solvers disagree.
    pub config: Configuration,
    /// The statement at which they disagree.
    pub stmt: StmtRef,
    /// Rendering of the offending fact.
    pub fact: String,
    /// `true` if A2 computed the fact but SPLLIFT's constraint rejects
    /// the configuration (SPLLIFT overly restrictive / unsound);
    /// `false` if SPLLIFT allows the configuration but A2 did not compute
    /// the fact (SPLLIFT imprecise: a false positive w.r.t. the oracle).
    pub missing_in_lifted: bool,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = if self.missing_in_lifted {
            "A2 has fact but SPLLIFT constraint rejects config"
        } else {
            "SPLLIFT constraint allows config but A2 lacks fact"
        };
        write!(
            f,
            "{dir}: {:?} at {} under {:?}",
            self.fact, self.stmt, self.config
        )
    }
}

/// Checks one shard of configurations against an already-computed lifted
/// solution, appending at most `budget - out.len()` mismatches to `out`.
///
/// The output order is fully deterministic: configurations in slice
/// order, statements in ICFG order, and facts in `Ord` order within each
/// direction (A2-only facts before SPLLIFT-only facts per statement).
/// The parallel driver in [`crate::parallel`] relies on this — every
/// shard produces exactly the prefix of mismatches the sequential pass
/// would produce for the same configurations.
pub(crate) fn check_shard<'p, P, Ctx>(
    icfg: &ProgramIcfg<'p>,
    lifted: &LiftedSolution<'_, ProgramIcfg<'p>, P::Fact, Ctx::C>,
    lifted_icfg: &LiftedIcfg<'_, ProgramIcfg<'p>>,
    problem: &P,
    ctx: &Ctx,
    configs: &[Configuration],
    budget: usize,
    out: &mut Vec<Mismatch>,
) where
    P: IfdsProblem<ProgramIcfg<'p>> + Sync,
    P::Fact: Ord + Hash + Send + Sync,
    Ctx: ConstraintContext + Sync,
    Ctx::C: Send + Sync,
{
    // Hoist the (config-independent) lifted results out of the config
    // loop, sorted once so both directions iterate facts in `Ord` order.
    let stmts: Vec<StmtRef> = icfg
        .methods()
        .into_iter()
        .flat_map(|m| icfg.stmts_of(m))
        .collect();
    let lifted_at: Vec<Vec<(P::Fact, Ctx::C)>> = stmts
        .iter()
        .map(|&s| {
            let mut results: Vec<_> = lifted.results_at(s).into_iter().collect();
            results.sort_by(|(a, _), (b, _)| a.cmp(b));
            results
        })
        .collect();

    for config in configs {
        if out.len() >= budget {
            return;
        }
        let a2 = solve_a2(problem, lifted_icfg, config);
        for (&s, lifted_results) in stmts.iter().zip(&lifted_at) {
            if out.len() >= budget {
                return;
            }
            let mut a2_facts: Vec<P::Fact> = a2.results_at(s).into_iter().collect();
            a2_facts.sort();
            // Direction 1: A2 fact ⟹ constraint allows config.
            for fact in &a2_facts {
                let c = lifted.constraint_of(s, fact);
                if !ctx.satisfied_by(&c, config) {
                    out.push(Mismatch {
                        config: config.clone(),
                        stmt: s,
                        fact: format!("{fact:?}"),
                        missing_in_lifted: true,
                    });
                    if out.len() >= budget {
                        return;
                    }
                }
            }
            // Direction 2: constraint allows config ⟹ A2 fact.
            for (fact, c) in lifted_results {
                if !c.is_false()
                    && ctx.satisfied_by(c, config)
                    && a2_facts.binary_search(fact).is_err()
                {
                    out.push(Mismatch {
                        config: config.clone(),
                        stmt: s,
                        fact: format!("{fact:?}"),
                        missing_in_lifted: false,
                    });
                    if out.len() >= budget {
                        return;
                    }
                }
            }
        }
    }
}

/// Cross-checks SPLLIFT against A2 on every configuration in `configs`,
/// in both directions, exactly as the paper's §6.1 describes:
///
/// 1. whenever A2 computes a fact `r` at `s` for configuration `c`, the
///    constraint SPLLIFT computed for `r` at `s` must allow `c`
///    (SPLLIFT is not overly restrictive — soundness), and
/// 2. whenever SPLLIFT's constraint for `(s, r)` allows `c`, the A2
///    instance for `c` must have computed `r` at `s`
///    (SPLLIFT reports no false positives w.r.t. the oracle — precision).
///
/// Returns the mismatches (empty = the implementations agree), capped at
/// [`DEFAULT_MAX_MISMATCHES`]; use [`crosscheck_with`] to choose the cap,
/// or [`crate::parallel::crosscheck_parallel`] to shard the
/// configurations across threads.
pub fn crosscheck<'p, P, Ctx>(
    icfg: &ProgramIcfg<'p>,
    problem: &P,
    ctx: &Ctx,
    model: Option<&FeatureExpr>,
    configs: &[Configuration],
) -> Vec<Mismatch>
where
    P: IfdsProblem<ProgramIcfg<'p>> + Sync,
    P::Fact: Ord + Hash + Send + Sync,
    Ctx: ConstraintContext + Sync,
    Ctx::C: Send + Sync,
{
    crosscheck_with(icfg, problem, ctx, model, configs, DEFAULT_MAX_MISMATCHES)
}

/// [`crosscheck`] with an explicit cap on collected mismatches.
///
/// The check stops as soon as `max_mismatches` disagreements have been
/// found, so a badly broken analysis reports promptly instead of
/// enumerating every consequence of the same bug.
pub fn crosscheck_with<'p, P, Ctx>(
    icfg: &ProgramIcfg<'p>,
    problem: &P,
    ctx: &Ctx,
    model: Option<&FeatureExpr>,
    configs: &[Configuration],
    max_mismatches: usize,
) -> Vec<Mismatch>
where
    P: IfdsProblem<ProgramIcfg<'p>> + Sync,
    P::Fact: Ord + Hash + Send + Sync,
    Ctx: ConstraintContext + Sync,
    Ctx::C: Send + Sync,
{
    crosscheck_with_options(
        icfg,
        problem,
        ctx,
        model,
        configs,
        max_mismatches,
        spllift_ide::IdeSolverOptions::default(),
    )
}

/// [`crosscheck_with`] with explicit solver options for the lifted
/// solve under test — e.g. `threads > 1` to check the parallel phase-1
/// worklist against the exhaustive A2 oracle.
pub fn crosscheck_with_options<'p, P, Ctx>(
    icfg: &ProgramIcfg<'p>,
    problem: &P,
    ctx: &Ctx,
    model: Option<&FeatureExpr>,
    configs: &[Configuration],
    max_mismatches: usize,
    options: spllift_ide::IdeSolverOptions,
) -> Vec<Mismatch>
where
    P: IfdsProblem<ProgramIcfg<'p>> + Sync,
    P::Fact: Ord + Hash + Send + Sync,
    Ctx: ConstraintContext + Sync,
    Ctx::C: Send + Sync,
{
    let lifted = LiftedSolution::solve_with(problem, icfg, ctx, model, ModelMode::OnEdges, options);
    let lifted_icfg = LiftedIcfg::new(icfg);
    let mut mismatches = Vec::new();
    check_shard(
        icfg,
        &lifted,
        &lifted_icfg,
        problem,
        ctx,
        configs,
        max_mismatches,
        &mut mismatches,
    );
    mismatches
}
