//! The differential fuzzing campaign: seeded random (and mutated)
//! product lines, checked five ways per seed, with automatic ddmin
//! reduction of every failure.
//!
//! For each seed the driver generates a random annotated program
//! ([`spllift_benchgen::random_spl`]), optionally applies structural
//! mutations ([`spllift_benchgen::mutate`]), and then checks:
//!
//! 1. **SPLLIFT ↔ A2, both directions** (§6.1) for all five liftable
//!    client analyses — every A2 fact's constraint must allow the
//!    configuration, and every constraint-allowed fact must be computed
//!    by A2;
//! 2. **SPLLIFT ↔ Datalog, both directions** — reaching definitions
//!    re-solved by the independent lifted Datalog engine
//!    ([`spllift_datalog::solve_reaching_defs`]) must carry the same
//!    constraint as the IDE lifting for every fact, and neither backend
//!    may derive a fact the other lacks;
//! 3. **lattice soundness** — the subject re-solved at a seed-derived
//!    random [`spllift_features::LatticePoint`] (random feature subsets
//!    projected away / joined, optionally also dropping the model): every
//!    constraint the full-precision solve reports must *entail* the
//!    abstracted one — abstractions may widen, never narrow;
//! 4. **interpreter soundness** — every dynamic leak / uninitialized
//!    read the concrete interpreter observes in a derived product must
//!    be predicted by the corresponding lifted analysis;
//! 5. with [`FuzzOptions::threads`] `> 1`, **threaded ≡ sequential** —
//!    the lifted solve under test runs on the parallel phase-1
//!    worklist and must render byte-identical to a sequential solve of
//!    the same instance.
//!
//! Seeds are sharded across `jobs` worker threads with the same
//! contiguous-ordered rule as the configuration shards
//! ([`spllift_features::partition_slice`] via
//! [`crate::parallel::map_shards`]), so the merged verdict list — and
//! hence [`FuzzReport::render`] — is byte-identical for every `jobs`
//! value. Wall-clock stats are reported separately and never enter the
//! rendered report.
//!
//! Failures are minimized *after* the merge, sequentially and in seed
//! order, by the delta-debugging reducer ([`spllift_benchgen::reduce`]);
//! each failure carries a pretty-printed repro in the
//! [`spllift_ir::text`] format, ready to be committed to
//! `tests/corpus/`.
//!
//! # The injected-bug hook
//!
//! [`InjectedBug`] deliberately corrupts the **lifted side only** (A2,
//! the Datalog engine and the interpreter stay honest), which is how
//! the reducer demo test
//! proves the campaign actually detects and minimizes real
//! disagreements. It is a test/demo hook; production campaigns run with
//! [`InjectedBug::None`].

use crate::crosscheck::{check_shard, Mismatch, DEFAULT_MAX_MISMATCHES};
use crate::parallel::{default_jobs, map_shards, ShardStats};
use spllift_analyses::{
    PossibleTypes, ReachingDefs, TaintAnalysis, TaintFact, Typestate, UninitFact, UninitVars,
};
use spllift_benchgen::{mutate, random_spl, reduce, RandomSpl, ReduceOptions, ReduceOutcome};
use spllift_core::{LiftedIcfg, LiftedSolution, ModelMode};
use spllift_datalog::{solve_reaching_defs, DumpDoc, EvalOptions};
use spllift_features::{
    all_configurations, AbstractionStep, BddConstraintContext, Configuration, FeatureId,
    FeatureTable, LatticePoint, NamedFeature,
};
use spllift_ifds::{Icfg, IfdsProblem};
use spllift_ir::interp::{run as interp_run, Event, InterpConfig};
use spllift_ir::{ClassId, Operand, Program, ProgramIcfg, StmtKind};
use spllift_rng::SplitMix64;
use std::fmt::Write as _;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// Salt mixed into the seed for the mutation RNG stream, so generation
/// and mutation draw from independent streams of the same master seed.
const MUTATION_SALT: u64 = 0x6d75_7461_7465_5f21;

/// Salt for the lattice-point RNG stream of the abstraction
/// differential, independent of generation and mutation.
const ABSTRACTION_SALT: u64 = 0x6162_7374_7261_6374;

/// A deliberately wrong flow function, applied to the lifted solve only.
///
/// This is the campaign's self-test hook: with a bug injected, SPLLIFT's
/// answers diverge from the (unmodified) A2 oracle and interpreter, the
/// campaign must flag the seed, and the reducer must shrink the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectedBug {
    /// No bug: the production configuration.
    #[default]
    None,
    /// Kill every non-zero fact on the call-to-return edge — models the
    /// classic "forgot locals survive a call" flow-function mistake.
    /// SPLLIFT loses facts A2 keeps, producing `missing_in_lifted`
    /// mismatches and unpredicted dynamic events.
    KillAtCallToReturn,
}

/// Wraps an IFDS problem, corrupting its flow functions per
/// [`InjectedBug`]. Fact type (and hence solver typing) is unchanged, so
/// a solution lifted from the wrapper cross-checks directly against the
/// raw problem's A2 oracle.
pub struct BugWrapper<'a, P> {
    inner: &'a P,
    bug: InjectedBug,
}

impl<'a, P> BugWrapper<'a, P> {
    /// Wraps `inner` with `bug`.
    pub fn new(inner: &'a P, bug: InjectedBug) -> Self {
        BugWrapper { inner, bug }
    }
}

impl<'a, G, P> IfdsProblem<G> for BugWrapper<'a, P>
where
    G: Icfg,
    P: IfdsProblem<G>,
{
    type Fact = P::Fact;

    fn zero(&self) -> P::Fact {
        self.inner.zero()
    }

    fn flow_normal(&self, icfg: &G, curr: G::Stmt, succ: G::Stmt, fact: &P::Fact) -> Vec<P::Fact> {
        self.inner.flow_normal(icfg, curr, succ, fact)
    }

    fn flow_call(
        &self,
        icfg: &G,
        call: G::Stmt,
        callee: G::Method,
        fact: &P::Fact,
    ) -> Vec<P::Fact> {
        self.inner.flow_call(icfg, call, callee, fact)
    }

    fn flow_return(
        &self,
        icfg: &G,
        call: G::Stmt,
        callee: G::Method,
        exit: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<P::Fact> {
        self.inner
            .flow_return(icfg, call, callee, exit, return_site, fact)
    }

    fn flow_call_to_return(
        &self,
        icfg: &G,
        call: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<P::Fact> {
        let out = self
            .inner
            .flow_call_to_return(icfg, call, return_site, fact);
        match self.bug {
            InjectedBug::None => out,
            InjectedBug::KillAtCallToReturn => {
                let zero = self.inner.zero();
                out.into_iter().filter(|f| *f == zero).collect()
            }
        }
    }

    fn initial_seeds(&self, icfg: &G) -> Vec<(G::Stmt, P::Fact)> {
        self.inner.initial_seeds(icfg)
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// Features per random program (configuration space is `2^nfeatures`).
    pub nfeatures: usize,
    /// Helper methods per random program.
    pub nmethods: usize,
    /// Structural mutations applied on top of each generated program.
    pub mutations: usize,
    /// Worker threads; seeds are sharded contiguously across them.
    pub jobs: usize,
    /// Per-analysis mismatch cap (same budget rule as the crosscheck).
    pub max_mismatches: usize,
    /// Optional wall-clock budget. When set, shards stop picking up new
    /// seeds once the deadline passes — skipped seeds are reported, and
    /// the rendered report is **no longer** `jobs`-invariant (only the
    /// pure seed-range mode is).
    pub budget: Option<Duration>,
    /// Deliberate lifted-side bug (test/demo hook; see [`InjectedBug`]).
    pub bug: InjectedBug,
    /// Run the ddmin reducer on every failing seed.
    pub reduce_failures: bool,
    /// Phase-1 solver threads for the *lifted* solve under test. When
    /// greater than one, every seed additionally pins the threaded
    /// solve byte-identical to the sequential one (the crosscheck's A2
    /// exhaustive baseline stays sequential either way).
    pub threads: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed_start: 0,
            seed_end: 32,
            nfeatures: 3,
            nmethods: 3,
            mutations: 2,
            jobs: default_jobs(),
            max_mismatches: DEFAULT_MAX_MISMATCHES,
            budget: None,
            bug: InjectedBug::None,
            reduce_failures: true,
            threads: 1,
        }
    }
}

/// The campaign checks, by name: the five liftable client analyses
/// (each cross-checked against A2), the Datalog-backend differential
/// (`"datalog-reaching"`, reaching definitions re-solved by the
/// independent lifted Datalog engine), and the variability-abstraction
/// differential (`"abstraction"`, the full-precision solve's
/// constraints must entail a random lattice point's).
pub const ANALYSES: [&str; 7] = [
    "taint",
    "types",
    "reaching",
    "uninit",
    "typestate",
    "datalog-reaching",
    "abstraction",
];

/// One analysis' crosscheck result on one seed.
#[derive(Debug, Clone)]
pub struct AnalysisVerdict {
    /// Campaign name of the analysis (one of [`ANALYSES`]).
    pub analysis: &'static str,
    /// SPLLIFT↔A2 mismatches, in deterministic order, capped at
    /// [`FuzzOptions::max_mismatches`].
    pub mismatches: Vec<Mismatch>,
}

/// An interpreter-observed event the lifted analysis failed to predict.
#[derive(Debug, Clone)]
pub struct UnpredictedEvent {
    /// Which lifted analysis missed it (`"taint"` or `"uninit"`).
    pub analysis: &'static str,
    /// The configuration whose derived product exhibited the event.
    pub config: Configuration,
    /// Rendering of the dynamic event.
    pub event: String,
}

/// Everything the campaign learned about one seed.
#[derive(Debug, Clone)]
pub struct SeedVerdict {
    /// The seed.
    pub seed: u64,
    /// Per-analysis crosscheck results, in [`ANALYSES`] order.
    pub analyses: Vec<AnalysisVerdict>,
    /// Dynamic events the static analyses failed to cover.
    pub unpredicted: Vec<UnpredictedEvent>,
}

impl SeedVerdict {
    /// `true` iff every check agreed.
    pub fn ok(&self) -> bool {
        self.analyses.iter().all(|a| a.mismatches.is_empty()) && self.unpredicted.is_empty()
    }

    /// A short description of the first failing check, if any.
    pub fn first_failure(&self) -> Option<String> {
        for a in &self.analyses {
            if let Some(m) = a.mismatches.first() {
                let dir = if m.missing_in_lifted {
                    "missing in lifted"
                } else {
                    "spurious in lifted"
                };
                return Some(format!(
                    "{} crosscheck: {} mismatches, first {dir} at {}",
                    a.analysis,
                    a.mismatches.len(),
                    m.stmt
                ));
            }
        }
        self.unpredicted
            .first()
            .map(|u| format!("{} unsound vs interpreter: {}", u.analysis, u.event))
    }
}

/// A reduced failing seed.
#[derive(Debug)]
pub struct FailureReport {
    /// The failing seed.
    pub seed: u64,
    /// Campaign name of the analysis whose failure was minimized.
    pub analysis: &'static str,
    /// `true` if the minimized failure is an interpreter-soundness
    /// violation, `false` for a SPLLIFT↔A2 crosscheck mismatch.
    pub dynamic: bool,
    /// Short description of the failure that was minimized.
    pub what: String,
    /// Payload statements before reduction.
    pub payload_before: usize,
    /// The reducer's outcome (minimal program + repro text).
    pub reduced: ReduceOutcome,
}

/// The campaign's result.
#[derive(Debug)]
pub struct FuzzReport {
    /// Options the campaign ran with.
    pub options: FuzzOptions,
    /// Per-seed verdicts, in seed order.
    pub verdicts: Vec<SeedVerdict>,
    /// Seeds skipped because the wall-clock budget ran out.
    pub skipped: Vec<u64>,
    /// Reduced failures, in seed order (empty if
    /// [`FuzzOptions::reduce_failures`] is off or nothing failed).
    pub failures: Vec<FailureReport>,
    /// Per-shard wall-clock stats (reported out of band; not rendered).
    pub shards: Vec<ShardStats>,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Total campaign wall-clock time.
    pub wall: Duration,
}

impl FuzzReport {
    /// `true` iff every checked seed agreed everywhere.
    pub fn ok(&self) -> bool {
        self.verdicts.iter().all(SeedVerdict::ok)
    }

    /// The deterministic campaign summary: one line per seed plus a
    /// trailer, and one line per reduced failure. Contains no timings or
    /// thread counts, so it is byte-identical across `--jobs` values
    /// (budget-free campaigns only; see [`FuzzOptions::budget`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.verdicts {
            match v.first_failure() {
                None => {
                    let _ = writeln!(out, "seed {:>4}: ok", v.seed);
                }
                Some(what) => {
                    let _ = writeln!(out, "seed {:>4}: FAIL {what}", v.seed);
                }
            }
        }
        let failed = self.verdicts.iter().filter(|v| !v.ok()).count();
        let _ = writeln!(
            out,
            "fuzz: {} seeds checked, {} ok, {} failed{}",
            self.verdicts.len(),
            self.verdicts.len() - failed,
            failed,
            if self.skipped.is_empty() {
                String::new()
            } else {
                format!(", {} skipped (budget)", self.skipped.len())
            }
        );
        for f in &self.failures {
            let _ = writeln!(
                out,
                "reduced seed {}: {} -> {} payload stmts ({} oracle runs) [{}]",
                f.seed, f.payload_before, f.reduced.payload_stmts, f.reduced.oracle_runs, f.what
            );
        }
        out
    }
}

/// Generates (and mutates) the program for `seed` exactly as the
/// campaign does — the reducer and the corpus tooling reuse this so a
/// seed written in a report always reproduces the same subject.
pub fn subject_for_seed(seed: u64, opts: &FuzzOptions) -> RandomSpl {
    let mut spl = random_spl(seed, opts.nfeatures, opts.nmethods);
    if opts.mutations > 0 {
        let mut rng = SplitMix64::seed_from_u64(seed ^ MUTATION_SALT);
        mutate(&mut spl.program, &spl.features, &mut rng, opts.mutations);
    }
    spl
}

/// Canonical rendering of a lifted solution: every statement's
/// reachability cube plus its sorted `(fact, cube)` rows, in ICFG
/// order. Cube strings are canonical per BDD, so two renderings are
/// equal iff the solutions are semantically identical — the yardstick
/// for the threaded ≡ sequential differential below.
fn solution_rendering<'p, D>(
    icfg: &ProgramIcfg<'p>,
    solution: &LiftedSolution<'_, ProgramIcfg<'p>, D, spllift_bdd::Bdd>,
) -> String
where
    D: Clone + Eq + Ord + Hash + std::fmt::Debug,
{
    let mut out = String::new();
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let _ = writeln!(
                out,
                "{s} reach {}",
                solution.reachability_of(s).to_cube_string()
            );
            let mut rows: Vec<(D, spllift_bdd::Bdd)> = solution.results_at(s).into_iter().collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            for (d, c) in rows {
                let _ = writeln!(out, "{s} {d:?} {}", c.to_cube_string());
            }
        }
    }
    out
}

/// Cross-checks one analysis on one program: SPLLIFT (with the bug
/// wrapper applied) against the *raw* problem's A2 oracle, over
/// `configs`, both directions. With `threads > 1` the lifted solve
/// under test runs on the parallel phase-1 worklist and is additionally
/// pinned byte-identical to a sequential solve — the campaign-wide
/// threaded ≡ sequential differential.
fn crosscheck_analysis<'p, P>(
    icfg: &ProgramIcfg<'p>,
    problem: &P,
    table: &FeatureTable,
    configs: &[Configuration],
    bug: InjectedBug,
    max_mismatches: usize,
    threads: usize,
) -> Vec<Mismatch>
where
    P: IfdsProblem<ProgramIcfg<'p>> + Sync,
    P::Fact: Ord + Hash + Send + Sync,
{
    let ctx = BddConstraintContext::new(table);
    let wrapped = BugWrapper::new(problem, bug);
    let lifted = LiftedSolution::solve_with(
        &wrapped,
        icfg,
        &ctx,
        None,
        ModelMode::OnEdges,
        spllift_ide::IdeSolverOptions {
            threads,
            ..spllift_ide::IdeSolverOptions::default()
        },
    );
    if threads > 1 {
        let sequential = LiftedSolution::solve(&wrapped, icfg, &ctx, None, ModelMode::OnEdges);
        assert_eq!(
            solution_rendering(icfg, &lifted),
            solution_rendering(icfg, &sequential),
            "threaded solve (threads = {threads}) diverged from the sequential solve"
        );
    }
    let lifted_icfg = LiftedIcfg::new(icfg);
    let mut out = Vec::new();
    check_shard(
        icfg,
        &lifted,
        &lifted_icfg,
        problem,
        &ctx,
        configs,
        max_mismatches,
        &mut out,
    );
    out
}

/// Cross-checks the Datalog backend on one program: reaching
/// definitions solved by SPLLIFT (with the bug wrapper applied) against
/// the independent lifted Datalog engine, constraint-for-constraint in
/// both directions plus the reachability (Zero-fact) projection. The
/// Datalog side is never wrapped, so an injected bug surfaces as a
/// backend disagreement. The comparison is configuration-free — both
/// backends share one BDD manager, so semantically equal constraints
/// are pointer-equal nodes — and [`Mismatch::config`] is the empty
/// configuration.
///
/// With `threads > 1` the Datalog evaluation additionally runs sharded
/// (`jobs = threads`) and its relation dump must be byte-identical to
/// the sequential evaluation's — the engine's own jobs-invariance
/// differential, mirroring the threaded ≡ sequential pin on the IDE
/// side.
fn crosscheck_datalog(
    icfg: &ProgramIcfg<'_>,
    table: &FeatureTable,
    bug: InjectedBug,
    cap: usize,
    threads: usize,
) -> Vec<Mismatch> {
    let ctx = BddConstraintContext::new(table);
    let problem = ReachingDefs::new();
    let wrapped = BugWrapper::new(&problem, bug);
    let lifted = LiftedSolution::solve(&wrapped, icfg, &ctx, None, ModelMode::OnEdges);
    let solve = |jobs| {
        solve_reaching_defs(icfg, &ctx, None, &EvalOptions { jobs })
            .expect("datalog evaluation failed (the fuzz campaign arms no budget)")
    };
    let dl = solve(1);
    if threads > 1 {
        let sharded = solve(threads);
        assert_eq!(
            DumpDoc::from_solution(&dl, &ctx, table).render(),
            DumpDoc::from_solution(&sharded, &ctx, table).render(),
            "sharded datalog evaluation (jobs = {threads}) diverged from the sequential one"
        );
    }
    // Statements in ICFG order, facts in `Ord` order with shared facts
    // before Datalog-only ones — the same deterministic-output contract
    // as `check_shard`.
    let mut out = Vec::new();
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            if out.len() >= cap {
                return out;
            }
            let want = lifted.results_at(s);
            let mut shared: Vec<_> = want.iter().collect();
            shared.sort_by(|a, b| a.0.cmp(b.0));
            for (fact, c) in shared {
                if out.len() >= cap {
                    return out;
                }
                let dc = dl.reaching_constraint(s, fact);
                if dc != Some(c) {
                    out.push(Mismatch {
                        config: Configuration::empty(),
                        stmt: s,
                        fact: format!(
                            "{fact:?}: SPLLIFT has {}, Datalog has {}",
                            c.to_cube_string(),
                            dc.map_or_else(|| "no fact".to_string(), |x| x.to_cube_string()),
                        ),
                        missing_in_lifted: false,
                    });
                }
            }
            for (fact, c) in dl.reaching_at(s) {
                if out.len() >= cap {
                    return out;
                }
                if !want.contains_key(&fact) {
                    out.push(Mismatch {
                        config: Configuration::empty(),
                        stmt: s,
                        fact: format!(
                            "{fact:?}: Datalog has {}, SPLLIFT has no fact",
                            c.to_cube_string()
                        ),
                        missing_in_lifted: true,
                    });
                }
            }
            let ide_reach = lifted.reachability_of(s);
            let dl_reach = dl.reachability_of(s);
            let agrees = match dl_reach {
                Some(c) => *c == ide_reach,
                None => ide_reach.is_false(),
            };
            if !agrees {
                out.push(Mismatch {
                    config: Configuration::empty(),
                    stmt: s,
                    fact: format!(
                        "reachability: SPLLIFT has {}, Datalog has {}",
                        ide_reach.to_cube_string(),
                        dl_reach.map_or_else(|| "no fact".to_string(), |x| x.to_cube_string()),
                    ),
                    missing_in_lifted: ide_reach.is_false(),
                });
            }
        }
    }
    out
}

/// Draws a random non-trivial lattice point over `features` from the
/// seed's dedicated RNG stream: a random non-empty subset is projected
/// away, joined into one proxy, or split between a join and a project
/// step, and the point optionally drops the feature model on top. The
/// same seed (and feature list) always yields the same point, so a
/// failure report reproduces and the reducer's oracle re-derives the
/// point per shrunken candidate.
fn random_lattice_point(seed: u64, table: &FeatureTable, features: &[FeatureId]) -> LatticePoint {
    let mut rng = SplitMix64::seed_from_u64(seed ^ ABSTRACTION_SALT);
    let named: Vec<NamedFeature> = features
        .iter()
        .map(|&f| (f, table.name(f).to_string()))
        .collect();
    if named.is_empty() {
        // The reducer can strip every feature from a candidate; dropping
        // the model is the only weakening left to exercise then.
        return LatticePoint::no_model();
    }
    let mut subset: Vec<NamedFeature> = named
        .iter()
        .filter(|_| rng.gen_bool(0.5))
        .cloned()
        .collect();
    if subset.is_empty() {
        subset.push(named[rng.gen_range(0..named.len())].clone());
    }
    let steps = match rng.gen_range(0..3u32) {
        0 => vec![AbstractionStep::project(subset)],
        1 => vec![AbstractionStep::join(subset)],
        _ if subset.len() >= 2 => {
            let (joined, projected) = subset.split_at(subset.len() / 2);
            vec![
                AbstractionStep::join(joined.to_vec()),
                AbstractionStep::project(projected.to_vec()),
            ]
        }
        _ => vec![AbstractionStep::join(subset)],
    };
    let point = LatticePoint::abstracted(steps);
    if rng.gen_bool(0.5) {
        point.without_model()
    } else {
        point
    }
}

/// The variability-abstraction differential: the subject solved at full
/// precision and at a seed-derived random [`LatticePoint`]; every
/// constraint the full solve reports must *entail* the abstracted
/// solve's (per fact and for per-statement reachability) — abstraction
/// may widen a constraint, never narrow it. Like the Datalog
/// differential this is configuration-free, so mismatch rows carry the
/// empty configuration. The injected bug is applied to both sides: the
/// check is relative and stays green under `--inject-bug` campaigns.
fn crosscheck_abstraction(
    icfg: &ProgramIcfg<'_>,
    table: &FeatureTable,
    features: &[FeatureId],
    seed: u64,
    bug: InjectedBug,
    cap: usize,
) -> Vec<Mismatch> {
    let point = random_lattice_point(seed, table, features);
    let ctx = BddConstraintContext::new(table);
    let problem = ReachingDefs::new();
    let wrapped = BugWrapper::new(&problem, bug);
    let full = LiftedSolution::solve(&wrapped, icfg, &ctx, None, ModelMode::OnEdges);
    let weak =
        LiftedSolution::solve_abstracted(&wrapped, icfg, &ctx, None, ModelMode::OnEdges, &point);
    // Statements in ICFG order, facts in `Ord` order — the same
    // deterministic-output contract as the other differentials.
    let mut out = Vec::new();
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            if out.len() >= cap {
                return out;
            }
            let want = full.results_at(s);
            let mut rows: Vec<_> = want.iter().collect();
            rows.sort_by(|a, b| a.0.cmp(b.0));
            for (fact, c) in rows {
                if out.len() >= cap {
                    return out;
                }
                let wc = weak.constraint_of(s, fact);
                if !c.entails(&wc) {
                    out.push(Mismatch {
                        config: Configuration::empty(),
                        stmt: s,
                        fact: format!(
                            "{fact:?}: full has {}, `{}` has {} (abstraction narrowed)",
                            c.to_cube_string(),
                            point.name(),
                            wc.to_cube_string(),
                        ),
                        missing_in_lifted: false,
                    });
                }
            }
            let full_reach = full.reachability_of(s);
            let weak_reach = weak.reachability_of(s);
            if !full_reach.entails(&weak_reach) {
                out.push(Mismatch {
                    config: Configuration::empty(),
                    stmt: s,
                    fact: format!(
                        "reachability: full has {}, `{}` has {} (abstraction narrowed)",
                        full_reach.to_cube_string(),
                        point.name(),
                        weak_reach.to_cube_string(),
                    ),
                    missing_in_lifted: false,
                });
            }
        }
    }
    out
}

/// Runs the five A2 crosschecks over `configs`, plus the
/// configuration-free Datalog-backend and variability-abstraction
/// differentials.
fn crosscheck_all<'p>(
    icfg: &ProgramIcfg<'p>,
    table: &FeatureTable,
    features: &[FeatureId],
    configs: &[Configuration],
    seed: u64,
    bug: InjectedBug,
    cap: usize,
    threads: usize,
) -> Vec<AnalysisVerdict> {
    // Typestate tracks a class that classless random programs never
    // allocate — the protocol lattice stays empty, but the full lifted
    // pipeline (zero facts, identity edges, model conjunction) still
    // runs and must agree with A2.
    let typestate = Typestate::new(ClassId(0), ["open"], ["close"], ["read"]);
    vec![
        AnalysisVerdict {
            analysis: ANALYSES[0],
            mismatches: crosscheck_analysis(
                icfg,
                &TaintAnalysis::secret_to_print(),
                table,
                configs,
                bug,
                cap,
                threads,
            ),
        },
        AnalysisVerdict {
            analysis: ANALYSES[1],
            mismatches: crosscheck_analysis(
                icfg,
                &PossibleTypes::new(),
                table,
                configs,
                bug,
                cap,
                threads,
            ),
        },
        AnalysisVerdict {
            analysis: ANALYSES[2],
            mismatches: crosscheck_analysis(
                icfg,
                &ReachingDefs::new(),
                table,
                configs,
                bug,
                cap,
                threads,
            ),
        },
        AnalysisVerdict {
            analysis: ANALYSES[3],
            mismatches: crosscheck_analysis(
                icfg,
                &UninitVars::new(),
                table,
                configs,
                bug,
                cap,
                threads,
            ),
        },
        AnalysisVerdict {
            analysis: ANALYSES[4],
            mismatches: crosscheck_analysis(icfg, &typestate, table, configs, bug, cap, threads),
        },
        AnalysisVerdict {
            analysis: ANALYSES[5],
            mismatches: crosscheck_datalog(icfg, table, bug, cap, threads),
        },
        AnalysisVerdict {
            analysis: ANALYSES[6],
            mismatches: crosscheck_abstraction(icfg, table, features, seed, bug, cap),
        },
    ]
}

/// The interpreter-soundness direction: run every derived product
/// concretely and demand the lifted taint / uninit analyses (bug wrapper
/// applied) predict each observed event.
fn interp_soundness(
    program: &Program,
    table: &FeatureTable,
    configs: &[Configuration],
    bug: InjectedBug,
) -> Vec<UnpredictedEvent> {
    let icfg = ProgramIcfg::new(program);
    let ctx = BddConstraintContext::new(table);
    let taint_problem = TaintAnalysis::secret_to_print();
    let uninit_problem = UninitVars::new();
    let taint = LiftedSolution::solve(
        &BugWrapper::new(&taint_problem, bug),
        &icfg,
        &ctx,
        None,
        ModelMode::Ignore,
    );
    let uninit = LiftedSolution::solve(
        &BugWrapper::new(&uninit_problem, bug),
        &icfg,
        &ctx,
        None,
        ModelMode::Ignore,
    );
    let mut out = Vec::new();
    for config in configs {
        let product = program.derive_product(config);
        let trace = interp_run(&product, &InterpConfig::secret_to_print());
        for event in &trace.events {
            match event {
                Event::Leak(call) => {
                    let StmtKind::Invoke { args, .. } = &program.stmt(*call).kind else {
                        continue;
                    };
                    let covered = args.iter().any(|a| {
                        matches!(a, Operand::Local(l)
                            if taint.holds_in(&ctx, *call, &TaintFact::Local(*l), config))
                    });
                    if !covered {
                        out.push(UnpredictedEvent {
                            analysis: "taint",
                            config: config.clone(),
                            event: format!("leak at {call}"),
                        });
                    }
                }
                Event::UninitRead(stmt, local) => {
                    if !uninit.holds_in(&ctx, *stmt, &UninitFact::Local(*local), config) {
                        out.push(UnpredictedEvent {
                            analysis: "uninit",
                            config: config.clone(),
                            event: format!("uninit read of {local} at {stmt}"),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Runs every check the campaign knows — the seven crosschecks and the
/// interpreter-soundness sweep — on an arbitrary annotated program over
/// the configuration space `2^features`. This is the per-seed worker,
/// public so the CLI's `reduce` subcommand and the corpus replay test
/// apply the exact same battery to stand-alone repro files.
///
/// `seed` only feeds the abstraction differential's lattice-point RNG
/// stream (the program itself is passed in, already generated); callers
/// without a campaign seed — stand-alone repro files — pass `0` and
/// still get a deterministic, subject-dependent point.
pub fn check_program(
    program: &Program,
    table: &FeatureTable,
    features: &[FeatureId],
    seed: u64,
    bug: InjectedBug,
    max_mismatches: usize,
    threads: usize,
) -> (Vec<AnalysisVerdict>, Vec<UnpredictedEvent>) {
    let configs: Vec<Configuration> = all_configurations(features).collect();
    let icfg = ProgramIcfg::new(program);
    let analyses = crosscheck_all(
        &icfg,
        table,
        features,
        &configs,
        seed,
        bug,
        max_mismatches,
        threads,
    );
    let unpredicted = interp_soundness(program, table, &configs, bug);
    (analyses, unpredicted)
}

/// Runs all checks for one seed.
fn check_seed(seed: u64, opts: &FuzzOptions) -> SeedVerdict {
    let spl = subject_for_seed(seed, opts);
    let (analyses, unpredicted) = check_program(
        &spl.program,
        &spl.table,
        &spl.features,
        seed,
        opts.bug,
        opts.max_mismatches,
        opts.threads,
    );
    SeedVerdict {
        seed,
        analyses,
        unpredicted,
    }
}

/// Re-checks a candidate program during reduction: `true` iff the named
/// check still fails. `features` shrinks as the reducer eliminates
/// features, so the configuration space is re-enumerated per candidate.
/// Public: the CLI's `reduce` subcommand builds its ddmin oracle from
/// this.
pub fn failure_persists(
    program: &Program,
    table: &FeatureTable,
    features: &[FeatureId],
    seed: u64,
    bug: InjectedBug,
    analysis: &str,
    dynamic: bool,
) -> bool {
    if program.check().is_err() {
        return false;
    }
    let configs: Vec<Configuration> = all_configurations(features).collect();
    if dynamic {
        return interp_soundness(program, table, &configs, bug)
            .iter()
            .any(|u| u.analysis == analysis);
    }
    let icfg = ProgramIcfg::new(program);
    // One mismatch suffices for the verdict — the oracle must be cheap,
    // so the reducer always re-checks on the sequential solver.
    let verdicts = crosscheck_all(&icfg, table, features, &configs, seed, bug, 1, 1);
    verdicts
        .iter()
        .any(|v| v.analysis == analysis && !v.mismatches.is_empty())
}

/// Reduces the first failing check of `verdict` to a minimal repro.
fn reduce_failure(verdict: &SeedVerdict, opts: &FuzzOptions) -> Option<FailureReport> {
    let (analysis, dynamic, what) =
        if let Some(a) = verdict.analyses.iter().find(|a| !a.mismatches.is_empty()) {
            (a.analysis, false, format!("{} crosscheck", a.analysis))
        } else {
            let u = verdict.unpredicted.first()?;
            (u.analysis, true, format!("{} vs interpreter", u.analysis))
        };
    let spl = subject_for_seed(verdict.seed, opts);
    let payload_before = spllift_benchgen::payload_stmt_count(&spl.program);
    let mut oracle = |p: &Program, feats: &[FeatureId]| {
        failure_persists(
            p,
            &spl.table,
            feats,
            verdict.seed,
            opts.bug,
            analysis,
            dynamic,
        )
    };
    let reduced = reduce(
        &spl.program,
        &spl.table,
        &spl.features,
        &mut oracle,
        ReduceOptions::default(),
    );
    Some(FailureReport {
        seed: verdict.seed,
        analysis,
        dynamic,
        what,
        payload_before,
        reduced,
    })
}

/// Runs the campaign described by `opts`.
///
/// Seeds are sharded contiguously across `opts.jobs` threads and the
/// verdicts merged in seed order, so the whole report (minus wall-clock
/// stats) is deterministic in `opts` — and, without a budget, invariant
/// in `opts.jobs`.
pub fn fuzz_campaign(opts: &FuzzOptions) -> FuzzReport {
    let start = Instant::now();
    let deadline = opts.budget.map(|b| start + b);
    let seeds: Vec<u64> = (opts.seed_start..opts.seed_end).collect();

    let (per_shard, shards, jobs) = map_shards(&seeds, opts.jobs, |_shard, chunk| {
        let mut verdicts = Vec::with_capacity(chunk.len());
        let mut skipped = Vec::new();
        for &seed in chunk {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                skipped.push(seed);
                continue;
            }
            verdicts.push(check_seed(seed, opts));
        }
        (verdicts, skipped)
    });

    let mut verdicts = Vec::with_capacity(seeds.len());
    let mut skipped = Vec::new();
    for (shard_verdicts, shard_skipped) in per_shard {
        verdicts.extend(shard_verdicts);
        skipped.extend(shard_skipped);
    }

    let failures = if opts.reduce_failures {
        verdicts
            .iter()
            .filter(|v| !v.ok())
            .filter_map(|v| reduce_failure(v, opts))
            .collect()
    } else {
        Vec::new()
    };

    FuzzReport {
        options: opts.clone(),
        verdicts,
        skipped,
        failures,
        shards,
        jobs,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed_end: u64, bug: InjectedBug, reduce_failures: bool) -> FuzzOptions {
        FuzzOptions {
            seed_end,
            jobs: 2,
            bug,
            reduce_failures,
            ..FuzzOptions::default()
        }
    }

    #[test]
    fn clean_campaign_passes_and_is_jobs_invariant() {
        let reference = fuzz_campaign(&FuzzOptions {
            jobs: 1,
            ..quick(6, InjectedBug::None, true)
        });
        assert!(reference.ok(), "{}", reference.render());
        assert!(reference.failures.is_empty());
        for jobs in [2, 5] {
            let report = fuzz_campaign(&FuzzOptions {
                jobs,
                ..quick(6, InjectedBug::None, true)
            });
            assert_eq!(report.render(), reference.render(), "jobs = {jobs}");
        }
    }

    #[test]
    fn injected_bug_is_found_and_reduced_small() {
        // The reducer-demo acceptance check: a deliberate call-to-return
        // bug must be detected by the campaign and ddmin must shrink the
        // first failure to a handful of statements.
        let report = fuzz_campaign(&quick(8, InjectedBug::KillAtCallToReturn, true));
        assert!(!report.ok(), "bugged campaign must fail");
        let failure = report
            .failures
            .first()
            .expect("at least one failure reduced");
        assert!(
            failure.reduced.payload_stmts <= 10,
            "reduced to {} payload stmts, repro:\n{}",
            failure.reduced.payload_stmts,
            failure.reduced.repro
        );
        assert!(failure.reduced.payload_stmts < failure.payload_before);
        // The repro must round-trip through the text format and still
        // fail the same check when re-run from the parsed program.
        let (parsed, table) =
            spllift_ir::text::parse_repro(&failure.reduced.repro).expect("repro parses");
        assert_eq!(parsed, failure.reduced.program);
        assert!(failure_persists(
            &parsed,
            &table,
            &failure.reduced.features,
            failure.seed,
            InjectedBug::KillAtCallToReturn,
            failure.analysis,
            failure.dynamic,
        ));
    }

    #[test]
    fn threaded_campaign_matches_sequential_report() {
        // The `--threads` differential: with threads > 1 every seed's
        // lifted solve runs on the parallel worklist (and is internally
        // pinned against the sequential solve); the rendered report
        // must come out byte-identical to a pure sequential campaign.
        let sequential = fuzz_campaign(&FuzzOptions {
            jobs: 1,
            ..quick(6, InjectedBug::None, false)
        });
        assert!(sequential.ok(), "{}", sequential.render());
        let threaded = fuzz_campaign(&FuzzOptions {
            jobs: 1,
            threads: 4,
            ..quick(6, InjectedBug::None, false)
        });
        assert_eq!(threaded.render(), sequential.render());
    }

    #[test]
    fn budget_zero_skips_everything() {
        let report = fuzz_campaign(&FuzzOptions {
            budget: Some(Duration::ZERO),
            ..quick(4, InjectedBug::None, false)
        });
        assert!(report.verdicts.is_empty());
        assert_eq!(report.skipped.len(), 4);
    }
}
