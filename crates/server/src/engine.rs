//! The shared, immutable half of the server: the [`Engine`].
//!
//! Following the wasmtime `Engine`/`Store` split, everything that is
//! safe to share between concurrent sessions lives here behind `Arc` +
//! fine-grained locking:
//!
//! * **loaded artifacts** — fingerprinted parsed programs + feature
//!   models ([`LoadedSpl`]), interned so N sessions that load the same
//!   product line retain one copy,
//! * the **cross-session solution cache** — LRU over
//!   [`RenderedSolution`]s keyed by `(fingerprint, analysis, mode)`;
//!   rendered solutions are manager-free (strings + `FeatureExpr`), so
//!   they are `Send + Sync` by construction and one `Arc` can serve
//!   every shard,
//! * **governance counters** — plain atomics, and
//! * the **last-solve statistics** published by `stats`.
//!
//! Since the BDD store went thread-safe (sharded hash-consing behind
//! `Arc`, DESIGN.md §12), the **BDD space is shared too**: every
//! session of one interned artifact holds the same [`SharedBddSpace`],
//! so N sessions that load the same product line build their
//! constraints in one hash-consed node store instead of N. Governed
//! solves serialize on the space's solve lock — resource budgets arm
//! per-manager baselines, so two concurrently *armed* solves on one
//! space would meter each other's allocations. Sessions over different
//! programs still solve fully concurrently.
//!
//! Everything *mutable per session* — `SolverMemo`, dirty-root sets —
//! lives in [`crate::store::Store`], which stays confined to one
//! executor shard so each session's response stream keeps its
//! submission order.

use crate::cache::{CacheKey, SolutionCache};
use crate::store::RenderedSolution;
use crate::ServerOptions;
use spllift_features::{BddConstraintContext, FeatureExpr, FeatureId, FeatureTable};
use spllift_hash::FastMap;
use spllift_ide::IdeStats;
use spllift_ir::{fingerprint, Program};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The BDD space shared by every session of one interned artifact: one
/// constraint context (one BDD variable per feature, in table order)
/// over the thread-safe hash-consed store, plus the lock that
/// serializes governed solves on it.
///
/// The lock exists because resource budgets arm *per-manager*
/// baselines ([`spllift_bdd::BddManager::set_budget`]): two
/// concurrently armed solves on one manager would charge each other's
/// allocations and could latch each other's exhaustion. Un-governed
/// constraint construction (queries, rendering) needs no lock — the
/// store itself is thread-safe.
#[derive(Debug)]
pub struct SharedBddSpace {
    /// The shared constraint context.
    pub ctx: BddConstraintContext,
    /// Serializes budget-armed solves on this space.
    pub solve_lock: Mutex<()>,
}

/// One loaded product line: the parsed program, its feature universe,
/// the optional feature-model constraint, the fingerprint over all
/// three, and the shared BDD space every session of this artifact
/// builds its constraints in. It is `Send + Sync` and shared (`Arc`)
/// across every shard through the engine's intern table. Edits
/// copy-on-write ([`Arc::make_mut`] in the store); the clone keeps the
/// same `space` handle — the feature universe is fixed at load, so an
/// edited session can keep hash-consing into the nodes it already
/// built.
#[derive(Debug, Clone)]
pub struct LoadedSpl {
    /// The checked program.
    pub program: Program,
    /// The feature universe (fixed at load: edits cannot grow it).
    pub table: FeatureTable,
    /// The feature-model constraint, if any.
    pub model: Option<FeatureExpr>,
    /// The model's OR groups (`parent`, members) — candidates for the
    /// governor's *confound* abstraction when a request names
    /// `keep_features`. Empty when the model has none (or none was
    /// loaded).
    pub or_groups: Vec<(FeatureId, Vec<FeatureId>)>,
    /// Fingerprint of `(program, table, model)`.
    pub fingerprint: u64,
    /// The shared BDD space (same handle across COW clones).
    pub space: Arc<SharedBddSpace>,
}

impl LoadedSpl {
    /// Validates and fingerprints a freshly parsed product line.
    pub fn new(
        program: Program,
        table: FeatureTable,
        model: Option<FeatureExpr>,
        or_groups: Vec<(FeatureId, Vec<FeatureId>)>,
    ) -> Result<LoadedSpl, String> {
        if program.entry_points().is_empty() {
            return Err("no entry point: declare a method named `main`".into());
        }
        program
            .check()
            .map_err(|e| format!("invalid program: {e}"))?;
        let fp = fingerprint(&program, &table, model.as_ref());
        let space = Arc::new(SharedBddSpace {
            ctx: BddConstraintContext::new(&table),
            solve_lock: Mutex::new(()),
        });
        Ok(LoadedSpl {
            program,
            table,
            model,
            or_groups,
            fingerprint: fp,
            space,
        })
    }

    /// Recomputes the fingerprint after an in-place program mutation
    /// (only reachable through a store's private, copy-on-write copy).
    pub fn refresh_fingerprint(&mut self) {
        self.fingerprint = fingerprint(&self.program, &self.table, self.model.as_ref());
    }
}

/// Cross-shard governance counters (the `stats` response's
/// `governance` object, minus the per-shard quarantine lists).
#[derive(Debug, Default)]
pub struct GovCounters {
    /// `analyze` requests seen (the global fault trigger counts these).
    pub analyze_requests: AtomicU64,
    /// Panics caught by the per-request isolation barrier.
    pub panics_isolated: AtomicU64,
    /// Solves answered from a lattice point below full precision.
    pub degraded_solves: AtomicU64,
    /// Solves where every lattice point aborted.
    pub solve_failures: AtomicU64,
    /// Faults actually injected by `--inject-fault`.
    pub faults_injected: AtomicU64,
    /// Per-lattice-point degradation counters: stable point name →
    /// how many solves completed at that abstraction. Sorted map so the
    /// `stats` rendering is deterministic.
    pub degraded_points: Mutex<BTreeMap<String, u64>>,
}

impl GovCounters {
    /// Increments `analyze_requests` and returns the new (1-based)
    /// ordinal — the global fault trigger sequence.
    pub fn bump_analyze(&self) -> u64 {
        self.analyze_requests.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Records one degraded solve completing at the lattice point named
    /// `point` (also bumps the `degraded_solves` total).
    pub fn note_degraded(&self, point: &str) {
        self.degraded_solves.fetch_add(1, Ordering::SeqCst);
        let mut map = self.degraded_points.lock().expect("degraded_points lock");
        *map.entry(point.to_owned()).or_insert(0) += 1;
    }

    /// A sorted snapshot of the per-point counters.
    pub fn degraded_points_snapshot(&self) -> Vec<(String, u64)> {
        let map = self.degraded_points.lock().expect("degraded_points lock");
        map.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }
}

/// The shared immutable engine. One per server process; every shard and
/// every connection holds the same `Arc<Engine>`.
pub struct Engine {
    /// Server-wide configuration (immutable after startup).
    pub opts: ServerOptions,
    /// Governance counters.
    pub gov: GovCounters,
    cache: Mutex<SolutionCache>,
    artifacts: Mutex<FastMap<u64, Arc<LoadedSpl>>>,
    last_solve: Mutex<IdeStats>,
}

impl Engine {
    /// Creates an engine with an empty cache and intern table.
    pub fn new(opts: ServerOptions) -> Engine {
        let cache = SolutionCache::new(opts.cache_entries, opts.cache_bytes);
        Engine {
            opts,
            gov: GovCounters::default(),
            cache: Mutex::new(cache),
            artifacts: Mutex::new(FastMap::default()),
            last_solve: Mutex::new(IdeStats::default()),
        }
    }

    /// Interns a loaded artifact by fingerprint: if an identical product
    /// line is already resident (another session loaded the same bytes),
    /// the existing `Arc` is returned and the fresh copy is dropped.
    pub fn intern(&self, spl: LoadedSpl) -> Arc<LoadedSpl> {
        let mut artifacts = self.artifacts.lock().expect("artifact lock");
        Arc::clone(
            artifacts
                .entry(spl.fingerprint)
                .or_insert_with(|| Arc::new(spl)),
        )
    }

    /// Cache lookup (counts a hit or miss).
    pub fn cache_get(&self, key: &CacheKey) -> Option<Arc<RenderedSolution>> {
        self.cache.lock().expect("cache lock").get(key)
    }

    /// Caches a full-precision solution.
    pub fn cache_insert(&self, key: CacheKey, solution: Arc<RenderedSolution>) {
        self.cache.lock().expect("cache lock").insert(key, solution);
    }

    /// Cache snapshot for `stats`: `(entries, bytes, hits, misses,
    /// evictions)` under one lock acquisition, so the numbers are
    /// mutually consistent.
    pub fn cache_stats(&self) -> (usize, usize, u64, u64, u64) {
        let cache = self.cache.lock().expect("cache lock");
        let (hits, misses, evictions) = cache.counters();
        (cache.len(), cache.total_bytes(), hits, misses, evictions)
    }

    /// Clears the solution cache (returns the number of entries
    /// dropped, for the `evict` response) and the artifact intern table
    /// — sessions keep their own `Arc`s, so nothing in use is freed.
    pub fn evict(&self) -> usize {
        self.artifacts.lock().expect("artifact lock").clear();
        self.cache.lock().expect("cache lock").clear()
    }

    /// Publishes the statistics of the most recent solve.
    pub fn set_last_solve(&self, stats: IdeStats) {
        *self.last_solve.lock().expect("last_solve lock") = stats;
    }

    /// The statistics of the most recent solve.
    pub fn last_solve(&self) -> IdeStats {
        *self.last_solve.lock().expect("last_solve lock")
    }
}

// The whole point of the engine: it is shareable. Compile-time proof
// that nothing thread-confined snuck in (the BDD manager inside
// `SharedBddSpace` is the `Arc`-based thread-safe store).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<LoadedSpl>();
    assert_send_sync::<SharedBddSpace>();
    assert_send_sync::<RenderedSolution>();
};
