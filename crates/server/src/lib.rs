//! The resident analysis server.
//!
//! SPLLIFT's pitch is "minutes instead of years" for one-shot analysis;
//! this crate drops the per-invocation cost too — and serves many
//! clients at once. Following the wasmtime `Engine`/`Store` split, the
//! server is built from:
//!
//! * an [`Engine`] — the shared immutable half: interned fingerprinted
//!   programs + feature models ([`LoadedSpl`]), the cross-session LRU
//!   **solution cache** keyed by `(program fingerprint, analysis, model
//!   mode)` (repeated `analyze` requests are answered with *zero*
//!   solver propagations, from any session on any connection), and the
//!   governance counters — all behind `Arc` + fine-grained locking;
//! * per-session [`Store`](store::Store)s — the cheap mutable half: a
//!   session-private BDD manager (thread-confined, per DESIGN.md §6),
//!   the [`spllift_core::SolverMemo`] for **incremental re-analysis**
//!   (an `edit` dirties only the edited method and its transitive
//!   callers), and per-request governance budgets;
//! * a session-sharded [`Executor`] — session names hash to shards, one
//!   worker thread per shard, so concurrent sessions analyze in
//!   parallel while each session's stream stays deterministic, with
//!   **admission control** (per-shard in-flight bound) riding the
//!   budget/quarantine machinery;
//! * two transports: classic stdin/stdout (`spllift-cli serve`) and a
//!   TCP socket ([`SocketServer`], `spllift-cli serve --listen`) with
//!   graceful drain on `shutdown`.
//!
//! # Protocol
//!
//! One JSON object per line in, one per line out (blank lines are
//! skipped). Responses are canonical compact JSON
//! ([`spllift_json::Json::render`]) and contain no wall-clock timings,
//! so transcripts diff byte-exactly.
//! A malformed or failing request yields `{"type":"error",...}` and the
//! server keeps serving. Requests:
//!
//! | `type`     | fields |
//! |------------|--------|
//! | `load`     | `session`, one of `source`/`path`/`gen`, optional `model` |
//! | `analyze`  | `session`, optional `analysis` (default `taint`), `mode` |
//! | `query`    | `session`, `analysis`, `mode`, `queries: [...]` |
//! | `edit`     | `session`, `method`, optional `locals`, `stmts: [...]` |
//! | `stats`    | — |
//! | `evict`    | — |
//! | `shutdown` | — |
//!
//! The complete wire contract — every request/response shape, error
//! codes, quarantine semantics, budget overrides, versioning rules —
//! is specified in `docs/PROTOCOL.md` at the repository root.
//!
//! Queries address statements as `<method>:<index>` where `<method>` is
//! a method name (optionally `Class.name`-qualified) or a raw `m<N>`
//! id, and facts by their `Debug` rendering (e.g. `Local(LocalId(1))`).
//! A fact absent from the solution is not an error: its constraint is
//! `false` (the paper's ⊥), and `holds_in` answers `false`.

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod exec;
mod handler;
pub mod store;
pub mod transport;

pub use engine::{Engine, LoadedSpl};
pub use exec::{Executor, Submitted};
pub use transport::SocketServer;

use spllift_spl::{default_jobs, FaultPlan};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Every request `type` the router accepts, in the order the protocol
/// documentation lists them. The unknown-type error message and the
/// `docs/PROTOCOL.md` conformance test both derive from this list.
pub const REQUEST_TYPES: [&str; 7] = [
    "load", "analyze", "query", "edit", "stats", "evict", "shutdown",
];

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads for batched queries (`--jobs`).
    pub jobs: usize,
    /// Executor shards — concurrently analyzing session groups
    /// (`--shards`). Sessions hash to shards; shard count never changes
    /// response bytes, only parallelism.
    pub shards: usize,
    /// Per-shard in-flight request bound (`--max-inflight`): beyond it,
    /// `submit` answers an `overloaded` error instead of queueing.
    pub max_inflight: usize,
    /// Solution-cache entry budget (`--cache-entries`).
    pub cache_entries: usize,
    /// Solution-cache byte budget (`--cache-bytes`).
    pub cache_bytes: usize,
    /// Default per-rung wall-clock allowance for every solve
    /// (`--solve-timeout-ms`); per-request `timeout_ms` overrides it.
    pub solve_timeout_ms: Option<u64>,
    /// Default per-rung BDD node budget (`--bdd-node-budget`).
    pub bdd_node_budget: Option<u64>,
    /// Default per-rung BDD operation budget (`--bdd-op-budget`).
    pub bdd_op_budget: Option<u64>,
    /// Default per-rung phase-1 propagation cap (`--max-propagations`).
    pub max_propagations: Option<u64>,
    /// Deterministic fault injection (`--inject-fault kind@n`): sabotage
    /// the `n`-th `analyze` request's solve. Testing harness only.
    pub inject_fault: Option<FaultPlan>,
    /// Scope the fault trigger to one session's own `analyze` ordinal
    /// (`--inject-fault-session`): under concurrency the *global*
    /// ordinal depends on request interleaving, but the victim
    /// session's own counter does not. Testing harness only.
    pub fault_session: Option<String>,
    /// Default phase-1 solver threads per solve (`--threads`); a
    /// request's `threads` field overrides it. Results are
    /// byte-identical at every value.
    pub threads: usize,
    /// Features every degraded solve must keep precise
    /// (`--keep-features A,B`): when budgets trip, the governor
    /// schedules feature-sparing abstractions (confound OR groups,
    /// project away everything else) before the canonical ladder. A
    /// request's `keep_features` field overrides it; names not in a
    /// session's feature universe are ignored (the per-request field,
    /// by contrast, rejects unknown names).
    pub keep_features: Option<Vec<String>>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            jobs: default_jobs(),
            shards: default_jobs(),
            max_inflight: 256,
            cache_entries: 64,
            cache_bytes: 16 << 20,
            solve_timeout_ms: None,
            bdd_node_budget: None,
            bdd_op_budget: None,
            max_propagations: None,
            inject_fault: None,
            fault_session: None,
            threads: 1,
            keep_features: None,
        }
    }
}

/// The classic single-client facade over the sharded executor: one
/// request in, one response out, strictly in order. `spllift-cli serve`
/// without `--listen` runs this over stdin/stdout; tests drive
/// [`Server::handle_line`] directly. Responses are byte-identical to
/// the socket transport's per-session streams.
pub struct Server {
    exec: Executor,
}

impl Server {
    /// Creates an empty server (spawns the executor's shard workers).
    pub fn new(opts: ServerOptions) -> Self {
        Server {
            exec: Executor::new(Arc::new(Engine::new(opts))),
        }
    }

    /// Handles one request line; returns the rendered response and
    /// whether the server should shut down afterwards.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        match self.exec.submit(line) {
            Submitted::Ready(resp) => (resp, false),
            Submitted::Pending(rx) => (rx.recv().unwrap_or_else(|_| exec::internal_error()), false),
            Submitted::Shutdown(resp) => (resp, true),
        }
    }

    /// Serves line-delimited requests from `input` until EOF or a
    /// `shutdown` request, flushing one response line each.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors on the two streams; protocol-level failures
    /// become `{"type":"error",...}` responses instead.
    pub fn run(&mut self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (resp, shutdown) = self.handle_line(&line);
            writeln!(output, "{resp}")?;
            output.flush()?;
            if shutdown {
                break;
            }
        }
        Ok(())
    }
}
