//! The resident analysis server.
//!
//! SPLLIFT's pitch is "minutes instead of years" for one-shot analysis;
//! this crate drops the per-invocation cost too. A [`Server`] stays
//! resident, speaks a line-delimited JSON protocol on stdin/stdout
//! (`spllift-cli serve`), and keeps loaded product lines warm:
//!
//! * **sessions** — parsed program + feature model + a session-private
//!   BDD manager (thread-local, per DESIGN.md §6),
//! * a **solution cache** keyed by `(program fingerprint, analysis,
//!   model mode)` with an LRU entry/byte budget — repeated `analyze`
//!   requests are answered with *zero* solver propagations,
//! * **incremental re-analysis** — an `edit` that replaces one method
//!   body dirties only that method and its transitive callers; the next
//!   `analyze` reuses every clean method's jump functions and end
//!   summaries ([`spllift_core::SolverMemo`]) and is bit-identical to a
//!   cold solve,
//! * a **worker pool** — batched `query` requests fan out over
//!   [`spllift_spl::map_shards`] with deterministic shard order, so
//!   responses are byte-identical for every `--jobs` value.
//!
//! # Protocol
//!
//! One JSON object per line in, one per line out (blank lines are
//! skipped). Responses are canonical compact JSON ([`Json::render`])
//! and contain no wall-clock timings, so transcripts diff byte-exactly.
//! A malformed or failing request yields `{"type":"error",...}` and the
//! server keeps serving. Requests:
//!
//! | `type`     | fields |
//! |------------|--------|
//! | `load`     | `session`, one of `source`/`path`/`gen`, optional `model` |
//! | `analyze`  | `session`, optional `analysis` (default `taint`), `mode` |
//! | `query`    | `session`, `analysis`, `mode`, `queries: [...]` |
//! | `edit`     | `session`, `method`, optional `locals`, `stmts: [...]` |
//! | `stats`    | — |
//! | `evict`    | — |
//! | `shutdown` | — |
//!
//! Queries address statements as `<method>:<index>` where `<method>` is
//! a method name (optionally `Class.name`-qualified) or a raw `m<N>`
//! id, and facts by their `Debug` rendering (e.g. `Local(LocalId(1))`).
//! A fact absent from the solution is not an error: its constraint is
//! `false` (the paper's ⊥), and `holds_in` answers `false`.

#![warn(missing_docs)]

pub mod cache;
pub mod session;

use cache::SolutionCache;
use session::{mode_str, parse_mode, ChaosSpec, RenderedSolution, Session, ANALYSES};
use spllift_benchgen::{subject_by_name, synthetic_spec, GeneratedSpl, SubjectSpec};
use spllift_core::{GovernorOptions, ModelMode, SolveOutcome};
use spllift_features::{parse_feature_model, Configuration, FeatureTable};
use spllift_frontend::parse_source;
use spllift_ide::IdeStats;
use spllift_ir::{MethodId, Program};
use spllift_json::{parse_json, Json};
use spllift_spl::{default_jobs, map_shards, FaultKind, FaultPlan};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::Duration;

/// Implicit per-rung operation budget armed for a `bdd-blowup` fault
/// when no `--bdd-op-budget` is configured — the injected blowout must
/// have a meter to trip.
const FAULT_OP_BUDGET: u64 = 1 << 32;

/// Implicit per-rung deadline armed for a `slow-edge` fault when no
/// `--solve-timeout-ms` is configured.
const FAULT_TIMEOUT_MS: u64 = 250;

/// How much longer than the per-rung deadline an injected `slow-edge`
/// stall sleeps, so the deadline check after it always trips.
const FAULT_STALL_MARGIN_MS: u64 = 1000;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads for batched queries (`--jobs`).
    pub jobs: usize,
    /// Solution-cache entry budget (`--cache-entries`).
    pub cache_entries: usize,
    /// Solution-cache byte budget (`--cache-bytes`).
    pub cache_bytes: usize,
    /// Default per-rung wall-clock allowance for every solve
    /// (`--solve-timeout-ms`); per-request `timeout_ms` overrides it.
    pub solve_timeout_ms: Option<u64>,
    /// Default per-rung BDD node budget (`--bdd-node-budget`).
    pub bdd_node_budget: Option<u64>,
    /// Default per-rung BDD operation budget (`--bdd-op-budget`).
    pub bdd_op_budget: Option<u64>,
    /// Default per-rung phase-1 propagation cap (`--max-propagations`).
    pub max_propagations: Option<u64>,
    /// Deterministic fault injection (`--inject-fault kind@n`): sabotage
    /// the `n`-th `analyze` request's solve. Testing harness only.
    pub inject_fault: Option<FaultPlan>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            jobs: default_jobs(),
            cache_entries: 64,
            cache_bytes: 16 << 20,
            solve_timeout_ms: None,
            bdd_node_budget: None,
            bdd_op_budget: None,
            max_propagations: None,
            inject_fault: None,
        }
    }
}

/// A statement/fact query, parsed and validated on the main thread so
/// the worker pool only ever touches `Sync` data.
enum ParsedQuery {
    /// `constraint_of`: the feature constraint of `(stmt, fact)`.
    Constraint { stmt: String, fact: String },
    /// `reachability_of`: the constraint under which `stmt` executes.
    Reach { stmt: String },
    /// `holds_in`: does `(stmt, fact)` hold in one configuration?
    Holds {
        stmt: String,
        fact: String,
        config: Configuration,
    },
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn hex16(fp: u64) -> String {
    format!("{fp:016x}")
}

fn req_str<'a>(req: &'a Json, key: &str) -> Result<&'a str, String> {
    req.get(key)
        .ok_or_else(|| format!("missing `{key}` field"))?
        .as_str()
        .ok_or_else(|| format!("`{key}` must be a string"))
}

fn opt_str<'a>(req: &'a Json, key: &str) -> Result<Option<&'a str>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

/// Optional unsigned integer field. Rejects non-numbers, negatives,
/// fractions, and values outside `u64` with a structured error instead
/// of truncating or panicking.
fn opt_u64(req: &Json, key: &str) -> Result<Option<u64>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            format!(
                "`{key}` must be a non-negative integer (got {})",
                v.render()
            )
        }),
    }
}

/// Like [`opt_u64`] but additionally rejects zero (every governance
/// knob is a budget; a zero budget can never admit a solve) and falls
/// back to the server-wide default.
fn governance_u64(req: &Json, key: &str, default: Option<u64>) -> Result<Option<u64>, String> {
    match opt_u64(req, key)? {
        None => Ok(default),
        Some(0) => Err(format!("`{key}` must be >= 1")),
        some => Ok(some),
    }
}

fn parse_gen_spec(s: &str) -> Result<SubjectSpec, String> {
    if let Some(rest) = s.strip_prefix("synthetic:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let [features, loc, seed] = parts.as_slice() else {
            return Err("gen `synthetic` takes synthetic:<features>:<loc>:<seed>".into());
        };
        let parse = |what: &str, v: &str| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("synthetic {what} must be an integer, got `{v}`"))
        };
        Ok(synthetic_spec(
            parse("feature count", features)?,
            parse("loc", loc)?,
            parse("seed", seed)? as u64,
        ))
    } else {
        subject_by_name(s).ok_or_else(|| {
            format!(
                "unknown generated subject `{s}` \
                 (MM08|GPL|Lampiro|BerkeleyDB, or synthetic:<features>:<loc>:<seed>)"
            )
        })
    }
}

/// Resolves a `<method>:<index>` key to the canonical `m<N>:<I>` form
/// ([`spllift_ir::StmtRef`]'s `Display`), validating both parts.
fn parse_stmt_key(program: &Program, s: &str) -> Result<String, String> {
    let (mpart, ipart) = s
        .rsplit_once(':')
        .ok_or_else(|| format!("bad statement `{s}` (want `method:index`)"))?;
    let index: u32 = ipart
        .trim()
        .parse()
        .map_err(|_| format!("bad statement index in `{s}`"))?;
    let mid = resolve_method(program, mpart.trim())?;
    let m = program.method(mid);
    let n = m
        .body
        .as_ref()
        .map(|b| b.stmts.len())
        .ok_or_else(|| format!("method `{}` has no body", m.name))?;
    if index as usize >= n {
        return Err(format!(
            "statement index {index} out of range for `{}` ({n} statements)",
            m.name
        ));
    }
    Ok(format!("m{}:{}", mid.0, index))
}

fn resolve_method(program: &Program, m: &str) -> Result<MethodId, String> {
    if let Some(mid) = program.find_method(m) {
        return Ok(mid);
    }
    // Fall back to the raw id form the server itself emits.
    if let Some(n) = m.strip_prefix('m').and_then(|d| d.parse::<u32>().ok()) {
        if (n as usize) < program.methods().len() {
            return Ok(MethodId(n));
        }
    }
    Err(format!("unknown method `{m}`"))
}

fn parse_query(program: &Program, table: &FeatureTable, q: &Json) -> Result<ParsedQuery, String> {
    let kind = req_str(q, "kind")?;
    match kind {
        "constraint_of" => Ok(ParsedQuery::Constraint {
            stmt: parse_stmt_key(program, req_str(q, "stmt")?)?,
            fact: req_str(q, "fact")?.to_owned(),
        }),
        "reachability_of" => Ok(ParsedQuery::Reach {
            stmt: parse_stmt_key(program, req_str(q, "stmt")?)?,
        }),
        "holds_in" => {
            let entries = q
                .get("config")
                .and_then(Json::as_arr)
                .ok_or("`config` must be an array of feature names")?;
            let mut enabled = Vec::new();
            for e in entries {
                let fname = e
                    .as_str()
                    .ok_or_else(|| "`config` entries must be strings".to_owned())?;
                enabled.push(
                    table
                        .get(fname)
                        .ok_or_else(|| format!("unknown feature `{fname}`"))?,
                );
            }
            Ok(ParsedQuery::Holds {
                stmt: parse_stmt_key(program, req_str(q, "stmt")?)?,
                fact: req_str(q, "fact")?.to_owned(),
                config: Configuration::from_enabled(enabled),
            })
        }
        other => Err(format!(
            "unknown query kind `{other}` (constraint_of|reachability_of|holds_in)"
        )),
    }
}

/// Renders one query result. A missing row is the ⊥ constraint, not an
/// error — the server cannot tell "fact never holds" from "no such
/// fact", and the paper's semantics make both `false`.
fn render_query(sol: &RenderedSolution, item: &Result<ParsedQuery, String>) -> Json {
    let q = match item {
        Ok(q) => q,
        Err(msg) => return obj(vec![("error", Json::str(msg.clone()))]),
    };
    let mut fields = match q {
        ParsedQuery::Constraint { stmt, fact } => {
            let cube = sol
                .fact_row(stmt, fact)
                .map_or("false", |r| r.cube.as_str());
            vec![
                ("kind", Json::str("constraint_of")),
                ("stmt", Json::str(stmt.clone())),
                ("fact", Json::str(fact.clone())),
                ("constraint", Json::str(cube)),
            ]
        }
        ParsedQuery::Reach { stmt } => {
            let cube = sol.reach_row(stmt).map_or("false", |r| r.cube.as_str());
            vec![
                ("kind", Json::str("reachability_of")),
                ("stmt", Json::str(stmt.clone())),
                ("constraint", Json::str(cube)),
            ]
        }
        ParsedQuery::Holds { stmt, fact, config } => {
            let holds = sol
                .fact_row(stmt, fact)
                .is_some_and(|r| config.satisfies(&r.expr));
            vec![
                ("kind", Json::str("holds_in")),
                ("stmt", Json::str(stmt.clone())),
                ("fact", Json::str(fact.clone())),
                ("holds", Json::Bool(holds)),
            ]
        }
    };
    // Degraded solutions answer with weaker-or-equal constraints (and
    // thus possibly-spurious `holds`); flag every answer drawn from one.
    if sol.degraded {
        fields.push(("degraded", Json::Bool(true)));
    }
    obj(fields)
}

fn stats_obj(stats: &IdeStats) -> Json {
    obj(vec![
        ("propagations", Json::num(stats.propagations)),
        ("flow_evals", Json::num(stats.flow_evals)),
        ("jump_fns", Json::num(stats.jump_fn_constructions)),
        ("killed_early", Json::num(stats.killed_early)),
        ("value_updates", Json::num(stats.value_updates)),
    ])
}

/// Governance counters: how often the server had to intervene. Exposed
/// in the `stats` response so degraded numbers are never silent.
#[derive(Debug, Clone, Copy, Default)]
struct GovCounters {
    /// `analyze` requests seen (the fault plan's trigger counts these).
    analyze_requests: u64,
    /// Panics caught by the per-request isolation barrier.
    panics_isolated: u64,
    /// Solves answered from a ladder rung below full precision.
    degraded_solves: u64,
    /// Solves where every ladder rung aborted.
    solve_failures: u64,
    /// Faults actually injected by `--inject-fault`.
    faults_injected: u64,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The resident server: sessions, the solution cache, and the protocol
/// dispatcher. Single-threaded except for query fan-out (the sessions'
/// BDD managers must stay on this thread).
pub struct Server {
    opts: ServerOptions,
    sessions: BTreeMap<String, Session>,
    /// Sessions destroyed by a caught panic, with the panic message.
    /// Requests against them get a structured error until a fresh `load`
    /// replaces them; every other session keeps serving normally.
    quarantined: BTreeMap<String, String>,
    cache: SolutionCache,
    last_solve: IdeStats,
    gov: GovCounters,
}

impl Server {
    /// Creates an empty server.
    pub fn new(opts: ServerOptions) -> Self {
        let cache = SolutionCache::new(opts.cache_entries, opts.cache_bytes);
        Server {
            opts,
            sessions: BTreeMap::new(),
            quarantined: BTreeMap::new(),
            cache,
            last_solve: IdeStats::default(),
            gov: GovCounters::default(),
        }
    }

    /// Handles one request line; returns the rendered response and
    /// whether the server should shut down afterwards.
    ///
    /// The dispatch runs behind a panic-isolation barrier: a panic
    /// escaping any handler (a solver bug, a client-analysis bug, an
    /// injected fault) is caught here, the session it was operating on
    /// is torn down and quarantined, and the caller gets a structured
    /// error — the server itself keeps serving. `AssertUnwindSafe` is
    /// justified because the only state the panicking handler could have
    /// left half-updated is the session, which is discarded wholesale.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(line)));
        match outcome {
            Ok(Ok((resp, shutdown))) => (resp.render(), shutdown),
            Ok(Err(msg)) => (
                obj(vec![
                    ("type", Json::str("error")),
                    ("message", Json::str(msg)),
                ])
                .render(),
                false,
            ),
            Err(payload) => (self.isolate_panic(line, &*payload).render(), false),
        }
    }

    /// Quarantines the session a panicking request addressed (best
    /// effort: re-parses the request line) and renders the structured
    /// panic error.
    fn isolate_panic(&mut self, line: &str, payload: &(dyn std::any::Any + Send)) -> Json {
        self.gov.panics_isolated += 1;
        let message = panic_message(payload);
        let req = parse_json(line).ok();
        let session = req
            .as_ref()
            .and_then(|r| r.get("session"))
            .and_then(Json::as_str)
            .map(str::to_owned);
        let mut fields = vec![
            ("type", Json::str("error")),
            ("error", Json::str("panic")),
            ("message", Json::str(message.clone())),
        ];
        if let Some(name) = session {
            self.sessions.remove(&name);
            self.quarantined.insert(name.clone(), message);
            fields.push(("session", Json::str(name)));
            fields.push(("quarantined", Json::Bool(true)));
        }
        obj(fields)
    }

    /// Serves line-delimited requests from `input` until EOF or a
    /// `shutdown` request, flushing one response line each.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors on the two streams; protocol-level failures
    /// become `{"type":"error",...}` responses instead.
    pub fn run(&mut self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (resp, shutdown) = self.handle_line(&line);
            writeln!(output, "{resp}")?;
            output.flush()?;
            if shutdown {
                break;
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, line: &str) -> Result<(Json, bool), String> {
        let req = parse_json(line)?;
        let ty = req_str(&req, "type")?;
        // Quarantined sessions answer structured errors for everything
        // except a fresh `load`, which replaces them.
        if ty != "load" {
            if let Some(name) = req.get("session").and_then(Json::as_str) {
                if let Some(reason) = self.quarantined.get(name) {
                    return Err(format!(
                        "session `{name}` is quarantined after a panic ({reason}); \
                         send a `load` to replace it"
                    ));
                }
            }
        }
        let resp = match ty {
            "load" => self.do_load(&req)?,
            "analyze" => self.do_analyze(&req)?,
            "query" => self.do_query(&req)?,
            "edit" => self.do_edit(&req)?,
            "stats" => self.do_stats(),
            "evict" => {
                let n = self.cache.clear();
                obj(vec![
                    ("type", Json::str("ok")),
                    ("request", Json::str("evict")),
                    ("evicted", Json::num(n as u64)),
                ])
            }
            "shutdown" => {
                return Ok((
                    obj(vec![
                        ("type", Json::str("ok")),
                        ("request", Json::str("shutdown")),
                    ]),
                    true,
                ))
            }
            other => {
                return Err(format!(
                    "unknown request type `{other}` \
                     (load|analyze|query|edit|stats|evict|shutdown)"
                ))
            }
        };
        Ok((resp, false))
    }

    fn session(&self, name: &str) -> Result<&Session, String> {
        self.sessions
            .get(name)
            .ok_or_else(|| format!("unknown session `{name}` (send a `load` first)"))
    }

    fn session_mut(&mut self, name: &str) -> Result<&mut Session, String> {
        self.sessions
            .get_mut(name)
            .ok_or_else(|| format!("unknown session `{name}` (send a `load` first)"))
    }

    fn do_load(&mut self, req: &Json) -> Result<Json, String> {
        let name = req_str(req, "session")?;
        let source = opt_str(req, "source")?;
        let path = opt_str(req, "path")?;
        let gen = opt_str(req, "gen")?;
        let model_text = opt_str(req, "model")?;
        if [source.is_some(), path.is_some(), gen.is_some()]
            .iter()
            .filter(|b| **b)
            .count()
            != 1
        {
            return Err("load takes exactly one of `source`, `path`, `gen`".into());
        }
        let (program, table, model) = if let Some(spec) = gen {
            if model_text.is_some() {
                return Err(
                    "`model` cannot be combined with `gen` (the generated feature model is used)"
                        .into(),
                );
            }
            let spl = GeneratedSpl::generate(parse_gen_spec(spec)?);
            let model = Some(spl.model_expr());
            let GeneratedSpl { program, table, .. } = spl;
            (program, table, model)
        } else {
            let text = match (source, path) {
                (Some(s), _) => s.to_owned(),
                (_, Some(p)) => {
                    std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?
                }
                _ => unreachable!("counted above"),
            };
            let mut table = FeatureTable::new();
            let program = parse_source(&text, &mut table)?;
            let model = match model_text {
                None => None,
                Some(mt) => Some(
                    parse_feature_model(mt, &mut table)
                        .map_err(|e| format!("model: {e}"))?
                        .to_expr(),
                ),
            };
            (program, table, model)
        };
        let sess = Session::new(program, table, model)?;
        let resp = obj(vec![
            ("type", Json::str("ok")),
            ("request", Json::str("load")),
            ("session", Json::str(name)),
            ("fingerprint", Json::str(hex16(sess.fingerprint))),
            ("methods", Json::num(sess.program.methods().len() as u64)),
            ("stmts", Json::num(sess.program.stmt_count() as u64)),
            ("features", Json::num(sess.table.len() as u64)),
        ]);
        self.quarantined.remove(name);
        self.sessions.insert(name.to_owned(), sess);
        Ok(resp)
    }

    fn analysis_and_mode(req: &Json) -> Result<(&str, ModelMode), String> {
        let analysis = opt_str(req, "analysis")?.unwrap_or("taint");
        if !ANALYSES.contains(&analysis) {
            return Err(format!(
                "unknown analysis `{analysis}` (taint|types|reaching-defs|uninit)"
            ));
        }
        let mode = parse_mode(opt_str(req, "mode")?.unwrap_or("on-edges"))?;
        Ok((analysis, mode))
    }

    /// Builds this request's resource envelope: per-request knobs
    /// (`timeout_ms`, `bdd_node_budget`, `bdd_op_budget`,
    /// `max_propagations`) override the server-wide defaults — the
    /// retry-after-degrade path: re-send the same `analyze` with a
    /// bigger budget and the (uncached) degraded slot re-solves fully.
    fn request_governor(&self, req: &Json) -> Result<GovernorOptions, String> {
        Ok(GovernorOptions {
            max_bdd_nodes: governance_u64(req, "bdd_node_budget", self.opts.bdd_node_budget)?,
            max_bdd_ops: governance_u64(req, "bdd_op_budget", self.opts.bdd_op_budget)?,
            max_propagations: governance_u64(req, "max_propagations", self.opts.max_propagations)?,
            timeout: governance_u64(req, "timeout_ms", self.opts.solve_timeout_ms)?
                .map(Duration::from_millis),
            ..GovernorOptions::default()
        })
    }

    /// Arms the injected fault for this request if the plan's trigger
    /// matches, patching implicit budgets so the fault class has a
    /// meter to trip (a blowup needs an op budget, a stall a deadline).
    fn armed_fault(&mut self, seq: u64, gov: &mut GovernorOptions) -> Option<ChaosSpec> {
        let plan = self.opts.inject_fault.filter(|p| p.trigger == seq)?;
        match plan.kind {
            FaultKind::BddBlowup => {
                gov.max_bdd_ops = gov.max_bdd_ops.or(Some(FAULT_OP_BUDGET));
            }
            FaultKind::SlowEdge => {
                gov.timeout = gov
                    .timeout
                    .or(Some(Duration::from_millis(FAULT_TIMEOUT_MS)));
            }
            FaultKind::PanicInFlow => {}
        }
        self.gov.faults_injected += 1;
        let allowance = gov
            .timeout
            .unwrap_or(Duration::from_millis(FAULT_TIMEOUT_MS));
        Some(ChaosSpec {
            kind: plan.kind,
            slow_for: allowance + Duration::from_millis(FAULT_STALL_MARGIN_MS),
        })
    }

    fn do_analyze(&mut self, req: &Json) -> Result<Json, String> {
        self.gov.analyze_requests += 1;
        let seq = self.gov.analyze_requests;
        let name = req_str(req, "session")?.to_owned();
        let (analysis, mode) = Self::analysis_and_mode(req)?;
        let analysis = analysis.to_owned();
        let mut gov = self.request_governor(req)?;
        let chaos = self.armed_fault(seq, &mut gov);
        let sess = self
            .sessions
            .get_mut(&name)
            .ok_or_else(|| format!("unknown session `{name}` (send a `load` first)"))?;
        let key = (
            sess.fingerprint,
            analysis.clone(),
            mode_str(mode).to_owned(),
        );
        let (solve, stats, outcome, solution) = match self.cache.get(&key) {
            Some(cached) => {
                sess.install_cached(&analysis, mode, Rc::clone(&cached))?;
                (
                    "cached",
                    IdeStats::default(),
                    SolveOutcome::Complete,
                    cached,
                )
            }
            None => {
                let out = match sess.analyze(&analysis, mode, gov, chaos.as_ref()) {
                    Ok(out) => out,
                    Err(e) => {
                        self.gov.solve_failures += 1;
                        return Err(e);
                    }
                };
                // Only full-precision solutions enter the cache: a
                // degraded answer must not shadow a later, better-funded
                // solve of the same fingerprint.
                if out.outcome.is_degraded() {
                    self.gov.degraded_solves += 1;
                } else {
                    self.cache.insert(key, Rc::clone(&out.solution));
                }
                (out.solve, out.stats, out.outcome, out.solution)
            }
        };
        self.last_solve = stats;
        let mut fields = vec![
            ("type", Json::str("ok")),
            ("request", Json::str("analyze")),
            ("session", Json::str(name)),
            ("analysis", Json::str(analysis)),
            ("mode", Json::str(mode_str(mode))),
            ("solve", Json::str(solve)),
            (
                "outcome",
                Json::str(if outcome.is_degraded() {
                    "degraded"
                } else {
                    "complete"
                }),
            ),
            ("rung", Json::str(solution.rung)),
            ("propagations", Json::num(stats.propagations)),
            ("flow_evals", Json::num(stats.flow_evals)),
            ("jump_fns", Json::num(stats.jump_fn_constructions)),
            ("value_updates", Json::num(stats.value_updates)),
            ("facts", Json::num(solution.facts.len() as u64)),
            ("digest", Json::str(hex16(solution.digest))),
        ];
        if let SolveOutcome::Degraded { attempts, .. } = &outcome {
            fields.push((
                "attempts",
                Json::Arr(
                    attempts
                        .iter()
                        .map(|(rung, reason)| {
                            obj(vec![
                                ("rung", Json::str(rung.as_str())),
                                ("reason", Json::str(reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
            fields.push(("degraded_facts", Json::num(solution.facts.len() as u64)));
        }
        Ok(obj(fields))
    }

    fn do_query(&mut self, req: &Json) -> Result<Json, String> {
        let name = req_str(req, "session")?;
        let (analysis, mode) = Self::analysis_and_mode(req)?;
        let sess = self.session(name)?;
        let solution = sess.current_solution(analysis, mode).ok_or_else(|| {
            format!(
                "no current solution for {analysis}/{} in session `{name}` \
                 (send an `analyze` first, and after every `edit`)",
                mode_str(mode)
            )
        })?;
        let queries = req
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or("`queries` must be an array")?;
        let parsed: Vec<Result<ParsedQuery, String>> = queries
            .iter()
            .map(|q| parse_query(&sess.program, &sess.table, q))
            .collect();
        // Fan out over the worker pool. Workers borrow the rendered
        // solution (plain strings + feature expressions — no BDD handles
        // leave this thread); contiguous ordered shards keep the result
        // order, and thus the response bytes, independent of `jobs`.
        let sol: &RenderedSolution = solution;
        let (shards, _shard_stats, _jobs) = map_shards(&parsed, self.opts.jobs, |_, chunk| {
            chunk
                .iter()
                .map(|item| render_query(sol, item))
                .collect::<Vec<Json>>()
        });
        let results: Vec<Json> = shards.into_iter().flatten().collect();
        Ok(obj(vec![
            ("type", Json::str("ok")),
            ("request", Json::str("query")),
            ("session", Json::str(name)),
            ("analysis", Json::str(analysis)),
            ("mode", Json::str(mode_str(mode))),
            ("count", Json::num(results.len() as u64)),
            ("results", Json::Arr(results)),
        ]))
    }

    fn do_edit(&mut self, req: &Json) -> Result<Json, String> {
        let name = req_str(req, "session")?;
        let method = req_str(req, "method")?;
        let locals = opt_str(req, "locals")?.unwrap_or("");
        let stmts = req
            .get("stmts")
            .and_then(Json::as_arr)
            .ok_or("`stmts` must be an array of strings")?;
        let mut lines = Vec::with_capacity(stmts.len());
        for s in stmts {
            lines.push(
                s.as_str()
                    .ok_or_else(|| "`stmts` entries must be strings".to_owned())?,
            );
        }
        let method = method.to_owned();
        let locals = locals.to_owned();
        let sess = self.session_mut(name)?;
        let (_mid, n) = sess.edit(&method, &locals, &lines)?;
        Ok(obj(vec![
            ("type", Json::str("ok")),
            ("request", Json::str("edit")),
            ("session", Json::str(name)),
            ("method", Json::str(method)),
            ("fingerprint", Json::str(hex16(sess.fingerprint))),
            ("stmts", Json::num(n as u64)),
        ]))
    }

    fn do_stats(&mut self) -> Json {
        let sessions: Vec<Json> = self
            .sessions
            .iter()
            .map(|(name, s)| {
                obj(vec![
                    ("session", Json::str(name.clone())),
                    ("fingerprint", Json::str(hex16(s.fingerprint))),
                    ("methods", Json::num(s.program.methods().len() as u64)),
                    ("stmts", Json::num(s.program.stmt_count() as u64)),
                    (
                        "analyses",
                        Json::Arr(s.slot_keys().into_iter().map(Json::str).collect()),
                    ),
                ])
            })
            .collect();
        let (hits, misses, evictions) = self.cache.counters();
        obj(vec![
            ("type", Json::str("ok")),
            ("request", Json::str("stats")),
            ("sessions", Json::Arr(sessions)),
            (
                "cache",
                obj(vec![
                    ("entries", Json::num(self.cache.len() as u64)),
                    ("bytes", Json::num(self.cache.total_bytes() as u64)),
                    ("hits", Json::num(hits)),
                    ("misses", Json::num(misses)),
                    ("evictions", Json::num(evictions)),
                ]),
            ),
            (
                "governance",
                obj(vec![
                    ("analyze_requests", Json::num(self.gov.analyze_requests)),
                    ("panics_isolated", Json::num(self.gov.panics_isolated)),
                    ("degraded_solves", Json::num(self.gov.degraded_solves)),
                    ("solve_failures", Json::num(self.gov.solve_failures)),
                    ("faults_injected", Json::num(self.gov.faults_injected)),
                    (
                        "quarantined",
                        Json::Arr(
                            self.quarantined
                                .keys()
                                .map(|n| Json::str(n.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("last_solve", stats_obj(&self.last_solve)),
        ])
    }
}
