//! Shard-local request handling.
//!
//! A [`ShardState`] is the per-worker half of the executor: the stores
//! (sessions) this shard owns, its quarantine list, and a handle to the
//! shared [`Engine`]. Sessions are routed to shards by hashing the
//! session name, so one session's requests are always handled by the
//! same worker thread in submission order — the per-session response
//! stream is deterministic no matter how many shards or connections
//! the server runs.
//!
//! Every request runs behind a panic-isolation barrier in the worker
//! loop (`exec.rs`); [`ShardState::isolate_panic`] tears down and
//! quarantines only the session the panicking request addressed.

use crate::engine::{Engine, LoadedSpl};
use crate::store::{mode_str, parse_mode, ChaosSpec, RenderedSolution, Store, ANALYSES};
use crate::ServerOptions;
use spllift_benchgen::{parse_subject_spec, GeneratedSpl, SubjectSpec};
use spllift_core::{GovernorOptions, LatticeHints, ModelMode, SolveOutcome};
use spllift_features::{parse_feature_model, Configuration, FeatureId, FeatureTable};
use spllift_frontend::parse_source;
use spllift_ide::IdeStats;
use spllift_ir::{MethodId, Program};
use spllift_json::Json;
use spllift_spl::{map_shards, FaultKind};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Implicit per-rung operation budget armed for a `bdd-blowup` fault
/// when no `--bdd-op-budget` is configured — the injected blowout must
/// have a meter to trip.
const FAULT_OP_BUDGET: u64 = 1 << 32;

/// Implicit per-rung deadline armed for a `slow-edge` fault when no
/// `--solve-timeout-ms` is configured.
const FAULT_TIMEOUT_MS: u64 = 250;

/// How much longer than the per-rung deadline an injected `slow-edge`
/// stall sleeps, so the deadline check after it always trips.
const FAULT_STALL_MARGIN_MS: u64 = 1000;

/// A statement/fact query, parsed and validated on the shard thread so
/// the worker pool only ever touches `Sync` data.
enum ParsedQuery {
    /// `constraint_of`: the feature constraint of `(stmt, fact)`.
    Constraint { stmt: String, fact: String },
    /// `reachability_of`: the constraint under which `stmt` executes.
    Reach { stmt: String },
    /// `holds_in`: does `(stmt, fact)` hold in one configuration?
    Holds {
        stmt: String,
        fact: String,
        config: Configuration,
    },
}

pub(crate) fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

pub(crate) fn hex16(fp: u64) -> String {
    format!("{fp:016x}")
}

pub(crate) fn req_str<'a>(req: &'a Json, key: &str) -> Result<&'a str, String> {
    req.get(key)
        .ok_or_else(|| format!("missing `{key}` field"))?
        .as_str()
        .ok_or_else(|| format!("`{key}` must be a string"))
}

fn opt_str<'a>(req: &'a Json, key: &str) -> Result<Option<&'a str>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

/// Optional unsigned integer field. Rejects non-numbers, negatives,
/// fractions, and values outside `u64` with a structured error instead
/// of truncating or panicking.
fn opt_u64(req: &Json, key: &str) -> Result<Option<u64>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            format!(
                "`{key}` must be a non-negative integer (got {})",
                v.render()
            )
        }),
    }
}

/// Like [`opt_u64`] but additionally rejects zero (every governance
/// knob is a budget; a zero budget can never admit a solve) and falls
/// back to the server-wide default.
fn governance_u64(req: &Json, key: &str, default: Option<u64>) -> Result<Option<u64>, String> {
    match opt_u64(req, key)? {
        None => Ok(default),
        Some(0) => Err(format!("`{key}` must be >= 1")),
        some => Ok(some),
    }
}

fn parse_gen_spec(s: &str) -> Result<SubjectSpec, String> {
    // One grammar for every front end (see spllift_benchgen docs):
    //   MM08|GPL|Lampiro|BerkeleyDB
    //   synthetic:<features>:<loc>:<seed>[:model=free|chain|groups][:depth=N]
    parse_subject_spec(s)
}

/// Resolves a `<method>:<index>` key to the canonical `m<N>:<I>` form
/// ([`spllift_ir::StmtRef`]'s `Display`), validating both parts.
fn parse_stmt_key(program: &Program, s: &str) -> Result<String, String> {
    let (mpart, ipart) = s
        .rsplit_once(':')
        .ok_or_else(|| format!("bad statement `{s}` (want `method:index`)"))?;
    let index: u32 = ipart
        .trim()
        .parse()
        .map_err(|_| format!("bad statement index in `{s}`"))?;
    let mid = resolve_method(program, mpart.trim())?;
    let m = program.method(mid);
    let n = m
        .body
        .as_ref()
        .map(|b| b.stmts.len())
        .ok_or_else(|| format!("method `{}` has no body", m.name))?;
    if index as usize >= n {
        return Err(format!(
            "statement index {index} out of range for `{}` ({n} statements)",
            m.name
        ));
    }
    Ok(format!("m{}:{}", mid.0, index))
}

fn resolve_method(program: &Program, m: &str) -> Result<MethodId, String> {
    if let Some(mid) = program.find_method(m) {
        return Ok(mid);
    }
    // Fall back to the raw id form the server itself emits.
    if let Some(n) = m.strip_prefix('m').and_then(|d| d.parse::<u32>().ok()) {
        if (n as usize) < program.methods().len() {
            return Ok(MethodId(n));
        }
    }
    Err(format!("unknown method `{m}`"))
}

fn parse_query(program: &Program, table: &FeatureTable, q: &Json) -> Result<ParsedQuery, String> {
    let kind = req_str(q, "kind")?;
    match kind {
        "constraint_of" => Ok(ParsedQuery::Constraint {
            stmt: parse_stmt_key(program, req_str(q, "stmt")?)?,
            fact: req_str(q, "fact")?.to_owned(),
        }),
        "reachability_of" => Ok(ParsedQuery::Reach {
            stmt: parse_stmt_key(program, req_str(q, "stmt")?)?,
        }),
        "holds_in" => {
            let entries = q
                .get("config")
                .and_then(Json::as_arr)
                .ok_or("`config` must be an array of feature names")?;
            let mut enabled = Vec::new();
            for e in entries {
                let fname = e
                    .as_str()
                    .ok_or_else(|| "`config` entries must be strings".to_owned())?;
                enabled.push(
                    table
                        .get(fname)
                        .ok_or_else(|| format!("unknown feature `{fname}`"))?,
                );
            }
            Ok(ParsedQuery::Holds {
                stmt: parse_stmt_key(program, req_str(q, "stmt")?)?,
                fact: req_str(q, "fact")?.to_owned(),
                config: Configuration::from_enabled(enabled),
            })
        }
        other => Err(format!(
            "unknown query kind `{other}` (constraint_of|reachability_of|holds_in)"
        )),
    }
}

/// Renders one query result. A missing row is the ⊥ constraint, not an
/// error — the server cannot tell "fact never holds" from "no such
/// fact", and the paper's semantics make both `false`.
fn render_query(sol: &RenderedSolution, item: &Result<ParsedQuery, String>) -> Json {
    let q = match item {
        Ok(q) => q,
        Err(msg) => return obj(vec![("error", Json::str(msg.clone()))]),
    };
    let mut fields = match q {
        ParsedQuery::Constraint { stmt, fact } => {
            let cube = sol
                .fact_row(stmt, fact)
                .map_or("false", |r| r.cube.as_str());
            vec![
                ("kind", Json::str("constraint_of")),
                ("stmt", Json::str(stmt.clone())),
                ("fact", Json::str(fact.clone())),
                ("constraint", Json::str(cube)),
            ]
        }
        ParsedQuery::Reach { stmt } => {
            let cube = sol.reach_row(stmt).map_or("false", |r| r.cube.as_str());
            vec![
                ("kind", Json::str("reachability_of")),
                ("stmt", Json::str(stmt.clone())),
                ("constraint", Json::str(cube)),
            ]
        }
        ParsedQuery::Holds { stmt, fact, config } => {
            let holds = sol
                .fact_row(stmt, fact)
                .is_some_and(|r| config.satisfies(&r.expr));
            vec![
                ("kind", Json::str("holds_in")),
                ("stmt", Json::str(stmt.clone())),
                ("fact", Json::str(fact.clone())),
                ("holds", Json::Bool(holds)),
            ]
        }
    };
    // Degraded solutions answer with weaker-or-equal constraints (and
    // thus possibly-spurious `holds`); flag every answer drawn from one.
    if sol.degraded {
        fields.push(("degraded", Json::Bool(true)));
    }
    obj(fields)
}

pub(crate) fn stats_obj(stats: &IdeStats) -> Json {
    obj(vec![
        ("propagations", Json::num(stats.propagations)),
        ("flow_evals", Json::num(stats.flow_evals)),
        ("jump_fns", Json::num(stats.jump_fn_constructions)),
        ("killed_early", Json::num(stats.killed_early)),
        ("value_updates", Json::num(stats.value_updates)),
    ])
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A `stats` snapshot of one shard: its sessions' summary objects and
/// its quarantine list. The executor merges all shards' snapshots into
/// one globally name-sorted response.
pub(crate) struct ShardSnapshot {
    pub sessions: Vec<(String, Json)>,
    pub quarantined: Vec<String>,
}

/// One executor shard's session state plus the shared engine handle.
pub(crate) struct ShardState {
    pub engine: Arc<Engine>,
    stores: BTreeMap<String, Store>,
    /// Sessions destroyed by a caught panic, with the panic message.
    /// Requests against them get a structured error until a fresh `load`
    /// replaces them; every other session keeps serving normally.
    quarantined: BTreeMap<String, String>,
}

impl ShardState {
    pub fn new(engine: Arc<Engine>) -> ShardState {
        ShardState {
            engine,
            stores: BTreeMap::new(),
            quarantined: BTreeMap::new(),
        }
    }

    /// Handles one session-scoped request (`load`/`analyze`/`query`/
    /// `edit` — the router keeps everything else off the shards).
    pub fn handle(&mut self, req: &Json, ty: &str, session: &str) -> Result<Json, String> {
        // Quarantined sessions answer structured errors for everything
        // except a fresh `load`, which replaces them.
        if ty != "load" {
            if let Some(reason) = self.quarantined.get(session) {
                return Err(format!(
                    "session `{session}` is quarantined after a panic ({reason}); \
                     send a `load` to replace it"
                ));
            }
        }
        match ty {
            "load" => self.do_load(req, session),
            "analyze" => self.do_analyze(req, session),
            "query" => self.do_query(req, session),
            "edit" => self.do_edit(req, session),
            other => Err(format!("internal: `{other}` routed to a shard")),
        }
    }

    /// Quarantines the session a panicking request addressed and renders
    /// the structured panic error. The half-updated store is discarded
    /// wholesale — nothing it touched is shared (the engine only holds
    /// immutable artifacts and fully-rendered solutions), so concurrent
    /// sessions and the cache are unaffected.
    pub fn isolate_panic(&mut self, session: &str, payload: &(dyn std::any::Any + Send)) -> Json {
        self.engine
            .gov
            .panics_isolated
            .fetch_add(1, Ordering::SeqCst);
        let message = panic_message(payload);
        self.stores.remove(session);
        self.quarantined.insert(session.to_owned(), message.clone());
        obj(vec![
            ("type", Json::str("error")),
            ("error", Json::str("panic")),
            ("message", Json::str(message)),
            ("session", Json::str(session)),
            ("quarantined", Json::Bool(true)),
        ])
    }

    /// This shard's contribution to a `stats` response.
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            sessions: self
                .stores
                .iter()
                .map(|(name, s)| {
                    let summary = obj(vec![
                        ("session", Json::str(name.clone())),
                        ("fingerprint", Json::str(hex16(s.fingerprint()))),
                        ("methods", Json::num(s.spl.program.methods().len() as u64)),
                        ("stmts", Json::num(s.spl.program.stmt_count() as u64)),
                        (
                            "analyses",
                            Json::Arr(s.slot_keys().into_iter().map(Json::str).collect()),
                        ),
                    ]);
                    (name.clone(), summary)
                })
                .collect(),
            quarantined: self.quarantined.keys().cloned().collect(),
        }
    }

    fn store(&self, name: &str) -> Result<&Store, String> {
        self.stores
            .get(name)
            .ok_or_else(|| format!("unknown session `{name}` (send a `load` first)"))
    }

    fn store_mut(&mut self, name: &str) -> Result<&mut Store, String> {
        self.stores
            .get_mut(name)
            .ok_or_else(|| format!("unknown session `{name}` (send a `load` first)"))
    }

    fn do_load(&mut self, req: &Json, name: &str) -> Result<Json, String> {
        let source = opt_str(req, "source")?;
        let path = opt_str(req, "path")?;
        let gen = opt_str(req, "gen")?;
        let model_text = opt_str(req, "model")?;
        if [source.is_some(), path.is_some(), gen.is_some()]
            .iter()
            .filter(|b| **b)
            .count()
            != 1
        {
            return Err("load takes exactly one of `source`, `path`, `gen`".into());
        }
        let (program, table, model, or_groups) = if let Some(spec) = gen {
            if model_text.is_some() {
                return Err(
                    "`model` cannot be combined with `gen` (the generated feature model is used)"
                        .into(),
                );
            }
            let spl = GeneratedSpl::generate(parse_gen_spec(spec)?);
            let model = Some(spl.model_expr());
            let or_groups = spl.model.or_groups();
            let GeneratedSpl { program, table, .. } = spl;
            (program, table, model, or_groups)
        } else {
            let text = match (source, path) {
                (Some(s), _) => s.to_owned(),
                (_, Some(p)) => {
                    std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?
                }
                _ => unreachable!("counted above"),
            };
            let mut table = FeatureTable::new();
            let program = parse_source(&text, &mut table)?;
            let (model, or_groups) = match model_text {
                None => (None, Vec::new()),
                Some(mt) => {
                    let fm =
                        parse_feature_model(mt, &mut table).map_err(|e| format!("model: {e}"))?;
                    let or_groups = fm.or_groups();
                    (Some(fm.to_expr()), or_groups)
                }
            };
            (program, table, model, or_groups)
        };
        // Intern through the engine: a session loading an already-resident
        // product line shares the parsed artifact instead of retaining a
        // second copy.
        let spl = self
            .engine
            .intern(LoadedSpl::new(program, table, model, or_groups)?);
        let store = Store::new(spl);
        let resp = obj(vec![
            ("type", Json::str("ok")),
            ("request", Json::str("load")),
            ("session", Json::str(name)),
            ("fingerprint", Json::str(hex16(store.fingerprint()))),
            (
                "methods",
                Json::num(store.spl.program.methods().len() as u64),
            ),
            ("stmts", Json::num(store.spl.program.stmt_count() as u64)),
            ("features", Json::num(store.spl.table.len() as u64)),
        ]);
        self.quarantined.remove(name);
        self.stores.insert(name.to_owned(), store);
        Ok(resp)
    }

    fn analysis_and_mode(req: &Json) -> Result<(&str, ModelMode), String> {
        let analysis = opt_str(req, "analysis")?.unwrap_or("taint");
        if !ANALYSES.contains(&analysis) {
            return Err(format!(
                "unknown analysis `{analysis}` (taint|types|reaching-defs|uninit)"
            ));
        }
        let mode = parse_mode(opt_str(req, "mode")?.unwrap_or("on-edges"))?;
        Ok((analysis, mode))
    }

    /// Builds this request's resource envelope: per-request knobs
    /// (`timeout_ms`, `bdd_node_budget`, `bdd_op_budget`,
    /// `max_propagations`, `threads`) override the server-wide
    /// defaults — the retry-after-degrade path: re-send the same
    /// `analyze` with a bigger budget and the (uncached) degraded slot
    /// re-solves fully. `threads` only changes how fast the solve
    /// runs, never its bytes, so cached slots stay valid across
    /// requests with different thread counts.
    fn request_governor(&self, req: &Json) -> Result<GovernorOptions, String> {
        let opts = &self.engine.opts;
        let threads = match opt_u64(req, "threads")? {
            None => opts.threads,
            Some(0) => return Err("`threads` must be >= 1".into()),
            Some(n) => usize::try_from(n).map_err(|_| "`threads` is out of range".to_owned())?,
        };
        let mut gov = GovernorOptions {
            max_bdd_nodes: governance_u64(req, "bdd_node_budget", opts.bdd_node_budget)?,
            max_bdd_ops: governance_u64(req, "bdd_op_budget", opts.bdd_op_budget)?,
            max_propagations: governance_u64(req, "max_propagations", opts.max_propagations)?,
            timeout: governance_u64(req, "timeout_ms", opts.solve_timeout_ms)?
                .map(Duration::from_millis),
            ..GovernorOptions::default()
        };
        gov.solver.threads = threads;
        Ok(gov)
    }

    /// Resolves this request's lattice hints: the feature universe, the
    /// features the client needs kept precise (the request's
    /// `keep_features` array, else the server-wide `--keep-features`
    /// default), and the model's OR groups — everything the governor
    /// needs to schedule feature-sparing abstractions before it falls
    /// back to the canonical ladder. The per-request list is strict
    /// (naming an unknown feature is an error, since the client is
    /// talking about *this* product line); the server-wide default is
    /// filtered to the session's universe, because one flag may serve
    /// sessions over different product lines.
    fn lattice_hints(
        req: &Json,
        opts: &ServerOptions,
        spl: &LoadedSpl,
    ) -> Result<LatticeHints, String> {
        const KEEP_ERR: &str = "`keep_features` must be an array of feature-name strings";
        let requested: Option<Vec<String>> = match req.get("keep_features") {
            None => None,
            Some(j) => Some(
                j.as_arr()
                    .ok_or(KEEP_ERR)?
                    .iter()
                    .map(|item| item.as_str().map(str::to_owned).ok_or(KEEP_ERR))
                    .collect::<Result<_, _>>()?,
            ),
        };
        let keep = match requested {
            Some(names) => {
                let mut ids = Vec::with_capacity(names.len());
                for n in &names {
                    ids.push(
                        spl.table
                            .get(n)
                            .ok_or_else(|| format!("unknown feature `{n}` in `keep_features`"))?,
                    );
                }
                Some(ids)
            }
            None => match &opts.keep_features {
                None => return Ok(LatticeHints::default()),
                Some(names) => {
                    let ids: Vec<FeatureId> =
                        names.iter().filter_map(|n| spl.table.get(n)).collect();
                    if ids.is_empty() {
                        // None of the default names exist here — behave
                        // exactly as if no default were configured.
                        return Ok(LatticeHints::default());
                    }
                    Some(ids)
                }
            },
        };
        Ok(LatticeHints {
            universe: spl.table.iter().map(|(id, n)| (id, n.to_owned())).collect(),
            keep,
            or_groups: spl.or_groups.clone(),
        })
    }

    /// Arms the injected fault for this request if the plan's trigger
    /// matches, patching implicit budgets so the fault class has a
    /// meter to trip (a blowup needs an op budget, a stall a deadline).
    fn armed_fault(&self, seq: u64, gov: &mut GovernorOptions) -> Option<ChaosSpec> {
        if seq == 0 {
            return None;
        }
        let plan = self.engine.opts.inject_fault.filter(|p| p.trigger == seq)?;
        match plan.kind {
            FaultKind::BddBlowup => {
                gov.max_bdd_ops = gov.max_bdd_ops.or(Some(FAULT_OP_BUDGET));
            }
            FaultKind::SlowEdge => {
                gov.timeout = gov
                    .timeout
                    .or(Some(Duration::from_millis(FAULT_TIMEOUT_MS)));
            }
            FaultKind::PanicInFlow => {}
            FaultKind::BudgetExhaust => {
                // The armed meter *is* the fault: a per-attempt op budget
                // of exactly `ops` trips mid-solve at a reproducible
                // operation, with no wrapper in the flow path. Override
                // (rather than `.or()`) so the plan wins even when a
                // server-wide budget is configured.
                gov.max_bdd_ops = Some(plan.ops);
                self.engine
                    .gov
                    .faults_injected
                    .fetch_add(1, Ordering::SeqCst);
                return None;
            }
        }
        self.engine
            .gov
            .faults_injected
            .fetch_add(1, Ordering::SeqCst);
        let allowance = gov
            .timeout
            .unwrap_or(Duration::from_millis(FAULT_TIMEOUT_MS));
        Some(ChaosSpec {
            kind: plan.kind,
            slow_for: allowance + Duration::from_millis(FAULT_STALL_MARGIN_MS),
        })
    }

    fn do_analyze(&mut self, req: &Json, name: &str) -> Result<Json, String> {
        let global_seq = self.engine.gov.bump_analyze();
        let (analysis, mode) = Self::analysis_and_mode(req)?;
        let analysis = analysis.to_owned();
        let mut gov = self.request_governor(req)?;
        // The fault trigger sequence: by default the global `analyze`
        // ordinal (deterministic for the single-client transcript
        // harness); with `--inject-fault-session` the named session's
        // own ordinal, which stays deterministic under concurrency.
        let trigger_seq = match &self.engine.opts.fault_session {
            None => global_seq,
            Some(fs) if fs == name => self.stores.get(name).map_or(0, |s| s.analyze_seq + 1),
            Some(_) => 0,
        };
        let chaos = self.armed_fault(trigger_seq, &mut gov);
        let engine = Arc::clone(&self.engine);
        let store = self
            .stores
            .get_mut(name)
            .ok_or_else(|| format!("unknown session `{name}` (send a `load` first)"))?;
        gov.lattice = Self::lattice_hints(req, &engine.opts, &store.spl)?;
        store.analyze_seq += 1;
        let key = (
            store.fingerprint(),
            analysis.clone(),
            mode_str(mode).to_owned(),
        );
        let (solve, stats, outcome, solution) = match engine.cache_get(&key) {
            Some(cached) => {
                store.install_cached(&analysis, mode, Arc::clone(&cached))?;
                (
                    "cached",
                    IdeStats::default(),
                    SolveOutcome::Complete,
                    cached,
                )
            }
            None => {
                let out = match store.analyze(&analysis, mode, gov, chaos.as_ref()) {
                    Ok(out) => out,
                    Err(e) => {
                        engine.gov.solve_failures.fetch_add(1, Ordering::SeqCst);
                        return Err(e);
                    }
                };
                // Only full-precision solutions enter the cache: a
                // degraded answer must not shadow a later, better-funded
                // solve of the same fingerprint.
                if out.outcome.is_degraded() {
                    engine.gov.note_degraded(&out.solution.rung);
                } else {
                    engine.cache_insert(key, Arc::clone(&out.solution));
                }
                (out.solve, out.stats, out.outcome, out.solution)
            }
        };
        engine.set_last_solve(stats);
        let mut fields = vec![
            ("type", Json::str("ok")),
            ("request", Json::str("analyze")),
            ("session", Json::str(name)),
            ("analysis", Json::str(analysis)),
            ("mode", Json::str(mode_str(mode))),
            ("solve", Json::str(solve)),
            (
                "outcome",
                Json::str(if outcome.is_degraded() {
                    "degraded"
                } else {
                    "complete"
                }),
            ),
            ("rung", Json::str(solution.rung.clone())),
            ("propagations", Json::num(stats.propagations)),
            ("flow_evals", Json::num(stats.flow_evals)),
            ("jump_fns", Json::num(stats.jump_fn_constructions)),
            ("value_updates", Json::num(stats.value_updates)),
            ("facts", Json::num(solution.facts.len() as u64)),
            ("digest", Json::str(hex16(solution.digest))),
        ];
        if let SolveOutcome::Degraded { attempts, .. } = &outcome {
            fields.push((
                "attempts",
                Json::Arr(
                    attempts
                        .iter()
                        .map(|(point, reason)| {
                            obj(vec![
                                ("rung", Json::str(point.name())),
                                ("reason", Json::str(reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
            fields.push(("degraded_facts", Json::num(solution.facts.len() as u64)));
        }
        Ok(obj(fields))
    }

    fn do_query(&mut self, req: &Json, name: &str) -> Result<Json, String> {
        let (analysis, mode) = Self::analysis_and_mode(req)?;
        let jobs = self.engine.opts.jobs;
        let store = self.store(name)?;
        let solution = store.current_solution(analysis, mode).ok_or_else(|| {
            format!(
                "no current solution for {analysis}/{} in session `{name}` \
                 (send an `analyze` first, and after every `edit`)",
                mode_str(mode)
            )
        })?;
        let queries = req
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or("`queries` must be an array")?;
        let parsed: Vec<Result<ParsedQuery, String>> = queries
            .iter()
            .map(|q| parse_query(&store.spl.program, &store.spl.table, q))
            .collect();
        // Fan out over the worker pool. Workers borrow the rendered
        // solution (plain strings + feature expressions — no BDD handles
        // leave this thread); contiguous ordered shards keep the result
        // order, and thus the response bytes, independent of `jobs`.
        let sol: &RenderedSolution = solution;
        let (shards, _shard_stats, _jobs) = map_shards(&parsed, jobs, |_, chunk| {
            chunk
                .iter()
                .map(|item| render_query(sol, item))
                .collect::<Vec<Json>>()
        });
        let results: Vec<Json> = shards.into_iter().flatten().collect();
        Ok(obj(vec![
            ("type", Json::str("ok")),
            ("request", Json::str("query")),
            ("session", Json::str(name)),
            ("analysis", Json::str(analysis)),
            ("mode", Json::str(mode_str(mode))),
            ("count", Json::num(results.len() as u64)),
            ("results", Json::Arr(results)),
        ]))
    }

    fn do_edit(&mut self, req: &Json, name: &str) -> Result<Json, String> {
        let method = req_str(req, "method")?;
        let locals = opt_str(req, "locals")?.unwrap_or("");
        let stmts = req
            .get("stmts")
            .and_then(Json::as_arr)
            .ok_or("`stmts` must be an array of strings")?;
        let mut lines = Vec::with_capacity(stmts.len());
        for s in stmts {
            lines.push(
                s.as_str()
                    .ok_or_else(|| "`stmts` entries must be strings".to_owned())?,
            );
        }
        let method = method.to_owned();
        let locals = locals.to_owned();
        let store = self.store_mut(name)?;
        let (_mid, n) = store.edit(&method, &locals, &lines)?;
        Ok(obj(vec![
            ("type", Json::str("ok")),
            ("request", Json::str("edit")),
            ("session", Json::str(name)),
            ("method", Json::str(method)),
            ("fingerprint", Json::str(hex16(store.fingerprint()))),
            ("stmts", Json::num(n as u64)),
        ]))
    }
}
