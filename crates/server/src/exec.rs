//! The session-sharded executor: the router between transports and
//! shard workers.
//!
//! Requests enter through [`Executor::submit`] (one line of protocol
//! JSON). The router parses and classifies the line on the caller's
//! thread:
//!
//! * **parse errors / unknown types** answer immediately,
//! * **`stats`** broadcasts a snapshot job to every shard and merges
//!   the replies with the engine's counters,
//! * **`evict`** and **`shutdown`** act on the shared engine directly,
//! * **session-scoped requests** (`load`/`analyze`/`query`/`edit`) hash
//!   the session name to pick a shard and enqueue the job there.
//!
//! One shard is one worker thread owning the [`ShardState`] (sessions'
//! slots, memos, and dirty sets) of every session that hashes to it. A
//! session's requests execute on its shard in submission order, so each
//! session's response stream is deterministic — byte-identical to a
//! single-client server run — regardless of shard count or how many
//! connections interleave at the socket.
//!
//! Admission control is a per-shard in-flight bound
//! ([`crate::ServerOptions::max_inflight`]): when a shard's queue is
//! full, `submit` answers an `overloaded` error immediately instead of
//! queueing unboundedly — the client retries; nothing blocks.

use crate::engine::Engine;
use crate::handler::{obj, req_str, stats_obj, ShardSnapshot, ShardState};
use crate::REQUEST_TYPES;
use spllift_hash::FxHasher64;
use spllift_json::{parse_json, Json};
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// The executor's answer to a submitted line.
pub enum Submitted {
    /// Answered on the submitting thread (errors, `stats`, `evict`).
    Ready(String),
    /// Enqueued on a shard; the response arrives on the channel.
    Pending(mpsc::Receiver<String>),
    /// A `shutdown` request: the rendered ok-response. The transport
    /// decides how to drain and stop; the executor itself stops
    /// accepting new work once [`Executor::stop_accepting`] is called.
    Shutdown(String),
}

enum Job {
    Request {
        req: Json,
        ty: String,
        session: String,
        reply: mpsc::Sender<String>,
        inflight: Arc<AtomicUsize>,
    },
    Snapshot {
        reply: mpsc::Sender<ShardSnapshot>,
    },
}

struct Shard {
    tx: mpsc::Sender<Job>,
    inflight: Arc<AtomicUsize>,
}

/// The sharded executor. Owns the worker threads; dropping it drains
/// and joins them.
pub struct Executor {
    engine: Arc<Engine>,
    shards: Vec<Shard>,
    workers: Vec<JoinHandle<()>>,
    accepting: AtomicBool,
}

fn error_line(message: String) -> String {
    obj(vec![
        ("type", Json::str("error")),
        ("message", Json::str(message)),
    ])
    .render()
}

fn flagged_error_line(kind: &str, message: String) -> String {
    obj(vec![
        ("type", Json::str("error")),
        ("error", Json::str(kind)),
        ("message", Json::str(message)),
    ])
    .render()
}

/// The fallback response when a shard worker disappears mid-request
/// (cannot happen short of the process dying, but the transport must
/// never hang on a closed channel).
pub(crate) fn internal_error() -> String {
    flagged_error_line("internal", "shard worker lost".to_owned())
}

fn shard_of(session: &str, shards: usize) -> usize {
    let mut h = FxHasher64::default();
    h.write(session.as_bytes());
    (h.finish() % shards as u64) as usize
}

fn shard_worker(engine: Arc<Engine>, rx: mpsc::Receiver<Job>) {
    let mut state = ShardState::new(engine);
    while let Ok(job) = rx.recv() {
        match job {
            Job::Request {
                req,
                ty,
                session,
                reply,
                inflight,
            } => {
                // Panic isolation: a panic escaping any handler (a
                // solver bug, an injected fault) tears down and
                // quarantines only the session it was operating on; the
                // worker and every other session keep serving.
                // `AssertUnwindSafe` is justified because the only state
                // the panicking handler could have left half-updated is
                // the store, which `isolate_panic` discards wholesale.
                let outcome = catch_unwind(AssertUnwindSafe(|| state.handle(&req, &ty, &session)));
                let text = match outcome {
                    Ok(Ok(resp)) => resp.render(),
                    Ok(Err(msg)) => error_line(msg),
                    Err(payload) => state.isolate_panic(&session, &*payload).render(),
                };
                let _ = reply.send(text);
                inflight.fetch_sub(1, Ordering::SeqCst);
            }
            Job::Snapshot { reply } => {
                let _ = reply.send(state.snapshot());
            }
        }
    }
}

impl Executor {
    /// Spawns `engine.opts.shards` worker threads over the shared
    /// engine.
    pub fn new(engine: Arc<Engine>) -> Executor {
        let n = engine.opts.shards.max(1);
        let mut shards = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::channel();
            let inflight = Arc::new(AtomicUsize::new(0));
            let eng = Arc::clone(&engine);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("spllift-shard-{i}"))
                    .spawn(move || shard_worker(eng, rx))
                    .expect("spawn shard worker"),
            );
            shards.push(Shard { tx, inflight });
        }
        Executor {
            engine,
            shards,
            workers,
            accepting: AtomicBool::new(true),
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops admitting new requests; every subsequent `submit` answers
    /// a `shutting-down` error immediately. In-flight work completes.
    pub fn stop_accepting(&self) {
        self.accepting.store(false, Ordering::SeqCst);
    }

    /// Routes one request line. Never blocks beyond the `stats` shard
    /// barrier; session-scoped work is answered through the returned
    /// channel.
    pub fn submit(&self, line: &str) -> Submitted {
        if !self.accepting.load(Ordering::SeqCst) {
            return Submitted::Ready(flagged_error_line(
                "shutting-down",
                "server is shutting down".to_owned(),
            ));
        }
        let req = match parse_json(line) {
            Ok(req) => req,
            Err(e) => return Submitted::Ready(error_line(e)),
        };
        let ty = match req_str(&req, "type") {
            Ok(t) => t.to_owned(),
            Err(e) => return Submitted::Ready(error_line(e)),
        };
        match ty.as_str() {
            "shutdown" => Submitted::Shutdown(
                obj(vec![
                    ("type", Json::str("ok")),
                    ("request", Json::str("shutdown")),
                ])
                .render(),
            ),
            "evict" => {
                let n = self.engine.evict();
                Submitted::Ready(
                    obj(vec![
                        ("type", Json::str("ok")),
                        ("request", Json::str("evict")),
                        ("evicted", Json::num(n as u64)),
                    ])
                    .render(),
                )
            }
            "stats" => Submitted::Ready(self.stats_response()),
            "load" | "analyze" | "query" | "edit" => {
                let session = match req_str(&req, "session") {
                    Ok(s) => s.to_owned(),
                    Err(e) => return Submitted::Ready(error_line(e)),
                };
                let shard = &self.shards[shard_of(&session, self.shards.len())];
                // Admission control: bound the per-shard queue. The slot
                // is claimed optimistically and released on rejection so
                // racing submitters cannot overshoot the bound.
                let occupied = shard.inflight.fetch_add(1, Ordering::SeqCst);
                if occupied >= self.engine.opts.max_inflight {
                    shard.inflight.fetch_sub(1, Ordering::SeqCst);
                    return Submitted::Ready(flagged_error_line(
                        "overloaded",
                        format!(
                            "shard for session `{session}` is at capacity \
                             ({} requests in flight); retry later",
                            self.engine.opts.max_inflight
                        ),
                    ));
                }
                let (reply, rx) = mpsc::channel();
                let job = Job::Request {
                    req,
                    ty,
                    session,
                    reply,
                    inflight: Arc::clone(&shard.inflight),
                };
                if shard.tx.send(job).is_err() {
                    shard.inflight.fetch_sub(1, Ordering::SeqCst);
                    return Submitted::Ready(internal_error());
                }
                Submitted::Pending(rx)
            }
            other => Submitted::Ready(error_line(format!(
                "unknown request type `{other}` ({})",
                REQUEST_TYPES.join("|")
            ))),
        }
    }

    /// Builds the merged `stats` response: a snapshot barrier over every
    /// shard (each answers after its queued work, so the numbers are
    /// per-shard consistent), merged name-sorted, plus the engine's
    /// cache and governance counters.
    fn stats_response(&self) -> String {
        let mut pending = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (tx, rx) = mpsc::channel();
            if shard.tx.send(Job::Snapshot { reply: tx }).is_ok() {
                pending.push(rx);
            }
        }
        let mut sessions: Vec<(String, Json)> = Vec::new();
        let mut quarantined: Vec<String> = Vec::new();
        for rx in pending {
            if let Ok(snap) = rx.recv() {
                sessions.extend(snap.sessions);
                quarantined.extend(snap.quarantined);
            }
        }
        sessions.sort_by(|a, b| a.0.cmp(&b.0));
        quarantined.sort();
        let (entries, bytes, hits, misses, evictions) = self.engine.cache_stats();
        let gov = &self.engine.gov;
        let load = |c: &std::sync::atomic::AtomicU64| Json::num(c.load(Ordering::SeqCst));
        obj(vec![
            ("type", Json::str("ok")),
            ("request", Json::str("stats")),
            (
                "sessions",
                Json::Arr(sessions.into_iter().map(|(_, s)| s).collect()),
            ),
            (
                "cache",
                obj(vec![
                    ("entries", Json::num(entries as u64)),
                    ("bytes", Json::num(bytes as u64)),
                    ("hits", Json::num(hits)),
                    ("misses", Json::num(misses)),
                    ("evictions", Json::num(evictions)),
                ]),
            ),
            (
                "governance",
                obj(vec![
                    ("analyze_requests", load(&gov.analyze_requests)),
                    ("panics_isolated", load(&gov.panics_isolated)),
                    ("degraded_solves", load(&gov.degraded_solves)),
                    (
                        "degraded_points",
                        Json::Obj(
                            gov.degraded_points_snapshot()
                                .into_iter()
                                .map(|(point, n)| (point, Json::num(n)))
                                .collect(),
                        ),
                    ),
                    ("solve_failures", load(&gov.solve_failures)),
                    ("faults_injected", load(&gov.faults_injected)),
                    (
                        "quarantined",
                        Json::Arr(quarantined.into_iter().map(Json::str).collect()),
                    ),
                ]),
            ),
            ("last_solve", stats_obj(&self.engine.last_solve())),
        ])
        .render()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Closing the channels lets each worker drain its queue and
        // exit; joining publishes any worker panic as a server panic.
        self.shards.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
