//! The cross-session solution cache.
//!
//! Keyed by `(program fingerprint, analysis, model mode)` — the full
//! identity of a solve. Two sessions that load byte-identical programs
//! (same feature table, same model) share cache entries, and a session
//! whose edit is later reverted re-hits its old entry.
//!
//! Eviction is least-recently-used under two budgets: a maximum entry
//! count and a maximum retained-byte estimate. The most recently
//! inserted entry is never evicted, so a single oversized solution
//! still caches (and simply evicts everything else).

use crate::store::RenderedSolution;
use std::sync::Arc;

/// Cache key: `(program fingerprint, analysis name, mode string)`.
pub type CacheKey = (u64, String, String);

struct Entry {
    key: CacheKey,
    value: Arc<RenderedSolution>,
    /// Logical access time; larger = more recent.
    stamp: u64,
}

/// An LRU cache of rendered solutions with entry and byte budgets.
pub struct SolutionCache {
    entries: Vec<Entry>,
    max_entries: usize,
    max_bytes: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SolutionCache {
    /// Creates a cache holding at most `max_entries` solutions totalling
    /// at most `max_bytes` estimated bytes.
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        SolutionCache {
            entries: Vec::new(),
            max_entries: max_entries.max(1),
            max_bytes,
            stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit. Counts the
    /// access either way.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<RenderedSolution>> {
        self.stamp += 1;
        match self.entries.iter_mut().find(|e| &e.key == key) {
            Some(e) => {
                e.stamp = self.stamp;
                self.hits += 1;
                Some(Arc::clone(&e.value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, then evicts least-recently-used
    /// entries until both budgets hold. The entry just inserted is
    /// exempt from eviction.
    pub fn insert(&mut self, key: CacheKey, value: Arc<RenderedSolution>) {
        self.stamp += 1;
        self.entries.retain(|e| e.key != key);
        self.entries.push(Entry {
            key,
            value,
            stamp: self.stamp,
        });
        while self.entries.len() > 1
            && (self.entries.len() > self.max_entries || self.total_bytes() > self.max_bytes)
        {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.remove(lru);
            self.evictions += 1;
        }
    }

    /// Drops every entry, counting each as an eviction. Returns how many
    /// were dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.evictions += n as u64;
        self.entries.clear();
        n
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated retained bytes across all entries.
    pub fn total_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.value.bytes).sum()
    }

    /// `(hits, misses, evictions)` counters since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}
