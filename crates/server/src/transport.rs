//! The socket transport: many concurrent connections over one engine.
//!
//! [`SocketServer::spawn`] binds a TCP listener and serves the same
//! line-delimited JSON protocol as the stdio transport — one request
//! per line in, one response per line out, in request order *per
//! connection*. Each accepted connection gets a reader thread that
//! submits lines to the shared [`Executor`]; sessions are free to span
//! or share connections (the session name, not the connection, is the
//! unit of state and of ordering).
//!
//! # Graceful shutdown
//!
//! A `shutdown` request from any connection:
//!
//! 1. stops admission — every request submitted after this point (on
//!    any connection) answers a `shutting-down` error immediately,
//! 2. waits until every in-flight request has been answered *and
//!    written* to its connection,
//! 3. answers the `shutdown` request itself with
//!    `{"type":"ok","request":"shutdown"}`, and
//! 4. stops the accept loop.
//!
//! Idle connections (blocked reading their socket) are not waited for:
//! their threads exit when the peer closes. [`SocketServer::join`]
//! returns once the accept loop has stopped and in-flight work has
//! drained.

use crate::exec::{internal_error, Executor, Submitted};
use crate::ServerOptions;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

struct Shared {
    exec: Executor,
    addr: SocketAddr,
    /// Requests submitted but not yet written back to their connection.
    /// The shutdown drain waits on this, not on the executor's queues:
    /// a response only counts as delivered once it is on the wire.
    inflight: Mutex<usize>,
    drained: Condvar,
    stop: AtomicBool,
}

impl Shared {
    fn begin_request(&self) {
        *self.inflight.lock().expect("inflight lock") += 1;
    }

    fn end_request(&self) {
        let mut n = self.inflight.lock().expect("inflight lock");
        *n -= 1;
        if *n == 0 {
            self.drained.notify_all();
        }
    }

    /// Stops admission and blocks until every in-flight request has
    /// been answered and written.
    fn drain(&self) {
        self.exec.stop_accepting();
        let mut n = self.inflight.lock().expect("inflight lock");
        while *n > 0 {
            let (guard, _) = self
                .drained
                .wait_timeout(n, Duration::from_millis(50))
                .expect("inflight lock");
            n = guard;
        }
    }

    /// Wakes the accept loop (blocked in `accept`) so it can observe
    /// the stop flag: a throwaway self-connection.
    fn wake_accept(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running socket server. Dropping the handle does *not* stop the
/// server; send a `shutdown` request (or kill the process).
pub struct SocketServer {
    addr: SocketAddr,
    accept: JoinHandle<()>,
}

impl SocketServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving. Returns once the listener is bound, so a client
    /// may connect to [`SocketServer::addr`] immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(opts: ServerOptions, addr: &str) -> std::io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(crate::engine::Engine::new(opts));
        let shared = Arc::new(Shared {
            exec: Executor::new(engine),
            addr,
            inflight: Mutex::new(0),
            drained: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let accept = std::thread::Builder::new()
            .name("spllift-accept".to_owned())
            .spawn(move || accept_loop(listener, shared))
            .expect("spawn accept loop");
        Ok(SocketServer { addr, accept })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits until the server has shut down (a client sent `shutdown`
    /// and the drain completed).
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let sh = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("spllift-conn".to_owned())
            .spawn(move || {
                let _ = handle_connection(stream, sh);
            });
    }
    // The executor (inside `shared`) is dropped — draining and joining
    // the shard workers — when the last connection thread releases it.
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        shared.begin_request();
        match shared.exec.submit(&line) {
            Submitted::Ready(resp) => {
                let done = writeln!(writer, "{resp}").and_then(|()| writer.flush());
                shared.end_request();
                done?;
            }
            Submitted::Pending(rx) => {
                let resp = rx.recv().unwrap_or_else(|_| internal_error());
                let done = writeln!(writer, "{resp}").and_then(|()| writer.flush());
                shared.end_request();
                done?;
            }
            Submitted::Shutdown(resp) => {
                // Our own slot must not hold up the drain.
                shared.end_request();
                shared.drain();
                writeln!(writer, "{resp}")?;
                writer.flush()?;
                shared.wake_accept();
                return Ok(());
            }
        }
    }
    Ok(())
}
