//! Per-session mutable state: the [`Store`].
//!
//! One [`Store`] corresponds to one client session over one loaded
//! product line. It is the cheap, session-private half of the
//! engine/store split: a shared [`crate::engine::LoadedSpl`] artifact
//! (copy-on-write on edit), a handle to that artifact's shared BDD
//! space, and per-analysis incremental solver state.
//!
//! The BDD manager is the thread-safe hash-consed store (DESIGN.md
//! §12), so the context handle here is a cheap clone of the artifact's
//! [`crate::engine::SharedBddSpace`]: every session of the same
//! interned product line builds constraints in one shared node store.
//! A `Store` still lives its whole life on the executor shard that
//! created it — shard confinement is what keeps each session's
//! response stream in submission order — and governed solves serialize
//! on the space's solve lock (budgets arm per-manager baselines).
//! Worker threads outside the shard only ever see [`RenderedSolution`]
//! — plain strings and [`FeatureExpr`]s.
//!
//! Each `(analysis, model-mode)` pair owns an [`AnalysisSlot`] with the
//! [`SolverMemo`] of its most recent solve. An `edit` records the edited
//! method as a dirty root in every slot; the next `analyze` of a slot
//! derives the dirty *set* as the transitive-caller closure of the
//! accumulated roots ([`spllift_ir::transitive_callers`]) and re-solves
//! incrementally, reusing the memo entries of every clean method.

use crate::engine::LoadedSpl;
use spllift_analyses::{
    DefFact, PossibleTypes, ReachingDefs, TaintAnalysis, TaintFact, TypeFact, UninitFact,
    UninitVars,
};
use spllift_bdd::Bdd;
use spllift_core::{
    ConstraintEdge, GovernorOptions, LatticePoint, LiftedSolution, ModelMode, SolveOutcome,
    SolverMemo,
};
use spllift_features::{BddConstraintContext, FeatureExpr};
use spllift_hash::{FastMap, FxHasher64};
use spllift_ide::IdeStats;
use spllift_ifds::{Icfg, IfdsProblem};
use spllift_ir::text::parse_body_edit;
use spllift_ir::{transitive_callers, MethodId, Program, ProgramIcfg};
use spllift_spl::{ChaosWrapper, FaultKind};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

/// One `(statement, fact)` result row of a rendered solution.
#[derive(Debug, Clone)]
pub struct FactRow {
    /// Canonical statement key (`m<method>:<index>`).
    pub stmt: String,
    /// The fact, in its `Debug` rendering (e.g. `Local(LocalId(1))`).
    pub fact: String,
    /// Canonical sum-of-cubes constraint string.
    pub cube: String,
    /// The constraint as a manager-free feature expression, for
    /// `holds_in` evaluation on worker threads.
    pub expr: FeatureExpr,
    /// `true` when the constraint comes from a degraded (non-top-rung)
    /// solve — it is then weaker-or-equal to the precise one, and query
    /// responses flag it so reports stay honest.
    pub degraded: bool,
}

/// The reachability row of one statement.
#[derive(Debug, Clone)]
pub struct ReachRow {
    /// Canonical statement key.
    pub stmt: String,
    /// Reachability constraint (sum of cubes).
    pub cube: String,
    /// Manager-free form of the constraint.
    pub expr: FeatureExpr,
    /// See [`FactRow::degraded`].
    pub degraded: bool,
}

/// A fully rendered, immutable solution of one `(program, analysis,
/// mode)` triple: every constraint is materialized as a canonical cube
/// string plus a manager-free [`FeatureExpr`].
///
/// This is the value the engine's solution cache stores and the query
/// worker pool reads — it is `Send + Sync` by construction (no BDD
/// handles), and its rendering is deterministic, so two solves of
/// identical input produce identical `digest`s.
#[derive(Debug)]
pub struct RenderedSolution {
    /// All satisfiable `(stmt, fact)` rows, sorted by statement then
    /// fact (the analyses' fact `Ord`).
    pub facts: Vec<FactRow>,
    /// One row per statement of every entry-reachable method, in
    /// method/index order; unreachable statements render as `false`.
    pub reach: Vec<ReachRow>,
    /// Counters of the solve that produced this solution.
    pub stats: IdeStats,
    /// Stable name of the variability-abstraction lattice point that
    /// produced this solution (`"full"` unless the solve degraded under
    /// resource pressure; e.g. `"no-model"` or
    /// `"confound(Base)+project(F,G)"`).
    pub rung: String,
    /// `true` iff `rung` is not the top of the lattice.
    pub degraded: bool,
    /// Order-sensitive hash over every rendered row (and the rung).
    pub digest: u64,
    /// Approximate retained size, for the cache's byte budget.
    pub bytes: usize,
    fact_index: FastMap<(String, String), usize>,
    reach_index: FastMap<String, usize>,
}

impl RenderedSolution {
    /// The row for `(stmt, fact)`, if its constraint is satisfiable.
    pub fn fact_row(&self, stmt: &str, fact: &str) -> Option<&FactRow> {
        self.fact_index
            .get(&(stmt.to_owned(), fact.to_owned()))
            .map(|&i| &self.facts[i])
    }

    /// The reachability row for `stmt`, if the statement belongs to an
    /// entry-reachable method.
    pub fn reach_row(&self, stmt: &str) -> Option<&ReachRow> {
        self.reach_index.get(stmt).map(|&i| &self.reach[i])
    }
}

fn render_solution<D>(
    solution: &LiftedSolution<'_, ProgramIcfg<'_>, D, Bdd>,
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    point: &LatticePoint,
) -> RenderedSolution
where
    D: Clone + Eq + Ord + Hash + std::fmt::Debug,
{
    let rung = point.name();
    let degraded = !point.is_full();
    let mut facts = Vec::new();
    let mut reach = Vec::new();
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let r = solution.reachability_of(s);
            reach.push(ReachRow {
                stmt: s.to_string(),
                cube: r.to_cube_string(),
                expr: ctx.to_expr(&r),
                degraded,
            });
            let mut rows: Vec<(D, Bdd)> = solution.results_at(s).into_iter().collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            for (d, c) in rows {
                facts.push(FactRow {
                    stmt: s.to_string(),
                    fact: format!("{d:?}"),
                    cube: c.to_cube_string(),
                    expr: ctx.to_expr(&c),
                    degraded,
                });
            }
        }
    }
    let mut h = FxHasher64::default();
    rung.as_str().hash(&mut h);
    let mut bytes = 0usize;
    for row in &facts {
        row.stmt.hash(&mut h);
        row.fact.hash(&mut h);
        row.cube.hash(&mut h);
        bytes += row.stmt.len() + row.fact.len() + row.cube.len() + 96;
    }
    for row in &reach {
        row.stmt.hash(&mut h);
        row.cube.hash(&mut h);
        bytes += row.stmt.len() + row.cube.len() + 64;
    }
    let fact_index = facts
        .iter()
        .enumerate()
        .map(|(i, r)| ((r.stmt.clone(), r.fact.clone()), i))
        .collect();
    let reach_index = reach
        .iter()
        .enumerate()
        .map(|(i, r)| (r.stmt.clone(), i))
        .collect();
    RenderedSolution {
        facts,
        reach,
        stats: solution.stats(),
        rung,
        degraded,
        digest: h.finish(),
        bytes,
        fact_index,
        reach_index,
    }
}

/// Per-`(analysis, mode)` incremental solver state.
pub struct SolvedState<D> {
    memo: SolverMemo<MethodId, spllift_ir::StmtRef, D, ConstraintEdge<Bdd>>,
    /// Fingerprint of the program state `memo` was computed on.
    memo_fingerprint: Option<u64>,
    /// Methods edited since `memo` was computed.
    dirty_roots: BTreeSet<MethodId>,
    /// The most recent solution for this slot, with the fingerprint it
    /// belongs to.
    last: Option<(u64, Arc<RenderedSolution>)>,
}

impl<D> Default for SolvedState<D> {
    fn default() -> Self {
        SolvedState {
            memo: SolverMemo::default(),
            memo_fingerprint: None,
            dirty_roots: BTreeSet::new(),
            last: None,
        }
    }
}

/// The outcome of one `analyze`.
pub struct AnalyzeOutcome {
    /// `"cold"` or `"incremental"` (the server adds `"cached"`).
    pub solve: &'static str,
    /// Counters of this solve.
    pub stats: IdeStats,
    /// How the governed solve finished (which ladder rung answered, and
    /// every abandoned attempt with its abort reason).
    pub outcome: SolveOutcome,
    /// The rendered solution.
    pub solution: Arc<RenderedSolution>,
}

/// A one-shot fault to inject into the next solve (the server's
/// `--inject-fault` hook). The wrapper carries a single charge, so the
/// first ladder rung absorbs the fault and the fallback runs clean.
pub struct ChaosSpec {
    /// The fault class.
    pub kind: FaultKind,
    /// How long a [`FaultKind::SlowEdge`] evaluation stalls; must exceed
    /// the governor's per-rung deadline to be observed.
    pub slow_for: Duration,
}

fn analyze_generic<P, D>(
    problem: &P,
    program: &Program,
    ctx: &BddConstraintContext,
    model: Option<&FeatureExpr>,
    mode: ModelMode,
    fp: u64,
    gov: GovernorOptions,
    chaos: Option<&ChaosSpec>,
    state: &mut SolvedState<D>,
) -> Result<AnalyzeOutcome, String>
where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D> + Sync,
    D: Clone + Eq + Ord + Hash + std::fmt::Debug + Send + Sync,
{
    let icfg = ProgramIcfg::new(program);
    // Pick the clean set. The memo's soundness contract (SolverMemo)
    // requires the dirty set to contain every transitive caller of every
    // edited method. Computing the closure on the *current* program is
    // sound because an edit can only replace a method body — signatures,
    // classes, and the hierarchy are fixed — so call edges out of
    // unchanged bodies are identical before and after the edit.
    let (kind, clean): (&'static str, Box<dyn Fn(MethodId) -> bool>) = match state.memo_fingerprint
    {
        Some(mfp) if mfp == fp => ("incremental", Box::new(|_| true)),
        Some(_) if !state.dirty_roots.is_empty() => {
            let dirty = transitive_callers(program, icfg.hierarchy(), &state.dirty_roots);
            ("incremental", Box::new(move |m| !dirty.contains(&m)))
        }
        _ => ("cold", Box::new(|_| false)),
    };
    let result = match chaos {
        None => LiftedSolution::solve_governed_memoized(
            problem,
            &icfg,
            ctx,
            model,
            mode,
            gov,
            &state.memo,
            &*clean,
        ),
        Some(spec) => {
            let wrapped = ChaosWrapper::new(
                problem,
                spec.kind,
                1,
                spec.slow_for,
                Box::new(|| ctx.manager().charge_ops(u64::MAX)),
            );
            LiftedSolution::solve_governed_memoized(
                &wrapped,
                &icfg,
                ctx,
                model,
                mode,
                gov,
                &state.memo,
                &*clean,
            )
        }
    };
    let (solution, outcome, next_memo) =
        result.map_err(|abort| format!("solve aborted at every ladder rung: {abort}"))?;
    let stats = solution.stats();
    let rendered = Arc::new(render_solution(&solution, &icfg, ctx, &outcome.point()));
    if outcome.is_degraded() {
        // A degraded solve's jump functions are weaker than full
        // precision; keeping them would leak the degradation into the
        // next (possibly re-budgeted) round. Start that round cold.
        state.memo = SolverMemo::default();
        state.memo_fingerprint = None;
    } else {
        state.memo = next_memo;
        state.memo_fingerprint = Some(fp);
    }
    state.dirty_roots.clear();
    state.last = Some((fp, Arc::clone(&rendered)));
    Ok(AnalyzeOutcome {
        solve: kind,
        stats,
        outcome,
        solution: rendered,
    })
}

/// One analysis slot: the incremental state of a single `(analysis,
/// mode)` pair, monomorphized per fact domain.
pub enum AnalysisSlot {
    /// Taint analysis state.
    Taint(SolvedState<TaintFact>),
    /// Possible-types analysis state.
    Types(SolvedState<TypeFact>),
    /// Reaching-definitions analysis state.
    Defs(SolvedState<DefFact>),
    /// Uninitialized-variables analysis state.
    Uninit(SolvedState<UninitFact>),
}

/// The analysis names `analyze`/`query` accept.
pub const ANALYSES: [&str; 4] = ["taint", "types", "reaching-defs", "uninit"];

impl AnalysisSlot {
    fn new(analysis: &str) -> Result<AnalysisSlot, String> {
        Ok(match analysis {
            "taint" => AnalysisSlot::Taint(SolvedState::default()),
            "types" => AnalysisSlot::Types(SolvedState::default()),
            "reaching-defs" => AnalysisSlot::Defs(SolvedState::default()),
            "uninit" => AnalysisSlot::Uninit(SolvedState::default()),
            other => {
                return Err(format!(
                    "unknown analysis `{other}` (taint|types|reaching-defs|uninit)"
                ))
            }
        })
    }

    fn mark_dirty(&mut self, m: MethodId) {
        match self {
            AnalysisSlot::Taint(s) => s.dirty_roots.insert(m),
            AnalysisSlot::Types(s) => s.dirty_roots.insert(m),
            AnalysisSlot::Defs(s) => s.dirty_roots.insert(m),
            AnalysisSlot::Uninit(s) => s.dirty_roots.insert(m),
        };
    }

    fn set_last(&mut self, fp: u64, solution: Arc<RenderedSolution>) {
        match self {
            AnalysisSlot::Taint(s) => s.last = Some((fp, solution)),
            AnalysisSlot::Types(s) => s.last = Some((fp, solution)),
            AnalysisSlot::Defs(s) => s.last = Some((fp, solution)),
            AnalysisSlot::Uninit(s) => s.last = Some((fp, solution)),
        }
    }

    fn last(&self) -> Option<&(u64, Arc<RenderedSolution>)> {
        match self {
            AnalysisSlot::Taint(s) => s.last.as_ref(),
            AnalysisSlot::Types(s) => s.last.as_ref(),
            AnalysisSlot::Defs(s) => s.last.as_ref(),
            AnalysisSlot::Uninit(s) => s.last.as_ref(),
        }
    }
}

/// Parses a protocol model-mode string.
pub fn parse_mode(s: &str) -> Result<ModelMode, String> {
    match s {
        "on-edges" => Ok(ModelMode::OnEdges),
        "start-value" => Ok(ModelMode::AtStartValue),
        "ignore" => Ok(ModelMode::Ignore),
        other => Err(format!(
            "unknown mode `{other}` (on-edges|start-value|ignore)"
        )),
    }
}

/// The protocol string of a model mode.
pub fn mode_str(mode: ModelMode) -> &'static str {
    match mode {
        ModelMode::OnEdges => "on-edges",
        ModelMode::AtStartValue => "start-value",
        ModelMode::Ignore => "ignore",
    }
}

fn slot_key(analysis: &str, mode: ModelMode) -> String {
    format!("{analysis}/{}", mode_str(mode))
}

/// One session's private state: a shared artifact (copy-on-write), a
/// handle to its shared BDD space, and per-analysis incremental state.
/// Confined to one executor shard so the session's responses keep
/// their submission order.
pub struct Store {
    /// The loaded product line, shared with the engine's intern table
    /// and any other session of the same fingerprint until edited.
    pub spl: Arc<LoadedSpl>,
    /// Cheap handle to the artifact's shared BDD space: sessions of
    /// the same interned product line hash-cons into one node store.
    pub ctx: BddConstraintContext,
    /// `analyze` requests this session has served — the per-session
    /// fault trigger sequence (`--inject-fault-session`).
    pub analyze_seq: u64,
    slots: BTreeMap<String, AnalysisSlot>,
}

impl Store {
    /// Creates a store over an already-validated artifact, joining the
    /// artifact's shared BDD space.
    pub fn new(spl: Arc<LoadedSpl>) -> Store {
        let ctx = spl.space.ctx.clone();
        Store {
            spl,
            ctx,
            analyze_seq: 0,
            slots: BTreeMap::new(),
        }
    }

    /// The session's current program fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.spl.fingerprint
    }

    /// The slot keys that currently hold state, for `stats`.
    pub fn slot_keys(&self) -> Vec<String> {
        self.slots.keys().cloned().collect()
    }

    /// Replaces the body of `method` (resolved by name) with a body
    /// parsed from repro-format text, marks the method dirty in every
    /// analysis slot, and refreshes the fingerprint. Returns the method
    /// id and the new statement count.
    ///
    /// The artifact is copy-on-write: the first edit detaches this
    /// session's `LoadedSpl` from the engine's shared copy
    /// ([`Arc::make_mut`]); other sessions of the same fingerprint are
    /// unaffected.
    pub fn edit(
        &mut self,
        method: &str,
        locals: &str,
        stmt_lines: &[&str],
    ) -> Result<(MethodId, usize), String> {
        let mid = self
            .spl
            .program
            .find_method(method)
            .ok_or_else(|| format!("unknown method `{method}`"))?;
        if self.spl.program.method(mid).body.is_none() {
            return Err(format!("method `{method}` has no body to edit"));
        }
        let new_body = parse_body_edit(&self.spl.program, &self.spl.table, mid, locals, stmt_lines)
            .map_err(|e| format!("edit `{method}`: {e}"))?;
        let spl = Arc::make_mut(&mut self.spl);
        let old_body = spl.program.body(mid).clone();
        *spl.program.body_mut(mid) = new_body;
        if let Err(e) = spl.program.check() {
            *spl.program.body_mut(mid) = old_body;
            return Err(format!("edit `{method}` produces an invalid program: {e}"));
        }
        spl.refresh_fingerprint();
        for slot in self.slots.values_mut() {
            slot.mark_dirty(mid);
        }
        Ok((mid, self.spl.program.body(mid).stmts.len()))
    }

    /// Runs (or incrementally re-runs) `analysis` under `mode`, governed
    /// by the `gov` resource envelope (all-unlimited for the classic
    /// ungoverned behavior). `chaos` injects a one-shot fault into this
    /// solve — the fault-injection harness only; `None` in production.
    pub fn analyze(
        &mut self,
        analysis: &str,
        mode: ModelMode,
        gov: GovernorOptions,
        chaos: Option<&ChaosSpec>,
    ) -> Result<AnalyzeOutcome, String> {
        let fresh = AnalysisSlot::new(analysis)?;
        let slot = self.slots.entry(slot_key(analysis, mode)).or_insert(fresh);
        let fp = self.spl.fingerprint;
        let spl = &self.spl;
        let model = spl.model.as_ref();
        // Serialize governed solves on the shared BDD space: budgets
        // arm per-manager baselines, so a concurrently armed solve in
        // another session of the same artifact would meter (and could
        // exhaust) this one. Sessions over different product lines hold
        // different locks and proceed concurrently. A solve that
        // panicked (chaos, quarantine) poisons the lock but not the
        // store — hash-consing is append-only and budgets latch
        // separately — so poison is recovered, or a re-loaded session
        // could never solve its program again.
        let _armed = spl
            .space
            .solve_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match slot {
            AnalysisSlot::Taint(state) => analyze_generic(
                &TaintAnalysis::secret_to_print(),
                &spl.program,
                &self.ctx,
                model,
                mode,
                fp,
                gov,
                chaos,
                state,
            ),
            AnalysisSlot::Types(state) => analyze_generic(
                &PossibleTypes::new(),
                &spl.program,
                &self.ctx,
                model,
                mode,
                fp,
                gov,
                chaos,
                state,
            ),
            AnalysisSlot::Defs(state) => analyze_generic(
                &ReachingDefs::new(),
                &spl.program,
                &self.ctx,
                model,
                mode,
                fp,
                gov,
                chaos,
                state,
            ),
            AnalysisSlot::Uninit(state) => analyze_generic(
                &UninitVars::new(),
                &spl.program,
                &self.ctx,
                model,
                mode,
                fp,
                gov,
                chaos,
                state,
            ),
        }
    }

    /// Installs a cache-hit solution as the slot's current one (so
    /// queries work without a re-solve), creating the slot if needed.
    pub fn install_cached(
        &mut self,
        analysis: &str,
        mode: ModelMode,
        solution: Arc<RenderedSolution>,
    ) -> Result<(), String> {
        let fresh = AnalysisSlot::new(analysis)?;
        let slot = self.slots.entry(slot_key(analysis, mode)).or_insert(fresh);
        slot.set_last(self.spl.fingerprint, solution);
        Ok(())
    }

    /// The current solution for `(analysis, mode)`, if one exists *and*
    /// matches the session's present fingerprint (i.e. no edit since).
    pub fn current_solution(
        &self,
        analysis: &str,
        mode: ModelMode,
    ) -> Option<&Arc<RenderedSolution>> {
        let (fp, rc) = self.slots.get(&slot_key(analysis, mode))?.last()?;
        (*fp == self.spl.fingerprint).then_some(rc)
    }
}
