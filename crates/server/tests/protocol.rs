//! Acceptance tests for the resident analysis server: warm-path cache
//! hits with zero propagations, incremental re-analysis strictly below
//! a cold solve with bit-identical results, jobs-invariant responses,
//! and malformed-input resilience.

use spllift_json::{parse_json, Json};
use spllift_server::{Server, ServerOptions};

/// A taint subject in the repro text format (so statement indices are
/// pinned): `main` calls `secret` → `h2` → `h1` and `h3`; the `y = 0`
/// kill is annotated with feature `F`, so the `print(y)` leak exists
/// exactly under `!F`. Method ids: secret=m0, print=m1, h1=m2, h2=m3,
/// h3=m4, main=m5.
const SRC: &str = "\
# spllift repro v1
features F G

method secret(): int
  locals
    0: nop
    1: return 7

method print(p0: int)
  locals
    0: nop
    1: return

method h1(a: int): int
  locals t: int
    0: nop
    1: t = a + 1
    2: return t

method h2(a: int): int
  locals t: int, u: int
    0: nop
    1: t = h1(a)
    2: u = t + 2
    3: return u

method h3(a: int): int
  locals t: int
    0: nop
    1: t = a + 2
    2: return t

method main()
  locals s: int, x: int, y: int
    0: nop
    1: s = secret()
    2: x = h2(s)
    3: y = h3(x)
    4: y = 0 @ F
    5: print(y)
    6: return

entry main
";

fn server(jobs: usize) -> Server {
    Server::new(ServerOptions {
        jobs,
        ..ServerOptions::default()
    })
}

fn send(srv: &mut Server, req: &Json) -> Json {
    let (resp, _) = srv.handle_line(&req.render());
    parse_json(&resp).unwrap_or_else(|e| panic!("unparseable response: {e}"))
}

fn obj(fields: &[(&str, Json)]) -> Json {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    )
}

fn load_req(session: &str) -> Json {
    obj(&[
        ("type", Json::str("load")),
        ("session", Json::str(session)),
        ("source", Json::str(SRC)),
    ])
}

fn analyze_req(session: &str) -> Json {
    obj(&[
        ("type", Json::str("analyze")),
        ("session", Json::str(session)),
        ("analysis", Json::str("taint")),
    ])
}

/// Replaces `h3` with a body computing `a + 5` instead of `a + 2` —
/// a change that dirties only `h3` and its one caller `main`.
fn edit_req(session: &str) -> Json {
    obj(&[
        ("type", Json::str("edit")),
        ("session", Json::str(session)),
        ("method", Json::str("h3")),
        ("locals", Json::str("t: int")),
        (
            "stmts",
            Json::Arr(vec![
                Json::str("0: nop"),
                Json::str("1: t = a + 5"),
                Json::str("2: return t"),
            ]),
        ),
    ])
}

fn field<'a>(resp: &'a Json, key: &str) -> &'a Json {
    resp.get(key)
        .unwrap_or_else(|| panic!("missing `{key}` in {}", resp.render()))
}

fn num(resp: &Json, key: &str) -> u64 {
    field(resp, key)
        .as_u64()
        .unwrap_or_else(|| panic!("`{key}` not a u64 in {}", resp.render()))
}

fn text<'a>(resp: &'a Json, key: &str) -> &'a str {
    field(resp, key)
        .as_str()
        .unwrap_or_else(|| panic!("`{key}` not a string in {}", resp.render()))
}

fn assert_ok(resp: &Json) {
    assert_eq!(text(resp, "type"), "ok", "response: {}", resp.render());
}

#[test]
fn warm_path_serves_from_cache_with_zero_propagations() {
    let mut srv = server(2);
    assert_ok(&send(&mut srv, &load_req("s1")));

    let cold = send(&mut srv, &analyze_req("s1"));
    assert_ok(&cold);
    assert_eq!(text(&cold, "solve"), "cold");
    assert!(num(&cold, "propagations") > 0);
    let digest = text(&cold, "digest").to_owned();

    // Second analyze: cache hit, zero solver work.
    let warm = send(&mut srv, &analyze_req("s1"));
    assert_ok(&warm);
    assert_eq!(text(&warm, "solve"), "cached");
    assert_eq!(num(&warm, "propagations"), 0);
    assert_eq!(text(&warm, "digest"), digest);

    // Even with the cache evicted, the retained solver memo re-solves
    // the unchanged program without a single propagation.
    let evict = send(&mut srv, &obj(&[("type", Json::str("evict"))]));
    assert_ok(&evict);
    assert_eq!(num(&evict, "evicted"), 1);
    let memo = send(&mut srv, &analyze_req("s1"));
    assert_ok(&memo);
    assert_eq!(text(&memo, "solve"), "incremental");
    assert_eq!(num(&memo, "propagations"), 0);
    assert_eq!(text(&memo, "digest"), digest);

    let stats = send(&mut srv, &obj(&[("type", Json::str("stats"))]));
    assert_ok(&stats);
    let cache = field(&stats, "cache");
    assert_eq!(num(cache, "hits"), 1);
    assert_eq!(num(cache, "misses"), 2);
    assert_eq!(num(cache, "evictions"), 1);
    assert_eq!(num(field(&stats, "last_solve"), "propagations"), 0);
}

#[test]
fn incremental_reanalysis_beats_cold_and_is_bit_identical() {
    let mut srv = server(2);
    // Session `a`: cold solve, then edit h3, then incremental re-solve.
    assert_ok(&send(&mut srv, &load_req("a")));
    let cold_orig = send(&mut srv, &analyze_req("a"));
    assert_eq!(text(&cold_orig, "solve"), "cold");

    let edit = send(&mut srv, &edit_req("a"));
    assert_ok(&edit);
    assert_eq!(num(&edit, "stmts"), 3);

    let inc = send(&mut srv, &analyze_req("a"));
    assert_ok(&inc);
    assert_eq!(text(&inc, "solve"), "incremental");
    let p_inc = num(&inc, "propagations");
    assert!(p_inc > 0, "an edited method must be re-solved");

    // Session `b`: same program, same edit, but solved cold (the cache
    // is cleared so the incremental result cannot leak in).
    assert_ok(&send(&mut srv, &load_req("b")));
    assert_ok(&send(&mut srv, &edit_req("b")));
    assert_ok(&send(&mut srv, &obj(&[("type", Json::str("evict"))])));
    let cold_edit = send(&mut srv, &analyze_req("b"));
    assert_ok(&cold_edit);
    assert_eq!(text(&cold_edit, "solve"), "cold");
    let p_cold = num(&cold_edit, "propagations");

    assert!(
        p_inc < p_cold,
        "incremental ({p_inc}) must be strictly below cold ({p_cold})"
    );
    // Bit-identical solution: same digest over every (stmt, fact,
    // constraint) row, and the same fact count.
    assert_eq!(text(&inc, "digest"), text(&cold_edit, "digest"));
    assert_eq!(num(&inc, "facts"), num(&cold_edit, "facts"));
}

#[test]
fn queries_answer_constraints_and_configurations() {
    let mut srv = server(3);
    assert_ok(&send(&mut srv, &load_req("q")));
    assert_ok(&send(&mut srv, &analyze_req("q")));

    let query = obj(&[
        ("type", Json::str("query")),
        ("session", Json::str("q")),
        ("analysis", Json::str("taint")),
        (
            "queries",
            Json::Arr(vec![
                // The entry nop is reachable unconditionally.
                obj(&[
                    ("kind", Json::str("reachability_of")),
                    ("stmt", Json::str("main:0")),
                ]),
                // `y = 0 @ F` is still *reached* in every variant — the
                // annotation gates its effect, not its CFG position.
                obj(&[
                    ("kind", Json::str("reachability_of")),
                    ("stmt", Json::str("main:4")),
                ]),
                // y (LocalId(2)) is tainted at the print call iff !F.
                obj(&[
                    ("kind", Json::str("constraint_of")),
                    ("stmt", Json::str("main:5")),
                    ("fact", Json::str("Local(LocalId(2))")),
                ]),
                obj(&[
                    ("kind", Json::str("holds_in")),
                    ("stmt", Json::str("main:5")),
                    ("fact", Json::str("Local(LocalId(2))")),
                    ("config", Json::Arr(vec![])),
                ]),
                obj(&[
                    ("kind", Json::str("holds_in")),
                    ("stmt", Json::str("main:5")),
                    ("fact", Json::str("Local(LocalId(2))")),
                    ("config", Json::Arr(vec![Json::str("F")])),
                ]),
                // Unknown fact: semantically ⊥, not an error.
                obj(&[
                    ("kind", Json::str("constraint_of")),
                    ("stmt", Json::str("main:0")),
                    ("fact", Json::str("Local(LocalId(99))")),
                ]),
                // Unknown statement: a per-query error.
                obj(&[
                    ("kind", Json::str("reachability_of")),
                    ("stmt", Json::str("main:99")),
                ]),
            ]),
        ),
    ]);
    let resp = send(&mut srv, &query);
    assert_ok(&resp);
    assert_eq!(num(&resp, "count"), 7);
    let results = field(&resp, "results").as_arr().unwrap();

    assert_eq!(text(&results[0], "constraint"), "true");
    assert_eq!(results[0].get("stmt").unwrap().as_str(), Some("m5:0"));
    assert_eq!(text(&results[1], "constraint"), "true");
    assert_eq!(text(&results[2], "constraint"), "(!F)");
    assert_eq!(results[3].get("holds"), Some(&Json::Bool(true)));
    assert_eq!(results[4].get("holds"), Some(&Json::Bool(false)));
    assert_eq!(text(&results[5], "constraint"), "false");
    assert!(text(&results[6], "error").contains("out of range"));
}

#[test]
fn responses_are_byte_identical_for_every_jobs_value() {
    let requests: Vec<String> = vec![
        load_req("j").render(),
        analyze_req("j").render(),
        obj(&[
            ("type", Json::str("query")),
            ("session", Json::str("j")),
            (
                "queries",
                Json::Arr(
                    (0..7)
                        .flat_map(|i| {
                            [
                                obj(&[
                                    ("kind", Json::str("reachability_of")),
                                    ("stmt", Json::str(format!("main:{i}"))),
                                ]),
                                obj(&[
                                    ("kind", Json::str("constraint_of")),
                                    ("stmt", Json::str(format!("main:{i}"))),
                                    ("fact", Json::str("Local(LocalId(2))")),
                                ]),
                            ]
                        })
                        .collect(),
                ),
            ),
        ])
        .render(),
        edit_req("j").render(),
        analyze_req("j").render(),
        obj(&[("type", Json::str("stats"))]).render(),
        obj(&[("type", Json::str("shutdown"))]).render(),
    ];
    let transcript = |jobs: usize| -> String {
        let mut srv = server(jobs);
        let mut out = String::new();
        for req in &requests {
            let (resp, shutdown) = srv.handle_line(req);
            out.push_str(&resp);
            out.push('\n');
            if shutdown {
                break;
            }
        }
        out
    };
    let one = transcript(1);
    assert_eq!(one, transcript(2), "jobs=2 diverges from jobs=1");
    assert_eq!(one, transcript(8), "jobs=8 diverges from jobs=1");
}

#[test]
fn malformed_requests_error_and_the_server_keeps_serving() {
    let mut srv = server(2);
    let err = |srv: &mut Server, line: &str| -> String {
        let (resp, shutdown) = srv.handle_line(line);
        assert!(!shutdown);
        let v = parse_json(&resp).unwrap();
        assert_eq!(text(&v, "type"), "error", "response: {resp}");
        text(&v, "message").to_owned()
    };

    // Truncated JSON.
    assert!(err(&mut srv, "{\"type\":\"loa").contains("json parse error"));
    // Unknown request type.
    assert!(err(&mut srv, "{\"type\":\"flush\"}").contains("unknown request type"));
    // Query against a session that was never loaded.
    let unloaded = obj(&[
        ("type", Json::str("query")),
        ("session", Json::str("ghost")),
        ("queries", Json::Arr(vec![])),
    ]);
    assert!(err(&mut srv, &unloaded.render()).contains("unknown session"));
    // Load with no program payload at all.
    assert!(err(&mut srv, "{\"type\":\"load\",\"session\":\"x\"}").contains("exactly one"));

    // The server still serves after every failure above.
    assert_ok(&send(&mut srv, &load_req("x")));
    // Query before analyze is an error, then analyze unlocks it.
    let early = obj(&[
        ("type", Json::str("query")),
        ("session", Json::str("x")),
        ("queries", Json::Arr(vec![])),
    ]);
    assert!(err(&mut srv, &early.render()).contains("analyze"));
    assert_ok(&send(&mut srv, &analyze_req("x")));
    // Edit of an unknown method fails and leaves the session usable...
    let bad_edit = obj(&[
        ("type", Json::str("edit")),
        ("session", Json::str("x")),
        ("method", Json::str("nope")),
        ("stmts", Json::Arr(vec![])),
    ]);
    assert!(err(&mut srv, &bad_edit.render()).contains("unknown method"));
    // ...with its solution still current (no spurious invalidation).
    let warm = send(&mut srv, &analyze_req("x"));
    assert_eq!(text(&warm, "solve"), "cached");

    // An edit that breaks a program invariant is rejected atomically.
    let broken_edit = obj(&[
        ("type", Json::str("edit")),
        ("session", Json::str("x")),
        ("method", Json::str("h3")),
        ("stmts", Json::Arr(vec![Json::str("0: nop")])),
    ]);
    let msg = err(&mut srv, &broken_edit.render());
    assert!(msg.contains("invalid program"), "got: {msg}");
    let still = send(&mut srv, &analyze_req("x"));
    assert_eq!(
        text(&still, "solve"),
        "cached",
        "edit must have rolled back"
    );
}

#[test]
fn cache_evicts_least_recently_used_under_entry_budget() {
    let mut srv = Server::new(ServerOptions {
        jobs: 1,
        cache_entries: 1,
        cache_bytes: 1 << 30,
        ..ServerOptions::default()
    });
    assert_ok(&send(&mut srv, &load_req("s")));
    assert_ok(&send(&mut srv, &analyze_req("s")));
    // A second analysis displaces the first from the 1-entry cache.
    let types = obj(&[
        ("type", Json::str("analyze")),
        ("session", Json::str("s")),
        ("analysis", Json::str("types")),
    ]);
    assert_ok(&send(&mut srv, &types));
    let stats = send(&mut srv, &obj(&[("type", Json::str("stats"))]));
    let cache = field(&stats, "cache");
    assert_eq!(num(cache, "entries"), 1);
    assert_eq!(num(cache, "evictions"), 1);
    // The taint entry is gone (miss), the types entry survives as LRU.
    let again = send(&mut srv, &analyze_req("s"));
    assert_ne!(text(&again, "solve"), "cached");
}
