//! The inter-procedural control-flow-graph abstraction.

use std::fmt::Debug;
use std::hash::Hash;

/// An inter-procedural control-flow graph (ICFG).
///
/// This is the interface both the IFDS tabulation solver and the IDE solver
/// require from a program representation. `spllift-ir` implements it for the
/// Jimple-like IR; [`crate::SimpleGraph`] implements it for hand-built test
/// graphs.
///
/// Conventions (matching Soot/Heros):
///
/// * every method has exactly one *start point* (a synthetic entry is fine),
/// * a *call* statement transfers control to the start points of its
///   callees; its intra-procedural successors are its *return sites*,
/// * an *exit* statement has no successors; control returns to the return
///   sites of the corresponding call.
pub trait Icfg {
    /// A program statement (a node of the graph). Cheap to copy.
    type Stmt: Copy + Eq + Ord + Hash + Debug;
    /// A method / procedure. Cheap to copy.
    type Method: Copy + Eq + Ord + Hash + Debug;

    /// The analysis entry points (e.g. `main`).
    fn entry_points(&self) -> Vec<Self::Method>;

    /// The unique start point of `m`.
    fn start_point_of(&self, m: Self::Method) -> Self::Stmt;

    /// The method containing `s`.
    fn method_of(&self, s: Self::Stmt) -> Self::Method;

    /// Intra-procedural successors of `s`. For a call statement these are
    /// its return sites; for an exit statement this is empty.
    fn successors_of(&self, s: Self::Stmt) -> Vec<Self::Stmt>;

    /// `true` iff `s` is a call statement.
    fn is_call(&self, s: Self::Stmt) -> bool;

    /// The methods possibly called at call site `s` (per the call graph).
    fn callees_of(&self, s: Self::Stmt) -> Vec<Self::Method>;

    /// The return sites of call site `s` (its intra-procedural successors).
    fn return_sites_of(&self, s: Self::Stmt) -> Vec<Self::Stmt> {
        self.successors_of(s)
    }

    /// `true` iff `s` is an exit (return) statement of its method.
    fn is_exit(&self, s: Self::Stmt) -> bool;

    /// All statements of method `m`, in a deterministic order.
    fn stmts_of(&self, m: Self::Method) -> Vec<Self::Stmt>;

    /// All call sites inside method `m`.
    fn calls_in(&self, m: Self::Method) -> Vec<Self::Stmt> {
        self.stmts_of(m)
            .into_iter()
            .filter(|&s| self.is_call(s))
            .collect()
    }

    /// All methods of the program, in a deterministic order.
    fn methods(&self) -> Vec<Self::Method>;

    /// Human-readable label for a statement (diagnostics, DOT export).
    fn stmt_label(&self, s: Self::Stmt) -> String {
        format!("{s:?}")
    }

    /// Human-readable label for a method.
    fn method_label(&self, m: Self::Method) -> String {
        format!("{m:?}")
    }
}
