//! The IFDS tabulation solver (Reps–Horwitz–Sagiv, POPL 1995).

use crate::{Icfg, IfdsProblem};
use spllift_hash::{FastMap, FastSet};
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

/// Why a governed solve stopped before reaching its fixpoint.
///
/// Returned by the `try_solve*` entry points of this crate and
/// `spllift-ide` when a [`SolveLimits`] bound (or the constraint
/// engine's resource budget) was hit. The partial state computed up to
/// the abort is discarded — a degraded re-solve, not a partial answer,
/// is the supported recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveAbort {
    /// The value domain's resource budget (e.g. the BDD node or op
    /// budget) was exhausted; the payload is the engine's description.
    Budget(String),
    /// The propagation cap was reached.
    PropagationLimit(u64),
    /// The wall-clock deadline passed.
    Deadline,
}

impl fmt::Display for SolveAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveAbort::Budget(why) => write!(f, "budget exhausted: {why}"),
            SolveAbort::PropagationLimit(n) => write!(f, "propagation limit {n} reached"),
            SolveAbort::Deadline => f.write_str("deadline exceeded"),
        }
    }
}

impl std::error::Error for SolveAbort {}

/// Resource bounds for a governed solve. The default is unlimited, under
/// which the governed entry points behave exactly like the plain ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveLimits {
    /// Abort with [`SolveAbort::PropagationLimit`] after this many
    /// worklist items.
    pub max_propagations: Option<u64>,
    /// Abort with [`SolveAbort::Deadline`] once `Instant::now()` passes
    /// this point.
    pub deadline: Option<Instant>,
}

impl SolveLimits {
    /// `true` if any bound is set (the solver skips per-iteration checks
    /// entirely otherwise, keeping the ungoverned hot path unchanged).
    pub fn armed(&self) -> bool {
        self.max_propagations.is_some() || self.deadline.is_some()
    }

    /// Checks the bounds against the current propagation count.
    pub fn check(&self, propagations: u64) -> Result<(), SolveAbort> {
        if let Some(max) = self.max_propagations {
            if propagations > max {
                return Err(SolveAbort::PropagationLimit(max));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(SolveAbort::Deadline);
            }
        }
        Ok(())
    }
}

/// Counters collected during a solver run.
///
/// The paper's qualitative performance analysis (§6.2) observes that
/// analysis time correlates (ρ > 0.99) with the number of flow functions
/// constructed; these counters let the bench harness reproduce that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Worklist items processed.
    pub propagations: u64,
    /// Flow-function evaluations.
    pub flow_evals: u64,
    /// Distinct path edges discovered.
    pub path_edges: u64,
    /// Summary edges installed.
    pub summaries: u64,
}

/// A path edge `⟨sp, d1⟩ → ⟨n, d2⟩` (the `sp` is implicit: the start point
/// of `n`'s method).
type PathEdge<S, D> = (D, S, D);

/// The IFDS tabulation solver.
///
/// Build with [`IfdsSolver::solve`]; query with
/// [`results_at`](IfdsSolver::results_at).
#[derive(Debug)]
pub struct IfdsSolver<G: Icfg, D: Clone + Eq + std::hash::Hash> {
    results: FastMap<G::Stmt, FastSet<D>>,
    /// First-discoverer back-pointers: (stmt, fact) → predecessor
    /// (stmt, fact), for witness reconstruction.
    predecessors: FastMap<(G::Stmt, D), (G::Stmt, D)>,
    zero: D,
    stats: SolverStats,
}

impl<G, D> IfdsSolver<G, D>
where
    G: Icfg,
    D: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    /// Runs the tabulation algorithm of `problem` over `icfg` to a
    /// fixpoint and returns the solved instance.
    pub fn solve<P>(problem: &P, icfg: &G) -> Self
    where
        P: IfdsProblem<G, Fact = D>,
    {
        Self::try_solve(problem, icfg, SolveLimits::default())
            .expect("unlimited solve cannot abort")
    }

    /// Like [`solve`](Self::solve), but aborts with a [`SolveAbort`] when
    /// a [`SolveLimits`] bound is hit.
    pub fn try_solve<P>(problem: &P, icfg: &G, limits: SolveLimits) -> Result<Self, SolveAbort>
    where
        P: IfdsProblem<G, Fact = D>,
    {
        let governed = limits.armed();
        let zero = problem.zero();
        let mut state = State::<G, D> {
            path_edges: FastSet::default(),
            worklist: VecDeque::new(),
            predecessors: FastMap::default(),
            incoming: FastMap::default(),
            end_summary: FastMap::default(),
            results: FastMap::default(),
            stats: SolverStats::default(),
        };

        for (sp, fact) in problem.initial_seeds(icfg) {
            state.propagate(fact.clone(), sp, fact, None);
        }

        while let Some((d1, n, d2)) = state.worklist.pop_front() {
            state.stats.propagations += 1;
            if governed {
                limits.check(state.stats.propagations)?;
            }
            let method = icfg.method_of(n);
            if icfg.is_call(n) {
                // Call flows into callees.
                for callee in icfg.callees_of(n) {
                    state.stats.flow_evals += 1;
                    for d3 in problem.flow_call(icfg, n, callee, &d2) {
                        let sp = icfg.start_point_of(callee);
                        state.propagate(d3.clone(), sp, d3.clone(), Some((n, d2.clone())));
                        let inc_key = (callee, d3.clone());
                        state.incoming.entry(inc_key.clone()).or_default().insert((
                            n,
                            d2.clone(),
                            d1.clone(),
                        ));
                        // Apply already-known summaries for this callee
                        // entry fact.
                        let summaries: Vec<(G::Stmt, D)> = state
                            .end_summary
                            .get(&inc_key)
                            .map(|s| s.iter().cloned().collect())
                            .unwrap_or_default();
                        for (exit, d4) in summaries {
                            for r in icfg.return_sites_of(n) {
                                state.stats.flow_evals += 1;
                                for d5 in problem.flow_return(icfg, n, callee, exit, r, &d4) {
                                    state.propagate(d1.clone(), r, d5, Some((exit, d4.clone())));
                                }
                            }
                        }
                    }
                }
                // Intra-procedural flow across the call.
                for r in icfg.return_sites_of(n) {
                    state.stats.flow_evals += 1;
                    for d3 in problem.flow_call_to_return(icfg, n, r, &d2) {
                        state.propagate(d1.clone(), r, d3, Some((n, d2.clone())));
                    }
                }
            } else if icfg.is_exit(n) {
                // Record an end summary and resolve pending callers.
                let key = (method, d1.clone());
                if state
                    .end_summary
                    .entry(key.clone())
                    .or_default()
                    .insert((n, d2.clone()))
                {
                    state.stats.summaries += 1;
                }
                let callers: Vec<(G::Stmt, D, D)> = state
                    .incoming
                    .get(&key)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default();
                for (call, _d2_caller, d1_caller) in callers {
                    for r in icfg.return_sites_of(call) {
                        state.stats.flow_evals += 1;
                        for d5 in problem.flow_return(icfg, call, method, n, r, &d2) {
                            state.propagate(d1_caller.clone(), r, d5, Some((n, d2.clone())));
                        }
                    }
                }
                // Exit statements normally have no successors, but in a
                // lifted SPL graph a *disabled* return falls through
                // (paper Fig. 4): propagate normal flow along any extra
                // successors the ICFG reports.
                for succ in icfg.successors_of(n) {
                    state.stats.flow_evals += 1;
                    for d3 in problem.flow_normal(icfg, n, succ, &d2) {
                        state.propagate(d1.clone(), succ, d3, Some((n, d2.clone())));
                    }
                }
            } else {
                for succ in icfg.successors_of(n) {
                    state.stats.flow_evals += 1;
                    for d3 in problem.flow_normal(icfg, n, succ, &d2) {
                        state.propagate(d1.clone(), succ, d3, Some((n, d2.clone())));
                    }
                }
            }
        }

        state.stats.path_edges = state.path_edges.len() as u64;
        Ok(IfdsSolver {
            results: state.results,
            predecessors: state.predecessors,
            zero,
            stats: state.stats,
        })
    }

    /// The facts holding at `s`, including the zero fact if `s` is
    /// reachable.
    pub fn results_at(&self, s: G::Stmt) -> FastSet<D> {
        self.results.get(&s).cloned().unwrap_or_default()
    }

    /// The non-zero facts holding at `s`.
    pub fn facts_at(&self, s: G::Stmt) -> FastSet<D> {
        let mut r = self.results_at(s);
        r.remove(&self.zero);
        r
    }

    /// `true` iff `s` was reached at all (its zero fact was propagated).
    pub fn is_reachable(&self, s: G::Stmt) -> bool {
        self.results
            .get(&s)
            .is_some_and(|set| set.contains(&self.zero))
    }

    /// All statements with at least one discovered fact.
    pub fn statements(&self) -> impl Iterator<Item = G::Stmt> + '_ {
        self.results.keys().copied()
    }

    /// Solver counters.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Reconstructs one witness path explaining how `fact` arrived at
    /// `stmt`: a chain of (statement, fact) pairs from a seed to the
    /// query, following first-discoverer back-pointers. Returns `None`
    /// if the fact does not hold at `stmt`.
    ///
    /// This is the diagnostic a taint tool prints as a "source → sink
    /// trace".
    pub fn witness(&self, stmt: G::Stmt, fact: &D) -> Option<Vec<(G::Stmt, D)>> {
        if !self.results.get(&stmt).is_some_and(|s| s.contains(fact)) {
            return None;
        }
        let mut path = vec![(stmt, fact.clone())];
        let mut cur = (stmt, fact.clone());
        while let Some(pred) = self.predecessors.get(&cur) {
            path.push(pred.clone());
            cur = pred.clone();
        }
        path.reverse();
        Some(path)
    }
}

struct State<G: Icfg, D: Clone + Eq + std::hash::Hash> {
    path_edges: FastSet<PathEdge<G::Stmt, D>>,
    worklist: VecDeque<PathEdge<G::Stmt, D>>,
    predecessors: FastMap<(G::Stmt, D), (G::Stmt, D)>,
    /// (callee, entry fact) → callers: (call stmt, fact at call, caller sp fact).
    incoming: FastMap<(G::Method, D), FastSet<(G::Stmt, D, D)>>,
    /// (method, entry fact) → exits: (exit stmt, exit fact).
    end_summary: FastMap<(G::Method, D), FastSet<(G::Stmt, D)>>,
    results: FastMap<G::Stmt, FastSet<D>>,
    stats: SolverStats,
}

impl<G, D> State<G, D>
where
    G: Icfg,
    D: Clone + Eq + std::hash::Hash,
{
    fn propagate(&mut self, d1: D, n: G::Stmt, d2: D, pred: Option<(G::Stmt, D)>) {
        let edge = (d1, n, d2);
        if self.path_edges.insert(edge.clone()) {
            let is_new_node = self.results.entry(n).or_default().insert(edge.2.clone());
            if is_new_node {
                if let Some(p) = pred {
                    self.predecessors.insert((n, edge.2.clone()), p);
                }
            }
            self.worklist.push_back(edge);
        }
    }
}
