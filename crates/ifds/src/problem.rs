//! The IFDS problem interface: the four flow-function classes of the
//! paper's §2.2.

use crate::Icfg;
use std::fmt::Debug;
use std::hash::Hash;

/// An IFDS data-flow problem over an ICFG `G`.
///
/// Data-flow facts `Fact` must be a finite set; flow functions must be
/// distributive over set union (which is automatic in this encoding, since
/// a flow function maps a *single* source fact to a set of target facts —
/// the representation-relation encoding of Reps–Horwitz–Sagiv).
///
/// The distinguished [`zero`](IfdsProblem::zero) fact is the tautology `0`
/// of the framework. **Implementations must propagate `0` to `0`** in every
/// flow function (the solver does not do it implicitly) — returning the
/// input fact unchanged is the usual default. Facts are *generated* by
/// returning them from a flow function applied to `0`, and *killed* by not
/// returning them.
pub trait IfdsProblem<G: Icfg> {
    /// A data-flow fact.
    type Fact: Clone + Eq + Hash + Debug;

    /// The distinguished tautology fact `0`.
    fn zero(&self) -> Self::Fact;

    /// Flow through a non-call, non-exit statement `curr` towards its
    /// control-flow successor `succ`.
    ///
    /// The default is the identity function.
    fn flow_normal(
        &self,
        icfg: &G,
        curr: G::Stmt,
        succ: G::Stmt,
        fact: &Self::Fact,
    ) -> Vec<Self::Fact> {
        let _ = (icfg, curr, succ);
        vec![fact.clone()]
    }

    /// Flow from call site `call` into `callee` (actual→formal transfer).
    ///
    /// The default maps `0` to `0` and kills everything else (no
    /// caller-local state enters the callee).
    fn flow_call(
        &self,
        icfg: &G,
        call: G::Stmt,
        callee: G::Method,
        fact: &Self::Fact,
    ) -> Vec<Self::Fact> {
        let _ = (icfg, call, callee);
        if *fact == self.zero() {
            vec![self.zero()]
        } else {
            Vec::new()
        }
    }

    /// Flow from `exit` of `callee` back to `return_site` of the call at
    /// `call` (return-value transfer).
    ///
    /// The default maps `0` to `0` and kills everything else.
    fn flow_return(
        &self,
        icfg: &G,
        call: G::Stmt,
        callee: G::Method,
        exit: G::Stmt,
        return_site: G::Stmt,
        fact: &Self::Fact,
    ) -> Vec<Self::Fact> {
        let _ = (icfg, call, callee, exit, return_site);
        if *fact == self.zero() {
            vec![self.zero()]
        } else {
            Vec::new()
        }
    }

    /// Intra-procedural flow across a call site, from `call` directly to
    /// `return_site` (facts not passed to the callee, e.g. locals).
    ///
    /// The default is the identity function.
    fn flow_call_to_return(
        &self,
        icfg: &G,
        call: G::Stmt,
        return_site: G::Stmt,
        fact: &Self::Fact,
    ) -> Vec<Self::Fact> {
        let _ = (icfg, call, return_site);
        vec![fact.clone()]
    }

    /// Initial seeds: facts assumed to hold at the start points of the
    /// entry methods. The default seeds `0` at every entry point.
    fn initial_seeds(&self, icfg: &G) -> Vec<(G::Stmt, Self::Fact)> {
        icfg.entry_points()
            .into_iter()
            .map(|m| (icfg.start_point_of(m), self.zero()))
            .collect()
    }
}
