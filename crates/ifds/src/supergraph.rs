//! Exploded-supergraph construction and DOT export (paper Fig. 3).
//!
//! The exploded supergraph makes the IFDS encoding visible: one node per
//! (statement, fact) pair, one edge per flow-function entry. This module
//! rebuilds the graph *a posteriori* from a solved problem by re-running
//! the flow functions on the facts the solver discovered, which keeps the
//! solver itself free of bookkeeping.

use crate::{Icfg, IfdsProblem, IfdsSolver};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// An edge of the exploded supergraph, with a printable label per node.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExplodedEdge {
    /// Source statement label.
    pub from_stmt: String,
    /// Source fact label (`"0"` for the zero fact).
    pub from_fact: String,
    /// Target statement label.
    pub to_stmt: String,
    /// Target fact label.
    pub to_fact: String,
    /// Edge kind: `normal`, `call`, `return`, or `call-to-return`.
    pub kind: &'static str,
}

/// Collects the exploded-supergraph edges induced by `problem` over the
/// statements and facts discovered by `solver`.
pub fn exploded_edges<G, P>(
    problem: &P,
    icfg: &G,
    solver: &IfdsSolver<G, P::Fact>,
) -> Vec<ExplodedEdge>
where
    G: Icfg,
    P: IfdsProblem<G>,
{
    let mut out = BTreeSet::new();
    let fact_label = |d: &P::Fact| format!("{d:?}").replace('"', "");
    let mut facts_by_stmt: BTreeMap<G::Stmt, Vec<P::Fact>> = BTreeMap::new();
    for s in solver.statements() {
        facts_by_stmt.insert(s, solver.results_at(s).into_iter().collect());
    }
    for (&s, facts) in &facts_by_stmt {
        for d in facts {
            if icfg.is_call(s) {
                for callee in icfg.callees_of(s) {
                    let sp = icfg.start_point_of(callee);
                    for d3 in problem.flow_call(icfg, s, callee, d) {
                        out.insert(ExplodedEdge {
                            from_stmt: icfg.stmt_label(s),
                            from_fact: fact_label(d),
                            to_stmt: icfg.stmt_label(sp),
                            to_fact: fact_label(&d3),
                            kind: "call",
                        });
                    }
                }
                for r in icfg.return_sites_of(s) {
                    for d3 in problem.flow_call_to_return(icfg, s, r, d) {
                        out.insert(ExplodedEdge {
                            from_stmt: icfg.stmt_label(s),
                            from_fact: fact_label(d),
                            to_stmt: icfg.stmt_label(r),
                            to_fact: fact_label(&d3),
                            kind: "call-to-return",
                        });
                    }
                }
            } else if icfg.is_exit(s) {
                // Return edges need the calling context; enumerate callers.
                for m in icfg.methods() {
                    for call in icfg.calls_in(m) {
                        if !icfg.callees_of(call).contains(&icfg.method_of(s)) {
                            continue;
                        }
                        for r in icfg.return_sites_of(call) {
                            for d5 in problem.flow_return(icfg, call, icfg.method_of(s), s, r, d) {
                                out.insert(ExplodedEdge {
                                    from_stmt: icfg.stmt_label(s),
                                    from_fact: fact_label(d),
                                    to_stmt: icfg.stmt_label(r),
                                    to_fact: fact_label(&d5),
                                    kind: "return",
                                });
                            }
                        }
                    }
                }
            } else {
                for succ in icfg.successors_of(s) {
                    for d3 in problem.flow_normal(icfg, s, succ, d) {
                        out.insert(ExplodedEdge {
                            from_stmt: icfg.stmt_label(s),
                            from_fact: fact_label(d),
                            to_stmt: icfg.stmt_label(succ),
                            to_fact: fact_label(&d3),
                            kind: "normal",
                        });
                    }
                }
            }
        }
    }
    out.into_iter().collect()
}

/// Renders exploded-supergraph edges as Graphviz DOT, one sub-cluster per
/// statement, matching the visual layout of the paper's Figure 3.
pub fn to_dot(edges: &[ExplodedEdge]) -> String {
    let mut stmts: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        stmts.insert(&e.from_stmt);
        stmts.insert(&e.to_stmt);
    }
    let mut node_ids: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut facts_per_stmt: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        facts_per_stmt
            .entry(&e.from_stmt)
            .or_default()
            .insert(&e.from_fact);
        facts_per_stmt
            .entry(&e.to_stmt)
            .or_default()
            .insert(&e.to_fact);
    }
    let mut out = String::from("digraph exploded {\n  rankdir=TB;\n  node [shape=circle];\n");
    for (i, (&stmt, facts)) in facts_per_stmt.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{i} {{");
        let _ = writeln!(out, "    label=\"{}\";", stmt.replace('"', "'"));
        for (j, &fact) in facts.iter().enumerate() {
            let id = format!("n{i}_{j}");
            let _ = writeln!(out, "    {id} [label=\"{}\"];", fact.replace('"', "'"));
            node_ids.insert((stmt.to_owned(), fact.to_owned()), id);
        }
        let _ = writeln!(out, "  }}");
    }
    for e in edges {
        let from = &node_ids[&(e.from_stmt.clone(), e.from_fact.clone())];
        let to = &node_ids[&(e.to_stmt.clone(), e.to_fact.clone())];
        let style = match e.kind {
            "call" | "return" => " [style=dashed]",
            "call-to-return" => " [style=dotted]",
            _ => "",
        };
        let _ = writeln!(out, "  {from} -> {to}{style};");
    }
    out.push_str("}\n");
    out
}
