use crate::{IfdsProblem, IfdsSolver, SimpleGraph, StmtKind};

/// A miniature taint analysis over [`SimpleGraph`] driven by statement
/// labels, exercising all four flow-function classes:
///
/// * `gen X`    — generates fact `X` (from zero),
/// * `kill X`   — kills fact `X`,
/// * `copy X Y` — copies: `Y` tainted iff `X` tainted (strong update on Y),
/// * calls pass fact `arg` (callers rename `X->arg` per `pass X`),
/// * `ret X`    — at return site, callee's `ret` fact becomes `X`.
struct LabelTaint;

type Fact = String;

fn zero() -> Fact {
    "0".into()
}

impl IfdsProblem<SimpleGraph> for LabelTaint {
    type Fact = Fact;

    fn zero(&self) -> Fact {
        zero()
    }

    fn flow_normal(&self, g: &SimpleGraph, curr: u32, _succ: u32, d: &Fact) -> Vec<Fact> {
        let label = g.label(curr);
        let mut parts = label.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some("gen"), Some(x), _) => {
                if d == "0" {
                    vec![zero(), x.to_owned()]
                } else {
                    vec![d.clone()]
                }
            }
            (Some("kill"), Some(x), _) => {
                if d == x {
                    vec![]
                } else {
                    vec![d.clone()]
                }
            }
            (Some("copy"), Some(x), Some(y)) => {
                if d == x {
                    vec![x.to_owned(), y.to_owned()]
                } else if d == y {
                    vec![] // strong update
                } else {
                    vec![d.clone()]
                }
            }
            _ => vec![d.clone()],
        }
    }

    fn flow_call(&self, g: &SimpleGraph, call: u32, _callee: u32, d: &Fact) -> Vec<Fact> {
        // "call pass X": actual X becomes formal "arg" in the callee.
        let parts: Vec<&str> = g.label(call).split_whitespace().collect();
        if d == "0" {
            return vec![zero()];
        }
        if let Some(i) = parts.iter().position(|&p| p == "pass") {
            if parts.get(i + 1) == Some(&d.as_str()) {
                return vec!["arg".into()];
            }
        }
        Vec::new()
    }

    fn flow_return(
        &self,
        g: &SimpleGraph,
        call: u32,
        _callee: u32,
        _exit: u32,
        _ret_site: u32,
        d: &Fact,
    ) -> Vec<Fact> {
        // At "call ... into Y", the callee fact "ret" maps to Y.
        if d == "0" {
            return vec![zero()];
        }
        let label = g.label(call);
        if let Some(pos) = label.find(" into ") {
            let y = &label[pos + 6..];
            if d == "ret" {
                return vec![y.trim().to_owned()];
            }
        }
        Vec::new()
    }

    fn flow_call_to_return(
        &self,
        g: &SimpleGraph,
        call: u32,
        _ret_site: u32,
        d: &Fact,
    ) -> Vec<Fact> {
        // The call assigns its result into Y, so kill Y across the call.
        let label = g.label(call);
        if let Some(pos) = label.find(" into ") {
            let y = label[pos + 6..].trim();
            if d == y {
                return Vec::new();
            }
        }
        vec![d.clone()]
    }
}

/// `main: gen x; call id(pass x) into y; sink` — `id` returns its argument.
fn call_graph() -> (SimpleGraph, u32, u32) {
    let mut g = SimpleGraph::new();
    let main = g.add_method("main");
    let id = g.add_method("id");
    let s_gen = g.add_stmt(main, "gen x");
    let s_call = g.add_stmt_kind(main, "call pass x into y", StmtKind::Call);
    let s_sink = g.add_stmt(main, "sink");
    g.add_edge(s_gen, s_call);
    g.add_edge(s_call, s_sink);
    let id_body = g.add_stmt(id, "copy arg ret");
    let id_exit = g.add_stmt_kind(id, "exit", StmtKind::Exit);
    g.add_edge(id_body, id_exit);
    g.add_call_edge(s_call, id);
    g.set_entry(main);
    (g, s_sink, s_call)
}

#[test]
fn gen_and_propagate() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let a = g.add_stmt(m, "gen x");
    let b = g.add_stmt(m, "nop");
    let c = g.add_stmt(m, "nop2");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.set_entry(m);
    let s = IfdsSolver::solve(&LabelTaint, &g);
    assert!(s.facts_at(c).contains("x"));
    assert!(s.facts_at(a).is_empty(), "fact holds only after gen");
}

#[test]
fn kill_stops_fact() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let a = g.add_stmt(m, "gen x");
    let b = g.add_stmt(m, "kill x");
    let c = g.add_stmt(m, "nop");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.set_entry(m);
    let s = IfdsSolver::solve(&LabelTaint, &g);
    assert!(
        s.facts_at(b).contains("x"),
        "x holds before the kill executes"
    );
    assert!(!s.facts_at(c).contains("x"));
}

#[test]
fn branch_merge_unions_facts() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let top = g.add_stmt(m, "branch");
    let l = g.add_stmt(m, "gen x");
    let r = g.add_stmt(m, "gen y");
    let join = g.add_stmt(m, "join");
    g.add_edge(top, l);
    g.add_edge(top, r);
    g.add_edge(l, join);
    g.add_edge(r, join);
    g.set_entry(m);
    let s = IfdsSolver::solve(&LabelTaint, &g);
    let facts = s.facts_at(join);
    assert!(facts.contains("x") && facts.contains("y"));
}

#[test]
fn interprocedural_taint_through_identity() {
    let (g, sink, _) = call_graph();
    let s = IfdsSolver::solve(&LabelTaint, &g);
    let facts = s.facts_at(sink);
    assert!(facts.contains("x"), "x survives call-to-return");
    assert!(facts.contains("y"), "y tainted via id()");
}

#[test]
fn call_to_return_kills_assigned_var() {
    // y tainted before the call must be killed across it (call assigns y).
    let mut g = SimpleGraph::new();
    let main = g.add_method("main");
    let clean = g.add_method("clean");
    let s_gen = g.add_stmt(main, "gen y");
    let s_call = g.add_stmt_kind(main, "call pass q into y", StmtKind::Call);
    let s_sink = g.add_stmt(main, "sink");
    g.add_edge(s_gen, s_call);
    g.add_edge(s_call, s_sink);
    let c_exit = g.add_stmt_kind(clean, "exit", StmtKind::Exit);
    let _ = c_exit;
    g.add_call_edge(s_call, clean);
    g.set_entry(main);
    let s = IfdsSolver::solve(&LabelTaint, &g);
    assert!(s.facts_at(s_call).contains("y"));
    assert!(
        !s.facts_at(s_sink).contains("y"),
        "strong update across call"
    );
}

#[test]
fn context_sensitivity_no_fact_smearing() {
    // Two call sites of id(): one passes tainted x, the other untainted q.
    // Context sensitivity must not leak taint into the second result.
    let mut g = SimpleGraph::new();
    let main = g.add_method("main");
    let id = g.add_method("id");
    let s_gen = g.add_stmt(main, "gen x");
    let call1 = g.add_stmt_kind(main, "call pass x into y", StmtKind::Call);
    let call2 = g.add_stmt_kind(main, "call pass q into z", StmtKind::Call);
    let s_sink = g.add_stmt(main, "sink");
    g.add_edge(s_gen, call1);
    g.add_edge(call1, call2);
    g.add_edge(call2, s_sink);
    let id_body = g.add_stmt(id, "copy arg ret");
    let id_exit = g.add_stmt_kind(id, "exit", StmtKind::Exit);
    g.add_edge(id_body, id_exit);
    g.add_call_edge(call1, id);
    g.add_call_edge(call2, id);
    g.set_entry(main);
    let s = IfdsSolver::solve(&LabelTaint, &g);
    let facts = s.facts_at(s_sink);
    assert!(facts.contains("y"), "first call taints y");
    assert!(!facts.contains("z"), "second call must NOT taint z");
}

#[test]
fn recursion_terminates_and_is_sound() {
    // rec(arg) { if .. call rec(pass arg) into t; copy arg ret }
    let mut g = SimpleGraph::new();
    let main = g.add_method("main");
    let rec = g.add_method("rec");
    let s_gen = g.add_stmt(main, "gen x");
    let call0 = g.add_stmt_kind(main, "call pass x into y", StmtKind::Call);
    let s_sink = g.add_stmt(main, "sink");
    g.add_edge(s_gen, call0);
    g.add_edge(call0, s_sink);
    let r_head = g.add_stmt(rec, "head");
    let r_call = g.add_stmt_kind(rec, "call pass arg into t", StmtKind::Call);
    let r_copy = g.add_stmt(rec, "copy arg ret");
    let r_exit = g.add_stmt_kind(rec, "exit", StmtKind::Exit);
    g.add_edge(r_head, r_call);
    g.add_edge(r_head, r_copy); // base case skips the call
    g.add_edge(r_call, r_copy);
    g.add_edge(r_copy, r_exit);
    g.add_call_edge(call0, rec);
    g.add_call_edge(r_call, rec);
    g.set_entry(main);
    let s = IfdsSolver::solve(&LabelTaint, &g);
    assert!(s.facts_at(s_sink).contains("y"));
}

#[test]
fn unreachable_method_not_analyzed() {
    let mut g = SimpleGraph::new();
    let main = g.add_method("main");
    let dead = g.add_method("dead");
    let a = g.add_stmt(main, "gen x");
    let d = g.add_stmt(dead, "gen z");
    g.set_entry(main);
    let s = IfdsSolver::solve(&LabelTaint, &g);
    assert!(s.is_reachable(a));
    assert!(!s.is_reachable(d));
    assert!(s.facts_at(d).is_empty());
}

#[test]
fn summary_reuse_across_call_sites() {
    // Both call sites with the same entry fact must reuse the summary;
    // stats should show a bounded number of summaries.
    let (g, _, _) = call_graph();
    let s = IfdsSolver::solve(&LabelTaint, &g);
    let stats = s.stats();
    assert!(stats.path_edges > 0);
    assert!(stats.summaries >= 2, "0 and arg summaries");
    assert!(stats.propagations >= stats.path_edges);
}

#[test]
fn exploded_supergraph_export() {
    let (g, _, _) = call_graph();
    let s = IfdsSolver::solve(&LabelTaint, &g);
    let edges = crate::supergraph::exploded_edges(&LabelTaint, &g, &s);
    assert!(edges.iter().any(|e| e.kind == "call"));
    assert!(edges.iter().any(|e| e.kind == "return"));
    assert!(edges.iter().any(|e| e.kind == "call-to-return"));
    assert!(edges.iter().any(|e| e.kind == "normal"));
    let dot = crate::supergraph::to_dot(&edges);
    assert!(dot.contains("digraph exploded"));
    assert!(dot.contains("cluster_0"));
}

#[test]
fn default_flow_functions_are_identity_and_zero_preserving() {
    struct Noop;
    impl IfdsProblem<SimpleGraph> for Noop {
        type Fact = String;
        fn zero(&self) -> String {
            "0".into()
        }
    }
    let (g, sink, _) = call_graph();
    let s = IfdsSolver::solve(&Noop, &g);
    assert!(s.is_reachable(sink));
    assert!(s.facts_at(sink).is_empty());
}

mod witness {
    use super::*;

    #[test]
    fn witness_traces_taint_from_source_to_sink() {
        let (g, sink, _) = call_graph();
        let s = IfdsSolver::solve(&LabelTaint, &g);
        // Trace how "y" became tainted at the sink.
        let path = s.witness(sink, &"y".to_owned()).expect("y tainted");
        assert_eq!(path.last().unwrap(), &(sink, "y".to_owned()));
        // The chain must pass through the callee's "ret" fact (the value
        // came back out of id()).
        assert!(
            path.iter().any(|(_, d)| d == "ret" || d == "arg"),
            "trace passes through the callee: {path:?}"
        );
        // And originate at a seed-reachable gen site.
        assert!(path.len() >= 3);
    }

    #[test]
    fn witness_is_none_for_absent_facts() {
        let (g, sink, _) = call_graph();
        let s = IfdsSolver::solve(&LabelTaint, &g);
        assert!(s.witness(sink, &"nonexistent".to_owned()).is_none());
    }

    #[test]
    fn witness_of_seed_is_single_node() {
        let mut g = SimpleGraph::new();
        let m = g.add_method("m");
        let a = g.add_stmt(m, "gen x");
        g.set_entry(m);
        let s = IfdsSolver::solve(&LabelTaint, &g);
        let path = s.witness(a, &"0".to_owned()).unwrap();
        assert_eq!(path, vec![(a, "0".to_owned())]);
    }

    #[test]
    fn witness_terminates_on_loops() {
        // A fact circulating in a loop must still produce a finite trace.
        let mut g = SimpleGraph::new();
        let m = g.add_method("m");
        let a = g.add_stmt(m, "gen x");
        let b = g.add_stmt(m, "nop");
        let c = g.add_stmt(m, "nop2");
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, b); // loop b <-> c
        g.set_entry(m);
        let s = IfdsSolver::solve(&LabelTaint, &g);
        let path = s.witness(c, &"x".to_owned()).unwrap();
        assert!(path.len() <= 10, "finite: {path:?}");
        assert_eq!(path.first().unwrap().1, "0");
    }
}
