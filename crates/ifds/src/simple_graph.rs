//! A tiny hand-buildable ICFG for tests, docs, and toy examples.

use crate::Icfg;
use std::collections::HashMap;

/// The role of a statement in a [`SimpleGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StmtKind {
    /// An ordinary intra-procedural statement.
    #[default]
    Normal,
    /// A call statement (give it callees with [`SimpleGraph::add_call_edge`]).
    Call,
    /// An exit statement of its method.
    Exit,
}

#[derive(Debug, Clone)]
struct StmtData {
    method: u32,
    kind: StmtKind,
    label: String,
    succs: Vec<u32>,
    callees: Vec<u32>,
}

/// A hand-built inter-procedural CFG.
///
/// Statements and methods are plain `u32` ids. Useful for unit-testing
/// solvers without pulling in the full IR; see the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct SimpleGraph {
    stmts: Vec<StmtData>,
    method_names: Vec<String>,
    method_stmts: HashMap<u32, Vec<u32>>,
    start_points: HashMap<u32, u32>,
    entries: Vec<u32>,
}

impl SimpleGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a method named `name` and returns its id.
    pub fn add_method(&mut self, name: &str) -> u32 {
        let id = self.method_names.len() as u32;
        self.method_names.push(name.to_owned());
        id
    }

    /// Adds a normal statement to `method`. The first statement added to a
    /// method becomes its start point.
    pub fn add_stmt(&mut self, method: u32, label: &str) -> u32 {
        self.add_stmt_kind(method, label, StmtKind::Normal)
    }

    /// Adds a statement with an explicit [`StmtKind`].
    pub fn add_stmt_kind(&mut self, method: u32, label: &str, kind: StmtKind) -> u32 {
        let id = self.stmts.len() as u32;
        self.stmts.push(StmtData {
            method,
            kind,
            label: label.to_owned(),
            succs: Vec::new(),
            callees: Vec::new(),
        });
        self.method_stmts.entry(method).or_default().push(id);
        self.start_points.entry(method).or_insert(id);
        id
    }

    /// Adds an intra-procedural control-flow edge.
    pub fn add_edge(&mut self, from: u32, to: u32) {
        self.stmts[from as usize].succs.push(to);
    }

    /// Registers `callee` as a possible target of call statement `call`.
    pub fn add_call_edge(&mut self, call: u32, callee: u32) {
        debug_assert_eq!(self.stmts[call as usize].kind, StmtKind::Call);
        self.stmts[call as usize].callees.push(callee);
    }

    /// Marks `method` as an analysis entry point.
    pub fn set_entry(&mut self, method: u32) {
        self.entries.push(method);
    }

    /// The label a statement was created with.
    pub fn label(&self, s: u32) -> &str {
        &self.stmts[s as usize].label
    }
}

impl Icfg for SimpleGraph {
    type Stmt = u32;
    type Method = u32;

    fn entry_points(&self) -> Vec<u32> {
        self.entries.clone()
    }

    fn start_point_of(&self, m: u32) -> u32 {
        self.start_points[&m]
    }

    fn method_of(&self, s: u32) -> u32 {
        self.stmts[s as usize].method
    }

    fn successors_of(&self, s: u32) -> Vec<u32> {
        self.stmts[s as usize].succs.clone()
    }

    fn is_call(&self, s: u32) -> bool {
        self.stmts[s as usize].kind == StmtKind::Call
    }

    fn callees_of(&self, s: u32) -> Vec<u32> {
        self.stmts[s as usize].callees.clone()
    }

    fn is_exit(&self, s: u32) -> bool {
        self.stmts[s as usize].kind == StmtKind::Exit
    }

    fn stmts_of(&self, m: u32) -> Vec<u32> {
        self.method_stmts.get(&m).cloned().unwrap_or_default()
    }

    fn methods(&self) -> Vec<u32> {
        (0..self.method_names.len() as u32).collect()
    }

    fn stmt_label(&self, s: u32) -> String {
        self.stmts[s as usize].label.clone()
    }

    fn method_label(&self, m: u32) -> String {
        self.method_names[m as usize].clone()
    }
}
