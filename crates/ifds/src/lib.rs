//! The IFDS framework: inter-procedural, finite, distributive, subset
//! problems solved by graph reachability (Reps, Horwitz, Sagiv — POPL 1995).
//!
//! This crate is the SPLLIFT reproduction's stand-in for the IFDS half of
//! Heros. It provides:
//!
//! * [`Icfg`] — the inter-procedural control-flow-graph abstraction every
//!   solver in this workspace runs on,
//! * [`IfdsProblem`] — the four flow-function classes of §2.2 of the paper
//!   (normal, call, return, call-to-return),
//! * [`IfdsSolver`] — the tabulation algorithm with path edges, summary
//!   edges, and a worklist,
//! * [`SimpleGraph`] — a tiny hand-buildable ICFG for tests and examples,
//! * [`supergraph`] — DOT export of the exploded supergraph (paper Fig. 3).
//!
//! # Example
//!
//! A two-method "taint" toy: `main` generates a fact and calls `f`, which
//! propagates it to its exit.
//!
//! ```
//! use spllift_ifds::{IfdsProblem, IfdsSolver, Icfg, SimpleGraph};
//!
//! let mut g = SimpleGraph::new();
//! let main = g.add_method("main");
//! let s0 = g.add_stmt(main, "gen");   // generates fact "x"
//! let s1 = g.add_stmt(main, "use");
//! g.add_edge(s0, s1);
//! g.set_entry(main);
//!
//! struct Gen;
//! impl IfdsProblem<SimpleGraph> for Gen {
//!     type Fact = &'static str;
//!     fn zero(&self) -> &'static str { "0" }
//!     fn flow_normal(&self, g: &SimpleGraph, curr: u32, _succ: u32, d: &&'static str)
//!         -> Vec<&'static str>
//!     {
//!         if g.label(curr) == "gen" && *d == "0" { vec!["0", "x"] } else { vec![*d] }
//!     }
//! }
//!
//! let solver = IfdsSolver::solve(&Gen, &g);
//! assert!(solver.results_at(s1).contains("x"));
//! ```

#![warn(missing_docs)]
mod icfg;
mod problem;
mod simple_graph;
mod solver;
pub mod supergraph;

pub use icfg::Icfg;
pub use problem::IfdsProblem;
pub use simple_graph::{SimpleGraph, StmtKind};
pub use solver::{IfdsSolver, SolveAbort, SolveLimits, SolverStats};

#[cfg(test)]
mod tests;
