//! The perf regression gate: cell-by-cell comparison of a fresh
//! benchmark run against a committed baseline document.
//!
//! Both bench bins grow a `--check BASELINE` mode built on this module:
//! they re-measure, render the fresh document, and diff it against the
//! committed one **per cell** — a solver cell is one
//! `subject × analysis × threads` measurement, a server cell one
//! concurrency level. Whole-document aggregates would let one subject's
//! regression hide behind another's improvement; per-cell keys cannot.
//!
//! The comparison is deliberately conservative about noise:
//!
//! - It compares the **minimum** wall time of each cell's samples, not
//!   the mean. The min is the least noisy location statistic for
//!   wall-clock benchmarking — every slowdown mechanism (scheduling,
//!   page cache, turbo state) only ever adds time.
//! - A cell fails only when the fresh min exceeds the baseline min by
//!   more than a relative `tolerance` (default 25%) **and** by more
//!   than an absolute noise floor (default 1 ms): the worked examples
//!   solve in tens of microseconds, where a +50% "regression" is a
//!   single scheduler preemption. Sub-floor cells report their delta
//!   but cannot fail the gate.
//! - A baseline and fresh document from **different machines** produce
//!   a warning, never a failure: cross-machine ratios are not
//!   regressions.
//!
//! Missing cells are failures by default — silently dropping the
//! slowest subject is the easiest way to "fix" a regression — but a
//! restricted smoke run (CI re-measures a small sub-matrix) downgrades
//! them to skips via [`RegressOptions::subset`].

use crate::json::{parse_json, Json, MachineInfo};

/// Default relative tolerance: a cell fails when its fresh min wall
/// time exceeds the baseline's by more than 25%.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Default absolute noise floor: a cell additionally needs more than
/// 1 ms of absolute slowdown to fail. Microsecond-scale cells (the
/// worked examples) cannot be meaningfully gated by a relative
/// threshold on a shared machine.
pub const DEFAULT_MIN_DELTA_NS: u128 = 1_000_000;

/// One comparable measurement extracted from a benchmark document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSample {
    /// Stable cell key (`subject/analysis@tN` or `sessions=N`).
    pub key: String,
    /// The cell's comparator value, nanoseconds (min wall time for
    /// solver cells, median latency for server levels).
    pub best_ns: u128,
    /// How many samples the value was taken over.
    pub samples: usize,
}

/// Everything the comparator needs from one document.
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// The machine block, for the cross-machine warning.
    pub machine: MachineInfo,
    /// All comparable cells, in document order.
    pub cells: Vec<CellSample>,
}

impl BenchDoc {
    /// Folds a re-measurement pass into this document: a cell present
    /// in both keeps the smaller value (min across passes, consistent
    /// with min-of-N within a pass) and the summed sample count; cells
    /// only in `retry` are appended. Callers use this to absorb a
    /// second measurement of cells that failed the first comparison —
    /// a transient stall (scheduler preemption, host CPU contention)
    /// won't reproduce, a genuine regression will.
    pub fn merge_min(&mut self, retry: &BenchDoc) {
        for r in &retry.cells {
            match self.cells.iter_mut().find(|c| c.key == r.key) {
                Some(c) => {
                    c.best_ns = c.best_ns.min(r.best_ns);
                    c.samples += r.samples;
                }
                None => self.cells.push(r.clone()),
            }
        }
    }
}

/// Knobs of one comparison run.
#[derive(Debug, Clone, Copy)]
pub struct RegressOptions {
    /// Maximum tolerated relative slowdown per cell (0.25 = +25%).
    pub tolerance: f64,
    /// Minimum absolute slowdown (ns) a cell needs to fail. Both this
    /// and `tolerance` must be exceeded.
    pub min_delta_ns: u128,
    /// `true` when the fresh run deliberately measured only a subset of
    /// the baseline matrix (CI smoke mode): baseline cells absent from
    /// the fresh document become skips instead of failures.
    pub subset: bool,
}

impl Default for RegressOptions {
    fn default() -> Self {
        RegressOptions {
            tolerance: DEFAULT_TOLERANCE,
            min_delta_ns: DEFAULT_MIN_DELTA_NS,
            subset: false,
        }
    }
}

/// The outcome of one comparison: per-cell verdict lines, bucketed.
#[derive(Debug, Clone, Default)]
pub struct RegressReport {
    /// Cells past tolerance, or required cells missing from the fresh
    /// run. Any entry here means the gate fails.
    pub failures: Vec<String>,
    /// Suspicious-but-not-failing observations (machine mismatch).
    pub warnings: Vec<String>,
    /// Context lines: cells within tolerance, new cells, skips.
    pub infos: Vec<String>,
    /// How many cells were actually compared value-against-value.
    pub compared: usize,
    /// Keys of the cells that regressed past tolerance (the
    /// value-comparison failures only, not missing cells) — the
    /// callers' retry pass re-measures exactly these.
    pub failed_keys: Vec<String>,
}

impl RegressReport {
    /// `true` when no cell regressed past tolerance.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The human-readable report, one verdict per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.failures {
            out.push_str("FAIL  ");
            out.push_str(f);
            out.push('\n');
        }
        for w in &self.warnings {
            out.push_str("WARN  ");
            out.push_str(w);
            out.push('\n');
        }
        for i in &self.infos {
            out.push_str("  ok  ");
            out.push_str(i);
            out.push('\n');
        }
        out.push_str(&format!(
            "{}: {} cells compared, {} regressed, {} warnings\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.compared,
            self.failures.len(),
            self.warnings.len()
        ));
        out
    }
}

fn doc_machine(doc: &Json) -> Result<MachineInfo, String> {
    MachineInfo::from_doc(doc).ok_or_else(|| "missing or malformed `machine` block".into())
}

fn cell_u128(v: Option<&Json>, what: &str) -> Result<u128, String> {
    v.and_then(Json::as_f64)
        .filter(|n| *n >= 0.0)
        .map(|n| n as u128)
        .ok_or_else(|| format!("`{what}` must be a non-negative number"))
}

/// Extracts the comparable cells of a (pre-validated) solver document:
/// one per `subject × analysis × threads`, valued at the cell's
/// minimum wall time.
pub fn solver_doc(text: &str) -> Result<BenchDoc, String> {
    crate::json::validate_solver_bench(text)?;
    let doc = parse_json(text)?;
    let machine = doc_machine(&doc)?;
    let mut cells = Vec::new();
    let Some(Json::Arr(entries)) = doc.get("entries") else {
        return Err("missing `entries`".into());
    };
    for e in entries {
        let subject = e.get("subject").and_then(Json::as_str).unwrap_or("?");
        let analysis = e.get("analysis").and_then(Json::as_str).unwrap_or("?");
        let Some(Json::Arr(tcells)) = e.get("threads") else {
            continue;
        };
        for c in tcells {
            let threads = cell_u128(c.get("threads"), "threads")?;
            let key = format!("{subject}/{analysis}@t{threads}");
            cells.push(CellSample {
                best_ns: cell_u128(
                    c.get("wall_ns").and_then(|w| w.get("min")),
                    &format!("{key}: wall_ns.min"),
                )?,
                samples: cell_u128(c.get("samples"), &format!("{key}: samples"))? as usize,
                key,
            });
        }
    }
    Ok(BenchDoc { machine, cells })
}

/// Extracts the comparable cells of a (pre-validated) server document:
/// one per concurrency level, valued at the level's median latency.
/// The median, not the max: one straggler connection at 256 sessions is
/// load-test noise, a moved median is a server regression.
pub fn server_doc(text: &str) -> Result<BenchDoc, String> {
    crate::json::validate_server_bench(text)?;
    let doc = parse_json(text)?;
    let machine = doc_machine(&doc)?;
    let mut cells = Vec::new();
    let Some(Json::Arr(levels)) = doc.get("levels") else {
        return Err("missing `levels`".into());
    };
    for l in levels {
        let sessions = cell_u128(l.get("sessions"), "sessions")?;
        let key = format!("sessions={sessions}");
        cells.push(CellSample {
            best_ns: cell_u128(
                l.get("latency_ns").and_then(|x| x.get("p50")),
                &format!("{key}: latency_ns.p50"),
            )?,
            samples: cell_u128(l.get("requests"), &format!("{key}: requests"))? as usize,
            key,
        });
    }
    Ok(BenchDoc { machine, cells })
}

/// Diffs a fresh document against the baseline, cell by cell.
pub fn compare(baseline: &BenchDoc, fresh: &BenchDoc, opts: RegressOptions) -> RegressReport {
    let mut report = RegressReport::default();
    if baseline.machine != fresh.machine {
        report.warnings.push(format!(
            "machine changed: baseline {}/{}/{} cpus vs fresh {}/{}/{} cpus — wall-clock ratios are not comparable",
            baseline.machine.os, baseline.machine.arch, baseline.machine.cpus,
            fresh.machine.os, fresh.machine.arch, fresh.machine.cpus
        ));
    }
    let fresh_by_key: std::collections::BTreeMap<&str, &CellSample> =
        fresh.cells.iter().map(|c| (c.key.as_str(), c)).collect();
    let mut seen = std::collections::BTreeSet::new();
    for base in &baseline.cells {
        seen.insert(base.key.as_str());
        let Some(new) = fresh_by_key.get(base.key.as_str()) else {
            if opts.subset {
                report
                    .infos
                    .push(format!("{}: not re-measured (subset mode)", base.key));
            } else {
                report.failures.push(format!(
                    "{}: present in baseline but missing from the fresh run",
                    base.key
                ));
            }
            continue;
        };
        report.compared += 1;
        // Relative change of the min-of-N wall time. Baseline 0 (a
        // sub-ns cell, or a corrupt document that still validated)
        // cannot produce a meaningful ratio; treat any fresh value as
        // within tolerance rather than dividing by zero.
        let delta = if base.best_ns == 0 {
            0.0
        } else {
            new.best_ns as f64 / base.best_ns as f64 - 1.0
        };
        let abs_delta = new.best_ns.saturating_sub(base.best_ns);
        let mut line = format!(
            "{}: min {} -> {} ns ({}{:.1}%, tolerance +{:.0}%, n={}/{})",
            base.key,
            base.best_ns,
            new.best_ns,
            if delta >= 0.0 { "+" } else { "" },
            delta * 100.0,
            opts.tolerance * 100.0,
            base.samples,
            new.samples,
        );
        if delta > opts.tolerance {
            if abs_delta > opts.min_delta_ns {
                report.failed_keys.push(base.key.clone());
                report.failures.push(line);
            } else {
                line.push_str(&format!(
                    " — under the {} ns noise floor, not a failure",
                    opts.min_delta_ns
                ));
                report.infos.push(line);
            }
        } else {
            report.infos.push(line);
        }
    }
    for c in &fresh.cells {
        if !seen.contains(c.key.as_str()) {
            report.infos.push(format!(
                "{}: new cell (not in baseline, nothing to compare)",
                c.key
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal valid v4 solver document with one entry and the given
    /// per-thread (threads, min_ns) cells.
    fn solver_text(subject: &str, cells: &[(usize, u64)]) -> String {
        let cells_json: Vec<String> = cells
            .iter()
            .map(|(t, min)| {
                format!(
                    r#"{{"threads": {t}, "samples": 3, "wall_ns": {{"mean": {m}, "min": {min}, "max": {m}}}, "results_digest": "a633e32ce4db1594"}}"#,
                    m = min + 100
                )
            })
            .collect();
        format!(
            r#"{{
  "schema": "spllift-bench-solver/v4",
  "samples": 3,
  "machine": {{"os": "linux", "arch": "x86_64", "cpus": 8}},
  "provenance": {{"bin": "solver_bench", "subjects": "{subject}", "threads": "1"}},
  "entries": [
    {{"subject": "{subject}", "analysis": "Taint", "outcome": "complete", "rung": "full",
      "ide": {{"propagations": 1, "flow_evals": 1, "jump_fn_constructions": 1, "killed_early": 0, "value_updates": 1}},
      "bdd": {{"nodes": 1, "vars": 1, "cache_entries": 1}},
      "threads": [{}]}}
  ]
}}"#,
            cells_json.join(", ")
        )
    }

    #[test]
    fn identical_documents_pass() {
        let text = solver_text("MM08", &[(1, 1_000_000), (2, 800_000)]);
        let doc = solver_doc(&text).unwrap();
        let report = compare(&doc, &doc, RegressOptions::default());
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.compared, 2);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn slowdown_past_tolerance_fails_that_cell_only() {
        let base = solver_doc(&solver_text("MM08", &[(1, 100_000_000), (2, 80_000_000)])).unwrap();
        // t1 slowed 2x, t2 within tolerance.
        let fresh = solver_doc(&solver_text("MM08", &[(1, 200_000_000), (2, 81_000_000)])).unwrap();
        let report = compare(&base, &fresh, RegressOptions::default());
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("MM08/Taint@t1"), "per-cell key");
        assert!(report.failures[0].contains("+100.0%"), "relative delta");
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = solver_doc(&solver_text("MM08", &[(1, 100_000_000)])).unwrap();
        let fresh = solver_doc(&solver_text("MM08", &[(1, 120_000_000)])).unwrap();
        let report = compare(&base, &fresh, RegressOptions::default());
        assert!(report.passed(), "{}", report.render());
        // A tighter tolerance flips the same pair to a failure.
        let tight = compare(
            &base,
            &fresh,
            RegressOptions {
                tolerance: 0.1,
                ..RegressOptions::default()
            },
        );
        assert!(!tight.passed());
    }

    #[test]
    fn micro_cell_noise_cannot_fail_the_gate() {
        // +400% relative, but the absolute delta (40 µs) is far under
        // the 1 ms noise floor — a microsecond-scale worked example
        // being preempted once must not flip the gate.
        let base = solver_doc(&solver_text("fig1", &[(1, 10_000)])).unwrap();
        let fresh = solver_doc(&solver_text("fig1", &[(1, 50_000)])).unwrap();
        let report = compare(&base, &fresh, RegressOptions::default());
        assert!(report.passed(), "{}", report.render());
        assert!(
            report.infos.iter().any(|i| i.contains("noise floor")),
            "{}",
            report.render()
        );
        // Dropping the floor to zero exposes the same delta as a failure.
        let no_floor = compare(
            &base,
            &fresh,
            RegressOptions {
                min_delta_ns: 0,
                ..RegressOptions::default()
            },
        );
        assert!(!no_floor.passed());
    }

    #[test]
    fn speedups_never_fail() {
        let base = solver_doc(&solver_text("MM08", &[(1, 1_000_000)])).unwrap();
        let fresh = solver_doc(&solver_text("MM08", &[(1, 10)])).unwrap();
        let report = compare(&base, &fresh, RegressOptions::default());
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn missing_cell_fails_unless_subset() {
        let base = solver_doc(&solver_text("MM08", &[(1, 1_000_000), (2, 800_000)])).unwrap();
        let fresh = solver_doc(&solver_text("MM08", &[(1, 1_000_000)])).unwrap();
        let strict = compare(&base, &fresh, RegressOptions::default());
        assert!(!strict.passed());
        assert!(strict.failures[0].contains("missing from the fresh run"));
        let smoke = compare(
            &base,
            &fresh,
            RegressOptions {
                subset: true,
                ..RegressOptions::default()
            },
        );
        assert!(smoke.passed(), "{}", smoke.render());
        assert_eq!(smoke.compared, 1);
    }

    #[test]
    fn new_cells_are_informational() {
        let base = solver_doc(&solver_text("MM08", &[(1, 1_000_000)])).unwrap();
        let fresh = solver_doc(&solver_text("MM08", &[(1, 1_000_000), (2, 800_000)])).unwrap();
        let report = compare(&base, &fresh, RegressOptions::default());
        assert!(report.passed());
        assert!(report.infos.iter().any(|i| i.contains("new cell")));
    }

    #[test]
    fn machine_change_warns_but_does_not_fail() {
        let base_text = solver_text("MM08", &[(1, 1_000_000)]);
        let fresh_text = base_text.replace("\"cpus\": 8", "\"cpus\": 64");
        let base = solver_doc(&base_text).unwrap();
        let fresh = solver_doc(&fresh_text).unwrap();
        let report = compare(&base, &fresh, RegressOptions::default());
        assert!(report.passed());
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].contains("machine changed"));
    }

    #[test]
    fn solver_doc_requires_a_valid_document() {
        assert!(solver_doc("{}").is_err());
        // A v3-era cell without `samples` is rejected by the validator.
        let text =
            solver_text("MM08", &[(1, 1_000_000)]).replace("\"samples\": 3, \"wall", "\"wall");
        assert!(solver_doc(&text).unwrap_err().contains("samples"));
    }

    #[test]
    fn retry_merge_takes_the_min_and_clears_transient_failures() {
        let base = solver_doc(&solver_text("MM08", &[(1, 100_000_000)])).unwrap();
        // First pass hit a transient stall: +100%.
        let mut fresh = solver_doc(&solver_text("MM08", &[(1, 200_000_000)])).unwrap();
        let first = compare(&base, &fresh, RegressOptions::default());
        assert_eq!(first.failed_keys, vec!["MM08/Taint@t1".to_owned()]);
        // The retry pass measures a sane value; the merged doc keeps
        // the min of both passes and the verdict flips to pass.
        let retry = solver_doc(&solver_text("MM08", &[(1, 105_000_000)])).unwrap();
        fresh.merge_min(&retry);
        assert_eq!(fresh.cells[0].best_ns, 105_000_000);
        assert_eq!(fresh.cells[0].samples, 6, "sample counts accumulate");
        let second = compare(&base, &fresh, RegressOptions::default());
        assert!(second.passed(), "{}", second.render());
        // A reproducible regression stays a failure after the merge.
        let mut still_slow = solver_doc(&solver_text("MM08", &[(1, 200_000_000)])).unwrap();
        still_slow.merge_min(&solver_doc(&solver_text("MM08", &[(1, 190_000_000)])).unwrap());
        assert!(!compare(&base, &still_slow, RegressOptions::default()).passed());
    }

    #[test]
    fn report_renders_verdict_lines() {
        let base = solver_doc(&solver_text("MM08", &[(1, 1_000_000)])).unwrap();
        let fresh = solver_doc(&solver_text("MM08", &[(1, 5_000_000)])).unwrap();
        let r = compare(&base, &fresh, RegressOptions::default()).render();
        assert!(r.starts_with("FAIL  MM08/Taint@t1"), "{r}");
        assert!(r.contains("1 regressed"), "{r}");
    }
}
