//! The benchmark harness: shared measurement machinery for the `report`
//! binary and the in-tree benches, regenerating the paper's Tables 1–3.

#![warn(missing_docs)]
pub mod harness;
pub mod json;
pub mod regress;

use spllift_benchgen::GeneratedSpl;
use spllift_core::{LiftedIcfg, LiftedSolution, ModelMode};
use spllift_features::BddConstraintContext;
use spllift_ide::IdeStats;
use spllift_ifds::IfdsProblem;
use spllift_ir::ProgramIcfg;
use spllift_spl::a2_campaign_parallel;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// The three client analyses of the paper's evaluation (§6.2), plus the
/// taint analysis of the running example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientAnalysis {
    /// "Possible Types".
    PossibleTypes,
    /// "Reaching Definitions".
    ReachingDefs,
    /// "Uninitialized Variables".
    UninitVars,
    /// The intro's taint analysis.
    Taint,
}

impl ClientAnalysis {
    /// The three analyses of Tables 2 and 3, in paper order.
    pub const PAPER_THREE: [ClientAnalysis; 3] = [
        ClientAnalysis::PossibleTypes,
        ClientAnalysis::ReachingDefs,
        ClientAnalysis::UninitVars,
    ];

    /// The column label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ClientAnalysis::PossibleTypes => "P. Types",
            ClientAnalysis::ReachingDefs => "R. Def.",
            ClientAnalysis::UninitVars => "U. Var.",
            ClientAnalysis::Taint => "Taint",
        }
    }
}

/// Measured SPLLIFT run.
#[derive(Debug, Clone, Copy)]
pub struct SplliftMeasurement {
    /// Wall-clock solve time (lifting + both IDE phases).
    pub time: Duration,
    /// IDE solver counters.
    pub stats: IdeStats,
}

/// Measured (or extrapolated) A2 campaign over all valid configurations.
#[derive(Debug, Clone, Copy)]
pub enum A2Outcome {
    /// All valid configurations were analyzed within the cutoff.
    Exact {
        /// Campaign wall-clock time (sharded across `jobs` workers).
        total: Duration,
        /// Summed per-shard worker time — the sequential-equivalent
        /// cost, `≈ total × jobs` when the shards balance.
        cpu: Duration,
        /// Number of configurations analyzed.
        configs: u128,
        /// Worker threads the campaign was sharded across.
        jobs: usize,
    },
    /// The cutoff was hit; the total is extrapolated as the paper does
    /// (§6.2): average per-run time × number of valid configurations,
    /// divided by the worker count.
    Estimated {
        /// Mean per-configuration worker time over the measured sample.
        per_run: Duration,
        /// Total number of valid configurations.
        configs: u128,
        /// Configurations actually measured.
        measured: u64,
        /// Worker threads the projection assumes.
        jobs: usize,
    },
}

impl A2Outcome {
    /// The (possibly extrapolated) campaign wall-clock total, in
    /// seconds, at this outcome's worker count. With `jobs = 1` the
    /// estimate is exactly the paper's sequential extrapolation.
    pub fn total_secs(&self) -> f64 {
        match self {
            A2Outcome::Exact { total, .. } => total.as_secs_f64(),
            A2Outcome::Estimated {
                per_run,
                configs,
                jobs,
                ..
            } => per_run.as_secs_f64() * (*configs as f64) / (*jobs).max(1) as f64,
        }
    }

    /// `true` if the value is an estimate (the paper greys those cells).
    pub fn is_estimate(&self) -> bool {
        matches!(self, A2Outcome::Estimated { .. })
    }

    /// Worker threads used (or assumed) by the campaign.
    pub fn jobs(&self) -> usize {
        match self {
            A2Outcome::Exact { jobs, .. } | A2Outcome::Estimated { jobs, .. } => (*jobs).max(1),
        }
    }

    /// Average per-configuration worker time in seconds (the Table 3
    /// "average A2" row) — independent of the worker count.
    pub fn per_run_secs(&self) -> f64 {
        match self {
            A2Outcome::Exact { cpu, configs, .. } => cpu.as_secs_f64() / (*configs).max(1) as f64,
            A2Outcome::Estimated { per_run, .. } => per_run.as_secs_f64(),
        }
    }
}

/// Times the ICFG construction (class hierarchy + call graph) — the
/// "Soot/CG" column of Table 2.
pub fn time_icfg(spl: &GeneratedSpl) -> (Duration, ProgramIcfg<'_>) {
    let start = Instant::now();
    let icfg = ProgramIcfg::new(&spl.program);
    (start.elapsed(), icfg)
}

/// Runs SPLLIFT once over the whole product line.
pub fn time_spllift<P, D>(
    spl: &GeneratedSpl,
    icfg: &ProgramIcfg<'_>,
    problem: &P,
    mode: ModelMode,
) -> SplliftMeasurement
where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D> + Sync,
    D: Clone + Eq + Hash + std::fmt::Debug + Send + Sync,
{
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let model_opt = match mode {
        ModelMode::Ignore => None,
        _ => Some(&model),
    };
    let start = Instant::now();
    let solution = LiftedSolution::solve(problem, icfg, &ctx, model_opt, mode);
    let time = start.elapsed();
    SplliftMeasurement {
        time,
        stats: solution.stats(),
    }
}

/// Runs the A2 baseline over every valid configuration, sharded across
/// `jobs` worker threads (see [`spllift_spl::a2_campaign_parallel`]),
/// stopping at `cutoff` and extrapolating like the paper when exceeded.
/// Subjects whose configurations cannot even be enumerated (BerkeleyDB's
/// 2^39) are estimated from the full and empty configurations directly —
/// exactly the paper's §6.2 estimation recipe, projected onto `jobs`
/// workers.
pub fn time_a2_all<P, D>(
    spl: &GeneratedSpl,
    icfg: &ProgramIcfg<'_>,
    problem: &P,
    cutoff: Duration,
    jobs: usize,
) -> A2Outcome
where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D> + Sync,
    D: Clone + Eq + Hash + std::fmt::Debug,
{
    let jobs = jobs.max(1);
    let total_configs = spl.count_valid_configs();
    if spl.reachable.len() > 30 {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let [full, empty] = spl.extrapolation_configs();
        let start = Instant::now();
        let _ = spllift_spl::solve_a2(problem, &lifted_icfg, &full);
        let _ = spllift_spl::solve_a2(problem, &lifted_icfg, &empty);
        return A2Outcome::Estimated {
            per_run: start.elapsed() / 2,
            configs: total_configs,
            measured: 2,
            jobs,
        };
    }
    let configs = spl.valid_configurations();
    // Run in batches so the cutoff is honored between fan-outs: each
    // batch is one parallel campaign, and the cutoff check happens at
    // batch boundaries (a batch is at most a few seconds of work).
    let batch = (jobs * 16).max(32);
    let start = Instant::now();
    let mut wall = Duration::ZERO;
    let mut cpu = Duration::ZERO;
    let mut measured = 0u64;
    for chunk in configs.chunks(batch) {
        let outcome = a2_campaign_parallel(icfg, problem, chunk, jobs);
        wall += outcome.wall;
        cpu += outcome.shards.iter().map(|s| s.wall).sum::<Duration>();
        measured += chunk.len() as u64;
        if start.elapsed() > cutoff && measured < configs.len() as u64 {
            return A2Outcome::Estimated {
                per_run: cpu / measured as u32,
                configs: total_configs,
                measured,
                jobs,
            };
        }
    }
    A2Outcome::Exact {
        total: wall,
        cpu,
        configs: configs.len() as u128,
        jobs,
    }
}

/// One Table 2 / Table 3 cell: everything measured for a subject ×
/// analysis pair.
#[derive(Debug)]
pub struct Cell {
    /// Subject name.
    pub subject: &'static str,
    /// Analysis label.
    pub analysis: &'static str,
    /// Call-graph construction time (shared by both approaches).
    pub cg_time: Duration,
    /// SPLLIFT, feature model regarded (§4.2, on edges).
    pub spllift_regarded: SplliftMeasurement,
    /// SPLLIFT, feature model ignored (Table 3's second row).
    pub spllift_ignored: SplliftMeasurement,
    /// The A2 campaign.
    pub a2: A2Outcome,
}

/// Measures one cell. `cutoff` bounds the A2 campaign, which is sharded
/// across `jobs` worker threads.
pub fn measure_cell(
    spl: &GeneratedSpl,
    analysis: ClientAnalysis,
    cutoff: Duration,
    jobs: usize,
) -> Cell {
    let (cg_time, icfg) = time_icfg(spl);
    macro_rules! go {
        ($problem:expr) => {{
            let p = $problem;
            Cell {
                subject: spl.spec.name,
                analysis: analysis.label(),
                cg_time,
                spllift_regarded: time_spllift(spl, &icfg, &p, ModelMode::OnEdges),
                spllift_ignored: time_spllift(spl, &icfg, &p, ModelMode::Ignore),
                a2: time_a2_all(spl, &icfg, &p, cutoff, jobs),
            }
        }};
    }
    match analysis {
        ClientAnalysis::PossibleTypes => go!(spllift_analyses::PossibleTypes::new()),
        ClientAnalysis::ReachingDefs => go!(spllift_analyses::ReachingDefs::new()),
        ClientAnalysis::UninitVars => go!(spllift_analyses::UninitVars::new()),
        ClientAnalysis::Taint => go!(spllift_analyses::TaintAnalysis::secret_to_print()),
    }
}

/// Pretty-prints a duration the way the paper does (`4s`, `2m06s`,
/// `9h03m`, `~days`, `~years`).
pub fn fmt_duration(secs: f64) -> String {
    if secs.is_nan() {
        return "-".into();
    }
    if secs < 60.0 {
        return format!("{secs:.1}s");
    }
    let mins = secs / 60.0;
    if mins < 60.0 {
        return format!("{}m{:02}s", mins as u64, (secs % 60.0) as u64);
    }
    let hours = mins / 60.0;
    if hours < 48.0 {
        return format!("{}h{:02}m", hours as u64, (mins % 60.0) as u64);
    }
    let days = hours / 24.0;
    if days < 365.0 {
        return format!("{:.0} days", days);
    }
    format!("{:.1} years", days / 365.0)
}

/// Pearson correlation coefficient, for the §6.2 qualitative analysis
/// (time vs. number of jump functions constructed; the paper reports
/// ρ > 0.99).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spllift_benchgen::subject_by_name;

    #[test]
    fn measure_cell_smoke_mm08() {
        let spl = GeneratedSpl::generate(subject_by_name("MM08").unwrap());
        let cell = measure_cell(&spl, ClientAnalysis::UninitVars, Duration::from_secs(20), 2);
        assert_eq!(cell.subject, "MM08");
        assert!(cell.spllift_regarded.stats.jump_fn_constructions > 0);
        match cell.a2 {
            A2Outcome::Exact { configs, .. } => assert_eq!(configs, 26),
            A2Outcome::Estimated { configs, .. } => assert_eq!(configs, 26),
        }
    }

    #[test]
    fn spllift_beats_a2_on_mm08() {
        // The headline claim at miniature scale: one SPLLIFT pass is
        // faster than 26 A2 runs. jobs = 1 so the comparison matches
        // the paper's single-threaded campaign.
        let spl = GeneratedSpl::generate(subject_by_name("MM08").unwrap());
        let cell = measure_cell(
            &spl,
            ClientAnalysis::ReachingDefs,
            Duration::from_secs(60),
            1,
        );
        assert!(
            cell.spllift_regarded.time.as_secs_f64() < cell.a2.total_secs(),
            "SPLLIFT {}s vs A2 {}s",
            cell.spllift_regarded.time.as_secs_f64(),
            cell.a2.total_secs()
        );
    }

    #[test]
    fn fmt_duration_scales() {
        assert_eq!(fmt_duration(4.0), "4.0s");
        assert_eq!(fmt_duration(126.0), "2m06s");
        assert!(fmt_duration(9.0 * 3600.0).starts_with("9h"));
        assert!(fmt_duration(3.0 * 86400.0).contains("days"));
        assert!(fmt_duration(2.0 * 365.0 * 86400.0).contains("years"));
    }

    #[test]
    fn pearson_of_linear_data_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod outcome_tests {
    use super::*;

    #[test]
    fn exact_outcome_math() {
        let o = A2Outcome::Exact {
            total: Duration::from_secs(10),
            cpu: Duration::from_secs(10),
            configs: 5,
            jobs: 1,
        };
        assert!(!o.is_estimate());
        assert_eq!(o.total_secs(), 10.0);
        assert_eq!(o.per_run_secs(), 2.0);
        assert_eq!(o.jobs(), 1);
    }

    #[test]
    fn estimated_outcome_extrapolates() {
        let o = A2Outcome::Estimated {
            per_run: Duration::from_millis(100),
            configs: 1_000_000,
            measured: 7,
            jobs: 1,
        };
        assert!(o.is_estimate());
        assert!((o.total_secs() - 100_000.0).abs() < 1e-6);
        assert!((o.per_run_secs() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn estimated_outcome_divides_by_jobs() {
        // Projecting the sequential extrapolation onto 4 workers.
        let o = A2Outcome::Estimated {
            per_run: Duration::from_millis(100),
            configs: 1_000_000,
            measured: 7,
            jobs: 4,
        };
        assert!((o.total_secs() - 25_000.0).abs() < 1e-6);
        // The per-run (per-worker) cost does not change with jobs.
        assert!((o.per_run_secs() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn exact_with_zero_configs_is_safe() {
        let o = A2Outcome::Exact {
            total: Duration::ZERO,
            cpu: Duration::ZERO,
            configs: 0,
            jobs: 1,
        };
        assert_eq!(o.per_run_secs(), 0.0);
    }
}
