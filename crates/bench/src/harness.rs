//! A tiny, dependency-free benchmark harness.
//!
//! The workspace builds offline, so the benches cannot use Criterion;
//! this module provides the small part of it they need: a warmup pass,
//! a fixed number of timed samples, and a mean/min/max summary line.
//! All four `[[bench]]` targets (`harness = false`) are plain `main`
//! functions built on [`Harness::bench`].

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Summary of one benchmarked closure.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark id, e.g. `table2/MM08/spllift/R. Def.`.
    pub name: String,
    /// Number of timed samples (excludes the warmup pass).
    pub samples: usize,
    /// Mean sample time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl std::fmt::Display for BenchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>10.3?} (min {:>9.3?}, max {:>9.3?}, n={})",
            self.name, self.mean, self.min, self.max, self.samples
        )
    }
}

/// Where [`Harness::bench`] sends its human-readable summary lines.
///
/// The historical behavior (and the default) is one line per bench on
/// stdout; a machine-readable emitter (see `bin/solver_bench`) instead
/// claims stdout for itself and routes the human lines to [`Stderr`]
/// (or drops them with [`Quiet`]).
///
/// [`Stderr`]: BenchSink::Stderr
/// [`Quiet`]: BenchSink::Quiet
#[derive(Debug, Clone, Default)]
pub enum BenchSink {
    /// Print each summary line to stdout (the default).
    #[default]
    Stdout,
    /// Print each summary line to stderr, leaving stdout free for
    /// machine-readable output.
    Stderr,
    /// Discard the summary lines.
    Quiet,
    /// Append each summary line to a shared buffer (for tests).
    Collect(Rc<RefCell<Vec<String>>>),
}

impl BenchSink {
    fn emit(&self, line: &str) {
        match self {
            BenchSink::Stdout => println!("{line}"),
            BenchSink::Stderr => eprintln!("{line}"),
            BenchSink::Quiet => {}
            BenchSink::Collect(buf) => buf.borrow_mut().push(line.to_owned()),
        }
    }
}

/// Runs benches with a fixed sample count and prints one line each.
#[derive(Debug, Clone)]
pub struct Harness {
    group: String,
    samples: usize,
    sink: BenchSink,
}

impl Harness {
    /// A harness whose bench names are prefixed `group/`; `samples`
    /// timed runs per bench (clamped to at least 1) after one warmup.
    pub fn new(group: impl Into<String>, samples: usize) -> Self {
        Harness {
            group: group.into(),
            samples: samples.max(1),
            sink: BenchSink::default(),
        }
    }

    /// The same harness with its summary lines routed to `sink`.
    #[must_use]
    pub fn with_sink(mut self, sink: BenchSink) -> Self {
        self.sink = sink;
        self
    }

    /// A sub-harness with `suffix` appended to the group prefix.
    pub fn group(&self, suffix: &str) -> Harness {
        Harness {
            group: format!("{}/{suffix}", self.group),
            samples: self.samples,
            sink: self.sink.clone(),
        }
    }

    /// Times `f`: one untimed warmup call, then `samples` timed calls.
    /// Emits the summary line to the configured [`BenchSink`]
    /// (stdout by default) and returns it.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) -> BenchStats {
        f();
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            f();
            let t = start.elapsed();
            total += t;
            min = min.min(t);
            max = max.max(t);
        }
        let stats = BenchStats {
            name: format!("{}/{name}", self.group),
            samples: self.samples,
            mean: total / self.samples as u32,
            min,
            max,
        };
        self.sink.emit(&stats.to_string());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_calls_and_orders_extremes() {
        let h = Harness::new("t", 5);
        let mut calls = 0;
        let stats = h.bench("busy", || calls += 1);
        assert_eq!(calls, 6, "1 warmup + 5 samples");
        assert_eq!(stats.samples, 5);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
        assert_eq!(stats.name, "t/busy");
    }

    #[test]
    fn group_nests_prefixes() {
        let h = Harness::new("table2", 1).group("MM08");
        let stats = h.bench("spllift", || {});
        assert_eq!(stats.name, "table2/MM08/spllift");
    }

    #[test]
    fn collect_sink_captures_lines_instead_of_printing() {
        // Regression for the JSON emitter: `bench` must route its human
        // summary through the configured sink, not unconditionally
        // through stdout (pre-fix, `bench` always `println!`ed, which
        // corrupted machine-readable output on stdout).
        let buf = Rc::new(RefCell::new(Vec::new()));
        let h = Harness::new("grp", 2).with_sink(BenchSink::Collect(buf.clone()));
        let stats = h.bench("x", || {});
        let lines = buf.borrow();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0], stats.to_string());
        assert!(lines[0].starts_with("grp/x"));
    }

    #[test]
    fn sink_is_inherited_by_sub_groups() {
        let buf = Rc::new(RefCell::new(Vec::new()));
        let h = Harness::new("a", 1).with_sink(BenchSink::Collect(buf.clone()));
        let _ = h.group("b").bench("c", || {});
        assert_eq!(buf.borrow().len(), 1);
        assert!(buf.borrow()[0].starts_with("a/b/c"));
    }

    #[test]
    fn quiet_sink_still_returns_stats() {
        let h = Harness::new("q", 1).with_sink(BenchSink::Quiet);
        let stats = h.bench("x", || {});
        assert_eq!(stats.name, "q/x");
    }

    #[test]
    fn zero_samples_clamps_to_one() {
        let h = Harness::new("t", 0);
        let mut calls = 0;
        let _ = h.bench("x", || calls += 1);
        assert_eq!(calls, 2);
    }
}
