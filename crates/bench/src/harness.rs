//! A tiny, dependency-free benchmark harness.
//!
//! The workspace builds offline, so the benches cannot use Criterion;
//! this module provides the small part of it they need: a warmup pass,
//! a fixed number of timed samples, and a mean/min/max summary line.
//! All four `[[bench]]` targets (`harness = false`) are plain `main`
//! functions built on [`Harness::bench`].

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Summary of one benchmarked closure.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark id, e.g. `table2/MM08/spllift/R. Def.`.
    pub name: String,
    /// Number of timed samples (excludes the warmup pass).
    pub samples: usize,
    /// Mean sample time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl std::fmt::Display for BenchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>10.3?} (min {:>9.3?}, max {:>9.3?}, n={})",
            self.name, self.mean, self.min, self.max, self.samples
        )
    }
}

/// Where [`Harness::bench`] sends its human-readable summary lines.
///
/// The historical behavior (and the default) is one line per bench on
/// stdout; a machine-readable emitter (see `bin/solver_bench`) instead
/// claims stdout for itself and routes the human lines to [`Stderr`]
/// (or drops them with [`Quiet`]).
///
/// [`Stderr`]: BenchSink::Stderr
/// [`Quiet`]: BenchSink::Quiet
#[derive(Debug, Clone, Default)]
pub enum BenchSink {
    /// Print each summary line to stdout (the default).
    #[default]
    Stdout,
    /// Print each summary line to stderr, leaving stdout free for
    /// machine-readable output.
    Stderr,
    /// Discard the summary lines.
    Quiet,
    /// Append each summary line to a shared buffer (for tests).
    Collect(Rc<RefCell<Vec<String>>>),
}

impl BenchSink {
    fn emit(&self, line: &str) {
        match self {
            BenchSink::Stdout => println!("{line}"),
            BenchSink::Stderr => eprintln!("{line}"),
            BenchSink::Quiet => {}
            BenchSink::Collect(buf) => buf.borrow_mut().push(line.to_owned()),
        }
    }
}

/// Runs benches with a fixed sample count and prints one line each.
#[derive(Debug, Clone)]
pub struct Harness {
    group: String,
    samples: usize,
    sink: BenchSink,
}

impl Harness {
    /// A harness whose bench names are prefixed `group/`; `samples`
    /// timed runs per bench (clamped to at least 1) after one warmup.
    pub fn new(group: impl Into<String>, samples: usize) -> Self {
        Harness {
            group: group.into(),
            samples: samples.max(1),
            sink: BenchSink::default(),
        }
    }

    /// The same harness with its summary lines routed to `sink`.
    #[must_use]
    pub fn with_sink(mut self, sink: BenchSink) -> Self {
        self.sink = sink;
        self
    }

    /// A sub-harness with `suffix` appended to the group prefix.
    pub fn group(&self, suffix: &str) -> Harness {
        Harness {
            group: format!("{}/{suffix}", self.group),
            samples: self.samples,
            sink: self.sink.clone(),
        }
    }

    /// Times `f`: one untimed warmup call, then `samples` timed calls.
    /// Emits the summary line to the configured [`BenchSink`]
    /// (stdout by default) and returns it.
    pub fn bench<F: FnMut()>(&self, name: &str, f: F) -> BenchStats {
        self.bench_adaptive(name, None, f)
    }

    /// Like [`bench`](Self::bench), but the warmup pass also decides the
    /// sample count: when the warmup call takes `budget` or longer, only
    /// one timed sample follows (slow cells would otherwise multiply a
    /// long run by the sample count). The returned
    /// [`BenchStats::samples`] records the count actually taken, so a
    /// downstream document always knows how trustworthy its `min` is.
    pub fn bench_adaptive<F: FnMut()>(
        &self,
        name: &str,
        budget: Option<Duration>,
        mut f: F,
    ) -> BenchStats {
        let warmup_start = Instant::now();
        f();
        let warmup = warmup_start.elapsed();
        let samples = if budget.is_some_and(|b| warmup >= b) {
            1
        } else {
            self.samples
        };
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..samples {
            let start = Instant::now();
            f();
            let t = start.elapsed();
            total += t;
            min = min.min(t);
            max = max.max(t);
        }
        let stats = BenchStats {
            name: format!("{}/{name}", self.group),
            samples,
            mean: total / samples as u32,
            min,
            max,
        };
        self.sink.emit(&stats.to_string());
        stats
    }
}

/// Nearest-rank percentile over ascending-sorted samples: the smallest
/// value covering at least `percent` percent of them. Zero on an empty
/// slice — callers summarizing a level that produced no successful
/// samples get a zeroed block instead of an out-of-bounds panic.
pub fn nearest_rank_ns(sorted: &[u128], percent: usize) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (percent * sorted.len())
        .div_ceil(100)
        .clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The p50/p90/p99/max latency block of a benchmark document, built
/// with [`nearest_rank_ns`]. All-zero when there were no samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median latency, nanoseconds.
    pub p50_ns: u128,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u128,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u128,
    /// Slowest sample, nanoseconds.
    pub max_ns: u128,
}

impl LatencySummary {
    /// Summarizes a batch of latency samples (sorts them in place).
    pub fn from_samples(samples: &mut [u128]) -> LatencySummary {
        samples.sort_unstable();
        LatencySummary {
            p50_ns: nearest_rank_ns(samples, 50),
            p90_ns: nearest_rank_ns(samples, 90),
            p99_ns: nearest_rank_ns(samples, 99),
            max_ns: samples.last().copied().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_calls_and_orders_extremes() {
        let h = Harness::new("t", 5);
        let mut calls = 0;
        let stats = h.bench("busy", || calls += 1);
        assert_eq!(calls, 6, "1 warmup + 5 samples");
        assert_eq!(stats.samples, 5);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
        assert_eq!(stats.name, "t/busy");
    }

    #[test]
    fn group_nests_prefixes() {
        let h = Harness::new("table2", 1).group("MM08");
        let stats = h.bench("spllift", || {});
        assert_eq!(stats.name, "table2/MM08/spllift");
    }

    #[test]
    fn collect_sink_captures_lines_instead_of_printing() {
        // Regression for the JSON emitter: `bench` must route its human
        // summary through the configured sink, not unconditionally
        // through stdout (pre-fix, `bench` always `println!`ed, which
        // corrupted machine-readable output on stdout).
        let buf = Rc::new(RefCell::new(Vec::new()));
        let h = Harness::new("grp", 2).with_sink(BenchSink::Collect(buf.clone()));
        let stats = h.bench("x", || {});
        let lines = buf.borrow();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0], stats.to_string());
        assert!(lines[0].starts_with("grp/x"));
    }

    #[test]
    fn sink_is_inherited_by_sub_groups() {
        let buf = Rc::new(RefCell::new(Vec::new()));
        let h = Harness::new("a", 1).with_sink(BenchSink::Collect(buf.clone()));
        let _ = h.group("b").bench("c", || {});
        assert_eq!(buf.borrow().len(), 1);
        assert!(buf.borrow()[0].starts_with("a/b/c"));
    }

    #[test]
    fn quiet_sink_still_returns_stats() {
        let h = Harness::new("q", 1).with_sink(BenchSink::Quiet);
        let stats = h.bench("x", || {});
        assert_eq!(stats.name, "q/x");
    }

    #[test]
    fn zero_samples_clamps_to_one() {
        let h = Harness::new("t", 0);
        let mut calls = 0;
        let _ = h.bench("x", || calls += 1);
        assert_eq!(calls, 2);
    }

    #[test]
    fn adaptive_budget_cuts_slow_cells_to_one_sample() {
        let h = Harness::new("t", 5).with_sink(BenchSink::Quiet);
        // Warmup slower than the budget: 1 warmup + 1 sample.
        let mut calls = 0;
        let stats = h.bench_adaptive("slow", Some(Duration::ZERO), || calls += 1);
        assert_eq!(calls, 2);
        assert_eq!(stats.samples, 1);
        // A budget no warmup can exceed: the full sample count.
        let mut calls = 0;
        let stats = h.bench_adaptive("fast", Some(Duration::from_secs(3600)), || calls += 1);
        assert_eq!(calls, 6);
        assert_eq!(stats.samples, 5);
    }

    #[test]
    fn nearest_rank_of_single_sample_is_that_sample() {
        let one = [42u128];
        for p in [0, 1, 50, 90, 99, 100] {
            assert_eq!(nearest_rank_ns(&one, p), 42, "p{p}");
        }
    }

    #[test]
    fn nearest_rank_of_empty_is_zero_not_a_panic() {
        // Regression for the all-error `server_bench` level: an empty
        // sample set must summarize to a zeroed block, not index out of
        // bounds (the old inline closure computed `clamp(1, 0)`, which
        // panics with `min > max`).
        for p in [0, 50, 99, 100] {
            assert_eq!(nearest_rank_ns(&[], p), 0, "p{p}");
        }
        assert_eq!(
            LatencySummary::from_samples(&mut []),
            LatencySummary {
                p50_ns: 0,
                p90_ns: 0,
                p99_ns: 0,
                max_ns: 0
            }
        );
    }

    #[test]
    fn nearest_rank_at_the_rank_boundaries() {
        // 100 samples 1..=100: rank arithmetic is exact — pN is the
        // N-th smallest.
        let hundred: Vec<u128> = (1..=100).collect();
        assert_eq!(nearest_rank_ns(&hundred, 50), 50);
        assert_eq!(nearest_rank_ns(&hundred, 90), 90);
        assert_eq!(nearest_rank_ns(&hundred, 99), 99);
        assert_eq!(nearest_rank_ns(&hundred, 100), 100);
        // 99 samples: ceil(p·99/100) — p50 → 50th, p99 → 99th (= max).
        let ninety_nine: Vec<u128> = (1..=99).collect();
        assert_eq!(nearest_rank_ns(&ninety_nine, 50), 50);
        assert_eq!(nearest_rank_ns(&ninety_nine, 99), 99);
        assert_eq!(nearest_rank_ns(&ninety_nine, 100), 99);
        // 101 samples: ceil(50·101/100) = 51 — the true median.
        let hundred_one: Vec<u128> = (1..=101).collect();
        assert_eq!(nearest_rank_ns(&hundred_one, 50), 51);
        assert_eq!(nearest_rank_ns(&hundred_one, 99), 100);
        assert_eq!(nearest_rank_ns(&hundred_one, 100), 101);
        // p0 clamps to the first sample, never below.
        assert_eq!(nearest_rank_ns(&hundred_one, 0), 1);
    }

    #[test]
    fn latency_summary_is_monotone() {
        // Deterministic scrambled sample sets of several sizes: the
        // summary must always order p50 ≤ p90 ≤ p99 ≤ max.
        for n in [1usize, 2, 7, 99, 100, 101, 1000] {
            let mut samples: Vec<u128> = (0..n).map(|i| ((i * 7919 + 13) % 1000) as u128).collect();
            let s = LatencySummary::from_samples(&mut samples);
            assert!(
                s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns && s.p99_ns <= s.max_ns,
                "n={n}: {s:?}"
            );
            assert_eq!(s.max_ns, samples.iter().copied().max().unwrap());
        }
    }
}
