//! A tiny, dependency-free benchmark harness.
//!
//! The workspace builds offline, so the benches cannot use Criterion;
//! this module provides the small part of it they need: a warmup pass,
//! a fixed number of timed samples, and a mean/min/max summary line.
//! All four `[[bench]]` targets (`harness = false`) are plain `main`
//! functions built on [`Harness::bench`].

use std::time::{Duration, Instant};

/// Summary of one benchmarked closure.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark id, e.g. `table2/MM08/spllift/R. Def.`.
    pub name: String,
    /// Number of timed samples (excludes the warmup pass).
    pub samples: usize,
    /// Mean sample time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl std::fmt::Display for BenchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>10.3?} (min {:>9.3?}, max {:>9.3?}, n={})",
            self.name, self.mean, self.min, self.max, self.samples
        )
    }
}

/// Runs benches with a fixed sample count and prints one line each.
#[derive(Debug, Clone)]
pub struct Harness {
    group: String,
    samples: usize,
}

impl Harness {
    /// A harness whose bench names are prefixed `group/`; `samples`
    /// timed runs per bench (clamped to at least 1) after one warmup.
    pub fn new(group: impl Into<String>, samples: usize) -> Self {
        Harness {
            group: group.into(),
            samples: samples.max(1),
        }
    }

    /// A sub-harness with `suffix` appended to the group prefix.
    pub fn group(&self, suffix: &str) -> Harness {
        Harness {
            group: format!("{}/{suffix}", self.group),
            samples: self.samples,
        }
    }

    /// Times `f`: one untimed warmup call, then `samples` timed calls.
    /// Prints the summary line to stdout and returns it.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) -> BenchStats {
        f();
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            f();
            let t = start.elapsed();
            total += t;
            min = min.min(t);
            max = max.max(t);
        }
        let stats = BenchStats {
            name: format!("{}/{name}", self.group),
            samples: self.samples,
            mean: total / self.samples as u32,
            min,
            max,
        };
        println!("{stats}");
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_calls_and_orders_extremes() {
        let h = Harness::new("t", 5);
        let mut calls = 0;
        let stats = h.bench("busy", || calls += 1);
        assert_eq!(calls, 6, "1 warmup + 5 samples");
        assert_eq!(stats.samples, 5);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
        assert_eq!(stats.name, "t/busy");
    }

    #[test]
    fn group_nests_prefixes() {
        let h = Harness::new("table2", 1).group("MM08");
        let stats = h.bench("spllift", || {});
        assert_eq!(stats.name, "table2/MM08/spllift");
    }

    #[test]
    fn zero_samples_clamps_to_one() {
        let h = Harness::new("t", 0);
        let mut calls = 0;
        let _ = h.bench("x", || calls += 1);
        assert_eq!(calls, 2);
    }
}
