//! Machine-readable benchmark output: the `BENCH_solver.json` emitter,
//! a minimal JSON parser, and the schema validator CI runs against the
//! emitted file.
//!
//! The workspace builds offline with zero registry dependencies, so
//! there is no serde here: the emitter writes the (small, fixed-shape)
//! document by hand, and the validator uses a ~100-line recursive
//! descent parser that covers exactly the JSON subset the emitter
//! produces (objects, arrays, strings, finite numbers, booleans).
//!
//! # Schema (`spllift-bench-solver/v1`)
//!
//! ```json
//! {
//!   "schema": "spllift-bench-solver/v1",
//!   "samples": 3,
//!   "entries": [
//!     {
//!       "subject": "MM08",
//!       "analysis": "R. Def.",
//!       "wall_ns": {"mean": 1234, "min": 1200, "max": 1300},
//!       "ide": {"propagations": 10, "flow_evals": 20,
//!               "jump_fn_constructions": 8, "killed_early": 1,
//!               "value_updates": 5},
//!       "bdd": {"nodes": 40, "vars": 9, "cache_entries": 100}
//!     }
//!   ]
//! }
//! ```
//!
//! Every number is a non-negative integer (nanoseconds for the wall
//! times); the validator additionally rejects any value that does not
//! parse as a *finite* `f64`, so a corrupted emitter fails CI fast.

use crate::harness::BenchStats;
use spllift_bdd::BddStats;
use spllift_ide::IdeStats;

/// The schema identifier written to (and required in) the JSON file.
pub const SOLVER_BENCH_SCHEMA: &str = "spllift-bench-solver/v1";

/// One per-subject/per-analysis measurement destined for
/// `BENCH_solver.json`.
#[derive(Debug, Clone)]
pub struct SolverBenchEntry {
    /// Subject name (`fig1`, `chat`, `MM08`, …).
    pub subject: String,
    /// Analysis label (the paper's column label, e.g. `R. Def.`).
    pub analysis: String,
    /// Wall-clock samples of the full lifted solve.
    pub wall: BenchStats,
    /// IDE solver counters from the last sample.
    pub ide: IdeStats,
    /// BDD manager counters after all samples (shared manager).
    pub bdd: BddStats,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full `BENCH_solver.json` document.
pub fn render_solver_bench(samples: usize, entries: &[SolverBenchEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SOLVER_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"subject\": \"{}\",\n", escape(&e.subject)));
        out.push_str(&format!(
            "      \"analysis\": \"{}\",\n",
            escape(&e.analysis)
        ));
        out.push_str(&format!(
            "      \"wall_ns\": {{\"mean\": {}, \"min\": {}, \"max\": {}}},\n",
            e.wall.mean.as_nanos(),
            e.wall.min.as_nanos(),
            e.wall.max.as_nanos()
        ));
        out.push_str(&format!(
            "      \"ide\": {{\"propagations\": {}, \"flow_evals\": {}, \"jump_fn_constructions\": {}, \"killed_early\": {}, \"value_updates\": {}}},\n",
            e.ide.propagations,
            e.ide.flow_evals,
            e.ide.jump_fn_constructions,
            e.ide.killed_early,
            e.ide.value_updates
        ));
        out.push_str(&format!(
            "      \"bdd\": {{\"nodes\": {}, \"vars\": {}, \"cache_entries\": {}}}\n",
            e.bdd.nodes, e.bdd.vars, e.bdd.cache_entries
        ));
        out.push_str(if i + 1 == entries.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

// ----------------------------------------------------------------------
// Minimal JSON parser (validation only).
// ----------------------------------------------------------------------

/// A parsed JSON value (just enough for validation).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; the parser rejects non-finite values.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys rejected).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("bad number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err(&format!("non-finite number `{text}`")));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document (the subset the emitter produces).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// Validates a `BENCH_solver.json` document against the
/// [`SOLVER_BENCH_SCHEMA`] shape: schema id, non-empty `entries`, every
/// required key present, every number finite and non-negative. Returns
/// the entry count.
pub fn validate_solver_bench(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let schema = doc.get("schema").ok_or("missing `schema` key")?.clone();
    if schema != Json::Str(SOLVER_BENCH_SCHEMA.into()) {
        return Err(format!(
            "schema mismatch: expected \"{SOLVER_BENCH_SCHEMA}\", got {schema:?}"
        ));
    }
    let num = |v: &Json, what: &str| -> Result<f64, String> {
        match v {
            Json::Num(n) if n.is_finite() && *n >= 0.0 => Ok(*n),
            other => Err(format!(
                "`{what}` must be a finite non-negative number, got {other:?}"
            )),
        }
    };
    num(
        doc.get("samples").ok_or("missing `samples` key")?,
        "samples",
    )?;
    let Some(Json::Arr(entries)) = doc.get("entries") else {
        return Err("missing or non-array `entries`".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    for (i, e) in entries.iter().enumerate() {
        let ctx = |k: &str| format!("entries[{i}].{k}");
        for key in ["subject", "analysis"] {
            match e.get(key) {
                Some(Json::Str(s)) if !s.is_empty() => {}
                _ => return Err(format!("{} must be a non-empty string", ctx(key))),
            }
        }
        let groups: [(&str, &[&str]); 3] = [
            ("wall_ns", &["mean", "min", "max"]),
            (
                "ide",
                &[
                    "propagations",
                    "flow_evals",
                    "jump_fn_constructions",
                    "killed_early",
                    "value_updates",
                ],
            ),
            ("bdd", &["nodes", "vars", "cache_entries"]),
        ];
        for (group, keys) in groups {
            let obj = e
                .get(group)
                .ok_or_else(|| format!("missing {}", ctx(group)))?;
            for key in keys {
                let v = obj
                    .get(key)
                    .ok_or_else(|| format!("missing {}.{key}", ctx(group)))?;
                num(v, &format!("{}.{key}", ctx(group)))?;
            }
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn entry() -> SolverBenchEntry {
        SolverBenchEntry {
            subject: "MM08".into(),
            analysis: "R. Def.".into(),
            wall: BenchStats {
                name: "solver/MM08/R. Def.".into(),
                samples: 3,
                mean: Duration::from_nanos(1500),
                min: Duration::from_nanos(1000),
                max: Duration::from_nanos(2000),
            },
            ide: IdeStats {
                propagations: 10,
                flow_evals: 20,
                jump_fn_constructions: 8,
                killed_early: 1,
                value_updates: 5,
            },
            bdd: BddStats {
                nodes: 40,
                vars: 9,
                cache_entries: 100,
            },
        }
    }

    #[test]
    fn emitted_document_validates() {
        let text = render_solver_bench(3, &[entry()]);
        assert_eq!(validate_solver_bench(&text), Ok(1));
    }

    #[test]
    fn emitted_document_round_trips() {
        let text = render_solver_bench(3, &[entry(), entry()]);
        let doc = parse_json(&text).unwrap();
        assert_eq!(
            doc.get("schema"),
            Some(&Json::Str(SOLVER_BENCH_SCHEMA.into()))
        );
        let Some(Json::Arr(entries)) = doc.get("entries") else {
            panic!("entries missing");
        };
        assert_eq!(entries.len(), 2);
        let wall = entries[0].get("wall_ns").unwrap();
        assert_eq!(wall.get("mean"), Some(&Json::Num(1500.0)));
        assert_eq!(
            entries[0].get("ide").unwrap().get("jump_fn_constructions"),
            Some(&Json::Num(8.0))
        );
    }

    #[test]
    fn validator_rejects_missing_keys_and_bad_numbers() {
        assert!(validate_solver_bench("{}").is_err());
        assert!(validate_solver_bench("not json").is_err());
        let wrong_schema = r#"{"schema": "other/v9", "samples": 1, "entries": []}"#;
        assert!(validate_solver_bench(wrong_schema)
            .unwrap_err()
            .contains("schema mismatch"));
        let empty =
            format!(r#"{{"schema": "{SOLVER_BENCH_SCHEMA}", "samples": 1, "entries": []}}"#);
        assert!(validate_solver_bench(&empty).unwrap_err().contains("empty"));
        // A key present but non-finite (parser rejects before shape check).
        let text = render_solver_bench(3, &[entry()]).replace("1500", "1e999");
        assert!(validate_solver_bench(&text).is_err());
        // A missing ide counter.
        let text = render_solver_bench(3, &[entry()]).replace("\"killed_early\"", "\"other\"");
        assert!(validate_solver_bench(&text)
            .unwrap_err()
            .contains("killed_early"));
    }

    #[test]
    fn parser_handles_strings_escapes_and_nesting() {
        let doc =
            parse_json(r#"{"a": ["x\n\"y\"", {"b": -1.5e3}], "c": true, "d": null}"#).unwrap();
        let Some(Json::Arr(items)) = doc.get("a") else {
            panic!()
        };
        assert_eq!(items[0], Json::Str("x\n\"y\"".into()));
        assert_eq!(items[1].get("b"), Some(&Json::Num(-1500.0)));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_duplicate_keys_and_trailing_garbage() {
        assert!(parse_json(r#"{"a": 1, "a": 2}"#).is_err());
        assert!(parse_json(r#"{"a": 1} extra"#).is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
    }
}
