//! Machine-readable benchmark output: the `BENCH_solver.json` and
//! `BENCH_server.json` emitters and the schema validators CI runs
//! against the emitted files.
//!
//! The JSON value type, parser, and string escaping live in the shared
//! [`spllift_json`] crate (also used by the analysis server's request
//! protocol); this module keeps only the `spllift-bench-solver/v4` and
//! `spllift-bench-server/v2` schemas layered on top.
//!
//! # Schema (`spllift-bench-solver/v4`)
//!
//! ```json
//! {
//!   "schema": "spllift-bench-solver/v4",
//!   "samples": 3,
//!   "machine": {"os": "linux", "arch": "x86_64", "cpus": 8},
//!   "provenance": {"bin": "solver_bench",
//!                  "subjects": "fig1,chat,MM08", "threads": "1,2"},
//!   "entries": [
//!     {
//!       "subject": "MM08",
//!       "analysis": "R. Def.",
//!       "outcome": "complete",
//!       "rung": "full",
//!       "ide": {"propagations": 10, "flow_evals": 20,
//!               "jump_fn_constructions": 8, "killed_early": 1,
//!               "value_updates": 5},
//!       "bdd": {"nodes": 40, "vars": 9, "cache_entries": 100},
//!       "threads": [
//!         {"threads": 1, "samples": 3,
//!          "wall_ns": {"mean": 1234, "min": 1200, "max": 1300},
//!          "results_digest": "a633e32ce4db1594"},
//!         {"threads": 2, "samples": 3,
//!          "wall_ns": {"mean": 700, "min": 690, "max": 720},
//!          "results_digest": "a633e32ce4db1594"}
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! Every number is a non-negative integer (nanoseconds for the wall
//! times); the validator additionally rejects any value that does not
//! parse as a *finite* `f64`, so a corrupted emitter fails CI fast.
//!
//! v2 added the governance fields: `outcome` records whether the
//! measured solve completed at full precision (`complete`) or degraded
//! under a resource budget (`degraded`), and `rung` names the
//! abstraction-ladder rung that produced the numbers (`full`,
//! `no-model`, `constraint-true`) — benchmark runs are unbudgeted, so a
//! committed document is expected to say `complete`/`full`, and the
//! validator rejects anything else outside that vocabulary.
//!
//! v3 turned the single wall-clock measurement into a **threads
//! dimension**: each entry is benched per phase-1 worker count (the
//! solver's `--threads`), one cell per count, carrying that cell's
//! wall-clock stats and a `results_digest` over the canonically
//! rendered solution. The validator requires every cell of an entry to
//! carry the *same* digest — the determinism contract (results are
//! byte-identical at every thread count) is checked on every committed
//! document, not just in the test battery. The `ide` counters are
//! taken from the sequential cell: scheduling counters are only
//! deterministic at one thread.
//!
//! v4 (and server v2) made the documents **comparable across runs** for
//! the regression gate (`crate::regress`): a top-level `machine` block
//! (`os`/`arch`/`cpus` — the gate warns when two documents come from
//! different machines), a solver `provenance` block recording the bin
//! and the exact subject/thread lists (so `--check` can re-run the same
//! matrix without re-stating it), and a per-cell `samples` count — the
//! emitter sizes sampling adaptively, so each cell must say how many
//! samples its `min` was taken over. The validator rejects v4 cells
//! lacking any comparator field (`samples`, `wall_ns.min`).

use crate::harness::BenchStats;
use spllift_bdd::BddStats;
use spllift_ide::IdeStats;
pub use spllift_json::{escape, parse_json, Json};

/// The schema identifier written to (and required in) the JSON file.
pub const SOLVER_BENCH_SCHEMA: &str = "spllift-bench-solver/v4";

/// The schema identifier of `BENCH_server.json` (the concurrent-server
/// load benchmark emitted by the `server_bench` bin).
pub const SERVER_BENCH_SCHEMA: &str = "spllift-bench-server/v2";

/// The `machine` block both schemas carry: where the numbers were
/// measured. The regression gate never *fails* over a machine change,
/// but it does warn — cross-machine wall-clock ratios are not
/// regressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInfo {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available parallelism at measurement time.
    pub cpus: usize,
}

impl MachineInfo {
    /// The block describing the machine this process runs on.
    pub fn current() -> MachineInfo {
        MachineInfo {
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    fn render(&self) -> String {
        format!(
            "{{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}}}",
            escape(&self.os),
            escape(&self.arch),
            self.cpus
        )
    }

    /// Reads the `machine` block out of a parsed benchmark document
    /// (`None` when absent or malformed — the caller decides whether
    /// that is an error; the validators make it one).
    pub fn from_doc(doc: &Json) -> Option<MachineInfo> {
        let m = doc.get("machine")?;
        Some(MachineInfo {
            os: m.get("os")?.as_str()?.to_owned(),
            arch: m.get("arch")?.as_str()?.to_owned(),
            cpus: m.get("cpus")?.as_f64().filter(|c| *c >= 1.0)? as usize,
        })
    }
}

/// The solver document's `provenance` block: which bin produced it and
/// the exact subject/thread matrix it measured, so `--check` can replay
/// the same matrix from the baseline alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Emitting binary (`solver_bench`).
    pub bin: String,
    /// The `--subjects` list as given.
    pub subjects: String,
    /// The `--threads` list as given.
    pub threads: String,
}

impl Provenance {
    fn render(&self) -> String {
        format!(
            "{{\"bin\": \"{}\", \"subjects\": \"{}\", \"threads\": \"{}\"}}",
            escape(&self.bin),
            escape(&self.subjects),
            escape(&self.threads)
        )
    }

    /// Reads the `provenance` block out of a parsed solver document.
    pub fn from_doc(doc: &Json) -> Option<Provenance> {
        let p = doc.get("provenance")?;
        Some(Provenance {
            bin: p.get("bin")?.as_str()?.to_owned(),
            subjects: p.get("subjects")?.as_str()?.to_owned(),
            threads: p.get("threads")?.as_str()?.to_owned(),
        })
    }
}

/// One concurrency level of the server load benchmark: `sessions`
/// concurrent connections, each driving its own session through a fixed
/// request script against one shared server.
#[derive(Debug, Clone)]
pub struct ServerBenchLevel {
    /// Concurrent sessions (== connections; one session per connection).
    pub sessions: usize,
    /// Total requests answered across all sessions.
    pub requests: usize,
    /// Responses with `"type":"error"` (must be zero in a committed
    /// document — the script only sends valid requests).
    pub errors: usize,
    /// Wall-clock of the whole level, nanoseconds.
    pub wall_ns: u128,
    /// Requests per second over the level's wall-clock.
    pub throughput_rps: f64,
    /// Client-observed per-request latency percentiles (nearest-rank)
    /// and maximum, nanoseconds.
    pub p50_ns: u128,
    /// 90th percentile latency, nanoseconds.
    pub p90_ns: u128,
    /// 99th percentile latency, nanoseconds.
    pub p99_ns: u128,
    /// Maximum latency, nanoseconds.
    pub max_ns: u128,
}

/// Renders the full `BENCH_server.json` document.
pub fn render_server_bench(
    shards: usize,
    requests_per_session: usize,
    machine: &MachineInfo,
    levels: &[ServerBenchLevel],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SERVER_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"machine\": {},\n", machine.render()));
    out.push_str(&format!("  \"shards\": {shards},\n"));
    out.push_str(&format!(
        "  \"requests_per_session\": {requests_per_session},\n"
    ));
    out.push_str("  \"levels\": [\n");
    for (i, l) in levels.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"sessions\": {}, \"requests\": {}, \"errors\": {},\n",
            l.sessions, l.requests, l.errors
        ));
        out.push_str(&format!(
            "      \"wall_ns\": {}, \"throughput_rps\": {:.3},\n",
            l.wall_ns, l.throughput_rps
        ));
        out.push_str(&format!(
            "      \"latency_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}\n",
            l.p50_ns, l.p90_ns, l.p99_ns, l.max_ns
        ));
        out.push_str(if i + 1 == levels.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `BENCH_server.json` document against the
/// [`SERVER_BENCH_SCHEMA`] shape: schema id, a well-formed `machine`
/// block, at least three concurrency levels, every number finite and
/// non-negative, zero errors, positive throughput, and monotone latency
/// percentiles (p50 ≤ p90 ≤ p99 ≤ max). Returns the level count.
pub fn validate_server_bench(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let schema = doc.get("schema").ok_or("missing `schema` key")?.clone();
    if schema != Json::Str(SERVER_BENCH_SCHEMA.into()) {
        return Err(format!(
            "schema mismatch: expected \"{SERVER_BENCH_SCHEMA}\", got {schema:?}"
        ));
    }
    MachineInfo::from_doc(&doc)
        .ok_or("missing or malformed `machine` block (os/arch strings, cpus >= 1)")?;
    let finite = |v: Option<&Json>, what: &str| -> Result<f64, String> {
        v.and_then(Json::as_f64)
            .filter(|n| *n >= 0.0)
            .ok_or_else(|| format!("`{what}` must be a finite non-negative number"))
    };
    finite(doc.get("shards"), "shards")?;
    finite(doc.get("requests_per_session"), "requests_per_session")?;
    let Some(Json::Arr(levels)) = doc.get("levels") else {
        return Err("missing or non-array `levels`".into());
    };
    if levels.len() < 3 {
        return Err(format!(
            "`levels` must cover at least 3 concurrency levels, got {}",
            levels.len()
        ));
    }
    for (i, l) in levels.iter().enumerate() {
        let ctx = |k: &str| format!("levels[{i}].{k}");
        for key in ["sessions", "requests", "wall_ns"] {
            if finite(l.get(key), &ctx(key))? <= 0.0 {
                return Err(format!("{} must be positive", ctx(key)));
            }
        }
        if finite(l.get("errors"), &ctx("errors"))? != 0.0 {
            return Err(format!("{} must be zero", ctx("errors")));
        }
        if finite(l.get("throughput_rps"), &ctx("throughput_rps"))? <= 0.0 {
            return Err(format!("{} must be positive", ctx("throughput_rps")));
        }
        let lat = l
            .get("latency_ns")
            .ok_or_else(|| format!("missing {}", ctx("latency_ns")))?;
        let mut prev = 0.0;
        for key in ["p50", "p90", "p99", "max"] {
            let v = finite(lat.get(key), &format!("{}.{key}", ctx("latency_ns")))?;
            if v < prev {
                return Err(format!(
                    "{} percentiles must be monotone ({key} dropped)",
                    ctx("latency_ns")
                ));
            }
            prev = v;
        }
    }
    Ok(levels.len())
}

/// One thread-count cell of a [`SolverBenchEntry`]: the wall-clock
/// stats of solving with `threads` phase-1 workers, plus the digest of
/// the canonically rendered solution (identical across an entry's
/// cells, or the validator rejects the document).
#[derive(Debug, Clone)]
pub struct ThreadCell {
    /// Phase-1 worker threads this cell was benched at.
    pub threads: usize,
    /// Wall-clock samples of the full lifted solve at this count.
    pub wall: BenchStats,
    /// `FxHasher64` digest (16 hex digits) over the rendered solution.
    pub results_digest: String,
}

/// One per-subject/per-analysis measurement destined for
/// `BENCH_solver.json`.
#[derive(Debug, Clone)]
pub struct SolverBenchEntry {
    /// Subject name (`fig1`, `chat`, `MM08`, …).
    pub subject: String,
    /// Analysis label (the paper's column label, e.g. `R. Def.`).
    pub analysis: String,
    /// Governed-solve outcome (`complete` or `degraded`).
    pub outcome: String,
    /// Abstraction-ladder rung the numbers came from (`full`,
    /// `no-model`, `constraint-true`).
    pub rung: String,
    /// IDE solver counters from the sequential (`threads == 1`) cell —
    /// scheduling counters are only deterministic at one thread.
    pub ide: IdeStats,
    /// BDD manager counters after all samples (shared manager).
    pub bdd: BddStats,
    /// Per-thread-count measurements, in ascending thread order.
    pub threads: Vec<ThreadCell>,
}

/// Renders the full `BENCH_solver.json` document. `samples` is the
/// *requested* sample count; each cell records the count actually taken
/// (adaptive sampling reduces slow cells to one).
pub fn render_solver_bench(
    samples: usize,
    machine: &MachineInfo,
    provenance: &Provenance,
    entries: &[SolverBenchEntry],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SOLVER_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str(&format!("  \"machine\": {},\n", machine.render()));
    out.push_str(&format!("  \"provenance\": {},\n", provenance.render()));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"subject\": \"{}\",\n", escape(&e.subject)));
        out.push_str(&format!(
            "      \"analysis\": \"{}\",\n",
            escape(&e.analysis)
        ));
        out.push_str(&format!(
            "      \"outcome\": \"{}\",\n      \"rung\": \"{}\",\n",
            escape(&e.outcome),
            escape(&e.rung)
        ));
        out.push_str(&format!(
            "      \"ide\": {{\"propagations\": {}, \"flow_evals\": {}, \"jump_fn_constructions\": {}, \"killed_early\": {}, \"value_updates\": {}}},\n",
            e.ide.propagations,
            e.ide.flow_evals,
            e.ide.jump_fn_constructions,
            e.ide.killed_early,
            e.ide.value_updates
        ));
        out.push_str(&format!(
            "      \"bdd\": {{\"nodes\": {}, \"vars\": {}, \"cache_entries\": {}}},\n",
            e.bdd.nodes, e.bdd.vars, e.bdd.cache_entries
        ));
        out.push_str("      \"threads\": [\n");
        for (j, c) in e.threads.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"threads\": {}, \"samples\": {}, \"wall_ns\": {{\"mean\": {}, \"min\": {}, \"max\": {}}}, \"results_digest\": \"{}\"}}{}\n",
                c.threads,
                c.wall.samples,
                c.wall.mean.as_nanos(),
                c.wall.min.as_nanos(),
                c.wall.max.as_nanos(),
                escape(&c.results_digest),
                if j + 1 == e.threads.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 == entries.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `BENCH_solver.json` document against the
/// [`SOLVER_BENCH_SCHEMA`] shape: schema id, well-formed `machine` and
/// `provenance` blocks, non-empty `entries`, every required key present
/// (including the per-cell comparator fields `samples` and `wall_ns`),
/// every number finite and non-negative, and — the determinism contract
/// — every thread cell of an entry carrying the same `results_digest`.
/// Returns the entry count.
pub fn validate_solver_bench(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let schema = doc.get("schema").ok_or("missing `schema` key")?.clone();
    if schema != Json::Str(SOLVER_BENCH_SCHEMA.into()) {
        return Err(format!(
            "schema mismatch: expected \"{SOLVER_BENCH_SCHEMA}\", got {schema:?}"
        ));
    }
    MachineInfo::from_doc(&doc)
        .ok_or("missing or malformed `machine` block (os/arch strings, cpus >= 1)")?;
    Provenance::from_doc(&doc)
        .ok_or("missing or malformed `provenance` block (bin/subjects/threads strings)")?;
    let num = |v: &Json, what: &str| -> Result<f64, String> {
        match v {
            Json::Num(n) if n.is_finite() && *n >= 0.0 => Ok(*n),
            other => Err(format!(
                "`{what}` must be a finite non-negative number, got {other:?}"
            )),
        }
    };
    num(
        doc.get("samples").ok_or("missing `samples` key")?,
        "samples",
    )?;
    let Some(Json::Arr(entries)) = doc.get("entries") else {
        return Err("missing or non-array `entries`".into());
    };
    if entries.is_empty() {
        return Err("`entries` is empty".into());
    }
    for (i, e) in entries.iter().enumerate() {
        let ctx = |k: &str| format!("entries[{i}].{k}");
        for key in ["subject", "analysis"] {
            match e.get(key) {
                Some(Json::Str(s)) if !s.is_empty() => {}
                _ => return Err(format!("{} must be a non-empty string", ctx(key))),
            }
        }
        {
            let allowed = &["complete", "degraded"][..];
            match e.get("outcome") {
                Some(Json::Str(s)) if allowed.contains(&s.as_str()) => {}
                other => {
                    return Err(format!(
                        "{} must be one of {allowed:?}, got {other:?}",
                        ctx("outcome")
                    ))
                }
            }
        }
        // `rung` is a variability-abstraction lattice-point name: the
        // canonical points (`full`, `no-model`, `constraint-true`) or a
        // `+`-joined composite of abstraction steps like
        // `no-model+project(F,G)` — any non-empty name is accepted.
        match e.get("rung") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            other => {
                return Err(format!(
                    "{} must be a non-empty lattice-point name, got {other:?}",
                    ctx("rung")
                ))
            }
        }
        let groups: [(&str, &[&str]); 2] = [
            (
                "ide",
                &[
                    "propagations",
                    "flow_evals",
                    "jump_fn_constructions",
                    "killed_early",
                    "value_updates",
                ],
            ),
            ("bdd", &["nodes", "vars", "cache_entries"]),
        ];
        for (group, keys) in groups {
            let obj = e
                .get(group)
                .ok_or_else(|| format!("missing {}", ctx(group)))?;
            for key in keys {
                let v = obj
                    .get(key)
                    .ok_or_else(|| format!("missing {}.{key}", ctx(group)))?;
                num(v, &format!("{}.{key}", ctx(group)))?;
            }
        }
        let Some(Json::Arr(cells)) = e.get("threads") else {
            return Err(format!("missing or non-array {}", ctx("threads")));
        };
        if cells.is_empty() {
            return Err(format!("{} is empty", ctx("threads")));
        }
        let mut digest: Option<&str> = None;
        let mut prev_threads = 0.0;
        for (j, c) in cells.iter().enumerate() {
            let cctx = |k: &str| format!("entries[{i}].threads[{j}].{k}");
            let t = num(
                c.get("threads")
                    .ok_or_else(|| format!("missing {}", cctx("threads")))?,
                &cctx("threads"),
            )?;
            if t < 1.0 {
                return Err(format!("{} must be >= 1", cctx("threads")));
            }
            if t <= prev_threads {
                return Err(format!(
                    "{} must be in strictly ascending thread order",
                    ctx("threads")
                ));
            }
            prev_threads = t;
            // The comparator fields the regression gate reads: how many
            // samples this cell took (adaptive sampling makes it
            // per-cell) and the wall-clock block its min lives in.
            let s = num(
                c.get("samples")
                    .ok_or_else(|| format!("missing {} (comparator field)", cctx("samples")))?,
                &cctx("samples"),
            )?;
            if s < 1.0 {
                return Err(format!("{} must be >= 1", cctx("samples")));
            }
            let wall = c
                .get("wall_ns")
                .ok_or_else(|| format!("missing {} (comparator field)", cctx("wall_ns")))?;
            for key in ["mean", "min", "max"] {
                let v = wall
                    .get(key)
                    .ok_or_else(|| format!("missing {}.{key}", cctx("wall_ns")))?;
                num(v, &format!("{}.{key}", cctx("wall_ns")))?;
            }
            match c.get("results_digest") {
                Some(Json::Str(d)) if !d.is_empty() => {
                    // The determinism contract: every cell of this
                    // entry must have rendered the exact same solution.
                    match digest {
                        None => digest = Some(d),
                        Some(first) if first == d => {}
                        Some(first) => {
                            return Err(format!(
                                "{}: results_digest \"{d}\" differs from the entry's first cell \"{first}\" — solves are not thread-count invariant",
                                cctx("results_digest")
                            ))
                        }
                    }
                }
                _ => {
                    return Err(format!(
                        "{} must be a non-empty string",
                        cctx("results_digest")
                    ))
                }
            }
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn machine() -> MachineInfo {
        MachineInfo {
            os: "linux".into(),
            arch: "x86_64".into(),
            cpus: 8,
        }
    }

    fn provenance() -> Provenance {
        Provenance {
            bin: "solver_bench".into(),
            subjects: "MM08".into(),
            threads: "1,2,4".into(),
        }
    }

    fn render(samples: usize, entries: &[SolverBenchEntry]) -> String {
        render_solver_bench(samples, &machine(), &provenance(), entries)
    }

    fn cell(threads: usize, mean_ns: u64) -> ThreadCell {
        ThreadCell {
            threads,
            wall: BenchStats {
                name: format!("solver/MM08/R. Def.@t{threads}"),
                samples: 3,
                mean: Duration::from_nanos(mean_ns),
                min: Duration::from_nanos(mean_ns.saturating_sub(500)),
                max: Duration::from_nanos(mean_ns + 500),
            },
            results_digest: "a633e32ce4db1594".into(),
        }
    }

    fn entry() -> SolverBenchEntry {
        SolverBenchEntry {
            subject: "MM08".into(),
            analysis: "R. Def.".into(),
            outcome: "complete".into(),
            rung: "full".into(),
            ide: IdeStats {
                propagations: 10,
                flow_evals: 20,
                jump_fn_constructions: 8,
                killed_early: 1,
                value_updates: 5,
            },
            bdd: BddStats {
                nodes: 40,
                vars: 9,
                cache_entries: 100,
            },
            threads: vec![cell(1, 1500), cell(2, 900), cell(4, 700)],
        }
    }

    #[test]
    fn emitted_document_validates() {
        let text = render(3, &[entry()]);
        assert_eq!(validate_solver_bench(&text), Ok(1));
    }

    #[test]
    fn emitted_document_round_trips() {
        let text = render(3, &[entry(), entry()]);
        let doc = parse_json(&text).unwrap();
        assert_eq!(
            doc.get("schema"),
            Some(&Json::Str(SOLVER_BENCH_SCHEMA.into()))
        );
        let Some(Json::Arr(entries)) = doc.get("entries") else {
            panic!("entries missing");
        };
        assert_eq!(entries.len(), 2);
        let Some(Json::Arr(cells)) = entries[0].get("threads") else {
            panic!("threads cells missing");
        };
        assert_eq!(cells.len(), 3);
        let wall = cells[0].get("wall_ns").unwrap();
        assert_eq!(wall.get("mean"), Some(&Json::Num(1500.0)));
        assert_eq!(cells[1].get("threads"), Some(&Json::Num(2.0)));
        assert_eq!(
            cells[2].get("results_digest"),
            Some(&Json::Str("a633e32ce4db1594".into()))
        );
        assert_eq!(
            entries[0].get("ide").unwrap().get("jump_fn_constructions"),
            Some(&Json::Num(8.0))
        );
    }

    fn level(sessions: usize) -> ServerBenchLevel {
        ServerBenchLevel {
            sessions,
            requests: sessions * 7,
            errors: 0,
            wall_ns: 5_000_000,
            throughput_rps: 1234.5,
            p50_ns: 1000,
            p90_ns: 2000,
            p99_ns: 3000,
            max_ns: 4000,
        }
    }

    #[test]
    fn server_bench_document_validates() {
        let text = render_server_bench(4, 7, &machine(), &[level(16), level(64), level(256)]);
        assert_eq!(validate_server_bench(&text), Ok(3));
    }

    #[test]
    fn server_bench_validator_rejects_bad_documents() {
        assert!(validate_server_bench("{}").is_err());
        // Fewer than three concurrency levels.
        let short = render_server_bench(4, 7, &machine(), &[level(16), level(64)]);
        assert!(validate_server_bench(&short)
            .unwrap_err()
            .contains("3 concurrency levels"));
        // A non-zero error count.
        let errs = render_server_bench(4, 7, &machine(), &[level(16), level(64), level(256)])
            .replace("\"errors\": 0", "\"errors\": 2");
        assert!(validate_server_bench(&errs).unwrap_err().contains("zero"));
        // Non-monotone percentiles.
        let bad = render_server_bench(4, 7, &machine(), &[level(16), level(64), level(256)])
            .replace("\"p99\": 3000", "\"p99\": 1");
        assert!(validate_server_bench(&bad)
            .unwrap_err()
            .contains("monotone"));
    }

    #[test]
    fn validator_rejects_missing_keys_and_bad_numbers() {
        assert!(validate_solver_bench("{}").is_err());
        assert!(validate_solver_bench("not json").is_err());
        let wrong_schema = r#"{"schema": "other/v9", "samples": 1, "entries": []}"#;
        assert!(validate_solver_bench(wrong_schema)
            .unwrap_err()
            .contains("schema mismatch"));
        let empty = format!(
            r#"{{"schema": "{SOLVER_BENCH_SCHEMA}", "samples": 1,
                 "machine": {{"os": "linux", "arch": "x86_64", "cpus": 8}},
                 "provenance": {{"bin": "solver_bench", "subjects": "x", "threads": "1"}},
                 "entries": []}}"#
        );
        assert!(validate_solver_bench(&empty).unwrap_err().contains("empty"));
        // A key present but non-finite (parser rejects before shape check).
        let text = render(3, &[entry()]).replace("1500", "1e999");
        assert!(validate_solver_bench(&text).is_err());
        // A missing ide counter.
        let text = render(3, &[entry()]).replace("\"killed_early\"", "\"other\"");
        assert!(validate_solver_bench(&text)
            .unwrap_err()
            .contains("killed_early"));
        // Any non-empty lattice-point name is a valid rung (composite
        // points like `no-model+project(F,G)` must pass), but an empty
        // name is rejected.
        let text = render(3, &[entry()]).replace("\"full\"", "\"no-model+project(F,G)\"");
        assert!(validate_solver_bench(&text).is_ok());
        let text = render(3, &[entry()]).replace("\"full\"", "\"\"");
        assert!(validate_solver_bench(&text).unwrap_err().contains("rung"));
    }

    #[test]
    fn validator_rejects_missing_v4_blocks_and_comparator_fields() {
        // No machine block.
        let text = render(3, &[entry()]).replace("\"machine\"", "\"mach\"");
        assert!(validate_solver_bench(&text)
            .unwrap_err()
            .contains("machine"));
        // No provenance block.
        let text = render(3, &[entry()]).replace("\"provenance\"", "\"prov\"");
        assert!(validate_solver_bench(&text)
            .unwrap_err()
            .contains("provenance"));
        // A cell without its per-cell sample count (a v3-era cell): the
        // regression gate cannot weigh its min, so the document is
        // rejected outright.
        let text = render(3, &[entry()]).replace("\"samples\": 3, \"wall_ns\"", "\"wall_ns\"");
        let err = validate_solver_bench(&text).unwrap_err();
        assert!(
            err.contains("samples") && err.contains("comparator"),
            "{err}"
        );
        // A zero sample count.
        let text = render(3, &[entry()])
            .replace("\"samples\": 3, \"wall_ns\"", "\"samples\": 0, \"wall_ns\"");
        assert!(validate_solver_bench(&text).unwrap_err().contains(">= 1"));
        // Server documents need the machine block too.
        let text = render_server_bench(4, 7, &machine(), &[level(16), level(64), level(256)])
            .replace("\"machine\"", "\"mach\"");
        assert!(validate_server_bench(&text)
            .unwrap_err()
            .contains("machine"));
    }

    #[test]
    fn validator_rejects_thread_dimension_violations() {
        // A digest mismatch between an entry's cells: the thread-count
        // determinism contract is enforced on the document itself.
        let mut broken = entry();
        broken.threads[2].results_digest = "deadbeefdeadbeef".into();
        let text = render(3, &[broken]);
        assert!(validate_solver_bench(&text)
            .unwrap_err()
            .contains("not thread-count invariant"));
        // Cells out of thread order.
        let mut disordered = entry();
        disordered.threads.swap(0, 1);
        let text = render(3, &[disordered]);
        assert!(validate_solver_bench(&text)
            .unwrap_err()
            .contains("ascending"));
        // No cells at all.
        let mut hollow = entry();
        hollow.threads.clear();
        let text = render(3, &[hollow]);
        assert!(validate_solver_bench(&text).unwrap_err().contains("empty"));
        // A zero thread count.
        let mut zero = entry();
        zero.threads[0].threads = 0;
        let text = render(3, &[zero]);
        assert!(validate_solver_bench(&text).unwrap_err().contains(">= 1"));
    }
}
