//! `solver_bench` — the machine-readable solver benchmark.
//!
//! Measures the full SPLLIFT hot path (lifting + both IDE phases) per
//! subject × analysis × thread count and writes the results as
//! `BENCH_solver.json` (schema `spllift-bench-solver/v3`, see
//! `spllift_bench::json`), so every PR can record before/after numbers
//! against the same schema. Every cell records a digest of the rendered
//! solution; the validator requires the digest to be identical across
//! an entry's thread counts, so each run re-proves that `--threads`
//! never changes results.
//!
//! ```text
//! cargo run --release -p spllift-bench --bin solver_bench -- \
//!     [--samples N] [--subjects fig1,chat,MM08,...] [--threads 1,2,4,8] [--out PATH]
//! cargo run --release -p spllift-bench --bin solver_bench -- --validate PATH
//! ```
//!
//! Subjects: `fig1` and `chat` (the committed `examples_data/` product
//! lines, feature models regarded), any generated subject
//! (`MM08|GPL|Lampiro|BerkeleyDB`), or `synthetic:<features>:<loc>:<seed>`.
//!
//! Stdout carries nothing but the JSON document when `--out -` is
//! given; the per-bench human summary lines go to stderr (see
//! [`BenchSink`]), so the emitted file can be schema-validated in CI
//! (`--validate`) without stream-corruption worries.

use spllift_bench::harness::{BenchSink, Harness};
use spllift_bench::json::{
    render_solver_bench, validate_solver_bench, SolverBenchEntry, ThreadCell,
};
use spllift_benchgen::{subject_by_name, synthetic_spec, GeneratedSpl};
use spllift_core::{GovernorOptions, LiftedSolution, ModelMode, SolveOutcome};
use spllift_features::{parse_feature_model, BddConstraintContext, FeatureExpr, FeatureTable};
use spllift_frontend::parse_spl;
use spllift_hash::FxHasher64;
use spllift_ide::{IdeSolverOptions, IdeStats};
use spllift_ifds::{Icfg, IfdsProblem};
use spllift_ir::{Program, ProgramIcfg};
use std::cell::RefCell;
use std::hash::{Hash, Hasher};
use std::process::ExitCode;

const DEFAULT_SUBJECTS: &str = "fig1,chat,MM08,GPL,Lampiro";
const DEFAULT_THREADS: &str = "1,2,4,8";
const DEFAULT_OUT: &str = "BENCH_solver.json";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("solver_bench: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut samples = 3usize;
    let mut subjects = DEFAULT_SUBJECTS.to_owned();
    let mut threads_list = DEFAULT_THREADS.to_owned();
    let mut out = DEFAULT_OUT.to_owned();
    let mut args_iter = args.iter().cloned();
    while let Some(arg) = args_iter.next() {
        match arg.as_str() {
            "--validate" => {
                let path = args_iter.next().ok_or("--validate needs a file path")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let n = validate_solver_bench(&text).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("solver_bench: {path} is valid ({n} entries)");
                return Ok(());
            }
            "--samples" => {
                let v = args_iter.next().ok_or("--samples needs a count")?;
                samples = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&s| s >= 1)
                    .ok_or(format!("--samples needs a positive integer, got `{v}`"))?;
            }
            "--subjects" => {
                subjects = args_iter.next().ok_or("--subjects needs a list")?;
            }
            "--threads" => {
                threads_list = args_iter.next().ok_or("--threads needs a list")?;
            }
            "--out" => {
                out = args_iter.next().ok_or("--out needs a path")?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: solver_bench [--samples N] [--subjects A,B,..] [--threads N,M,..] [--out PATH|-]\n       solver_bench --validate PATH\n(default subjects: {DEFAULT_SUBJECTS}; default threads: {DEFAULT_THREADS}; default out: {DEFAULT_OUT})"
                ));
            }
            other => return Err(format!("unexpected argument `{other}` (try --help)")),
        }
    }

    let mut thread_counts = Vec::new();
    for t in threads_list.split(',').filter(|s| !s.is_empty()) {
        let n: usize = t.parse().ok().filter(|&n| n >= 1).ok_or(format!(
            "--threads entries must be positive integers, got `{t}`"
        ))?;
        if thread_counts.last().is_some_and(|&last| n <= last) {
            return Err(format!(
                "--threads must be strictly ascending, got `{threads_list}`"
            ));
        }
        thread_counts.push(n);
    }
    if thread_counts.is_empty() {
        return Err("--threads needs at least one count".into());
    }

    let mut entries = Vec::new();
    for name in subjects.split(',').filter(|s| !s.is_empty()) {
        let subject = load_subject(name)?;
        entries.extend(measure_subject(&subject, samples, &thread_counts));
    }
    let doc = render_solver_bench(samples, &entries);
    // The emitter owns stdout; sanity-check our own output before
    // writing, so a malformed document can never land on disk.
    validate_solver_bench(&doc).map_err(|e| format!("internal emitter error: {e}"))?;
    if out == "-" {
        print!("{doc}");
    } else {
        std::fs::write(&out, &doc).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!(
            "solver_bench: wrote {} entries ({} samples each) to {out}",
            entries.len(),
            samples
        );
    }
    Ok(())
}

/// An owned, fully loaded benchmark subject.
struct Subject {
    name: String,
    program: Program,
    table: FeatureTable,
    model: Option<FeatureExpr>,
}

/// Path of a committed `examples_data/` file, resolved relative to the
/// workspace so the binary works from any working directory.
fn example_path(file: &str) -> String {
    format!("{}/../../examples_data/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn load_example(name: &str) -> Result<Subject, String> {
    let src_path = example_path(&format!("{name}.minijava"));
    let model_path = example_path(&format!("{name}.model"));
    let source =
        std::fs::read_to_string(&src_path).map_err(|e| format!("cannot read {src_path}: {e}"))?;
    let mut table = FeatureTable::new();
    let program = parse_spl(&source, &mut table).map_err(|e| format!("{src_path}: {e}"))?;
    let text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let model = parse_feature_model(&text, &mut table)
        .map_err(|e| format!("{model_path}: {e}"))?
        .to_expr();
    Ok(Subject {
        name: name.to_owned(),
        program,
        table,
        model: Some(model),
    })
}

fn load_subject(name: &str) -> Result<Subject, String> {
    if name == "fig1" || name == "chat" {
        return load_example(name);
    }
    let spec = if let Some(rest) = name.strip_prefix("synthetic:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let [features, loc, seed] = parts.as_slice() else {
            return Err("synthetic takes synthetic:<features>:<loc>:<seed>".into());
        };
        let parse = |what: &str, v: &str| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("synthetic {what} must be an integer, got `{v}`"))
        };
        synthetic_spec(
            parse("feature count", features)?,
            parse("loc", loc)?,
            parse("seed", seed)? as u64,
        )
    } else {
        subject_by_name(name).ok_or_else(|| {
            format!(
                "unknown subject `{name}` (fig1|chat|MM08|GPL|Lampiro|BerkeleyDB|synthetic:<f>:<loc>:<seed>)"
            )
        })?
    };
    let spl = GeneratedSpl::generate(spec);
    let model = spl.model_expr();
    let GeneratedSpl { program, table, .. } = spl;
    Ok(Subject {
        name: name.to_owned(),
        program,
        table,
        model: Some(model),
    })
}

fn measure_subject(
    subject: &Subject,
    samples: usize,
    thread_counts: &[usize],
) -> Vec<SolverBenchEntry> {
    let icfg = ProgramIcfg::new(&subject.program);
    let mut entries = Vec::new();
    macro_rules! go {
        ($label:expr, $problem:expr) => {{
            let p = $problem;
            entries.push(measure_one(
                subject,
                &icfg,
                $label,
                &p,
                samples,
                thread_counts,
            ));
        }};
    }
    go!("Taint", spllift_analyses::TaintAnalysis::secret_to_print());
    go!("P. Types", spllift_analyses::PossibleTypes::new());
    go!("R. Def.", spllift_analyses::ReachingDefs::new());
    go!("U. Var.", spllift_analyses::UninitVars::new());
    entries
}

/// Order-sensitive `FxHasher64` digest over the canonically rendered
/// solution (per-statement reachability cube + fact rows in fact
/// order), 16 hex digits. Cube strings are canonical per BDD, so equal
/// digests mean semantically identical solutions — the cross-thread
/// determinism check the v3 validator enforces per entry.
fn results_digest<D>(
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    solution: &LiftedSolution<'_, ProgramIcfg<'_>, D, spllift_bdd::Bdd>,
) -> String
where
    D: Clone + Eq + Ord + Hash + std::fmt::Debug,
{
    let _ = ctx;
    let mut h = FxHasher64::default();
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            s.to_string().hash(&mut h);
            solution.reachability_of(s).to_cube_string().hash(&mut h);
            let mut rows: Vec<(D, spllift_bdd::Bdd)> = solution.results_at(s).into_iter().collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            for (d, c) in rows {
                format!("{d:?}").hash(&mut h);
                c.to_cube_string().hash(&mut h);
            }
        }
    }
    format!("{:016x}", h.finish())
}

fn measure_one<P, D>(
    subject: &Subject,
    icfg: &ProgramIcfg<'_>,
    label: &str,
    problem: &P,
    samples: usize,
    thread_counts: &[usize],
) -> SolverBenchEntry
where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D> + Sync,
    D: Clone + Eq + Ord + Hash + std::fmt::Debug + Send + Sync,
{
    // One manager per subject × analysis: samples and thread counts
    // share the unique table and op caches, exactly like repeated
    // solves in production.
    let ctx = BddConstraintContext::new(&subject.table);
    let harness =
        Harness::new(format!("solver/{}", subject.name), samples).with_sink(BenchSink::Stderr);
    let ide_stats: RefCell<IdeStats> = RefCell::new(IdeStats::default());
    let outcome: RefCell<SolveOutcome> = RefCell::new(SolveOutcome::Complete);
    let mut cells = Vec::with_capacity(thread_counts.len());
    for (i, &threads) in thread_counts.iter().enumerate() {
        let digest: RefCell<String> = RefCell::new(String::new());
        let gov = GovernorOptions {
            solver: IdeSolverOptions {
                threads,
                ..IdeSolverOptions::default()
            },
            ..GovernorOptions::default()
        };
        let wall = harness.bench(&format!("{label}@t{threads}"), || {
            // The governed entry point with no limits armed, so the
            // measured path is exactly the production server's — an
            // unbudgeted run must record `complete`/`full`.
            let (solution, o) = LiftedSolution::solve_governed(
                problem,
                icfg,
                &ctx,
                subject.model.as_ref(),
                ModelMode::OnEdges,
                gov.clone(),
            )
            .expect("unlimited governed solve cannot abort");
            // IDE counters come from the first (sequential) cell only:
            // scheduling counters are deterministic at one thread.
            if i == 0 {
                *ide_stats.borrow_mut() = solution.stats();
            }
            *outcome.borrow_mut() = o;
            *digest.borrow_mut() = results_digest(icfg, &ctx, &solution);
        });
        cells.push(ThreadCell {
            threads,
            wall,
            results_digest: digest.into_inner(),
        });
    }
    let outcome = outcome.into_inner();
    SolverBenchEntry {
        subject: subject.name.clone(),
        analysis: label.to_owned(),
        outcome: if outcome.is_degraded() {
            "degraded".to_owned()
        } else {
            "complete".to_owned()
        },
        rung: outcome.rung().as_str().to_owned(),
        ide: ide_stats.into_inner(),
        bdd: ctx.manager().stats(),
        threads: cells,
    }
}
