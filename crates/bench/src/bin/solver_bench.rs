//! `solver_bench` — the machine-readable solver benchmark.
//!
//! Measures the full SPLLIFT hot path (lifting + both IDE phases) per
//! subject × analysis and writes the results as `BENCH_solver.json`
//! (schema `spllift-bench-solver/v1`, see `spllift_bench::json`), so
//! every PR can record before/after numbers against the same schema.
//!
//! ```text
//! cargo run --release -p spllift-bench --bin solver_bench -- \
//!     [--samples N] [--subjects fig1,chat,MM08,...] [--out PATH]
//! cargo run --release -p spllift-bench --bin solver_bench -- --validate PATH
//! ```
//!
//! Subjects: `fig1` and `chat` (the committed `examples_data/` product
//! lines, feature models regarded), any generated subject
//! (`MM08|GPL|Lampiro|BerkeleyDB`), or `synthetic:<features>:<loc>:<seed>`.
//!
//! Stdout carries nothing but the JSON document when `--out -` is
//! given; the per-bench human summary lines go to stderr (see
//! [`BenchSink`]), so the emitted file can be schema-validated in CI
//! (`--validate`) without stream-corruption worries.

use spllift_bench::harness::{BenchSink, Harness};
use spllift_bench::json::{render_solver_bench, validate_solver_bench, SolverBenchEntry};
use spllift_benchgen::{subject_by_name, synthetic_spec, GeneratedSpl};
use spllift_core::{GovernorOptions, LiftedSolution, ModelMode, SolveOutcome};
use spllift_features::{parse_feature_model, BddConstraintContext, FeatureExpr, FeatureTable};
use spllift_frontend::parse_spl;
use spllift_ide::IdeStats;
use spllift_ifds::IfdsProblem;
use spllift_ir::{Program, ProgramIcfg};
use std::cell::RefCell;
use std::hash::Hash;
use std::process::ExitCode;

const DEFAULT_SUBJECTS: &str = "fig1,chat,MM08,GPL,Lampiro";
const DEFAULT_OUT: &str = "BENCH_solver.json";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("solver_bench: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut samples = 3usize;
    let mut subjects = DEFAULT_SUBJECTS.to_owned();
    let mut out = DEFAULT_OUT.to_owned();
    let mut args_iter = args.iter().cloned();
    while let Some(arg) = args_iter.next() {
        match arg.as_str() {
            "--validate" => {
                let path = args_iter.next().ok_or("--validate needs a file path")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let n = validate_solver_bench(&text).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("solver_bench: {path} is valid ({n} entries)");
                return Ok(());
            }
            "--samples" => {
                let v = args_iter.next().ok_or("--samples needs a count")?;
                samples = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&s| s >= 1)
                    .ok_or(format!("--samples needs a positive integer, got `{v}`"))?;
            }
            "--subjects" => {
                subjects = args_iter.next().ok_or("--subjects needs a list")?;
            }
            "--out" => {
                out = args_iter.next().ok_or("--out needs a path")?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: solver_bench [--samples N] [--subjects A,B,..] [--out PATH|-]\n       solver_bench --validate PATH\n(default subjects: {DEFAULT_SUBJECTS}; default out: {DEFAULT_OUT})"
                ));
            }
            other => return Err(format!("unexpected argument `{other}` (try --help)")),
        }
    }

    let mut entries = Vec::new();
    for name in subjects.split(',').filter(|s| !s.is_empty()) {
        let subject = load_subject(name)?;
        entries.extend(measure_subject(&subject, samples));
    }
    let doc = render_solver_bench(samples, &entries);
    // The emitter owns stdout; sanity-check our own output before
    // writing, so a malformed document can never land on disk.
    validate_solver_bench(&doc).map_err(|e| format!("internal emitter error: {e}"))?;
    if out == "-" {
        print!("{doc}");
    } else {
        std::fs::write(&out, &doc).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!(
            "solver_bench: wrote {} entries ({} samples each) to {out}",
            entries.len(),
            samples
        );
    }
    Ok(())
}

/// An owned, fully loaded benchmark subject.
struct Subject {
    name: String,
    program: Program,
    table: FeatureTable,
    model: Option<FeatureExpr>,
}

/// Path of a committed `examples_data/` file, resolved relative to the
/// workspace so the binary works from any working directory.
fn example_path(file: &str) -> String {
    format!("{}/../../examples_data/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn load_example(name: &str) -> Result<Subject, String> {
    let src_path = example_path(&format!("{name}.minijava"));
    let model_path = example_path(&format!("{name}.model"));
    let source =
        std::fs::read_to_string(&src_path).map_err(|e| format!("cannot read {src_path}: {e}"))?;
    let mut table = FeatureTable::new();
    let program = parse_spl(&source, &mut table).map_err(|e| format!("{src_path}: {e}"))?;
    let text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let model = parse_feature_model(&text, &mut table)
        .map_err(|e| format!("{model_path}: {e}"))?
        .to_expr();
    Ok(Subject {
        name: name.to_owned(),
        program,
        table,
        model: Some(model),
    })
}

fn load_subject(name: &str) -> Result<Subject, String> {
    if name == "fig1" || name == "chat" {
        return load_example(name);
    }
    let spec = if let Some(rest) = name.strip_prefix("synthetic:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let [features, loc, seed] = parts.as_slice() else {
            return Err("synthetic takes synthetic:<features>:<loc>:<seed>".into());
        };
        let parse = |what: &str, v: &str| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("synthetic {what} must be an integer, got `{v}`"))
        };
        synthetic_spec(
            parse("feature count", features)?,
            parse("loc", loc)?,
            parse("seed", seed)? as u64,
        )
    } else {
        subject_by_name(name).ok_or_else(|| {
            format!(
                "unknown subject `{name}` (fig1|chat|MM08|GPL|Lampiro|BerkeleyDB|synthetic:<f>:<loc>:<seed>)"
            )
        })?
    };
    let spl = GeneratedSpl::generate(spec);
    let model = spl.model_expr();
    let GeneratedSpl { program, table, .. } = spl;
    Ok(Subject {
        name: name.to_owned(),
        program,
        table,
        model: Some(model),
    })
}

fn measure_subject(subject: &Subject, samples: usize) -> Vec<SolverBenchEntry> {
    let icfg = ProgramIcfg::new(&subject.program);
    let mut entries = Vec::new();
    macro_rules! go {
        ($label:expr, $problem:expr) => {{
            let p = $problem;
            entries.push(measure_one(subject, &icfg, $label, &p, samples));
        }};
    }
    go!("Taint", spllift_analyses::TaintAnalysis::secret_to_print());
    go!("P. Types", spllift_analyses::PossibleTypes::new());
    go!("R. Def.", spllift_analyses::ReachingDefs::new());
    go!("U. Var.", spllift_analyses::UninitVars::new());
    entries
}

fn measure_one<P, D>(
    subject: &Subject,
    icfg: &ProgramIcfg<'_>,
    label: &str,
    problem: &P,
    samples: usize,
) -> SolverBenchEntry
where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D>,
    D: Clone + Eq + Hash + std::fmt::Debug,
{
    // One manager per subject × analysis: samples share the unique
    // table and op caches, exactly like repeated solves in production.
    let ctx = BddConstraintContext::new(&subject.table);
    let harness =
        Harness::new(format!("solver/{}", subject.name), samples).with_sink(BenchSink::Stderr);
    let ide_stats: RefCell<IdeStats> = RefCell::new(IdeStats::default());
    let outcome: RefCell<SolveOutcome> = RefCell::new(SolveOutcome::Complete);
    let wall = harness.bench(label, || {
        // The governed entry point with no limits armed, so the measured
        // path is exactly the production server's — an unbudgeted run
        // must record `complete`/`full`.
        let (solution, o) = LiftedSolution::solve_governed(
            problem,
            icfg,
            &ctx,
            subject.model.as_ref(),
            ModelMode::OnEdges,
            GovernorOptions::default(),
        )
        .expect("unlimited governed solve cannot abort");
        *ide_stats.borrow_mut() = solution.stats();
        *outcome.borrow_mut() = o;
    });
    let outcome = outcome.into_inner();
    SolverBenchEntry {
        subject: subject.name.clone(),
        analysis: label.to_owned(),
        outcome: if outcome.is_degraded() {
            "degraded".to_owned()
        } else {
            "complete".to_owned()
        },
        rung: outcome.rung().as_str().to_owned(),
        wall,
        ide: ide_stats.into_inner(),
        bdd: ctx.manager().stats(),
    }
}
