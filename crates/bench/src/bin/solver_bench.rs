//! `solver_bench` — the machine-readable solver benchmark and perf
//! regression gate.
//!
//! Measures the full SPLLIFT hot path (lifting + both IDE phases) per
//! subject × analysis × thread count and writes the results as
//! `BENCH_solver.json` (schema `spllift-bench-solver/v4`, see
//! `spllift_bench::json`), so every PR can record before/after numbers
//! against the same schema. Every cell records a digest of the solved
//! solution; the validator requires the digest to be identical across
//! an entry's thread counts, so each run re-proves that `--threads`
//! never changes results.
//!
//! ```text
//! cargo run --release -p spllift-bench --bin solver_bench -- \
//!     [--samples N] [--sample-budget-ms MS] [--subjects fig1,chat,MM08,...] \
//!     [--threads 1,2,4,8] [--out PATH|-]
//! cargo run --release -p spllift-bench --bin solver_bench -- --validate PATH
//! cargo run --release -p spllift-bench --bin solver_bench -- \
//!     --check BASELINE [--tolerance F] [--subjects ...] [--threads ...]
//! ```
//!
//! Subjects: `fig1` and `chat` (the committed `examples_data/` product
//! lines, feature models regarded), any generated subject
//! (`MM08|GPL|Lampiro|BerkeleyDB`), or a shaped synthetic
//! (`synthetic:<features>:<loc>:<seed>[:model=free|chain|groups][:depth=N]`,
//! see `spllift_benchgen::parse_subject_spec`). The default set is the
//! full committed matrix — all four paper subjects including BerkeleyDB
//! plus a 99-feature, >10k-statement chained synthetic — so a default
//! run always regenerates every cell of the committed baseline.
//!
//! `--check BASELINE` is the regression gate: it re-measures and diffs
//! the fresh run against the baseline cell by cell
//! (`spllift_bench::regress`), failing when any cell's min wall time
//! slows past `--tolerance` (default 0.25 = +25%). With no explicit
//! `--subjects`/`--threads`, the matrix is replayed from the baseline's
//! own `provenance` block; restricting either flag switches missing
//! cells from failures to skips (CI smoke mode). `--inject-slow
//! <subject>:<analysis>:<ms>` adds a deterministic stall inside the
//! measured region — CI uses it to prove the gate actually fails.
//!
//! Sampling is adaptive: a cell whose warmup pass takes
//! `--sample-budget-ms` (default 2000) or longer is measured once
//! instead of `--samples` times, and each cell records the count it
//! actually took. Slow subjects stay representable in the committed
//! baseline without multiplying the bench wall-clock.
//!
//! Stdout carries nothing but the JSON document when `--out -` is
//! given; the per-bench human summary lines go to stderr (see
//! [`BenchSink`]), so the emitted file can be schema-validated in CI
//! (`--validate`) without stream-corruption worries.

use spllift_bench::harness::{BenchSink, Harness};
use spllift_bench::json::{
    parse_json, render_solver_bench, validate_solver_bench, MachineInfo, Provenance,
    SolverBenchEntry, ThreadCell,
};
use spllift_bench::regress::{self, RegressOptions, DEFAULT_TOLERANCE};
use spllift_benchgen::{parse_subject_spec, GeneratedSpl, SUBJECT_GRAMMAR};
use spllift_core::{GovernorOptions, LiftedSolution, ModelMode, SolveOutcome};
use spllift_features::{parse_feature_model, BddConstraintContext, FeatureExpr, FeatureTable};
use spllift_frontend::parse_spl;
use spllift_hash::FxHasher64;
use spllift_ide::{IdeSolverOptions, IdeStats};
use spllift_ifds::{Icfg, IfdsProblem};
use spllift_ir::{Program, ProgramIcfg};
use std::cell::RefCell;
use std::hash::{Hash, Hasher};
use std::process::ExitCode;
use std::time::Duration;

const DEFAULT_SUBJECTS: &str =
    "fig1,chat,MM08,GPL,Lampiro,BerkeleyDB,synthetic:99:12000:71:model=chain:depth=8";
const DEFAULT_THREADS: &str = "1,2,4,8";
const DEFAULT_OUT: &str = "BENCH_solver.json";
const DEFAULT_SAMPLE_BUDGET_MS: u64 = 2000;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("solver_bench: {msg}");
            ExitCode::from(2)
        }
    }
}

/// A deterministic stall injected into the measured region of one
/// subject × analysis, for the gate's negative test.
struct InjectSlow {
    subject: String,
    analysis: String,
    delay: Duration,
}

fn run(args: &[String]) -> Result<(), String> {
    let mut samples = 3usize;
    let mut subjects = DEFAULT_SUBJECTS.to_owned();
    let mut subjects_given = false;
    let mut threads_list = DEFAULT_THREADS.to_owned();
    let mut threads_given = false;
    let mut out = DEFAULT_OUT.to_owned();
    let mut check: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut sample_budget_ms = DEFAULT_SAMPLE_BUDGET_MS;
    let mut inject_slow: Option<InjectSlow> = None;
    let mut args_iter = args.iter().cloned();
    while let Some(arg) = args_iter.next() {
        match arg.as_str() {
            "--validate" => {
                let path = args_iter.next().ok_or("--validate needs a file path")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let n = validate_solver_bench(&text).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("solver_bench: {path} is valid ({n} entries)");
                return Ok(());
            }
            "--check" => {
                check = Some(args_iter.next().ok_or("--check needs a baseline path")?);
            }
            "--tolerance" => {
                let v = args_iter.next().ok_or("--tolerance needs a fraction")?;
                tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or(format!(
                        "--tolerance needs a non-negative fraction (0.25 = +25%), got `{v}`"
                    ))?;
            }
            "--inject-slow" => {
                let v = args_iter
                    .next()
                    .ok_or("--inject-slow needs <subject>:<analysis>:<ms> (e.g. fig1:Taint:500)")?;
                // Subject names may themselves contain `:` (synthetic
                // specs), so split from the right.
                let mut parts = v.rsplitn(3, ':');
                let (ms, analysis, subject) = (parts.next(), parts.next(), parts.next());
                let (Some(ms), Some(analysis), Some(subject)) = (ms, analysis, subject) else {
                    return Err(format!(
                        "--inject-slow needs <subject>:<analysis>:<ms>, got `{v}`"
                    ));
                };
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("--inject-slow ms must be an integer, got `{ms}`"))?;
                inject_slow = Some(InjectSlow {
                    subject: subject.to_owned(),
                    analysis: analysis.to_owned(),
                    delay: Duration::from_millis(ms),
                });
            }
            "--samples" => {
                let v = args_iter.next().ok_or("--samples needs a count")?;
                samples = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&s| s >= 1)
                    .ok_or(format!("--samples needs a positive integer, got `{v}`"))?;
            }
            "--sample-budget-ms" => {
                let v = args_iter.next().ok_or("--sample-budget-ms needs a count")?;
                sample_budget_ms = v.parse::<u64>().map_err(|_| {
                    format!("--sample-budget-ms needs an integer (0 disables), got `{v}`")
                })?;
            }
            "--subjects" => {
                subjects = args_iter.next().ok_or("--subjects needs a list")?;
                subjects_given = true;
            }
            "--threads" => {
                threads_list = args_iter.next().ok_or("--threads needs a list")?;
                threads_given = true;
            }
            "--out" => {
                out = args_iter.next().ok_or("--out needs a path")?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: solver_bench [--samples N] [--sample-budget-ms MS] [--subjects A,B,..] [--threads N,M,..] [--out PATH|-]\n       solver_bench --validate PATH\n       solver_bench --check BASELINE [--tolerance F] [--subjects A,..] [--threads N,..] [--inject-slow S:A:MS]\n(default subjects: {DEFAULT_SUBJECTS}; default threads: {DEFAULT_THREADS}; default out: {DEFAULT_OUT})"
                ));
            }
            other => return Err(format!("unexpected argument `{other}` (try --help)")),
        }
    }

    let baseline = match &check {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
            let doc = regress::solver_doc(&text).map_err(|e| format!("baseline {path}: {e}"))?;
            // Replay the baseline's own matrix unless the caller
            // restricted it (CI smoke mode re-measures a subset).
            let prov = Provenance::from_doc(&parse_json(&text)?)
                .ok_or_else(|| format!("baseline {path}: missing provenance"))?;
            if !subjects_given {
                subjects = prov.subjects;
            }
            if !threads_given {
                threads_list = prov.threads;
            }
            Some(doc)
        }
        None => None,
    };

    let mut thread_counts = Vec::new();
    for t in threads_list.split(',').filter(|s| !s.is_empty()) {
        let n: usize = t.parse().ok().filter(|&n| n >= 1).ok_or(format!(
            "--threads entries must be positive integers, got `{t}`"
        ))?;
        if thread_counts.last().is_some_and(|&last| n <= last) {
            return Err(format!(
                "--threads must be strictly ascending, got `{threads_list}`"
            ));
        }
        thread_counts.push(n);
    }
    if thread_counts.is_empty() {
        return Err("--threads needs at least one count".into());
    }

    let sample_budget = (sample_budget_ms > 0).then(|| Duration::from_millis(sample_budget_ms));
    let mut entries = Vec::new();
    for name in subjects.split(',').filter(|s| !s.is_empty()) {
        let subject = load_subject(name)?;
        entries.extend(measure_subject(
            &subject,
            samples,
            &thread_counts,
            sample_budget,
            inject_slow.as_ref(),
        ));
    }
    let doc = render_solver_bench(
        samples,
        &MachineInfo::current(),
        &Provenance {
            bin: "solver_bench".to_owned(),
            subjects: subjects.clone(),
            threads: threads_list.clone(),
        },
        &entries,
    );
    // The emitter owns stdout; sanity-check our own output before
    // using it, so a malformed document can never land on disk.
    validate_solver_bench(&doc).map_err(|e| format!("internal emitter error: {e}"))?;

    if let Some(baseline) = baseline {
        let opts = RegressOptions {
            tolerance,
            subset: subjects_given || threads_given,
            ..RegressOptions::default()
        };
        let mut fresh = regress::solver_doc(&doc).map_err(|e| format!("fresh run: {e}"))?;
        let mut report = regress::compare(&baseline, &fresh, opts);
        if !report.failed_keys.is_empty() {
            // Retry pass: re-measure only the subjects whose cells
            // regressed and keep the min across both passes. On shared
            // hardware a single host-contention stall can inflate one
            // pass far past any tolerance (especially budget-limited
            // 1-sample cells); a genuine regression reproduces, a
            // stall does not. `--inject-slow` stalls the retry too, so
            // the CI negative test still fails end-to-end.
            let retry_subjects: std::collections::BTreeSet<&str> = report
                .failed_keys
                .iter()
                .filter_map(|k| k.split('/').next())
                .collect();
            eprintln!(
                "solver_bench: {} cells regressed on the first pass; re-measuring {}",
                report.failed_keys.len(),
                retry_subjects
                    .iter()
                    .copied()
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let mut retry_entries = Vec::new();
            for name in &retry_subjects {
                let subject = load_subject(name)?;
                retry_entries.extend(measure_subject(
                    &subject,
                    samples,
                    &thread_counts,
                    sample_budget,
                    inject_slow.as_ref(),
                ));
            }
            let retry_doc = render_solver_bench(
                samples,
                &MachineInfo::current(),
                &Provenance {
                    bin: "solver_bench".to_owned(),
                    subjects: retry_subjects.iter().copied().collect::<Vec<_>>().join(","),
                    threads: threads_list.clone(),
                },
                &retry_entries,
            );
            let retry = regress::solver_doc(&retry_doc).map_err(|e| format!("retry run: {e}"))?;
            fresh.merge_min(&retry);
            report = regress::compare(&baseline, &fresh, opts);
        }
        eprint!("{}", report.render());
        if !report.passed() {
            return Err(format!(
                "regression gate failed: {} of {} compared cells regressed past +{:.0}% (see report above)",
                report.failures.len(),
                report.compared,
                tolerance * 100.0
            ));
        }
        eprintln!(
            "solver_bench: regression gate passed ({} cells within +{:.0}%)",
            report.compared,
            tolerance * 100.0
        );
        return Ok(());
    }

    if out == "-" {
        print!("{doc}");
    } else {
        std::fs::write(&out, &doc).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!(
            "solver_bench: wrote {} entries ({} samples requested each) to {out}",
            entries.len(),
            samples
        );
    }
    Ok(())
}

/// An owned, fully loaded benchmark subject.
struct Subject {
    name: String,
    program: Program,
    table: FeatureTable,
    model: Option<FeatureExpr>,
}

/// Path of a committed `examples_data/` file, resolved relative to the
/// workspace so the binary works from any working directory.
fn example_path(file: &str) -> String {
    format!("{}/../../examples_data/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn load_example(name: &str) -> Result<Subject, String> {
    let src_path = example_path(&format!("{name}.minijava"));
    let model_path = example_path(&format!("{name}.model"));
    let source =
        std::fs::read_to_string(&src_path).map_err(|e| format!("cannot read {src_path}: {e}"))?;
    let mut table = FeatureTable::new();
    let program = parse_spl(&source, &mut table).map_err(|e| format!("{src_path}: {e}"))?;
    let text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let model = parse_feature_model(&text, &mut table)
        .map_err(|e| format!("{model_path}: {e}"))?
        .to_expr();
    Ok(Subject {
        name: name.to_owned(),
        program,
        table,
        model: Some(model),
    })
}

fn load_subject(name: &str) -> Result<Subject, String> {
    if name == "fig1" || name == "chat" {
        return load_example(name);
    }
    let spec = parse_subject_spec(name)
        .map_err(|e| format!("unknown subject `{name}`: {e} (fig1|chat|{SUBJECT_GRAMMAR})"))?;
    let spl = GeneratedSpl::generate(spec);
    let model = spl.model_expr();
    let GeneratedSpl { program, table, .. } = spl;
    Ok(Subject {
        name: name.to_owned(),
        program,
        table,
        model: Some(model),
    })
}

fn measure_subject(
    subject: &Subject,
    samples: usize,
    thread_counts: &[usize],
    sample_budget: Option<Duration>,
    inject_slow: Option<&InjectSlow>,
) -> Vec<SolverBenchEntry> {
    let icfg = ProgramIcfg::new(&subject.program);
    let mut entries = Vec::new();
    macro_rules! go {
        ($label:expr, $problem:expr) => {{
            let p = $problem;
            let stall = inject_slow
                .filter(|i| i.subject == subject.name && i.analysis == $label)
                .map(|i| i.delay);
            entries.push(measure_one(
                subject,
                &icfg,
                $label,
                &p,
                samples,
                thread_counts,
                sample_budget,
                stall,
            ));
        }};
    }
    go!("Taint", spllift_analyses::TaintAnalysis::secret_to_print());
    go!("P. Types", spllift_analyses::PossibleTypes::new());
    go!("R. Def.", spllift_analyses::ReachingDefs::new());
    go!("U. Var.", spllift_analyses::UninitVars::new());
    entries
}

/// Order-sensitive `FxHasher64` digest over the solved solution
/// (per-statement reachability constraint + fact rows in fact order),
/// 16 hex digits. Constraint BDDs are hashed with
/// [`spllift_bdd::Bdd::semantic_digest`] — linear in diagram size and a
/// pure function of the boolean function — so equal digests mean
/// semantically identical solutions: the cross-thread determinism check
/// the validator enforces per entry.
///
/// The digest is computed *outside* the timed region. The v3 emitter
/// hashed `to_cube_string()` renderings inside the benched closure;
/// cube enumeration is exponential in features, which inflated
/// BerkeleyDB wall times ~90× and made the recorded numbers useless as
/// a regression baseline.
fn results_digest<D>(
    icfg: &ProgramIcfg<'_>,
    solution: &LiftedSolution<'_, ProgramIcfg<'_>, D, spllift_bdd::Bdd>,
) -> String
where
    D: Clone + Eq + Ord + Hash + std::fmt::Debug,
{
    let mut h = FxHasher64::default();
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            s.to_string().hash(&mut h);
            solution.reachability_of(s).semantic_digest().hash(&mut h);
            let mut rows: Vec<(D, spllift_bdd::Bdd)> = solution.results_at(s).into_iter().collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            for (d, c) in rows {
                format!("{d:?}").hash(&mut h);
                c.semantic_digest().hash(&mut h);
            }
        }
    }
    format!("{:016x}", h.finish())
}

#[allow(clippy::too_many_arguments)]
fn measure_one<'g, 'p, P, D>(
    subject: &Subject,
    icfg: &'g ProgramIcfg<'p>,
    label: &str,
    problem: &P,
    samples: usize,
    thread_counts: &[usize],
    sample_budget: Option<Duration>,
    inject_slow: Option<Duration>,
) -> SolverBenchEntry
where
    P: for<'x> IfdsProblem<ProgramIcfg<'x>, Fact = D> + Sync,
    D: Clone + Eq + Ord + Hash + std::fmt::Debug + Send + Sync,
{
    // One manager per subject × analysis: samples and thread counts
    // share the unique table and op caches, exactly like repeated
    // solves in production.
    let ctx = BddConstraintContext::new(&subject.table);
    let harness =
        Harness::new(format!("solver/{}", subject.name), samples).with_sink(BenchSink::Stderr);
    let ide_stats: RefCell<IdeStats> = RefCell::new(IdeStats::default());
    let outcome: RefCell<SolveOutcome> = RefCell::new(SolveOutcome::Complete);
    let mut cells = Vec::with_capacity(thread_counts.len());
    for (i, &threads) in thread_counts.iter().enumerate() {
        // The timed closure only solves (plus any injected stall); the
        // last solution is kept aside and digested after the clock
        // stops.
        let slot: RefCell<Option<LiftedSolution<'g, ProgramIcfg<'p>, D, spllift_bdd::Bdd>>> =
            RefCell::new(None);
        let gov = GovernorOptions {
            solver: IdeSolverOptions {
                threads,
                ..IdeSolverOptions::default()
            },
            ..GovernorOptions::default()
        };
        let wall = harness.bench_adaptive(&format!("{label}@t{threads}"), sample_budget, || {
            // The governed entry point with no limits armed, so the
            // measured path is exactly the production server's — an
            // unbudgeted run must record `complete`/`full`.
            let (solution, o) = LiftedSolution::solve_governed(
                problem,
                icfg,
                &ctx,
                subject.model.as_ref(),
                ModelMode::OnEdges,
                gov.clone(),
            )
            .expect("unlimited governed solve cannot abort");
            // IDE counters come from the first (sequential) cell only:
            // scheduling counters are deterministic at one thread.
            if i == 0 {
                *ide_stats.borrow_mut() = solution.stats();
            }
            *outcome.borrow_mut() = o;
            *slot.borrow_mut() = Some(solution);
            if let Some(stall) = inject_slow {
                std::thread::sleep(stall);
            }
        });
        let solution = slot.into_inner().expect("bench ran at least once");
        cells.push(ThreadCell {
            threads,
            wall,
            results_digest: results_digest(icfg, &solution),
        });
    }
    let outcome = outcome.into_inner();
    SolverBenchEntry {
        subject: subject.name.clone(),
        analysis: label.to_owned(),
        outcome: if outcome.is_degraded() {
            "degraded".to_owned()
        } else {
            "complete".to_owned()
        },
        rung: outcome.rung_name(),
        ide: ide_stats.into_inner(),
        bdd: ctx.manager().stats(),
        threads: cells,
    }
}
