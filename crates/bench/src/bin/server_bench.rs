//! `server_bench` — the concurrent-server load benchmark.
//!
//! Spawns an in-process [`spllift_server::SocketServer`] and drives it
//! with N concurrent TCP clients (one session per connection), each
//! replaying a fixed request script: `load` a generated subject,
//! `analyze` it, `query` a statement, `analyze` again (answered from
//! the cross-session solution cache). Client-observed per-request
//! latency and whole-level throughput land in `BENCH_server.json`
//! (schema `spllift-bench-server/v2`, see `spllift_bench::json`).
//!
//! ```text
//! cargo run --release -p spllift-bench --bin server_bench -- \
//!     [--levels 16,64,256] [--shards N] [--out PATH|-]
//! cargo run --release -p spllift-bench --bin server_bench -- --validate PATH
//! cargo run --release -p spllift-bench --bin server_bench -- --smoke DIR
//! cargo run --release -p spllift-bench --bin server_bench -- \
//!     --check BASELINE [--tolerance F]
//! ```
//!
//! `--validate` schema-checks an existing document (used by CI).
//! `--smoke DIR` is the CI socket smoke test: three concurrent scripted
//! clients replay `DIR/socket-client{1,2,3}.requests` over one server
//! and their response streams must match the committed
//! `DIR/socket-client{1,2,3}.expected` byte-for-byte.
//! `--check BASELINE` is the regression gate: it re-runs the baseline's
//! concurrency levels and fails when any level's median latency slows
//! past `--tolerance` (default 0.25 = +25%); see
//! `spllift_bench::regress`.
//!
//! A level whose requests come back as protocol errors is reported as a
//! structured error naming the level and counts — never a panic, and
//! never a silently-written document (the schema requires zero errors).

use spllift_bench::harness::LatencySummary;
use spllift_bench::json::{
    render_server_bench, validate_server_bench, MachineInfo, ServerBenchLevel,
};
use spllift_bench::regress::{self, RegressOptions, DEFAULT_TOLERANCE};
use spllift_server::{ServerOptions, SocketServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Instant;

const DEFAULT_LEVELS: &str = "16,64,256";
const DEFAULT_OUT: &str = "BENCH_server.json";
const SMOKE_CLIENTS: usize = 3;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("server_bench: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut levels = DEFAULT_LEVELS.to_owned();
    let mut levels_given = false;
    let mut shards: Option<usize> = None;
    let mut out = DEFAULT_OUT.to_owned();
    let mut check: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args_iter = args.iter().cloned();
    while let Some(arg) = args_iter.next() {
        match arg.as_str() {
            "--check" => {
                check = Some(args_iter.next().ok_or("--check needs a baseline path")?);
            }
            "--tolerance" => {
                let v = args_iter.next().ok_or("--tolerance needs a fraction")?;
                tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or(format!(
                        "--tolerance needs a non-negative fraction (0.25 = +25%), got `{v}`"
                    ))?;
            }
            "--validate" => {
                let path = args_iter.next().ok_or("--validate needs a file path")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let n = validate_server_bench(&text).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("server_bench: {path} is valid ({n} concurrency levels)");
                return Ok(());
            }
            "--smoke" => {
                let dir = args_iter
                    .next()
                    .ok_or("--smoke needs a fixture directory")?;
                return smoke(&dir);
            }
            "--levels" => {
                levels = args_iter.next().ok_or("--levels needs a list")?;
                levels_given = true;
            }
            "--shards" => {
                let v = args_iter.next().ok_or("--shards needs a count")?;
                shards = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&s| s >= 1)
                        .ok_or(format!("--shards needs a positive integer, got `{v}`"))?,
                );
            }
            "--out" => {
                out = args_iter.next().ok_or("--out needs a path")?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: server_bench [--levels A,B,..] [--shards N] [--out PATH|-]\n       server_bench --validate PATH\n       server_bench --smoke DIR\n       server_bench --check BASELINE [--tolerance F] [--levels A,..]\n(default levels: {DEFAULT_LEVELS}; default out: {DEFAULT_OUT})"
                ));
            }
            other => return Err(format!("unexpected argument `{other}` (try --help)")),
        }
    }

    let baseline = match &check {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
            let doc = regress::server_doc(&text).map_err(|e| format!("baseline {path}: {e}"))?;
            // Replay the baseline's own concurrency levels unless the
            // caller restricted them.
            if !levels_given {
                levels = doc
                    .cells
                    .iter()
                    .filter_map(|c| c.key.strip_prefix("sessions="))
                    .collect::<Vec<_>>()
                    .join(",");
            }
            Some(doc)
        }
        None => None,
    };

    let levels: Vec<usize> = levels
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|v| {
            v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or(format!(
                "--levels entries must be positive integers, got `{v}`"
            ))
        })
        .collect::<Result<_, _>>()?;
    if levels.len() < 3 {
        return Err("need at least 3 concurrency levels (the schema requires them)".into());
    }

    let opts = || {
        let mut o = ServerOptions::default();
        if let Some(s) = shards {
            o.shards = s;
        }
        // The load script fans out far past the default cache budget at
        // 256 sessions; keep every solution resident so the second
        // `analyze` per session measures the cache hit path.
        o.cache_entries = 1024;
        o.cache_bytes = 256 << 20;
        o
    };
    let shards_used = opts().shards;

    let mut measured = Vec::new();
    for &sessions in &levels {
        let level = run_level(opts(), sessions)?;
        eprintln!(
            "server_bench: {:>4} sessions  {:>6} req  {:>10.1} req/s  p50 {:>8}ns  p99 {:>8}ns",
            level.sessions, level.requests, level.throughput_rps, level.p50_ns, level.p99_ns
        );
        measured.push(level);
    }

    let doc = render_server_bench(shards_used, SCRIPT_LEN, &MachineInfo::current(), &measured);
    // Sanity-check our own output before writing, so a malformed
    // document can never land on disk.
    validate_server_bench(&doc).map_err(|e| format!("internal emitter error: {e}"))?;

    if let Some(baseline) = baseline {
        let fresh = regress::server_doc(&doc).map_err(|e| format!("fresh run: {e}"))?;
        let report = regress::compare(
            &baseline,
            &fresh,
            RegressOptions {
                tolerance,
                subset: levels_given,
                ..RegressOptions::default()
            },
        );
        eprint!("{}", report.render());
        if !report.passed() {
            return Err(format!(
                "regression gate failed: {} of {} compared levels regressed past +{:.0}% (see report above)",
                report.failures.len(),
                report.compared,
                tolerance * 100.0
            ));
        }
        eprintln!(
            "server_bench: regression gate passed ({} levels within +{:.0}%)",
            report.compared,
            tolerance * 100.0
        );
        return Ok(());
    }

    if out == "-" {
        print!("{doc}");
    } else {
        std::fs::write(&out, &doc).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!(
            "server_bench: wrote {} concurrency levels to {out}",
            measured.len()
        );
    }
    Ok(())
}

/// Requests each session sends (see [`session_script`]).
const SCRIPT_LEN: usize = 4;

/// The per-session request script. Sessions cycle through eight
/// distinct generated subjects, so the solution cache sees both misses
/// (first `analyze` of each subject) and cross-session hits.
fn session_script(i: usize) -> [String; SCRIPT_LEN] {
    let seed = i % 8;
    [
        format!(r#"{{"type":"load","session":"s{i}","gen":"synthetic:3:60:{seed}"}}"#),
        format!(r#"{{"type":"analyze","session":"s{i}","analysis":"taint"}}"#),
        format!(
            r#"{{"type":"query","session":"s{i}","analysis":"taint","queries":[{{"kind":"reachability_of","stmt":"m0:0"}}]}}"#
        ),
        format!(r#"{{"type":"analyze","session":"s{i}","analysis":"taint"}}"#),
    ]
}

/// One client request over an established connection, returning the
/// response line and the client-observed wall latency in nanoseconds.
fn roundtrip(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    req: &str,
) -> Result<(String, u128), String> {
    let start = Instant::now();
    writeln!(writer, "{req}").map_err(|e| format!("write: {e}"))?;
    writer.flush().map_err(|e| format!("flush: {e}"))?;
    let mut resp = String::new();
    let n = reader
        .read_line(&mut resp)
        .map_err(|e| format!("read: {e}"))?;
    if n == 0 {
        return Err("server closed the connection mid-script".into());
    }
    let latency = start.elapsed().as_nanos();
    Ok((resp.trim_end().to_owned(), latency))
}

fn connect(addr: std::net::SocketAddr) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    Ok((stream, reader))
}

/// Runs one concurrency level against a fresh server: `sessions`
/// connections, each replaying [`session_script`] for its own session,
/// all in flight at once.
fn run_level(opts: ServerOptions, sessions: usize) -> Result<ServerBenchLevel, String> {
    let server = SocketServer::spawn(opts, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    let start = Instant::now();
    let mut clients = Vec::with_capacity(sessions);
    for i in 0..sessions {
        clients.push(
            std::thread::Builder::new()
                .name(format!("bench-client-{i}"))
                .spawn(move || -> Result<(Vec<u128>, usize), String> {
                    let (mut writer, mut reader) = connect(addr)?;
                    let mut latencies = Vec::with_capacity(SCRIPT_LEN);
                    let mut errors = 0usize;
                    for req in session_script(i) {
                        let (resp, ns) = roundtrip(&mut writer, &mut reader, &req)?;
                        if resp.starts_with(r#"{"type":"error""#) {
                            eprintln!("server_bench: client {i} got error: {resp}");
                            errors += 1;
                        }
                        latencies.push(ns);
                    }
                    Ok((latencies, errors))
                })
                .map_err(|e| format!("spawn client {i}: {e}"))?,
        );
    }
    let mut latencies = Vec::with_capacity(sessions * SCRIPT_LEN);
    let mut errors = 0usize;
    for (i, c) in clients.into_iter().enumerate() {
        let (l, e) = c
            .join()
            .map_err(|_| format!("client {i} panicked"))?
            .map_err(|e| format!("client {i}: {e}"))?;
        latencies.extend(l);
        errors += e;
    }
    let wall_ns = start.elapsed().as_nanos();

    // Shut the server down (outside the measured window) so its shard
    // workers and accept loop exit before the next level binds.
    let (mut writer, mut reader) = connect(addr)?;
    roundtrip(&mut writer, &mut reader, r#"{"type":"shutdown"}"#)?;
    server.join();

    // A level where requests failed (including all of them) must come
    // back as a structured error, not a panic: the old inline
    // percentile closure computed `clamp(1, 0)` on an empty latency set
    // (panicking with `min > max`) and then indexed `[len - 1]` out of
    // bounds. `summarize_level` never indexes: an empty set summarizes
    // to a zeroed latency block, and the error check below names the
    // level instead of letting the schema validator reject the
    // document later with a confusing message.
    let level = summarize_level(sessions, latencies, errors, wall_ns);
    if level.errors > 0 {
        return Err(format!(
            "{} of {} requests at {} sessions came back as protocol errors (first error logged above); refusing to emit a benchmark document",
            level.errors, level.requests, sessions
        ));
    }
    Ok(level)
}

/// Folds one level's raw client observations into its document row.
/// Total-error levels (no successful latency samples) yield a zeroed
/// latency block — the caller turns a non-zero error count into a
/// structured error before the row can reach a document.
fn summarize_level(
    sessions: usize,
    mut latencies: Vec<u128>,
    errors: usize,
    wall_ns: u128,
) -> ServerBenchLevel {
    let requests = latencies.len();
    let lat = LatencySummary::from_samples(&mut latencies);
    ServerBenchLevel {
        sessions,
        requests,
        errors,
        wall_ns,
        throughput_rps: if wall_ns == 0 {
            0.0
        } else {
            requests as f64 / (wall_ns as f64 / 1e9)
        },
        p50_ns: lat.p50_ns,
        p90_ns: lat.p90_ns,
        p99_ns: lat.p99_ns,
        max_ns: lat.max_ns,
    }
}

/// The CI socket smoke test: three concurrent scripted clients against
/// one server, each response stream compared byte-for-byte with its
/// committed golden transcript.
fn smoke(dir: &str) -> Result<(), String> {
    let read = |name: &str| -> Result<String, String> {
        let path = format!("{dir}/{name}");
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let scripts: Vec<(String, String)> = (1..=SMOKE_CLIENTS)
        .map(|n| {
            Ok((
                read(&format!("socket-client{n}.requests"))?,
                read(&format!("socket-client{n}.expected"))?,
            ))
        })
        .collect::<Result<_, String>>()?;

    let server = SocketServer::spawn(ServerOptions::default(), "127.0.0.1:0")
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    let mut clients = Vec::new();
    for (n, (requests, _)) in scripts.iter().enumerate() {
        let requests = requests.clone();
        clients.push(
            std::thread::Builder::new()
                .name(format!("smoke-client-{n}"))
                .spawn(move || -> Result<String, String> {
                    let (mut writer, mut reader) = connect(addr)?;
                    let mut got = String::new();
                    for req in requests.lines().filter(|l| !l.trim().is_empty()) {
                        let (resp, _) = roundtrip(&mut writer, &mut reader, req)?;
                        got.push_str(&resp);
                        got.push('\n');
                    }
                    Ok(got)
                })
                .map_err(|e| format!("spawn smoke client: {e}"))?,
        );
    }
    let mut failed = false;
    for (n, (c, (_, expected))) in clients.into_iter().zip(&scripts).enumerate() {
        let got = c
            .join()
            .map_err(|_| format!("smoke client {} panicked", n + 1))?
            .map_err(|e| format!("smoke client {}: {e}", n + 1))?;
        if got != *expected {
            failed = true;
            eprintln!(
                "server_bench: smoke client {} response stream differs from {dir}/socket-client{}.expected",
                n + 1,
                n + 1
            );
            for (line, (g, e)) in got.lines().zip(expected.lines()).enumerate() {
                if g != e {
                    eprintln!("  first difference at response {}:", line + 1);
                    eprintln!("    expected: {e}");
                    eprintln!("    got:      {g}");
                    break;
                }
            }
            if got.lines().count() != expected.lines().count() {
                eprintln!(
                    "  response count differs: expected {}, got {}",
                    expected.lines().count(),
                    got.lines().count()
                );
            }
        }
    }
    let (mut writer, mut reader) = connect(addr)?;
    roundtrip(&mut writer, &mut reader, r#"{"type":"shutdown"}"#)?;
    server.join();
    if failed {
        return Err("socket smoke test failed".into());
    }
    eprintln!("server_bench: socket smoke passed ({SMOKE_CLIENTS} concurrent clients)");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_level_summarizes_to_zeros_instead_of_panicking() {
        // Regression: the pre-v2 percentile closure panicked on an
        // empty latency set (`clamp(1, 0)`) and indexed `[0 - 1]`.
        let level = summarize_level(16, Vec::new(), 64, 0);
        assert_eq!(level.requests, 0);
        assert_eq!(level.errors, 64);
        assert_eq!(
            (level.p50_ns, level.p90_ns, level.p99_ns, level.max_ns),
            (0, 0, 0, 0)
        );
        assert_eq!(level.throughput_rps, 0.0);
    }

    #[test]
    fn single_sample_level_summarizes_to_that_sample() {
        let level = summarize_level(1, vec![500], 0, 1_000_000_000);
        assert_eq!(level.requests, 1);
        assert_eq!(
            (level.p50_ns, level.p90_ns, level.p99_ns, level.max_ns),
            (500, 500, 500, 500)
        );
        assert_eq!(level.throughput_rps, 1.0);
    }

    #[test]
    fn summarized_percentiles_are_monotone_and_sorted() {
        let level = summarize_level(4, vec![900, 100, 500, 300, 700], 0, 1_000);
        assert!(level.p50_ns <= level.p90_ns);
        assert!(level.p90_ns <= level.p99_ns);
        assert!(level.p99_ns <= level.max_ns);
        assert_eq!(level.max_ns, 900);
    }
}
