//! Regenerates the paper's evaluation artifacts from the command line.
//!
//! ```text
//! cargo run -p spllift-bench --release --bin report -- all [--jobs N]
//! cargo run -p spllift-bench --release --bin report -- table1
//! cargo run -p spllift-bench --release --bin report -- table2 [--cutoff SECS] [--jobs N]
//! cargo run -p spllift-bench --release --bin report -- table3 [--cutoff SECS] [--jobs N]
//! cargo run -p spllift-bench --release --bin report -- correlation
//! cargo run -p spllift-bench --release --bin report -- rq1 [--sample N] [--jobs N]
//! ```
//!
//! `--jobs N` sets the worker-thread count for the configuration-sharded
//! arms (the A2 brute-force campaigns and the RQ1 cross-check); it
//! defaults to the machine's available parallelism.

use spllift_bench::{fmt_duration, measure_cell, pearson, Cell, ClientAnalysis};
use spllift_benchgen::{subjects, GeneratedSpl};
use spllift_features::BddConstraintContext;
use spllift_spl::{crosscheck_parallel, default_jobs, ParallelOptions};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let cutoff = Duration::from_secs_f64(flag_value(&args, "--cutoff").unwrap_or(30.0));
    let sample = flag_value(&args, "--sample").unwrap_or(40.0) as usize;
    let jobs = flag_value(&args, "--jobs")
        .map(|j| (j as usize).max(1))
        .unwrap_or_else(default_jobs);
    match cmd {
        "table1" => table1(),
        "table2" => table2(cutoff, jobs),
        "table3" => table3(cutoff, jobs),
        "correlation" => correlation(jobs),
        "scaling" => scaling(jobs),
        "density" => density(),
        "ordering" => ordering(),
        "rq1" => rq1(sample, jobs),
        "all" => {
            table1();
            let cells = measure_all(cutoff, jobs);
            print_table2(&cells);
            print_table3(&cells);
            print_correlation(&cells);
            scaling(jobs);
            density();
            ordering();
            rq1(sample, jobs);
        }
        other => {
            eprintln!("unknown command {other}; see the module docs");
            std::process::exit(2);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<f64> {
    let idx = args.iter().position(|a| a == flag)?;
    args.get(idx + 1)?.parse().ok()
}

fn generate_all() -> Vec<GeneratedSpl> {
    subjects().into_iter().map(GeneratedSpl::generate).collect()
}

// ----------------------------------------------------------------------
// Table 1: key information about benchmarks used.
// ----------------------------------------------------------------------

fn table1() {
    println!("== Table 1: key information about benchmarks used ==");
    println!(
        "{:<12} {:>6} {:>9} {:>10} {:>16} {:>14}",
        "Benchmark", "KLOC", "F.total", "F.reach", "Configs.reach", "Configs.valid"
    );
    for spl in generate_all() {
        let valid = spl.count_valid_configs();
        let valid_str = if spl.spec.paper_valid_configs.is_none() {
            // The paper reports "unknown" here — we can count with BDDs.
            format!("{valid} (*)")
        } else {
            valid.to_string()
        };
        println!(
            "{:<12} {:>6.1} {:>9} {:>10} {:>16} {:>14}",
            spl.spec.name,
            spl.loc as f64 / 1000.0,
            spl.spec.total_features,
            spl.spec.reachable_features,
            format_pow2(spl.spec.reachable_features),
            valid_str,
        );
    }
    println!("(*) the paper reports 'unknown'; our BDD sat-count resolves it\n");
}

fn format_pow2(n: usize) -> String {
    if n <= 40 {
        format!("{}", 1u64 << n)
    } else {
        format!("2^{n}")
    }
}

// ----------------------------------------------------------------------
// Tables 2 and 3.
// ----------------------------------------------------------------------

fn measure_all(cutoff: Duration, jobs: usize) -> Vec<Cell> {
    let mut cells = Vec::new();
    for spl in generate_all() {
        eprintln!("measuring {} ...", spl.spec.name);
        for analysis in ClientAnalysis::PAPER_THREE {
            cells.push(measure_cell(&spl, analysis, cutoff, jobs));
        }
    }
    cells
}

fn table2(cutoff: Duration, jobs: usize) {
    print_table2(&measure_all(cutoff, jobs));
}

fn print_table2(cells: &[Cell]) {
    println!("== Table 2: SPLLIFT vs A2 (feature model regarded) ==");
    println!(
        "{:<12} {:>14} {:>9} | {:>12} {:>12} {:>9}",
        "Benchmark", "valid configs", "CG", "SPLLIFT", "A2 (all)", "speedup"
    );
    let mut jobs = 1;
    for c in cells {
        let a2 = c.a2.total_secs();
        let lift = c.spllift_regarded.time.as_secs_f64();
        let configs = match c.a2 {
            spllift_bench::A2Outcome::Exact { configs, .. }
            | spllift_bench::A2Outcome::Estimated { configs, .. } => configs,
        };
        let marker = if c.a2.is_estimate() { "~" } else { "" };
        jobs = c.a2.jobs();
        println!(
            "{:<12} {:>14} {:>9} | {:>12} {:>13} {:>11}  [{}]",
            c.subject,
            configs,
            fmt_duration(c.cg_time.as_secs_f64()),
            fmt_duration(lift),
            format!("{}{}", marker, fmt_duration(a2)),
            format!("{:.0}x", a2 / lift),
            c.analysis,
        );
    }
    println!("(~ = extrapolated past the cutoff, as in the paper's grey cells)");
    println!("(A2 brute-force arm sharded across {jobs} worker thread(s); times are wall-clock)\n");
}

fn table3(cutoff: Duration, jobs: usize) {
    print_table3(&measure_all(cutoff, jobs));
}

fn print_table3(cells: &[Cell]) {
    println!("== Table 3: cost of regarding the feature model ==");
    println!(
        "{:<12} {:<10} {:>12} {:>12} {:>12}",
        "Benchmark", "Analysis", "regarded", "ignored", "avg A2"
    );
    for c in cells {
        println!(
            "{:<12} {:<10} {:>12} {:>12} {:>12}",
            c.subject,
            c.analysis,
            fmt_duration(c.spllift_regarded.time.as_secs_f64()),
            fmt_duration(c.spllift_ignored.time.as_secs_f64()),
            fmt_duration(c.a2.per_run_secs()),
        );
    }
    println!(
        "(avg A2 = mean single-configuration A2 time: the paper's 'gold standard' lower bound)\n"
    );
}

// ----------------------------------------------------------------------
// §6.2 qualitative analysis: time correlates with jump functions.
// ----------------------------------------------------------------------

fn correlation(jobs: usize) {
    print_correlation(&measure_all(Duration::from_secs(5), jobs));
}

fn print_correlation(cells: &[Cell]) {
    println!("== Qualitative analysis (§6.2): time vs. jump-function constructions ==");
    let xs: Vec<f64> = cells
        .iter()
        .map(|c| c.spllift_regarded.stats.jump_fn_constructions as f64)
        .collect();
    let ys: Vec<f64> = cells
        .iter()
        .map(|c| c.spllift_regarded.time.as_secs_f64())
        .collect();
    for (c, (x, y)) in cells.iter().zip(xs.iter().zip(&ys)) {
        println!(
            "  {:<12} {:<10} jump-fns {:>10}   time {:>10}",
            c.subject,
            c.analysis,
            x,
            fmt_duration(*y)
        );
    }
    println!(
        "Pearson correlation across heterogeneous cells: {:.4}",
        pearson(&xs, &ys)
    );
    // The paper's correlation is measured across runs of comparable
    // workloads; reproduce that with a controlled sweep: 12 MM08-shaped
    // subjects of varying size and seed, one analysis.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..12u64 {
        let mut spec = spllift_benchgen::subject_by_name("MM08").unwrap();
        spec.seed = spec.seed.wrapping_add(i * 7919);
        spec.loc_target = 300 + (i as usize) * 150;
        let spl = GeneratedSpl::generate(spec);
        let (_, icfg) = spllift_bench::time_icfg(&spl);
        let m = spllift_bench::time_spllift(
            &spl,
            &icfg,
            &spllift_analyses::ReachingDefs::new(),
            spllift_core::ModelMode::OnEdges,
        );
        xs.push(m.stats.jump_fn_constructions as f64);
        ys.push(m.time.as_secs_f64());
    }
    println!(
        "Pearson correlation over a controlled size/seed sweep (12 MM08-shaped subjects, R. Def.): {:.4} (paper: > 0.99)\n",
        pearson(&xs, &ys)
    );
}

// ----------------------------------------------------------------------
// Scaling sweep: the exponential blowup SPLLIFT avoids.
// ----------------------------------------------------------------------

/// Fixes the code size and grows only the feature count; all `2^n`
/// configurations are valid. A2's cost doubles per feature while
/// SPLLIFT's stays roughly flat — the claim of the paper's §8 ("SPLLIFT
/// successfully avoids the exponential blowup") as a measurable curve.
fn scaling(jobs: usize) {
    println!(
        "== Scaling sweep: features vs. time (Reaching Definitions, A2 on {jobs} thread(s)) =="
    );
    println!(
        "{:>9} {:>9} {:>12} {:>12} {:>9}",
        "features", "configs", "SPLLIFT", "A2 (all)", "ratio"
    );
    for n in [2usize, 4, 6, 8, 10, 12] {
        let spl = GeneratedSpl::generate(spllift_benchgen::synthetic_spec(n, 500, 42));
        let (_, icfg) = spllift_bench::time_icfg(&spl);
        let analysis = spllift_analyses::ReachingDefs::new();
        let lift =
            spllift_bench::time_spllift(&spl, &icfg, &analysis, spllift_core::ModelMode::OnEdges);
        let a2 = spllift_bench::time_a2_all(&spl, &icfg, &analysis, Duration::from_secs(20), jobs);
        println!(
            "{:>9} {:>9} {:>12} {:>12} {:>8.0}x",
            n,
            1u64 << n,
            fmt_duration(lift.time.as_secs_f64()),
            fmt_duration(a2.total_secs()),
            a2.total_secs() / lift.time.as_secs_f64().max(1e-9),
        );
    }
    println!();
}

// ----------------------------------------------------------------------
// Annotation-density sweep: constraint churn vs. #ifdef frequency.
// ----------------------------------------------------------------------

/// Fixes features and code size, varying only how often statements are
/// `#ifdef`-wrapped. SPLLIFT's conclusion (§8) credits its efficiency to
/// performing "splits and joins of configurations as sparsely as
/// possible": cost should grow with annotation density, not with the
/// (constant) configuration count — which A2's cost tracks instead.
fn density() {
    println!("== Annotation-density sweep (GPL shape, Reaching Definitions) ==");
    println!("One fixed program; annotations thinned to a fraction of the original.");
    println!(
        "{:>9} {:>10} {:>12} {:>14}",
        "keep %", "annotated", "SPLLIFT", "jump-fns"
    );
    // Generate once at high density, then thin annotations only — the
    // CFG, the statements, and the call graph stay identical across rows.
    let params = spllift_benchgen::CodegenParams {
        ifdef_percent: 60,
        ..Default::default()
    };
    let spec = spllift_benchgen::subject_by_name("GPL").unwrap();
    let base = GeneratedSpl::generate_with_params(spec, params);
    let ctx = spllift_features::BddConstraintContext::new(&base.table);
    for keep_pct in [0u32, 25, 50, 75, 100] {
        // Deterministic thinning: keep an annotation iff its statement
        // hash falls below the threshold.
        let mut kept = 0usize;
        let program = base.program.map_annotations(|s, a| {
            use spllift_features::FeatureExpr;
            if *a == FeatureExpr::True {
                return a.clone();
            }
            let h = (s.method.0 as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(s.index as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                % 100;
            if (h as u32) < keep_pct {
                kept += 1;
                a.clone()
            } else {
                FeatureExpr::True
            }
        });
        let icfg = spllift_ir::ProgramIcfg::new(&program);
        let analysis = spllift_analyses::ReachingDefs::new();
        let start = std::time::Instant::now();
        let solution = spllift_core::LiftedSolution::solve(
            &analysis,
            &icfg,
            &ctx,
            None,
            spllift_core::ModelMode::Ignore,
        );
        let time = start.elapsed();
        println!(
            "{:>9} {:>10} {:>12} {:>14}",
            keep_pct,
            kept,
            fmt_duration(time.as_secs_f64()),
            solution.stats().jump_fn_constructions,
        );
    }
    println!("(cost tracks annotation density — the 'splits and joins as sparsely as possible' claim of §8)");
    println!();
}

// ----------------------------------------------------------------------
// BDD variable-ordering impact (the paper's declared future work).
// ----------------------------------------------------------------------

/// §5: "The size of a BDD can heavily depend on its variable ordering. In
/// our case, because we did not perceive the BDD operations to be a
/// bottleneck, we just pick one ordering and leave the search for an
/// optimal ordering to future work." §8 promises to "investigate the
/// performance impact of BDD variable orderings". This experiment does:
/// same subject, same analysis, three orderings.
fn ordering() {
    println!("== BDD variable-ordering impact (Reaching Definitions) ==");
    println!(
        "{:<12} {:<12} {:>12} {:>12} {:>12}",
        "Benchmark", "order", "SPLLIFT", "BDD nodes", "jump-fns"
    );
    for name in ["GPL", "BerkeleyDB"] {
        let spl = GeneratedSpl::generate(spllift_benchgen::subject_by_name(name).unwrap());
        let icfg = spllift_ir::ProgramIcfg::new(&spl.program);
        let analysis = spllift_analyses::ReachingDefs::new();
        let model = spl.model_expr();
        let natural: Vec<_> = spl.table.iter().map(|(id, _)| id).collect();
        let reversed: Vec<_> = natural.iter().rev().copied().collect();
        // Interleave reachable and unreachable features.
        let mut interleaved = Vec::with_capacity(natural.len());
        let half = natural.len() / 2;
        for i in 0..half {
            interleaved.push(natural[i]);
            interleaved.push(natural[natural.len() - 1 - i]);
        }
        if natural.len() % 2 == 1 {
            interleaved.push(natural[half]);
        }
        for (label, order) in [
            ("natural", &natural),
            ("reversed", &reversed),
            ("interleaved", &interleaved),
        ] {
            let ctx = spllift_features::BddConstraintContext::with_order(&spl.table, order);
            let start = std::time::Instant::now();
            let solution = spllift_core::LiftedSolution::solve(
                &analysis,
                &icfg,
                &ctx,
                Some(&model),
                spllift_core::ModelMode::OnEdges,
            );
            let time = start.elapsed();
            println!(
                "{:<12} {:<12} {:>12} {:>12} {:>12}",
                name,
                label,
                fmt_duration(time.as_secs_f64()),
                ctx.manager().stats().nodes,
                solution.stats().jump_fn_constructions,
            );
        }
    }
    println!("(the paper's deferred experiment: order affects BDD size, rarely the verdicts)\n");
}

// ----------------------------------------------------------------------
// RQ1: correctness cross-check against the A2 oracle.
// ----------------------------------------------------------------------

fn rq1(sample: usize, jobs: usize) {
    println!("== RQ1: SPLLIFT vs A2 oracle cross-check (§6.1, {jobs} worker thread(s)) ==");
    for spl in generate_all() {
        if spl.reachable.len() > 30 {
            println!(
                "{:<12} skipped exhaustive check (2^{} configs); sampled below",
                spl.spec.name,
                spl.reachable.len()
            );
            continue;
        }
        let mut configs = spl.valid_configurations();
        if configs.len() > sample {
            // Deterministic stride sample.
            let stride = configs.len() / sample;
            configs = configs.into_iter().step_by(stride.max(1)).collect();
        }
        let icfg = spl.icfg();
        let model = spl.model_expr();
        let opts = ParallelOptions::with_jobs(jobs);
        let mut total = 0usize;
        for analysis in ClientAnalysis::PAPER_THREE {
            let make_ctx = || BddConstraintContext::new(&spl.table);
            let outcome = match analysis {
                ClientAnalysis::PossibleTypes => crosscheck_parallel(
                    &icfg,
                    &spllift_analyses::PossibleTypes::new(),
                    make_ctx,
                    Some(&model),
                    &configs,
                    &opts,
                ),
                ClientAnalysis::ReachingDefs => crosscheck_parallel(
                    &icfg,
                    &spllift_analyses::ReachingDefs::new(),
                    make_ctx,
                    Some(&model),
                    &configs,
                    &opts,
                ),
                ClientAnalysis::UninitVars => crosscheck_parallel(
                    &icfg,
                    &spllift_analyses::UninitVars::new(),
                    make_ctx,
                    Some(&model),
                    &configs,
                    &opts,
                ),
                ClientAnalysis::Taint => unreachable!(),
            };
            for m in outcome.mismatches.iter().take(3) {
                eprintln!("  MISMATCH: {m}");
            }
            total += outcome.mismatches.len();
        }
        println!(
            "{:<12} {} configs x 3 analyses: {} mismatches",
            spl.spec.name,
            configs.len(),
            total
        );
    }
    println!();
}
