//! Emits the paper's figures as Graphviz DOT:
//!
//! * **Figure 3** — the exploded supergraph of the taint analysis on the
//!   single product of Figure 1b (¬F ∧ G ∧ ¬H),
//! * **Figure 5** — the constraint-labeled lifted supergraph of the whole
//!   Figure 1a product line, plus the computed constraint table.
//!
//! ```text
//! cargo run -p spllift-bench --bin figures            # prints both
//! cargo run -p spllift-bench --bin figures -- fig3
//! cargo run -p spllift-bench --bin figures -- fig5
//! ```

use spllift_analyses::TaintAnalysis;
use spllift_core::{report, LiftedIcfg, LiftedProblem, LiftedSolution, ModelMode};
use spllift_features::{BddConstraintContext, Configuration};
use spllift_ifds::{supergraph, IfdsSolver};
use spllift_ir::samples::fig1;
use spllift_ir::ProgramIcfg;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if arg == "fig3" || arg == "all" {
        fig3();
    }
    if arg == "fig5" || arg == "all" {
        fig5();
    }
}

/// Figure 3: exploded supergraph for the product of Figure 1b.
fn fig3() {
    let ex = fig1();
    let [_, g, _] = ex.features;
    let product = ex.program.derive_product(&Configuration::from_enabled([g]));
    let icfg = ProgramIcfg::new(&product);
    let analysis = TaintAnalysis::secret_to_print();
    let solver = IfdsSolver::solve(&analysis, &icfg);
    let edges = supergraph::exploded_edges(&analysis, &icfg, &solver);
    println!("// Figure 3: exploded supergraph of the Fig. 1b product (taint)");
    println!("{}", supergraph::to_dot(&edges));
}

/// Figure 5: SPLLIFT applied to the entire product line of Figure 1a.
fn fig5() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);

    println!("// Figure 5: lifted supergraph of the Fig. 1a product line (taint)");
    let lifted_icfg = LiftedIcfg::new(&icfg);
    let lifted = LiftedProblem::new(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let dot = report::lifted_supergraph_dot(
        &lifted,
        &lifted_icfg,
        |s| solution.results_at(s).into_keys().collect(),
        |c| c.to_cube_string(),
    );
    println!("{dot}");

    println!("// Computed constraints (cf. the node labels of Fig. 5):");
    print!(
        "{}",
        report::constraints_table(&solution, &icfg, |c| c.to_cube_string())
    );
}
