//! Benches behind Table 3: the cost of regarding the feature model
//! (edge conjunction) vs. ignoring it, per subject × analysis.

use spllift_analyses::{PossibleTypes, ReachingDefs, UninitVars};
use spllift_bench::harness::Harness;
use spllift_bench::ClientAnalysis;
use spllift_benchgen::{subject_by_name, GeneratedSpl};
use spllift_core::{LiftedSolution, ModelMode};
use spllift_features::BddConstraintContext;
use spllift_ifds::IfdsProblem;
use spllift_ir::ProgramIcfg;
use std::hash::Hash;

fn bench_subject(h: &Harness, name: &str) {
    let spl = GeneratedSpl::generate(subject_by_name(name).unwrap());
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let h = h.group(name);

    macro_rules! modes {
        ($label:expr, $problem:expr) => {{
            let p = $problem;
            h.bench(&format!("regarded/{}", $label), || {
                let _ = LiftedSolution::solve(&p, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
            });
            h.bench(&format!("ignored/{}", $label), || {
                run_ignored(&p, &icfg, &ctx);
            });
        }};
    }
    for analysis in ClientAnalysis::PAPER_THREE {
        match analysis {
            ClientAnalysis::PossibleTypes => {
                modes!(analysis.label(), PossibleTypes::new())
            }
            ClientAnalysis::ReachingDefs => modes!(analysis.label(), ReachingDefs::new()),
            ClientAnalysis::UninitVars => modes!(analysis.label(), UninitVars::new()),
            ClientAnalysis::Taint => unreachable!(),
        }
    }
}

fn run_ignored<P, D>(problem: &P, icfg: &ProgramIcfg<'_>, ctx: &BddConstraintContext)
where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D>,
    D: Clone + Eq + Hash + std::fmt::Debug,
{
    let _ = LiftedSolution::solve(problem, icfg, ctx, None, ModelMode::Ignore);
}

fn main() {
    let h = Harness::new("table3", 10);
    for name in ["MM08", "GPL"] {
        bench_subject(&h, name);
    }
}
