//! Criterion benches behind Table 3: the cost of regarding the feature
//! model (edge conjunction) vs. ignoring it, per subject × analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use spllift_analyses::{PossibleTypes, ReachingDefs, UninitVars};
use spllift_bench::ClientAnalysis;
use spllift_benchgen::{subject_by_name, GeneratedSpl};
use spllift_core::{LiftedSolution, ModelMode};
use spllift_features::BddConstraintContext;
use spllift_ifds::IfdsProblem;
use spllift_ir::ProgramIcfg;
use std::hash::Hash;

fn bench_subject(c: &mut Criterion, name: &str) {
    let spl = GeneratedSpl::generate(subject_by_name(name).unwrap());
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();

    let mut group = c.benchmark_group(format!("table3/{name}"));
    group.sample_size(10);

    macro_rules! modes {
        ($label:expr, $problem:expr) => {{
            let p = $problem;
            group.bench_function(format!("regarded/{}", $label), |b| {
                b.iter(|| {
                    let _ = LiftedSolution::solve(
                        &p,
                        &icfg,
                        &ctx,
                        Some(&model),
                        ModelMode::OnEdges,
                    );
                })
            });
            group.bench_function(format!("ignored/{}", $label), |b| {
                b.iter(|| {
                    let _ = run_ignored(&p, &icfg, &ctx);
                })
            });
        }};
    }
    for analysis in ClientAnalysis::PAPER_THREE {
        match analysis {
            ClientAnalysis::PossibleTypes => {
                modes!(analysis.label(), PossibleTypes::new())
            }
            ClientAnalysis::ReachingDefs => modes!(analysis.label(), ReachingDefs::new()),
            ClientAnalysis::UninitVars => modes!(analysis.label(), UninitVars::new()),
            ClientAnalysis::Taint => unreachable!(),
        }
    }
    group.finish();
}

fn run_ignored<P, D>(problem: &P, icfg: &ProgramIcfg<'_>, ctx: &BddConstraintContext)
where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D>,
    D: Clone + Eq + Hash + std::fmt::Debug,
{
    let _ = LiftedSolution::solve(problem, icfg, ctx, None, ModelMode::Ignore);
}

fn benches(c: &mut Criterion) {
    for name in ["MM08", "GPL"] {
        bench_subject(c, name);
    }
}

criterion_group!(table3, benches);
criterion_main!(table3);
