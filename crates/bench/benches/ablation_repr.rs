//! Ablation A: BDD vs. DNF constraint representation.
//!
//! The paper reports that it first used a hand-written DNF data structure
//! and switched to BDDs because "others do not scale nearly as well for
//! the Boolean operations we require" (§5, §7). This bench reproduces
//! that comparison by instantiating the *same* lifting with either
//! constraint context.

use spllift_analyses::{ReachingDefs, TaintAnalysis, UninitVars};
use spllift_bench::harness::Harness;
use spllift_benchgen::{subject_by_name, GeneratedSpl};
use spllift_core::{LiftedSolution, ModelMode};
use spllift_features::{BddConstraintContext, DnfConstraintContext};
use spllift_ir::samples::fig1;
use spllift_ir::ProgramIcfg;

fn bench_fig1(h: &Harness) {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let bctx = BddConstraintContext::new(&ex.table);
    let dctx = DnfConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let h = h.group("fig1-taint");
    h.bench("bdd", || {
        let _ = LiftedSolution::solve(&analysis, &icfg, &bctx, None, ModelMode::Ignore);
    });
    h.bench("dnf", || {
        let _ = LiftedSolution::solve(&analysis, &icfg, &dctx, None, ModelMode::Ignore);
    });
}

fn bench_mm08(h: &Harness) {
    let spl = GeneratedSpl::generate(subject_by_name("MM08").unwrap());
    let icfg = ProgramIcfg::new(&spl.program);
    let bctx = BddConstraintContext::new(&spl.table);
    let dctx = DnfConstraintContext::new(&spl.table);
    let h = h.group("MM08");
    let rd = ReachingDefs::new();
    let uv = UninitVars::new();
    h.bench("bdd/R. Def.", || {
        let _ = LiftedSolution::solve(&rd, &icfg, &bctx, None, ModelMode::Ignore);
    });
    h.bench("dnf/R. Def.", || {
        let _ = LiftedSolution::solve(&rd, &icfg, &dctx, None, ModelMode::Ignore);
    });
    h.bench("bdd/U. Var.", || {
        let _ = LiftedSolution::solve(&uv, &icfg, &bctx, None, ModelMode::Ignore);
    });
    h.bench("dnf/U. Var.", || {
        let _ = LiftedSolution::solve(&uv, &icfg, &dctx, None, ModelMode::Ignore);
    });
}

fn main() {
    let h = Harness::new("ablation_repr", 10);
    bench_fig1(&h);
    bench_mm08(&h);
}
