//! Ablation A: BDD vs. DNF constraint representation.
//!
//! The paper reports that it first used a hand-written DNF data structure
//! and switched to BDDs because "others do not scale nearly as well for
//! the Boolean operations we require" (§5, §7). This bench reproduces
//! that comparison by instantiating the *same* lifting with either
//! constraint context.

use criterion::{criterion_group, criterion_main, Criterion};
use spllift_analyses::{ReachingDefs, TaintAnalysis, UninitVars};
use spllift_benchgen::{subject_by_name, GeneratedSpl};
use spllift_core::{LiftedSolution, ModelMode};
use spllift_features::{BddConstraintContext, DnfConstraintContext};
use spllift_ir::samples::fig1;
use spllift_ir::ProgramIcfg;

fn bench_fig1(c: &mut Criterion) {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let bctx = BddConstraintContext::new(&ex.table);
    let dctx = DnfConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let mut group = c.benchmark_group("ablation_repr/fig1-taint");
    group.bench_function("bdd", |b| {
        b.iter(|| {
            let _ =
                LiftedSolution::solve(&analysis, &icfg, &bctx, None, ModelMode::Ignore);
        })
    });
    group.bench_function("dnf", |b| {
        b.iter(|| {
            let _ =
                LiftedSolution::solve(&analysis, &icfg, &dctx, None, ModelMode::Ignore);
        })
    });
    group.finish();
}

fn bench_mm08(c: &mut Criterion) {
    let spl = GeneratedSpl::generate(subject_by_name("MM08").unwrap());
    let icfg = ProgramIcfg::new(&spl.program);
    let bctx = BddConstraintContext::new(&spl.table);
    let dctx = DnfConstraintContext::new(&spl.table);
    let mut group = c.benchmark_group("ablation_repr/MM08");
    group.sample_size(10);
    let rd = ReachingDefs::new();
    let uv = UninitVars::new();
    group.bench_function("bdd/R. Def.", |b| {
        b.iter(|| {
            let _ = LiftedSolution::solve(&rd, &icfg, &bctx, None, ModelMode::Ignore);
        })
    });
    group.bench_function("dnf/R. Def.", |b| {
        b.iter(|| {
            let _ = LiftedSolution::solve(&rd, &icfg, &dctx, None, ModelMode::Ignore);
        })
    });
    group.bench_function("bdd/U. Var.", |b| {
        b.iter(|| {
            let _ = LiftedSolution::solve(&uv, &icfg, &bctx, None, ModelMode::Ignore);
        })
    });
    group.bench_function("dnf/U. Var.", |b| {
        b.iter(|| {
            let _ = LiftedSolution::solve(&uv, &icfg, &dctx, None, ModelMode::Ignore);
        })
    });
    group.finish();
}

criterion_group!(ablation_repr, bench_fig1, bench_mm08);
criterion_main!(ablation_repr);
